"""Demand-driven query latency vs the whole-program solve.

An interactive consumer (a debugger plugin, an editor, a serving
deployment) asks about *one* routine; the demand engine
(:mod:`repro.interproc.demand`) answers by solving only that routine's
caller cone plus its callee closure, memoizing validated facts back
into the SUM2 cache so later queries amortize.  This bench measures
the interesting points on the gcc shape (the paper's largest SPEC
row — the worst case for "just solve everything"):

* **whole program** — the exhaustive serial solve, the baseline a
  query must beat;
* **query cold** — no cache: cone-restricted solve from scratch;
* **query warm** — repeat of the same query against the memoized
  cache: CFG build plus fingerprinting, zero phase solving (asserted);
* **query post-edit** — the queried routine itself is perturbed and
  re-queried against the now-stale cache: only its invalidation cone
  re-solves.

``REPRO_BENCH_REQUIRE_SPEEDUP=1`` turns the headline expectation into
an assertion: the warm query answers at least 5x faster than the
whole-program solve.
"""

import os
import time

import pytest

from benchmarks.conftest import analyze_serial, benchmark_program, record
from repro.api import AnalysisSession
from repro.interproc import dump_cache, load_cache
from repro.interproc.persist import dump_summaries
from repro.interproc.summaries import SummarySet
from repro.workloads.mutate import first_editable_routine, perturb_routine

REQUIRE_SPEEDUP = os.environ.get("REPRO_BENCH_REQUIRE_SPEEDUP") == "1"

DEMAND_BENCHMARKS = ["gcc"]

HEADERS = (
    "Benchmark",
    "Routines",
    "Routine",
    "P1/P2 cone",
    "Whole (s)",
    "Query cold (s)",
    "Query warm (s)",
    "Post-edit (s)",
    "Warm speedup",
)


def _canon(summary) -> bytes:
    return dump_summaries(SummarySet(summaries={summary.name: summary}))


@pytest.mark.parametrize("name", DEMAND_BENCHMARKS)
def test_demand_query_vs_whole_program(benchmark, name):
    program, _shape = benchmark_program(name)
    routine = first_editable_routine(program)

    def measure():
        start = time.perf_counter()
        whole = analyze_serial(program)
        whole_seconds = time.perf_counter() - start

        session = AnalysisSession.from_program(program)
        start = time.perf_counter()
        cold = session.query(routine)
        cold_seconds = time.perf_counter() - start

        # Round-trip the memoized cache through the SUM2 wire format,
        # as a real warm start from a sidecar file would; the session
        # keeps its front-end (CFGs, call graph) across queries, as a
        # serving deployment would.
        cache = load_cache(dump_cache(cold.cache))
        start = time.perf_counter()
        warm = session.query(routine, cache=cache)
        warm_seconds = time.perf_counter() - start

        edited = perturb_routine(program, routine)
        cache = load_cache(dump_cache(warm.cache))
        start = time.perf_counter()
        post_edit = AnalysisSession.from_program(edited).query(
            routine, cache=cache
        )
        post_edit_seconds = time.perf_counter() - start
        return (
            whole, whole_seconds,
            cold, cold_seconds,
            warm, warm_seconds,
            edited, post_edit, post_edit_seconds,
        )

    (
        whole, whole_seconds,
        cold, cold_seconds,
        warm, warm_seconds,
        edited, post_edit, post_edit_seconds,
    ) = benchmark.pedantic(measure, rounds=1, iterations=1)

    # Cold and warm answers are byte-identical to the exhaustive solve.
    assert _canon(cold.summary) == _canon(whole.result.summaries[routine])
    assert _canon(warm.summary) == _canon(whole.result.summaries[routine])
    # The warm repeat did no phase solving at all.
    assert warm.metrics.phase1_solved == 0
    assert warm.metrics.phase2_solved == 0
    # The post-edit answer matches a from-scratch solve of the edit.
    assert _canon(post_edit.summary) == _canon(
        analyze_serial(edited).result.summaries[routine]
    )
    assert post_edit.metrics.phase2_solved < program.routine_count

    speedup = whole_seconds / max(warm_seconds, 1e-9)
    if REQUIRE_SPEEDUP:
        assert speedup >= 5.0, (
            f"warm query only {speedup:.1f}x over the whole-program solve "
            f"on {name} (whole {whole_seconds:.3f}s, warm "
            f"{warm_seconds:.3f}s); expected >= 5x"
        )

    record(
        "Demand queries: one routine vs the whole-program solve",
        HEADERS,
        (
            name,
            program.routine_count,
            routine,
            f"{cold.metrics.phase1_cone_routines}/"
            f"{cold.metrics.phase2_cone_routines}",
            whole_seconds,
            cold_seconds,
            warm_seconds,
            post_edit_seconds,
            speedup,
        ),
        note=(
            "Cold = no cache, cone-restricted solve; warm = repeat against "
            "the memoized SUM2 cache (zero phase solving, asserted); "
            "post-edit = queried routine perturbed, stale cache."
        ),
    )
