"""Figure 1 / §1 claim: summary-enabled optimizations improve performance.

The paper's introduction reports that the optimizations the summaries
enable (dead-code elimination across calls/returns, spill removal,
callee-saved reallocation) "consistently provide performance
improvements of 5%-10%, and in some cases ... as much as 20%", with
call overhead up to 16% of execution time on large applications
[Cohn96].

We regenerate the experiment end to end: run the Figure-1 optimization
pipeline on executable stand-ins, verify observable behaviour is
unchanged, and measure the reduction in dynamically executed
instructions.
"""

import pytest

from benchmarks.conftest import record
from repro.api import AnalysisSession
from repro.sim.cost_model import cycle_improvement
from repro.workloads.generator import GeneratorConfig, generate_program
from repro.workloads.shapes import shape_by_name

#: Executable-sized stand-ins (the interpreter must run them).
RUNNABLE = ["compress", "li", "go", "perl", "vortex", "maxeda"]

HEADERS = (
    "Benchmark",
    "Static removed",
    "Static %",
    "Dyn instr before",
    "Dyn instr after",
    "Dyn improvement %",
    "Cycle improvement %",
    "realloc edits",
    "spill edits",
    "dce edits",
)


@pytest.mark.parametrize("name", RUNNABLE)
def test_fig1_optimization_improvement(benchmark, name):
    shape = shape_by_name(name).scaled(0.1)
    program = generate_program(shape, GeneratorConfig(seed=0))
    def optimize_via_session(target, verify):
        return AnalysisSession.from_program(target).optimize(verify=verify)

    result = benchmark.pedantic(
        optimize_via_session,
        args=(program,),
        kwargs={"verify": True},
        rounds=1,
        iterations=1,
    )
    assert result.behaviour_preserved()
    by_pass = {report.name: report.total_edits for report in result.reports}
    record(
        "Figure 1 / §1: optimization improvement"
        " (paper: 5-10% typical, up to 20%)",
        HEADERS,
        (
            name,
            result.instructions_removed,
            100.0 * result.instructions_removed / program.instruction_count,
            result.baseline_run.steps,
            result.optimized_run.steps,
            100.0 * result.dynamic_improvement,
            100.0 * cycle_improvement(result.baseline_run, result.optimized_run),
            by_pass.get("realloc", 0),
            by_pass.get("spill", 0),
            by_pass.get("dce", 0),
        ),
    )
    # The paper's qualitative claim: a consistent, positive improvement.
    # (The paper reports 5-10% wall-clock on real applications; our proxy
    # is dynamic instruction count on synthetic stand-ins, which lands in
    # the 1.5-8% band depending on how call-heavy the hot paths are.)
    assert result.dynamic_improvement > 0.01
