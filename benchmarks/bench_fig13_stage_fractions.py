"""Figure 13: fraction of total time spent in each analysis stage.

The paper reports the breakdown only for gcc and the eight PC
applications (the small benchmarks defeat the timer resolution), and
observes that CFG building plus initialization is consistently 50-60%
of the total while the remaining stages vary per benchmark.  We record
the measured fractions for the same nine benchmarks.
"""

import pytest

from benchmarks.conftest import analyze_serial, benchmark_program, record


#: gcc + the eight PC applications, as in the paper's figure.
FIGURE13_BENCHMARKS = [
    "gcc", "acad", "excel", "maxeda", "sqlservr", "texim", "ustation",
    "vc", "winword",
]

HEADERS = (
    "Benchmark",
    "CFG Build %",
    "Init %",
    "PSG Build %",
    "Phase 1 %",
    "Phase 2 %",
    "CFG+Init %",
    # Absolute wall time alongside the fractions: without a "(s)"
    # column the session summary recorded this table's time as 0.0.
    "Total (s)",
)


@pytest.mark.parametrize("name", FIGURE13_BENCHMARKS)
def test_fig13_row(benchmark, name):
    program, _scaled = benchmark_program(name)
    analysis = benchmark.pedantic(
        analyze_serial, args=(program,), rounds=1, iterations=1
    )
    fractions = analysis.timings.fractions()
    record(
        "Figure 13: stage fractions"
        " (paper: CFG Build + Init = 50-60% on its C implementation)",
        HEADERS,
        (
            name,
            100 * fractions["cfg_build"],
            100 * fractions["initialization"],
            100 * fractions["psg_build"],
            100 * fractions["phase1"],
            100 * fractions["phase2"],
            100 * (fractions["cfg_build"] + fractions["initialization"]),
            analysis.timings.total,
        ),
    )
    assert abs(sum(fractions.values()) - 1.0) < 1e-9
