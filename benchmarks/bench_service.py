"""Daemon round-trip latency: cold solve vs warm retained sessions.

The whole premise of ``spike-analyze serve`` is that a long-running
optimizer service should pay the front end (decode, CFG build, PSG
construction) and the two-phase solve once per image, not once per
request.  This bench drives a live daemon over HTTP on the gcc shape
(the paper's largest SPEC row) and measures:

* **cold** — first ``POST /v1/analyze`` of the image: full pipeline;
* **warm** — repeat POST of the byte-identical image: served from the
  retained session payload, no front end, no solver;
* **edit** — ``POST /v1/analyze`` with one routine perturbed:
  incremental warm-start from the base image's SUM2 cache.

Warm responses are asserted byte-identical to the cold payload, and
``REPRO_BENCH_REQUIRE_SPEEDUP=1`` turns the headline into an
assertion: the warm round trip must be at least 5x faster than the
cold one (in practice it is orders of magnitude faster — the warm
path is one fingerprint plus a dict hit).
"""

import os
import threading
import time

import pytest

from benchmarks.conftest import benchmark_program, record
from repro.program.rewrite import program_to_image
from repro.service import AnalysisDaemon, ServiceClient, ServiceConfig
from repro.workloads.mutate import first_editable_routine

REQUIRE_SPEEDUP = os.environ.get("REPRO_BENCH_REQUIRE_SPEEDUP") == "1"

SERVICE_BENCHMARKS = ["gcc"]

HEADERS = (
    "Benchmark",
    "Routines",
    "Cold (s)",
    "Warm (s)",
    "Edit (s)",
    "Warm speedup",
)


@pytest.mark.parametrize("name", SERVICE_BENCHMARKS)
def test_service_warm_vs_cold(benchmark, name):
    program, shape = benchmark_program(name)
    image_bytes = program_to_image(program).to_bytes()
    routine = first_editable_routine(program)

    daemon = AnalysisDaemon(ServiceConfig(port=0))
    thread = threading.Thread(target=daemon.serve_forever)
    thread.start()
    try:
        host, port = daemon.server.server_address[:2]
        client = ServiceClient.tcp(host, port)

        def measure():
            start = time.perf_counter()
            cold = client.analyze(image_bytes)
            cold_seconds = time.perf_counter() - start

            # Median-of-three warm repeats: the retained-session path.
            warm_seconds = []
            for _ in range(3):
                start = time.perf_counter()
                warm = client.analyze(image_bytes)
                warm_seconds.append(time.perf_counter() - start)
            warm_seconds.sort()

            start = time.perf_counter()
            edit = client.analyze(image_bytes, edit={"routine": routine})
            edit_seconds = time.perf_counter() - start
            return cold, cold_seconds, warm, warm_seconds[1], edit, edit_seconds

        cold, cold_seconds, warm, warm_seconds, edit, edit_seconds = (
            benchmark.pedantic(measure, rounds=1, iterations=1)
        )
    finally:
        daemon.drain()
        thread.join(timeout=60)

    assert not cold.warm and warm.warm
    # The warm response is the retained payload, byte for byte.
    assert warm.payload == cold.payload
    # The edit warm-started and re-solved only the dirty cone.
    assert edit.payload["kind"] == "incremental"
    assert edit.payload["phase2_solved"] < program.routine_count

    speedup = cold_seconds / max(warm_seconds, 1e-9)
    if REQUIRE_SPEEDUP:
        assert speedup >= 5.0, (
            f"warm daemon round trip only {speedup:.1f}x over cold on "
            f"{name} (cold {cold_seconds:.3f}s, warm {warm_seconds:.3f}s); "
            "expected >= 5x"
        )

    record(
        "service",
        HEADERS,
        (
            name,
            program.routine_count,
            f"{cold_seconds:.3f}",
            f"{warm_seconds:.4f}",
            f"{edit_seconds:.3f}",
            f"{speedup:.0f}x",
        ),
        note=(
            "One daemon, HTTP over loopback. Cold = first POST "
            "/v1/analyze (full front end + solve); warm = repeat POST "
            "of the unchanged image (retained session payload); edit = "
            "one perturbed routine (SUM2 warm start)."
        ),
    )
