"""Front-end fast path: batched labeling and the parallel front end.

Two measurements back the PR-5 claims:

* ``test_frontend_stage_times`` — serial PSG-build time per benchmark
  under the batched per-routine labeler versus the per-target labeler
  it replaced.  Both strategies produce bit-identical flow-summary
  labels (asserted by ``tests/test_psg.py``); the batched pass shares
  boundary-cut structure and per-block transfer results across a
  routine's targets, so its win grows with the number of call sites
  per routine — winword (the call-heaviest PC shape) is the headline.

* ``test_frontend_cold_speedup`` — cold end-to-end ``analyze()`` wall
  time at ``--jobs 1`` versus ``--jobs 4``, where the parallel front
  end fans CFG construction and local-set generation out across the
  pool and ships the artifacts to the shard workers.  Summaries are
  asserted byte-identical at both points; the ≥1.5x expectation is a
  multicore-CI assertion only (``REPRO_BENCH_REQUIRE_SPEEDUP=1``) —
  on a single-CPU host the pool can only add overhead.
"""

import multiprocessing
import os
import time

import pytest

from benchmarks.conftest import benchmark_program, record
from repro.api import AnalysisConfig, AnalysisSession
from repro.interproc import dump_summaries
from repro.psg.build import PsgConfig

REQUIRE_SPEEDUP = os.environ.get("REPRO_BENCH_REQUIRE_SPEEDUP") == "1"

#: A mid-sized and the call-heaviest PC shape: where per-routine target
#: counts (and therefore shared-structure reuse) differ the most.
STAGE_BENCHMARKS = ["texim", "winword"]

STAGE_HEADERS = (
    "Benchmark",
    "Routines",
    "Per-target PSG (s)",
    "Batched PSG (s)",
    "PSG speedup",
    "Per-target total (s)",
    "Batched total (s)",
)

COLD_HEADERS = (
    "Benchmark",
    "Routines",
    "Jobs 1 (s)",
    "Jobs 4 (s)",
    "Speedup x4",
    "Frontend wall (s)",
    "Frontend busy (s)",
)


def _serial_timings(program, labeling: str):
    config = AnalysisConfig(psg=PsgConfig(labeling=labeling))
    session = AnalysisSession.from_program(program, config)
    analysis = session.analyze(jobs=1)
    return analysis.timings, dump_summaries(analysis.result)


@pytest.mark.parametrize("name", STAGE_BENCHMARKS)
def test_frontend_stage_times(benchmark, name):
    program, _shape = benchmark_program(name)

    def measure():
        per_target, pt_blob = _serial_timings(program, "per-target")
        batched, b_blob = _serial_timings(program, "batched")
        return per_target, batched, pt_blob, b_blob

    per_target, batched, pt_blob, b_blob = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )

    # Identical summaries are the equivalence contract, host-independent.
    assert pt_blob == b_blob

    speedup = per_target.psg_build / max(batched.psg_build, 1e-9)
    record(
        "Frontend batched labeling: batched vs per-target PSG build (serial)",
        STAGE_HEADERS,
        (
            name,
            program.routine_count,
            per_target.psg_build,
            batched.psg_build,
            f"{speedup:.2f}x",
            per_target.total,
            batched.total,
        ),
        note=(
            "labels verified bit-identical; the batched labeler solves "
            "each routine's boundary-cut regions in one reverse-topological "
            "pass shared across targets (worklist only inside loops)"
        ),
    )

    if REQUIRE_SPEEDUP and name == "winword":
        assert speedup >= 1.2, (
            f"expected a batched PSG-build win on winword, measured "
            f"{speedup:.2f}x"
        )


def test_frontend_cold_speedup(benchmark):
    program, _shape = benchmark_program("gcc")

    def measure():
        times = {}
        blobs = {}
        frontend_wall = 0.0
        frontend_busy = 0.0
        for jobs in (1, 4):
            session = AnalysisSession.from_program(program)
            start = time.perf_counter()
            analysis = session.analyze(jobs=jobs)
            times[jobs] = time.perf_counter() - start
            blobs[jobs] = dump_summaries(analysis.result)
            if jobs == 4:
                metrics = session.metrics()
                frontend_wall = metrics.get("wall_seconds", {}).get(
                    "frontend", 0.0
                )
                frontend_busy = sum(
                    metrics.get("frontend_seconds", {}).values()
                )
        return times, blobs, frontend_wall, frontend_busy

    times, blobs, frontend_wall, frontend_busy = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )

    # Byte-identity always holds, whatever the host's core count.
    assert blobs[4] == blobs[1]

    speedup = times[1] / max(times[4], 1e-9)
    record(
        "Frontend parallel cold start: end-to-end analyze, jobs 1 vs 4 (gcc)",
        COLD_HEADERS,
        (
            "gcc",
            program.routine_count,
            times[1],
            times[4],
            f"{speedup:.2f}x",
            frontend_wall,
            frontend_busy,
        ),
        note=(
            f"host CPUs: {multiprocessing.cpu_count()}; summaries verified "
            "byte-identical at jobs 1 and 4. The speedup assertion runs "
            "only under REPRO_BENCH_REQUIRE_SPEEDUP=1 (multicore CI)."
        ),
    )

    if REQUIRE_SPEEDUP:
        assert speedup >= 1.5, (
            f"expected >=1.5x cold at jobs 4 on gcc, measured "
            f"{speedup:.2f}x on {multiprocessing.cpu_count()} CPUs"
        )
