"""Incremental re-analysis: cold vs warm vs one-routine-dirty.

Spike's workflow re-runs the analysis after every optimization edit;
the incremental engine (:mod:`repro.interproc.incremental`) makes the
re-run cost proportional to the edit, not the program.  This bench
measures the three interesting points on generated workloads:

* **cold** — no cache: the full five-stage pipeline;
* **warm, clean** — a cache with zero dirty routines: CFG build and
  fingerprinting only, no phase-1/phase-2 solving at all (asserted);
* **warm, one edit** — one routine's code changed: only its SCC and
  the dependents whose consumed facts actually changed are re-solved,
  and the result is asserted identical to a from-scratch analysis of
  the edited program.
"""

import time

import pytest

from benchmarks.conftest import analyze_serial, benchmark_program, record
from repro.api import AnalysisSession
from repro.interproc import dump_cache, dump_summaries, load_cache
from repro.workloads.mutate import first_editable_routine, perturb_routine

INCREMENTAL_BENCHMARKS = ["compress", "li", "perl", "vortex"]

HEADERS = (
    "Benchmark",
    "Routines",
    "Cold (s)",
    "Warm clean (s)",
    "Edit full (s)",
    "Edit incr (s)",
    "Reanalyzed",
    "Warm speedup",
)


@pytest.mark.parametrize("name", INCREMENTAL_BENCHMARKS)
def test_incremental_cold_vs_warm(benchmark, name):
    program, shape = benchmark_program(name)

    def measure():
        start = time.perf_counter()
        session = AnalysisSession.from_program(program)
        cold = session.analyze_incremental()
        cold_seconds = time.perf_counter() - start

        # Round-trip the cache through the SUM2 wire format, as a real
        # warm start from a sidecar file would.
        cache = load_cache(dump_cache(cold.cache))

        start = time.perf_counter()
        warm = session.analyze_incremental(cache=cache)
        warm_seconds = time.perf_counter() - start

        edited = perturb_routine(program, first_editable_routine(program))
        start = time.perf_counter()
        full = analyze_serial(edited)
        full_seconds = time.perf_counter() - start
        start = time.perf_counter()
        incr = AnalysisSession.from_program(edited).analyze_incremental(
            cache=load_cache(dump_cache(cold.cache))
        )
        incr_seconds = time.perf_counter() - start
        return cold, cold_seconds, warm, warm_seconds, full, full_seconds, incr, incr_seconds

    (
        cold, cold_seconds,
        warm, warm_seconds,
        full, full_seconds,
        incr, incr_seconds,
    ) = benchmark.pedantic(measure, rounds=1, iterations=1)

    # A clean warm run does no solving and returns the cached facts.
    assert warm.metrics.phase1_solved == 0
    assert warm.metrics.phase2_solved == 0
    assert dump_summaries(warm.result) == dump_summaries(cold.result)
    assert warm_seconds < cold_seconds, "clean warm run should beat cold"

    # The one-edit incremental run matches from-scratch analysis ...
    assert dump_summaries(incr.result) == dump_summaries(full.result), (
        incr.result.diff(full.result)
    )
    # ... while re-solving only part of the program.
    assert incr.metrics.phase2_solved < program.routine_count

    record(
        "Incremental re-analysis: cold vs warm vs one edit",
        HEADERS,
        (
            name,
            program.routine_count,
            cold_seconds,
            warm_seconds,
            full_seconds,
            incr_seconds,
            incr.metrics.phase2_solved,
            cold_seconds / max(warm_seconds, 1e-9),
        ),
        note=(
            "Warm clean = cache hit, zero dirty routines (no phase solving); "
            "Edit = one routine perturbed, incremental vs full re-analysis."
        ),
    )
