"""Traffic-shaped daemon load: latency quantiles under three engines.

``bench_service.py`` answers "how much faster is a warm repeat"; this
bench answers the question a service owner actually asks: *what do the
tails look like under traffic?*  One daemon serves three seeded
workloads from :mod:`repro.workloads.driver`:

* **uniform** — uniform image/routine choice, mixed analyze/query,
  a slice of never-seen (cold-tenant) requests;
* **zipf** — Zipf-skewed popularity (hot images absorb most traffic),
  bursty open-loop arrivals;
* **edit-replay** — a recorded optimizer edit trace replayed over one
  image (incremental warm-start path under a realistic edit stream).

For each workload the table reports client-side throughput and
p50/p95/p99 (exact order statistics over per-request wall times).  The
run also cross-checks the server's own view: the summed
``service.request.seconds`` histogram count must equal the number of
requests the clients sent — exactly, not approximately — which is the
invariant that makes the server histograms trustworthy for every later
scaling claim.

Latency columns are in milliseconds on purpose: the harness sums
``(s)``-suffixed columns into the bench's wall-clock total, and
quantiles are not wall clock.
"""

import threading

import pytest

from benchmarks.conftest import record
from repro.obs import REGISTRY
from repro.service import AnalysisDaemon, ServiceClient, ServiceConfig
from repro.workloads.driver import (
    EditReplayEngine,
    ImageSpec,
    UniformEngine,
    Workload,
    ZipfEngine,
    record_edit_trace,
)

#: Scaled-down Table-2 images: enough routines for skew to matter,
#: small enough that the bench completes in seconds.
LOAD_IMAGES = [("compress", 0.25), ("li", 0.1)]
REQUESTS = 60
CONCURRENCY = 4

HEADERS = (
    "Workload",
    "Requests",
    "Errors",
    "Warm",
    "Wall (s)",
    "Throughput (req/s)",
    "p50 (ms)",
    "p95 (ms)",
    "p99 (ms)",
)


def _request_seconds_count() -> int:
    """The server-side total across every ``service.request.seconds``
    label combination."""
    return sum(
        int(entry["count"])
        for key, entry in REGISTRY.histograms_dict().items()
        if key.startswith("service.request.seconds")
    )


def test_load_workloads(benchmark):
    specs = [
        ImageSpec.from_benchmark(name, scale=scale, seed=0)
        for name, scale in LOAD_IMAGES
    ]
    daemon = AnalysisDaemon(ServiceConfig(port=0))
    thread = threading.Thread(target=daemon.serve_forever)
    thread.start()
    base_count = _request_seconds_count()
    try:
        host, port = daemon.server.server_address[:2]

        def connect(tenant):
            return ServiceClient.tcp(host, port, tenant=tenant)

        workloads = [
            Workload(
                UniformEngine(
                    specs, seed=11, cold_fraction=0.1, query_fraction=0.4
                ),
                count=REQUESTS, concurrency=CONCURRENCY, seed=11,
            ),
            Workload(
                ZipfEngine(specs, seed=22, query_fraction=0.5, skew=1.1),
                count=REQUESTS, concurrency=CONCURRENCY,
                rate=400.0, burst_probability=0.25, seed=22,
            ),
            Workload(
                EditReplayEngine(
                    specs[0], record_edit_trace(specs[0], 16, seed=33)
                ),
                count=REQUESTS // 2, concurrency=2, seed=33,
            ),
        ]

        def measure():
            return [workload.run(connect) for workload in workloads]

        reports = benchmark.pedantic(measure, rounds=1, iterations=1)
    finally:
        daemon.drain()
        thread.join(timeout=60)

    sent = sum(report.count for report in reports)
    served = _request_seconds_count() - base_count
    # The acceptance invariant: the server's histogram saw exactly the
    # requests the clients sent — no drops, no double counts.
    assert served == sent, (served, sent)
    for report in reports:
        assert report.errors == 0, report.to_json()

    for report in reports:
        summary = report.to_json()
        record(
            "load",
            HEADERS,
            (
                summary["engine"],
                summary["requests"],
                summary["errors"],
                summary["warm"],
                f"{summary['wall_seconds']:.3f}",
                f"{summary['throughput_rps']:.1f}",
                f"{summary['p50_ms']:.2f}",
                f"{summary['p95_ms']:.2f}",
                f"{summary['p99_ms']:.2f}",
            ),
            note=(
                "One daemon, HTTP over loopback, seeded engines "
                f"({CONCURRENCY}-way concurrent clients). Quantiles are "
                "client-side order statistics; the server's "
                "service.request.seconds histogram count is asserted "
                "equal to requests sent."
            ),
        )
