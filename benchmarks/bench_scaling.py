"""Solver-core scaling: flat vs object vs FIFO at 10x/100x figure-13 size.

The flat CSR core's pitch is that its advantage *grows* with the graph:
per-solve setup amortizes away and the per-visit savings (no edge
objects, no attribute reads, sweep+pocket scheduling) compound.  This
bench scales the figure-13 gcc row (scale 0.25, ~10k PSG nodes) to
``REPRO_BENCH_SCALING_FACTORS`` times its node count (default
``10,100``; CI runs the 10x point only) and records, per core:

* best-of-``REPRO_BENCH_SCALING_REPS`` phase-1+2 wall seconds, timed
  with the collector disabled (GC pauses inside a phase otherwise add
  up to ±30% noise at these durations);
* total solver iterations (the priority-vs-FIFO ordering win);
* process peak RSS from ``resource.getrusage``, normalized to MB
  (``ru_maxrss`` is kibibytes on Linux but *bytes* on macOS; the
  record carries the unit explicitly).  Factors run in ascending
  order, so the high-water mark is attributable to the largest graph
  analyzed so far.

All cores solve the *same* built PSG — the pipeline runs once per
factor and only the phases are re-timed, which is both faster and a
cleaner comparison (identical front-end work, identical seed orders).

``REPRO_BENCH_REQUIRE_SPEEDUP=1`` turns the headline expectations into
assertions: flat completes both phases >= 2x faster than the object
core on the gcc shape, and the priority schedule visits strictly fewer
nodes than FIFO.
"""

import gc
import os
import resource
import sys
import time

import pytest

from benchmarks.conftest import record
from repro.api import AnalysisSession
from repro.dataflow.regset import mask_of
from repro.interproc.analysis import AnalysisConfig, node_seed_order
from repro.interproc.phase1 import run_phase1
from repro.interproc.phase2 import run_phase2
from repro.workloads.generator import GeneratorConfig, generate_benchmark

#: The figure-13 gcc row this bench scales up from.
BASE_SCALE = 0.25

FACTORS = sorted(
    int(token)
    for token in os.environ.get(
        "REPRO_BENCH_SCALING_FACTORS", "10,100"
    ).split(",")
    if token.strip()
)
REPS = int(os.environ.get("REPRO_BENCH_SCALING_REPS", "3"))
REQUIRE_SPEEDUP = os.environ.get("REPRO_BENCH_REQUIRE_SPEEDUP") == "1"

CORES = ("flat", "object", "fifo")

HEADERS = (
    "Factor",
    "gcc scale",
    "PSG Nodes",
    "Core",
    "Phase 1+2 (s)",
    "Iterations",
    "Peak RSS (MB)",
    "RSS unit",
)

#: ``ru_maxrss`` has no portable unit: Linux reports kibibytes, macOS
#: reports bytes (BSD heritage).  Normalize to MB at the source and
#: carry the unit in the record so readers can trust the column.
_RU_MAXRSS_PER_MB = 1024 * 1024 if sys.platform == "darwin" else 1024


def _peak_rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / _RU_MAXRSS_PER_MB


def _solve_phases(analysis, core, orders):
    """Re-run both phases on the already-built PSG; returns (seconds,
    total iterations).  Mask vectors are per-solve state, so repeated
    solves are independent; the flat core's arena is cached on the PSG
    (lowered outside the timed region by the warm-up pass)."""
    phase1_order, phase2_order = orders
    config = analysis.config
    preserved = mask_of(
        {config.convention.stack_pointer, config.convention.global_pointer}
    )
    started = time.perf_counter()
    phase1 = run_phase1(
        analysis.psg,
        analysis.saved_restored,
        preserved,
        phase1_order,
        core=core,
    )
    phase2 = run_phase2(
        analysis.psg,
        analysis.call_graph.externally_callable,
        config.convention,
        phase2_order,
        core=core,
    )
    seconds = time.perf_counter() - started
    return seconds, phase1.iterations + phase2.iterations


@pytest.mark.parametrize("factor", FACTORS)
def test_scaling_point(factor):
    scale = BASE_SCALE * factor
    program, _shape = generate_benchmark(
        "gcc", scale=scale, config=GeneratorConfig(seed=0)
    )
    analysis = AnalysisSession.from_program(
        program, config=AnalysisConfig()
    ).analyze()
    callee_first = analysis.call_graph.reverse_topological_order()
    orders = (
        node_seed_order(analysis.psg, callee_first),
        node_seed_order(analysis.psg, list(reversed(callee_first))),
    )

    iterations = {}
    for core in CORES:  # warm-up: lowers the arena, touches the state
        _seconds, iterations[core] = _solve_phases(analysis, core, orders)

    best = {core: float("inf") for core in CORES}
    gc.collect()
    gc.disable()
    try:
        # Interleaved best-of-REPS: machine noise hits all cores alike
        # within a rep, and the minimum discards the noisy samples.
        for _rep in range(REPS):
            for core in CORES:
                seconds, _iters = _solve_phases(analysis, core, orders)
                if seconds < best[core]:
                    best[core] = seconds
    finally:
        gc.enable()

    node_count = len(analysis.psg.nodes)
    peak_rss_mb = _peak_rss_mb()
    for core in CORES:
        record(
            "Scaling: solver cores at 10x/100x the figure-13 gcc row"
            " (phase solve time only; one shared PSG per factor)",
            HEADERS,
            (
                factor,
                scale,
                node_count,
                core,
                best[core],
                iterations[core],
                round(peak_rss_mb, 1),
                "MB",
            ),
        )

    speedup = best["object"] / best["flat"]
    saved_iterations = iterations["fifo"] - iterations["flat"]
    if REQUIRE_SPEEDUP:
        assert speedup >= 2.0, (
            f"flat core {speedup:.2f}x over object at factor {factor}; "
            f"expected >= 2x (flat {best['flat']:.3f}s, "
            f"object {best['object']:.3f}s)"
        )
        assert saved_iterations > 0, (
            f"priority schedule saved no iterations over FIFO at factor "
            f"{factor} ({iterations['flat']} vs {iterations['fifo']})"
        )
