"""Shared infrastructure for the paper-reproduction benchmarks.

Every file in this directory regenerates one table or figure from §4 of
the paper.  Benchmarks run on synthetic programs generated to the
paper's published per-benchmark shapes (see ``repro.workloads``),
scaled down by default so the whole harness completes in minutes on a
Python host:

* SPECint95 benchmarks run at scale ``REPRO_BENCH_SCALE_SPEC``
  (default 0.25 — a quarter of the routine count);
* PC applications run at scale ``REPRO_BENCH_SCALE_PC``
  (default 0.04).

Set the environment variables to ``1.0`` to run paper-sized inputs.
Because the paper's own headline results are *per-routine* statistics,
ratios and scaling exponents, they are scale-invariant; the absolute
"Total Dataflow Time" column is the only scale-sensitive number and is
reported alongside the configured scale.

Each benchmark records rows into a named table; at the end of the
session every table is printed and written to ``benchmarks/results/``
twice — ``<stem>.txt`` (the paper-style text table) and ``<stem>.json``
(machine-readable: ``{bench, config, samples, seconds, counters}``)
so CI and trend tooling can consume the numbers without parsing text.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import sys
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

import pytest

from repro.api import AnalysisSession
from repro.obs.metrics import REGISTRY
from repro.program.model import Program
from repro.reporting.tables import format_table
from repro.workloads.generator import GeneratorConfig, generate_program
from repro.workloads.shapes import ALL_SHAPES, BenchmarkShape, shape_by_name

RESULTS_DIR = Path(__file__).parent / "results"

SPEC_SCALE = float(os.environ.get("REPRO_BENCH_SCALE_SPEC", "0.25"))
PC_SCALE = float(os.environ.get("REPRO_BENCH_SCALE_PC", "0.04"))

#: All benchmark names in the paper's Table-2 row order.
BENCHMARK_NAMES = [shape.name for shape in ALL_SHAPES]

_TABLES: Dict[str, Tuple[Sequence[str], List[Sequence[object]], str]] = {}
_PROGRAMS: Dict[str, Tuple[Program, BenchmarkShape]] = {}


def scale_for(shape: BenchmarkShape) -> float:
    return SPEC_SCALE if shape.suite == "SPECint95" else PC_SCALE


def benchmark_program(name: str) -> Tuple[Program, BenchmarkShape]:
    """The scaled program for ``name`` (cached per session)."""
    if name not in _PROGRAMS:
        shape = shape_by_name(name)
        scaled = shape.scaled(scale_for(shape))
        program = generate_program(scaled, GeneratorConfig(seed=0))
        _PROGRAMS[name] = (program, scaled)
    return _PROGRAMS[name]


def analyze_serial(program: Program):
    """Serial whole-program analysis through the public facade (the
    timed callable every table/figure benchmark measures)."""
    return AnalysisSession.from_program(program).analyze()


def record(
    table: str, headers: Sequence[str], row: Sequence[object], note: str = ""
) -> None:
    """Append one row to a named output table."""
    if table not in _TABLES:
        _TABLES[table] = (headers, [], note)
    _TABLES[table][1].append(row)


@pytest.fixture()
def program_and_shape(request) -> Tuple[Program, BenchmarkShape]:
    """Parametrized fixture: (program, shape) for request.param."""
    return benchmark_program(request.param)


def _json_cell(cell: object) -> object:
    """JSON-safe cell value (non-scalars fall back to their repr)."""
    if isinstance(cell, (int, float, str, bool)) or cell is None:
        return cell
    return str(cell)


def _table_seconds(headers: Sequence[str], rows: List[Sequence[object]]) -> float:
    """Total of every numeric cell in a ``(s)``-suffixed column."""
    total = 0.0
    for index, header in enumerate(headers):
        if "(s)" not in header:
            continue
        for row in rows:
            if index < len(row) and isinstance(row[index], (int, float)):
                total += float(row[index])
    return total


def _table_json(
    stem: str, headers: Sequence[str], rows: List[Sequence[object]]
) -> Dict[str, object]:
    return {
        "bench": stem,
        "config": {
            "scale_spec": SPEC_SCALE,
            "scale_pc": PC_SCALE,
            "cpus": multiprocessing.cpu_count(),
            "python": sys.version.split()[0],
        },
        "samples": [
            dict(zip(headers, (_json_cell(cell) for cell in row)))
            for row in rows
        ],
        "seconds": _table_seconds(headers, rows),
        "counters": REGISTRY.as_dict(),
        # Latency distributions recorded during the bench (empty for
        # the pure-solver tables; populated by the service/load
        # benches).  Quantiles ride into BENCH_<pr>.json via
        # tools/bench_summary.py.
        "histograms": REGISTRY.histograms_dict(),
    }


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    write = terminalreporter.write_line
    write("")
    write("=" * 78)
    write("Paper-reproduction tables (also written to benchmarks/results/)")
    write(
        f"scales: SPECint95 x{SPEC_SCALE}, PC Applications x{PC_SCALE} "
        f"(set REPRO_BENCH_SCALE_SPEC / REPRO_BENCH_SCALE_PC)"
    )
    write("=" * 78)
    for name, (headers, rows, note) in _TABLES.items():
        text = format_table(headers, rows, title=name)
        if note:
            text += f"\n{note}"
        write("")
        for line in text.splitlines():
            write(line)
        stem = name.split(":")[0].strip().lower()
        stem = "".join(c if c.isalnum() else "_" for c in stem).strip("_")
        out_path = RESULTS_DIR / f"{stem}.txt"
        out_path.write_text(text + "\n", encoding="utf-8")
        json_path = RESULTS_DIR / f"{stem}.json"
        json_path.write_text(
            json.dumps(_table_json(stem, headers, rows), indent=2,
                       sort_keys=True) + "\n",
            encoding="utf-8",
        )
