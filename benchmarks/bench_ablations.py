"""Ablations of the design choices DESIGN.md calls out.

Three ablations, each isolating one mechanism the paper (or this
reproduction) leans on:

* **per-edge vs per-target labeling** — the paper labels each
  flow-summary edge by solving its own CFG subgraph; we default to one
  solve per target.  Identical labels (asserted), different build cost.
* **§3.4 callee-saved filtering** — without it, every save/restore
  leaks into call-used/call-killed, destroying exactly the facts the
  Figure-1(c)/(d) optimizations need.
* **§3.5 call-target hints** — without them, hinted virtual dispatches
  fall back to the worst-case calling-standard assumptions.
"""

import pytest

from benchmarks.conftest import benchmark_program, record
from repro.dataflow.regset import RegisterSet
from repro.api import AnalysisConfig, AnalysisSession
from repro.psg.build import PsgConfig
from repro.workloads.generator import GeneratorConfig, generate_program
from repro.workloads.shapes import shape_by_name

LABELING_BENCHMARKS = ["compress", "li", "go", "perl"]


@pytest.mark.parametrize("name", LABELING_BENCHMARKS)
def test_ablation_labeling_mode(benchmark, name):
    """Per-target labeling (default) vs the paper-literal per-edge solve."""
    program, _scaled = benchmark_program(name)

    def run_both():
        fast = AnalysisSession.from_program(
            program, AnalysisConfig(psg=PsgConfig(per_edge_labeling=False))
        ).analyze()
        literal = AnalysisSession.from_program(
            program, AnalysisConfig(psg=PsgConfig(per_edge_labeling=True))
        ).analyze()
        return fast, literal

    fast, literal = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert fast.result.equal_summaries(literal.result)
    record(
        "Ablation A: flow-summary labeling strategy",
        ("Benchmark", "Per-target build (s)", "Per-edge build (s)", "Slowdown"),
        (
            name,
            fast.timings.psg_build,
            literal.timings.psg_build,
            literal.timings.psg_build / max(fast.timings.psg_build, 1e-9),
        ),
        note="Identical edge labels are asserted; only build cost differs.",
    )


FILTER_BENCHMARKS = ["li", "perl", "maxeda"]


@pytest.mark.parametrize("name", FILTER_BENCHMARKS)
def test_ablation_callee_saved_filtering(benchmark, name):
    """§3.4 filtering: its effect on summary quality and optimization."""
    shape = shape_by_name(name).scaled(0.08)
    program = generate_program(shape, GeneratorConfig(seed=0))

    def run_both():
        with_filter = AnalysisSession.from_program(program).analyze()
        without = AnalysisSession.from_program(
            program, AnalysisConfig(callee_saved_filtering=False)
        ).analyze()
        return with_filter, without

    with_filter, without = benchmark.pedantic(run_both, rounds=1, iterations=1)

    def average_killed(analysis):
        sizes = [
            len(RegisterSet.from_mask(s.call_killed_mask))
            for s in analysis.result
        ]
        return sum(sizes) / max(1, len(sizes))

    # How many call sites still admit the Figure-1(c)/(d) precondition
    # (some caller-saved scratch register provably survives the call)?
    def survivable_sites(analysis):
        scratch = RegisterSet(["t3", "t8"]).mask
        count = 0
        for summary in analysis.result:
            for site in summary.call_sites:
                if site.killed_mask & scratch != scratch:
                    count += 1
        return count

    record(
        "Ablation B: §3.4 callee-saved filtering",
        (
            "Benchmark",
            "avg |call-killed| (on)",
            "avg |call-killed| (off)",
            "optimizable sites (on)",
            "optimizable sites (off)",
        ),
        (
            name,
            average_killed(with_filter),
            average_killed(without),
            survivable_sites(with_filter),
            survivable_sites(without),
        ),
    )
    # Filtering can only shrink the kill sets.
    assert average_killed(with_filter) <= average_killed(without)
    assert survivable_sites(with_filter) >= survivable_sites(without)


HINT_BENCHMARKS = ["go", "perl"]


@pytest.mark.parametrize("name", HINT_BENCHMARKS)
def test_ablation_call_target_hints(benchmark, name):
    """§3.5 hints: precision and optimization impact of target sets."""
    shape = shape_by_name(name).scaled(0.08)
    program = generate_program(
        shape, GeneratorConfig(seed=3, hinted_call_fraction=0.25)
    )
    assert program.call_target_hints, "workload must contain hinted calls"
    stripped = program
    import dataclasses

    stripped = dataclasses.replace(program, call_target_hints={})

    def run_both():
        hinted = AnalysisSession.from_program(program).optimize(verify=True)
        blind = AnalysisSession.from_program(stripped).optimize(verify=True)
        return hinted, blind

    hinted, blind = benchmark.pedantic(run_both, rounds=1, iterations=1)
    record(
        "Ablation C: §3.5 call-target hints",
        (
            "Benchmark",
            "hinted sites",
            "instr removed (hints)",
            "instr removed (no hints)",
            "dyn improvement % (hints)",
            "dyn improvement % (no hints)",
        ),
        (
            name,
            len(program.call_target_hints),
            hinted.instructions_removed,
            blind.instructions_removed,
            100 * hinted.dynamic_improvement,
            100 * blind.dynamic_improvement,
        ),
    )
    assert hinted.behaviour_preserved() and blind.behaviour_preserved()
    # Hints never make the optimizer do worse.
    assert hinted.instructions_removed >= blind.instructions_removed
