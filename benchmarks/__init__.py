"""Benchmark harness regenerating every table and figure of the paper's §4.

Run with::

    pytest benchmarks/ --benchmark-only

Each ``bench_*.py`` file reproduces one table or figure; the resulting
paper-vs-measured tables are printed at the end of the session and
written to ``benchmarks/results/``.
"""
