"""Figure 14: total analysis time as a function of program size.

The paper plots total dataflow time against routines, basic blocks and
instructions across the benchmark suite and observes "low-order
polynomial complexity", well-behaved especially in the number of basic
blocks.  We reproduce it as a controlled sweep: one shape (gcc — the
branchiest SPEC benchmark) scaled geometrically, measuring the total
analysis time at each size, and report the fitted log-log slope (an
exponent near 1 = the near-linear behaviour the paper claims).
"""

import math

import pytest

from benchmarks.conftest import analyze_serial, record

from repro.workloads.generator import GeneratorConfig, generate_program
from repro.workloads.shapes import shape_by_name

SCALES = (0.05, 0.1, 0.2, 0.4)

HEADERS = (
    "Scale",
    "Routines",
    "Blocks",
    "Instructions",
    "Time (s)",
    "us/block",
)

_POINTS = []


@pytest.mark.parametrize("scale", SCALES)
def test_fig14_point(benchmark, scale):
    shape = shape_by_name("gcc").scaled(scale)
    program = generate_program(shape, GeneratorConfig(seed=0))
    analysis = benchmark.pedantic(
        analyze_serial, args=(program,), rounds=1, iterations=1
    )
    blocks = analysis.basic_block_count
    elapsed = analysis.timings.total
    _POINTS.append((blocks, elapsed))
    record(
        "Figure 14: analysis time vs program size (gcc-shaped sweep)",
        HEADERS,
        (
            scale,
            program.routine_count,
            blocks,
            program.instruction_count,
            elapsed,
            1e6 * elapsed / blocks,
        ),
    )
    assert elapsed > 0


def test_fig14_loglog_slope(benchmark):
    """Fit t = c * blocks^k over the sweep; the paper's claim is k ≈ 1."""

    def slope():
        points = sorted(_POINTS)
        if len(points) < 2:
            pytest.skip("sweep points unavailable (run the whole file)")
        xs = [math.log(b) for b, _t in points]
        ys = [math.log(t) for _b, t in points]
        n = len(xs)
        mean_x = sum(xs) / n
        mean_y = sum(ys) / n
        k = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / sum(
            (x - mean_x) ** 2 for x in xs
        )
        return k

    k = benchmark.pedantic(slope, rounds=1, iterations=1)
    record(
        "Figure 14: analysis time vs program size (gcc-shaped sweep)",
        HEADERS,
        (f"log-log slope k={k:.2f}", "", "", "", "", ""),
        note="Paper claim: time grows as a low-order polynomial (near-linear).",
    )
    # Generous bound: near-linear, definitely sub-quadratic.
    assert k < 1.8, f"analysis time scales superlinearly: exponent {k:.2f}"
