"""Table 4: PSG edge reduction provided by branch nodes (§3.6 ablation).

Build each benchmark's PSG twice — with and without branch nodes — and
report the flow-edge reduction and node increase.  The paper's spread
(80% for sqlservr down to 0.3% for winword) is driven by how much
multiway-branch-with-calls-in-loops structure a benchmark has; the
generator reproduces that structural knob from the published targets,
so the measured reductions should correlate strongly with the paper's
column.
"""

import pytest

from benchmarks.conftest import BENCHMARK_NAMES, benchmark_program, record
from repro.cfg.build import build_all_cfgs
from repro.dataflow.local import compute_program_local_sets
from repro.psg.build import PsgConfig, build_psg
from repro.workloads.shapes import shape_by_name

HEADERS = (
    "Benchmark",
    "Edge Reduction %",
    "(paper %)",
    "Node Increase %",
    "(paper %)",
    "Edges with",
    "Edges without",
)


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_table4_row(benchmark, name):
    program, _scaled = benchmark_program(name)
    shape = shape_by_name(name)
    cfgs = build_all_cfgs(program)
    local_sets = compute_program_local_sets(cfgs)

    def build_both():
        with_nodes = build_psg(
            program, cfgs, local_sets, PsgConfig(branch_nodes=True)
        )
        without = build_psg(
            program, cfgs, local_sets, PsgConfig(branch_nodes=False)
        )
        return with_nodes, without

    with_nodes, without = benchmark.pedantic(build_both, rounds=1, iterations=1)
    edge_reduction = 100.0 * (
        1.0 - with_nodes.flow_edge_count / max(1, without.flow_edge_count)
    )
    node_increase = 100.0 * (
        with_nodes.node_count / max(1, without.node_count) - 1.0
    )
    record(
        "Table 4: branch-node ablation (measured vs paper)",
        HEADERS,
        (
            name,
            edge_reduction,
            shape.paper_edge_reduction_pct,
            node_increase,
            shape.paper_node_increase_pct,
            with_nodes.flow_edge_count,
            without.flow_edge_count,
        ),
    )
    # A branch node replaces k×m edges with k+m; since
    # k+m − k·m = 1 − (k−1)(m−1) ≤ 1, each branch node adds at most one
    # net edge in the degenerate single-source/single-target case.
    assert (
        with_nodes.flow_edge_count
        <= without.flow_edge_count + with_nodes.branch_node_count
    )
    assert with_nodes.node_count >= without.node_count
