"""Table 5: comparison of PSG nodes/edges to CFG basic blocks/arcs.

The compactness argument: on average the PSG has ~30% fewer nodes than
the CFG has blocks and ~40% fewer edges than the CFG has arcs, with two
published outliers — acad (so call-dense that PSG nodes *exceed*
blocks: 1.14 nodes/block) and vortex (branch-heavy loops push
edges/arc to 1.03).  Ratios are scale-invariant.
"""

import pytest

from benchmarks.conftest import (
    BENCHMARK_NAMES,
    analyze_serial,
    benchmark_program,
    record,
)

from repro.workloads.shapes import shape_by_name

HEADERS = (
    "Benchmark",
    "PSG Nodes (k)",
    "PSG Edges (k)",
    "Blocks (k)",
    "CFG Arcs (k)",
    "Nodes/Block",
    "(paper)",
    "Edges/Arc",
    "(paper)",
)


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_table5_row(benchmark, name):
    program, _scaled = benchmark_program(name)
    shape = shape_by_name(name)
    analysis = benchmark.pedantic(
        analyze_serial, args=(program,), rounds=1, iterations=1
    )
    psg = analysis.psg
    blocks = analysis.basic_block_count
    arcs = analysis.cfg_arc_count
    nodes_per_block = psg.node_count / blocks
    edges_per_arc = psg.edge_count / arcs
    record(
        "Table 5: PSG vs CFG size (ratios comparable to paper)",
        HEADERS,
        (
            name,
            psg.node_count / 1000.0,
            psg.edge_count / 1000.0,
            blocks / 1000.0,
            arcs / 1000.0,
            nodes_per_block,
            shape.paper_nodes_per_block,
            edges_per_arc,
            shape.paper_edges_per_arc,
        ),
    )
    assert psg.node_count > 0 and arcs > 0
