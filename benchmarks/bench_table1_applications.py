"""Table 1: description of each PC application benchmark.

The paper's Table 1 is a catalog of the eight commercial applications.
This bench records the catalog together with the synthetic stand-in's
size so the reader can see what each substituted workload looks like.
"""

import pytest

from benchmarks.conftest import benchmark_program, record
from repro.workloads.shapes import PC_APP_SHAPES

HEADERS = ("PC App", "Description", "Routines", "Instructions", "Stand-in routines")


@pytest.mark.parametrize("shape", PC_APP_SHAPES, ids=lambda s: s.name)
def test_table1_row(benchmark, shape):
    program, scaled = benchmark.pedantic(
        benchmark_program, args=(shape.name,), rounds=1, iterations=1
    )
    record(
        "Table 1: PC application benchmarks",
        HEADERS,
        (
            shape.name,
            shape.description,
            shape.routines,
            shape.instructions,
            scaled.routines,
        ),
    )
    assert program.routine_count == scaled.routines
