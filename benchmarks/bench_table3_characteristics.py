"""Table 3: benchmark characteristics influencing PSG size.

Per-routine averages of exits, calls, branches, PSG nodes and PSG
edges.  These statistics are scale-invariant (they are per-routine), so
the scaled stand-ins are directly comparable with the paper's full-size
numbers.
"""

import pytest

from benchmarks.conftest import (
    BENCHMARK_NAMES,
    analyze_serial,
    benchmark_program,
    record,
)

from repro.program.model import program_statistics
from repro.workloads.shapes import shape_by_name

HEADERS = (
    "Benchmark",
    "Exits/Rtn",
    "(paper)",
    "Calls/Rtn",
    "(paper)",
    "Branches/Rtn",
    "(paper)",
    "PSG Nodes/Rtn",
    "(paper)",
    "PSG Edges/Rtn",
    "(paper)",
)


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_table3_row(benchmark, name):
    program, _scaled = benchmark_program(name)
    shape = shape_by_name(name)
    analysis = benchmark.pedantic(
        analyze_serial, args=(program,), rounds=1, iterations=1
    )
    stats = program_statistics(program)
    routines = program.routine_count
    exits = sum(len(cfg.exits) for cfg in analysis.cfgs.values()) / routines
    averages = analysis.psg.per_routine_averages()
    record(
        "Table 3: per-routine characteristics (measured vs paper)",
        HEADERS,
        (
            name,
            exits,
            shape.exits_per_routine,
            stats["calls_per_routine"],
            shape.calls_per_routine,
            stats["branches_per_routine"],
            shape.branches_per_routine,
            averages["psg_nodes_per_routine"],
            shape.paper_psg_nodes_per_routine,
            averages["psg_edges_per_routine"],
            shape.paper_psg_edges_per_routine,
        ),
    )
    # Sanity: node accounting identity (entry + exits + 2*calls + branches).
    calls = sum(len(cfg.call_sites) for cfg in analysis.cfgs.values())
    branch_nodes = analysis.psg.branch_node_count
    expected_nodes = routines + round(exits * routines) + 2 * calls + branch_nodes
    assert analysis.psg.node_count == expected_nodes
