"""Parallel solver speedup: wall time vs worker count.

The sharded two-phase solver (:mod:`repro.interproc.parallel`) promises
bit-identical summaries at any worker count; this bench measures what
the workers buy.  For each shape we time a cold whole-program solve at
``--jobs`` 1, 2 and 4 and record the speedup over the single-worker
run, plus the pool utilization the shard metrics report.  The largest
Table-2 shape (gcc) anchors the curve — that is where the shard DAG is
widest and the speedup headroom real.

Honest-numbers caveat: speedup only materializes on a multi-core host.
On a single-CPU machine the pool adds fork/IPC overhead and the curve
is flat or slightly below 1.0x — the bench records whatever it
measures and asserts only the determinism contract (identical
summaries at every point), leaving the ≥1.5x expectation to multicore
CI, gated by ``REPRO_BENCH_REQUIRE_SPEEDUP``.
"""

import multiprocessing
import os
import time

import pytest

from benchmarks.conftest import benchmark_program, record
from repro.api import AnalysisSession
from repro.interproc import dump_summaries

#: Curve anchors: the smallest and largest SPECint95 shapes plus two
#: mid-sized ones (Table 2 row order).
PARALLEL_BENCHMARKS = ["compress", "li", "vortex", "gcc"]
JOBS_CURVE = (1, 2, 4)

HEADERS = (
    "Benchmark",
    "Routines",
    "Shards",
    "Jobs 1 (s)",
    "Jobs 2 (s)",
    "Jobs 4 (s)",
    "Speedup x2",
    "Speedup x4",
    "Util x4",
)

#: Set to "1" on multicore CI to turn the paper-style expectation into
#: an assertion (the container running the tier-1 suite may have a
#: single CPU, where no speedup is physically possible).
REQUIRE_SPEEDUP = os.environ.get("REPRO_BENCH_REQUIRE_SPEEDUP") == "1"


@pytest.mark.parametrize("name", PARALLEL_BENCHMARKS)
def test_parallel_speedup_curve(benchmark, name):
    program, shape = benchmark_program(name)

    def measure():
        times = {}
        results = {}
        shard_count = 0
        utilization = 0.0
        for jobs in JOBS_CURVE:
            session = AnalysisSession.from_program(program)
            start = time.perf_counter()
            analysis = session.analyze(jobs=jobs)
            times[jobs] = time.perf_counter() - start
            results[jobs] = dump_summaries(analysis.result)
            if jobs == max(JOBS_CURVE):
                metrics = session.metrics()
                shard_count = metrics.get("shard_count", 1)
                utilization = metrics.get("utilization", 0.0)
        return times, results, shard_count, utilization

    times, results, shard_count, utilization = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )

    # The determinism contract holds at every point on the curve.
    assert results[2] == results[1]
    assert results[4] == results[1]

    speedup2 = times[1] / max(times[2], 1e-9)
    speedup4 = times[1] / max(times[4], 1e-9)
    record(
        "Parallel solver: cold-solve speedup vs worker count",
        HEADERS,
        (
            name,
            program.routine_count,
            shard_count,
            times[1],
            times[2],
            times[4],
            f"{speedup2:.2f}x",
            f"{speedup4:.2f}x",
            f"{utilization:.0%}",
        ),
        note=(
            f"host CPUs: {multiprocessing.cpu_count()}; summaries verified "
            "bit-identical across jobs 1/2/4. Speedup needs multiple cores "
            "(set REPRO_BENCH_REQUIRE_SPEEDUP=1 on multicore CI to assert "
            ">=1.5x at jobs 4 on gcc)."
        ),
    )

    if REQUIRE_SPEEDUP and name == "gcc":
        assert speedup4 >= 1.5, (
            f"expected >=1.5x at jobs 4 on gcc, measured {speedup4:.2f}x "
            f"on {multiprocessing.cpu_count()} CPUs"
        )


def test_parallel_warm_dirty_shards(benchmark):
    """Warm `--incremental --jobs N`: only dirty shards re-solve."""
    from repro.interproc import dump_cache, load_cache
    from repro.workloads.mutate import first_editable_routine, perturb_routine

    program, _shape = benchmark_program("vortex")
    session = AnalysisSession.from_program(program)
    cold = session.analyze_incremental()
    cache = load_cache(dump_cache(cold.cache))
    edited = perturb_routine(program, first_editable_routine(program))

    def measure():
        start = time.perf_counter()
        warm = AnalysisSession.from_program(edited).analyze_incremental(
            cache=cache, jobs=2
        )
        return warm, time.perf_counter() - start

    warm, seconds = benchmark.pedantic(measure, rounds=1, iterations=1)
    oracle = AnalysisSession.from_program(edited).analyze()
    assert dump_summaries(warm.result) == dump_summaries(oracle.result)
    assert warm.parallel is not None
    record(
        "Parallel solver: cold-solve speedup vs worker count",
        HEADERS,
        (
            "vortex (warm, 1 edit)",
            program.routine_count,
            warm.parallel.shard_count,
            "",
            seconds,
            "",
            "",
            "",
            f"reused {warm.metrics.phase2_reused} routines",
        ),
    )
