"""Separate compilation at fleet scale: the cross-image summary store.

A build farm rarely analyzes one image in isolation — it analyzes a
*family* of linked variants: N applications against one shared library,
or successive builds where only the app changed.  The per-image SUM2
sidecar cannot help across images, but the content-addressed store
(:mod:`repro.interproc.store`) keys every routine by its deep (Merkle)
fingerprint, so byte-identical library routines are solved once for the
whole family.

This bench builds a gcc-shaped family with the real toolchain path
(:mod:`repro.program.linker`): one shared ``mathlib`` object module
sized from the paper's gcc shape, linked against K per-variant ``app``
modules that differ only in their own code.  Every variant is solved
cold, twice — without a store and against one shared store directory —
and the table shows the per-variant cold cost amortizing toward the
incremental floor (CFG build + fingerprinting) as the store warms.

Assertions: summaries are byte-identical with the store enabled,
disabled, and deliberately poisoned, cold and warm-incremental, at
jobs 1/2/4 — always.  The headline ≥2x on variant K vs variant 1 is
asserted under ``REPRO_BENCH_REQUIRE_SPEEDUP=1`` (the speedup is
algorithmic, not multicore, but the gate keeps noisy single-run CI
hosts from flaking the default run).
"""

import os
import random
import shutil
import time

import pytest

from benchmarks.conftest import SPEC_SCALE, record
from repro.api import AnalysisConfig, AnalysisSession
from repro.interproc import dump_cache, dump_summaries, load_cache
from repro.interproc.store import SummaryStore
from repro.program.disasm import disassemble_image
from repro.program.linker import ObjectModule, link_modules
from repro.workloads.shapes import shape_by_name

REQUIRE_SPEEDUP = os.environ.get("REPRO_BENCH_REQUIRE_SPEEDUP") == "1"

#: Linked variants in the family (variant 1 warms the store cold).
VARIANTS = 4

HEADERS = (
    "Variant",
    "Routines",
    "No store (s)",
    "With store (s)",
    "P1 hits",
    "P2 hits",
    "Solved",
    "Speedup vs v1",
)

_SCRATCH = ("t0", "t1", "t2", "t3", "t4", "t5", "a1", "a2")


def _emit_body(module, name, rng, filler, callees):
    """One library/app routine: prologue, looped and branched ALU
    filler, calls to already-emitted routines, epilogue."""
    module.routine(name)
    module.memory("lda", "sp", -16, "sp")
    module.memory("stq", "ra", 0, "sp")
    module.li("t0", rng.randrange(1, 1 << 15))
    for index in range(filler):
        dst = _SCRATCH[rng.randrange(len(_SCRATCH))]
        src = _SCRATCH[rng.randrange(len(_SCRATCH))]
        opcode = ("addq", "subq", "mulq", "bis")[index % 4]
        module.op(opcode, src, rng.randrange(1, 200), dst)
    # A short loop and a diamond give the routine real CFG structure
    # (straight-line code would undersell the PSG/solve stages).
    module.li("t6", 3)
    module.label(f"{name}_loop")
    module.op("subq", "t6", 1, "t6")
    module.op("addq", "t0", "t6", "t0")
    module.branch("bne", "t6", f"{name}_loop")
    module.branch("beq", "t0", f"{name}_zero")
    module.op("addq", "t0", 1, "v0")
    module.br(f"{name}_join")
    module.label(f"{name}_zero")
    module.op("bis", "zero", "t0", "v0")
    module.label(f"{name}_join")
    for callee in callees:
        module.op("bis", "zero", "v0", "a0")
        module.bsr(callee)
    module.op("addq", "v0", 1, "v0")
    module.memory("ldq", "ra", 0, "sp")
    module.memory("lda", "sp", 16, "sp")
    module.ret()


def _build_mathlib(shape):
    """The shared library module, sized from the gcc shape: all but a
    handful of the shape's routines, with the shape's call density."""
    rng = random.Random(0xC0FFEE)
    count = max(8, shape.routines - 4)
    filler = max(4, shape.instructions // shape.routines - 18)
    calls = max(1, min(7, round(shape.calls_per_routine / 1.5)))
    lib = ObjectModule("mathlib")
    names = [f"lib_{index:04d}" for index in range(count)]
    for index, name in enumerate(names):
        callees = (
            rng.sample(names[:index], min(index, calls)) if index else []
        )
        _emit_body(lib, name, rng, filler, callees)
    return lib, names


def _build_app(version, library_names):
    """One per-variant application module; only this module's code
    differs across the family."""
    rng = random.Random(0xA00 + version)
    app = ObjectModule("app")
    roots = library_names[-6:]
    for name in roots:
        app.extern(name)
    app.routine("main", exported=True)
    app.memory("lda", "sp", -16, "sp")
    app.memory("stq", "ra", 0, "sp")
    app.li("a0", 40 + version)  # the per-variant edit
    for index in range(8 + version):
        dst = _SCRATCH[(index + version) % len(_SCRATCH)]
        app.op("addq", "a0", rng.randrange(1, 99), dst)
    for name in roots:
        app.bsr(name)
    app.op("addq", "v0", version, "a0")
    app.output()
    app.memory("ldq", "ra", 0, "sp")
    app.memory("lda", "sp", 16, "sp")
    app.halt()
    return app


def _family():
    shape = shape_by_name("gcc").scaled(SPEC_SCALE)
    lib, names = _build_mathlib(shape)
    programs = []
    for version in range(1, VARIANTS + 1):
        image = link_modules(
            [_build_app(version, names), lib], entry="main"
        )
        programs.append(disassemble_image(image))
    return programs


def _cold(program, config):
    """A timed cold solve through the incremental engine (the path
    that consults the store)."""
    import gc

    session = AnalysisSession.from_program(program, config)
    # The retained per-variant results grow the heap; collect before
    # and pause the collector during the timed region so a
    # generational sweep cannot land inside one variant's solve and
    # skew the family curve.
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        analysis = session.analyze_incremental(jobs=1)
        return analysis, time.perf_counter() - start
    finally:
        gc.enable()


def _poison(root):
    poisoned = 0
    for dirpath, _dirnames, filenames in os.walk(root):
        for filename in filenames:
            with open(os.path.join(dirpath, filename), "r+b") as handle:
                handle.truncate(7)
            poisoned += 1
    return poisoned


def test_store_amortizes_linked_variants(benchmark, tmp_path):
    programs = _family()
    root = str(tmp_path / "store")

    def measure():
        rows = []
        for version, program in enumerate(programs, start=1):
            baseline, base_seconds = _cold(
                program, AnalysisConfig(store="off")
            )
            stored, store_seconds = _cold(
                program, AnalysisConfig(store=SummaryStore(root))
            )
            # Byte-identity with the store enabled vs disabled, always.
            assert dump_summaries(stored.result) == dump_summaries(
                baseline.result
            ), stored.result.diff(baseline.result)
            rows.append(
                (version, program, baseline, base_seconds, stored,
                 store_seconds)
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    first_seconds = rows[0][5]
    last = rows[-1]
    for version, program, baseline, base_seconds, stored, store_seconds in rows:
        metrics = stored.metrics
        record(
            "Summary store: linked-variant family (gcc-shaped)",
            HEADERS,
            (
                f"v{version}",
                program.routine_count,
                round(base_seconds, 3),
                round(store_seconds, 3),
                metrics.phase1_store_hits,
                metrics.phase2_store_hits,
                metrics.phase1_solved,
                round(first_seconds / max(store_seconds, 1e-9), 2),
            ),
            note=(
                "One shared store directory; variant 1 publishes, later "
                "variants re-solve only their own app module.  Set "
                "REPRO_BENCH_REQUIRE_SPEEDUP=1 to assert >=2x on "
                f"variant {VARIANTS} vs variant 1."
            ),
        )

    # Later variants are store-served for the whole shared library.
    library_routines = rows[0][1].routine_count - 1
    for version, program, _baseline, _bs, stored, _ss in rows[1:]:
        assert stored.metrics.phase1_store_hits >= library_routines
        assert stored.metrics.phase2_store_hits >= library_routines
        assert stored.metrics.phase1_solved <= 1

    last_seconds = last[5]
    if REQUIRE_SPEEDUP:
        if first_seconds / max(last_seconds, 1e-9) < 2.0:
            # One retry absorbs a scheduler blip: the store is already
            # warm, so this is the same cold store-served solve.
            _, retry_seconds = _cold(
                last[1], AnalysisConfig(store=SummaryStore(root))
            )
            last_seconds = min(last_seconds, retry_seconds)
        speedup = first_seconds / max(last_seconds, 1e-9)
        assert speedup >= 2.0, (
            f"expected >=2x on variant {VARIANTS} vs variant 1 with a "
            f"warm store, measured {speedup:.2f}x "
            f"({first_seconds:.3f}s -> {last_seconds:.3f}s)"
        )


def test_store_byte_identity_poisoned_warm_and_parallel(tmp_path):
    programs = _family()
    program = programs[0]
    variant = programs[1]
    root = str(tmp_path / "store")
    store_config = AnalysisConfig(store=SummaryStore(root))
    off_config = AnalysisConfig(store="off")

    baseline = AnalysisSession.from_program(
        program, off_config
    ).analyze_incremental(jobs=1)
    expected = dump_summaries(baseline.result)

    # Cold publish, then a poisoned store must be a clean full miss.
    AnalysisSession.from_program(program, store_config).analyze_incremental(
        jobs=1
    )
    assert _poison(root) > 0
    poisoned = AnalysisSession.from_program(
        program, store_config
    ).analyze_incremental(jobs=1)
    assert poisoned.metrics.phase1_store_hits == 0
    assert dump_summaries(poisoned.result) == expected

    # Warm --incremental (SUM2 round-trip) with the store on.
    shutil.rmtree(root)
    cold = AnalysisSession.from_program(
        program, store_config
    ).analyze_incremental(jobs=1)
    warm = AnalysisSession.from_program(
        program, store_config
    ).analyze_incremental(cache=load_cache(dump_cache(cold.cache)), jobs=1)
    assert dump_summaries(warm.result) == expected

    # jobs 1/2/4: parallel runs publish from the merge and never
    # consult, so they are byte-identical by construction — asserted
    # anyway, against the store-less serial result.
    for jobs in (1, 2, 4):
        parallel = AnalysisSession.from_program(
            variant, AnalysisConfig(store=SummaryStore(root))
        ).analyze(jobs=jobs)
        off = AnalysisSession.from_program(variant, off_config).analyze(
            jobs=1
        )
        assert dump_summaries(parallel.result) == dump_summaries(off.result)
