"""The PSG's raison d'être: analysis over the PSG vs the whole-program CFG.

Section 1 motivates the compact representation by the cost of
interprocedural dataflow over the entire CFG ("the time required ... is
typically proportional to the size of the graph being analyzed").  This
bench runs both engines on the same programs, asserts their summaries
agree exactly, and reports the dataflow-time and modeled-memory
comparison.

Note the honest accounting: the PSG pipeline must *build* the PSG
(labeling flow-summary edges costs CFG-subgraph solves), so the
comparison reports both the dataflow-only time (phases 1+2, the cost
that recurs every time summaries are recomputed during optimization)
and the end-to-end time.
"""

import pytest

from benchmarks.conftest import benchmark_program, record
from repro.api import AnalysisSession
from repro.interproc.baseline import analyze_program_baseline

COMPARED = ["compress", "li", "go", "perl", "gcc", "maxeda", "vc"]

HEADERS = (
    "Benchmark",
    "PSG phases (s)",
    "CFG total (s)",
    "PSG total (s)",
    "PSG memory (MB)",
    "CFG memory (MB)",
    "Memory ratio",
    "Summaries equal",
)


@pytest.mark.parametrize("name", COMPARED)
def test_psg_vs_cfg_baseline(benchmark, name):
    program, _scaled = benchmark_program(name)

    def run_both():
        psg = AnalysisSession.from_program(program).analyze()
        cfg = analyze_program_baseline(program)
        return psg, cfg

    psg, cfg = benchmark.pedantic(run_both, rounds=1, iterations=1)
    equal = psg.result.equal_summaries(cfg.result)
    phases = psg.timings.phase1 + psg.timings.phase2
    record(
        "PSG vs whole-program CFG (the paper's motivating comparison)",
        HEADERS,
        (
            name,
            phases,
            cfg.elapsed_seconds,
            psg.timings.total,
            psg.memory_bytes / 1e6,
            cfg.memory_bytes / 1e6,
            cfg.memory_bytes / psg.memory_bytes,
            "yes" if equal else "NO",
        ),
        note=(
            "'PSG phases' is the recurring dataflow cost once the PSG "
            "exists; 'CFG total' re-iterates over every basic block."
        ),
    )
    assert equal, cfg.result.diff(psg.result)[:5]
    # The PSG usually needs less dataflow state, but the paper's own
    # Table 5 shows call-dense outliers (acad: 1.14 PSG nodes per basic
    # block) where the PSG is *not* smaller; maxeda (15.45 calls/routine)
    # behaves the same way here.  Assert only that the PSG stays within
    # a small constant factor.
    assert psg.memory_bytes < 1.5 * cfg.memory_bytes
