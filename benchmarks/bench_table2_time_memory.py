"""Table 2: benchmark size, dataflow analysis time and memory usage.

For every benchmark the paper reports routines, basic blocks,
instructions, total dataflow time (seconds on a 466 MHz Alpha 21164, in
C) and memory (MBytes).  We regenerate the table on the synthetic
stand-ins: sizes are measured from the generated program, time is the
five-stage pipeline's wall clock (Python), and memory follows the
explicit model of ``repro.reporting.memory``.

Absolute times are not expected to match a 1997 C implementation; the
reproduced claims are (a) analysis completes in seconds even for the
largest inputs, (b) the relative ordering of the benchmarks, and
(c) the near-linear growth probed by Figures 14/15.
"""

import pytest

from benchmarks.conftest import (
    BENCHMARK_NAMES,
    analyze_serial,
    benchmark_program,
    record,
    scale_for,
)

from repro.workloads.shapes import shape_by_name

HEADERS = (
    "Benchmark",
    "Routines",
    "Basic Blocks",
    "Instr (k)",
    "Time (s)",
    "Paper s (full size)",
    "Memory (MB)",
    "Paper MB (full size)",
)


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_table2_row(benchmark, name):
    program, _scaled = benchmark_program(name)
    shape = shape_by_name(name)
    analysis = benchmark.pedantic(
        analyze_serial, args=(program,), rounds=1, iterations=1
    )
    record(
        "Table 2: size, dataflow time and memory"
        f" (ours at scale, paper at full size)",
        HEADERS,
        (
            name,
            program.routine_count,
            analysis.basic_block_count,
            program.instruction_count / 1000.0,
            analysis.timings.total,
            shape.paper_time_seconds,
            analysis.memory_bytes / 1e6,
            shape.paper_memory_mbytes,
        ),
        note=(
            "Paper columns are the full-size C/Alpha measurements; ours are "
            "the scaled synthetic stand-ins analyzed in Python."
        ),
    )
    assert analysis.timings.total > 0
    assert analysis.memory_bytes > 0
    # The generated stand-in tracks the scaled shape's size.
    expected = shape.scaled(scale_for(shape))
    assert program.routine_count == expected.routines
