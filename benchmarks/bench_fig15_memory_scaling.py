"""Figure 15: memory usage as a function of program size.

Same sweep as Figure 14, measuring the analysis' modeled memory (the
accounting of ``repro.reporting.memory``).  The paper's claim is the
same low-order polynomial growth; for the memory model the relationship
is structurally linear in nodes/edges/blocks, so the interesting
measurement is bytes-per-block stability across scales.
"""

import math

import pytest

from benchmarks.conftest import analyze_serial, record

from repro.workloads.generator import GeneratorConfig, generate_program
from repro.workloads.shapes import shape_by_name

SCALES = (0.05, 0.1, 0.2, 0.4)

HEADERS = (
    "Scale",
    "Routines",
    "Blocks",
    "Instructions",
    "Memory (MB)",
    "bytes/block",
)

_POINTS = []


@pytest.mark.parametrize("scale", SCALES)
def test_fig15_point(benchmark, scale):
    shape = shape_by_name("gcc").scaled(scale)
    program = generate_program(shape, GeneratorConfig(seed=0))
    analysis = benchmark.pedantic(
        analyze_serial, args=(program,), rounds=1, iterations=1
    )
    blocks = analysis.basic_block_count
    memory = analysis.memory_bytes
    _POINTS.append((blocks, memory))
    record(
        "Figure 15: memory vs program size (gcc-shaped sweep)",
        HEADERS,
        (
            scale,
            program.routine_count,
            blocks,
            program.instruction_count,
            memory / 1e6,
            memory / blocks,
        ),
    )
    assert memory > 0


def test_fig15_loglog_slope(benchmark):
    def slope():
        points = sorted(_POINTS)
        if len(points) < 2:
            pytest.skip("sweep points unavailable (run the whole file)")
        xs = [math.log(b) for b, _m in points]
        ys = [math.log(m) for _b, m in points]
        n = len(xs)
        mean_x = sum(xs) / n
        mean_y = sum(ys) / n
        return sum(
            (x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)
        ) / sum((x - mean_x) ** 2 for x in xs)

    k = benchmark.pedantic(slope, rounds=1, iterations=1)
    record(
        "Figure 15: memory vs program size (gcc-shaped sweep)",
        HEADERS,
        (f"log-log slope k={k:.2f}", "", "", "", "", ""),
        note="Paper claim: memory grows near-linearly with program size.",
    )
    assert 0.8 < k < 1.3, f"memory scaling exponent {k:.2f} is not near-linear"
