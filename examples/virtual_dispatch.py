#!/usr/bin/env python3
"""Virtual dispatch and §3.5 call-target hints.

The paper closes §3.5 with: *"dataflow accuracy can be improved if
additional information is provided to Spike by the compiler or
linker"* about indirect calls.  This example builds a little
object-oriented program — a "shape" dispatch through a vtable-like
pointer table — and shows what the analysis can and cannot prove:

* **without** a hint, the dispatch is an unknown call: the calling
  standard forces the analysis to assume every caller-saved register
  is killed;
* **with** the linker hint listing the two implementations, the
  analysis combines their summaries (MAY by union, MUST by
  intersection) and proves the dispatch touches almost nothing —
  which in turn lets the optimizer keep values in scratch registers
  across the call.

It also demonstrates the summary sidecar: analyze once, persist, and
reload bound to the image fingerprint.

Run with:  python examples/virtual_dispatch.py
"""

import dataclasses

from repro import AnalysisSession, Assembler, disassemble_image, run_program
from repro.interproc.persist import (
    dump_summaries,
    image_fingerprint,
    load_summaries,
)


def build_program():
    asm = Assembler()
    # The "vtable": one slot per implementation of area().
    asm.data_code_pointers("shape_vtable", ["area_circle", "area_square"])

    asm.routine("main", exported=True)
    asm.li("a0", 6)                 # the shape's "radius/side"
    asm.li("a1", 1)                 # which shape (1 = square)
    # dispatch: pv = shape_vtable[a1]
    asm.op("sll", "a1", 3, "t10")
    asm.li("t11", "@shape_vtable")
    asm.op("addq", "t11", "t10", "t11")
    asm.memory("ldq", "pv", 0, "t11")
    # This is the §3.5 hint: the linker knows the table's members.
    asm.jsr("pv", hint_targets=["area_circle", "area_square"])
    asm.op("bis", "zero", "v0", "a0")
    asm.output()
    asm.halt()

    asm.routine("area_circle")      # ~ 3*r*r (integer "pi")
    asm.op("mulq", "a0", "a0", "t0")
    asm.op("mulq", "t0", 3, "v0")
    asm.ret()

    asm.routine("area_square")      # side*side
    asm.op("mulq", "a0", "a0", "v0")
    asm.ret()

    return asm.build()


def main() -> None:
    image = build_program()
    program = disassemble_image(image)

    print("=== With the linker's call-target hint ===")
    hinted = AnalysisSession.from_program(program).analyze()
    site = hinted.summary("main").call_sites[0]
    print(f"dispatch targets: {site.site.targets}")
    print(f"  call-used:    {site.used!r}")
    print(f"  call-defined: {site.defined!r}   (intersection of candidates)")
    print(f"  call-killed:  {site.killed!r}   (union of candidates)")
    from repro import Register

    t5 = Register.parse("t5").index
    print(f"  t5 survives the dispatch: {site.survives_call(t5)}")
    print()

    print("=== Same binary, hint stripped ===")
    blind_program = dataclasses.replace(program, call_target_hints={})
    blind = AnalysisSession.from_program(blind_program).analyze()
    blind_site = blind.summary("main").call_sites[0]
    print(f"dispatch targets: {blind_site.site.targets or '(unknown)'}")
    print(f"  call-killed:  {blind_site.killed!r}")
    print(f"  t5 survives the dispatch: {blind_site.survives_call(t5)}")
    print()

    killed_with = len(site.killed)
    killed_without = len(blind_site.killed)
    print(f"hint shrinks call-killed from {killed_without} to "
          f"{killed_with} registers")
    assert killed_with < killed_without
    assert site.survives_call(t5) and not blind_site.survives_call(t5)

    # Persist the summaries next to the binary, keyed to its content.
    image_bytes = image.to_bytes()
    sidecar = dump_summaries(hinted.result, image_fingerprint(image_bytes))
    reloaded = load_summaries(sidecar, image_fingerprint(image_bytes))
    assert reloaded.equal_summaries(hinted.result)
    print(f"summary sidecar: {len(sidecar)} bytes, reload verified")
    print()

    result = run_program(program)
    print(f"execution: a1=1 selects area_square(6) -> {result.outputs}")
    assert result.outputs == [36]


if __name__ == "__main__":
    main()
