#!/usr/bin/env python3
"""Quickstart: assemble a two-routine program, analyze it, read summaries.

This walks the full post-link pipeline on a tiny program:

1. assemble Alpha-like source into an executable image (bytes);
2. load + disassemble the image (the only thing Spike ever sees);
3. run the interprocedural dataflow analysis;
4. read the per-routine summaries — call-used / call-defined /
   call-killed and live-at-entry / live-at-exit (§2 of the paper);
5. execute the program in the interpreter to see it actually runs.

Run with:  python examples/quickstart.py
"""

from repro import (
    AnalysisSession,
    assemble,
    disassemble_image,
    render_listing,
    run_program,
)
from repro.program.image import ExecutableImage

SOURCE = """
.routine main export
    lda  sp, -16(sp)
    stq  ra, 0(sp)
    li   a0, 5
    bsr  ra, triple_plus_one
    bis  zero, v0, a0
    output                      ; observable: prints 16
    ldq  ra, 0(sp)
    lda  sp, 16(sp)
    halt
.routine triple_plus_one
    addq a0, a0, t0             ; t0 = 2*a0
    addq t0, a0, t0             ; t0 = 3*a0
    addq t0, #1, v0             ; v0 = 3*a0 + 1
    ret  (ra)
"""


def main() -> None:
    # 1-2. Assemble and round-trip through the binary image format:
    # everything downstream works from bytes, exactly like Spike.
    image_bytes = assemble(SOURCE).to_bytes()
    program = disassemble_image(ExecutableImage.from_bytes(image_bytes))

    print("=== Disassembly (what the post-link optimizer sees) ===")
    print(render_listing(program))

    # 3. Interprocedural dataflow analysis (PSG + two phases).
    analysis = AnalysisSession.from_program(program).analyze()

    # 4. Read the summaries.
    print("=== Routine summaries ===")
    for name in program.routine_names():
        summary = analysis.summary(name)
        print(f"{name}:")
        print(f"  call-used    = {summary.call_used!r}")
        print(f"  call-defined = {summary.call_defined!r}")
        print(f"  call-killed  = {summary.call_killed!r}")
        print(f"  live-at-entry= {summary.live_at_entry!r}")
        for block, mask in sorted(summary.exit_live_masks.items()):
            from repro import RegisterSet

            print(f"  live-at-exit[block {block}] = "
                  f"{RegisterSet.from_mask(mask)!r}")
    print()

    # The call site in main carries the callee's summary: the
    # call-summary instruction of §2.
    site = analysis.summary("main").call_sites[0]
    print(f"call to {site.site.callee!r} from main:")
    print(f"  uses {site.used!r}, defines {site.defined!r}, "
          f"kills {site.killed!r}")
    print(f"  live before call: {site.live_before!r}")
    print(f"  live after call:  {site.live_after!r}")
    print()

    # A concrete fact the analysis proves: the callee never touches t5,
    # so a caller could keep a value there across the call (Figure 1c/1d).
    from repro import Register

    t5 = Register.parse("t5").index
    print(f"t5 survives the call: {site.survives_call(t5)}")
    print()

    # 5. Execute.
    result = run_program(program)
    print(f"=== Execution: outputs={result.outputs}, "
          f"steps={result.steps} ===")
    assert result.outputs == [16]


if __name__ == "__main__":
    main()
