#!/usr/bin/env python3
"""Analyze a large application: the paper's headline scenario.

Spike's reason to exist is analyzing *large* PC applications — the
paper's acad has 1.7 million instructions in 340 thousand basic blocks
and still analyzes in 12 seconds.  This example generates a scaled
stand-in of a large application (sqlservr by default — the benchmark
with the most dramatic branch-node impact), runs the analysis, and
reports everything §4 reports:

* program size (routines / blocks / instructions);
* PSG size vs CFG size (the Table-5 compactness ratios);
* the branch-node ablation for this input (Table 4);
* per-stage timing (Figure 13) and modeled memory (Table 2);
* a comparison against the whole-program-CFG baseline, including the
  check that both engines compute identical summaries.

Run with:  python examples/analyze_large_app.py [benchmark] [scale]
e.g.       python examples/analyze_large_app.py acad 0.02
"""

import sys

from repro import AnalysisSession, analyze_program_baseline
from repro.cfg.build import build_all_cfgs
from repro.dataflow.local import compute_program_local_sets
from repro.psg.build import PsgConfig, build_psg
from repro.workloads.generator import GeneratorConfig, generate_program
from repro.workloads.shapes import shape_by_name


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "sqlservr"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.05
    shape = shape_by_name(name).scaled(scale)
    print(f"generating {name} at scale {scale}: {shape.routines} routines, "
          f"~{shape.instructions} instructions ...")
    program = generate_program(shape, GeneratorConfig(seed=0))

    print("analyzing (PSG, two-phase) ...")
    analysis = AnalysisSession.from_program(program).analyze()

    blocks = analysis.basic_block_count
    arcs = analysis.cfg_arc_count
    psg = analysis.psg
    print()
    print(f"routines:        {program.routine_count:>10,}")
    print(f"instructions:    {program.instruction_count:>10,}")
    print(f"basic blocks:    {blocks:>10,}")
    print(f"cfg arcs:        {arcs:>10,}")
    print(f"psg nodes:       {psg.node_count:>10,}   "
          f"({psg.node_count / blocks:.2f} per block; paper avg ~0.7)")
    print(f"psg edges:       {psg.edge_count:>10,}   "
          f"({psg.edge_count / arcs:.2f} per arc; paper avg ~0.6)")
    print(f"memory model:    {analysis.memory_bytes / 1e6:>10.2f} MB")
    print()

    print("stage breakdown (Figure 13):")
    for stage, fraction in analysis.timings.fractions().items():
        seconds = getattr(analysis.timings, stage)
        bar = "#" * int(40 * fraction)
        print(f"  {stage:<16} {seconds:7.3f}s  {fraction:6.1%}  {bar}")
    print(f"  {'total':<16} {analysis.timings.total:7.3f}s")
    print()

    # Branch-node ablation on this input (Table 4).
    cfgs = build_all_cfgs(program)
    local_sets = compute_program_local_sets(cfgs)
    without = build_psg(program, cfgs, local_sets, PsgConfig(branch_nodes=False))
    reduction = 100.0 * (1 - psg.flow_edge_count / max(1, without.flow_edge_count))
    print(f"branch nodes: {psg.branch_node_count} inserted, "
          f"flow edges {without.flow_edge_count:,} -> {psg.flow_edge_count:,} "
          f"({reduction:.1f}% reduction; paper reports "
          f"{shape_by_name(name).paper_edge_reduction_pct}% for {name})")
    print()

    print("whole-program-CFG baseline for comparison ...")
    baseline = analyze_program_baseline(program)
    print(f"  baseline time:   {baseline.elapsed_seconds:7.3f}s "
          f"(PSG total {analysis.timings.total:.3f}s, "
          f"phases only {analysis.timings.phase1 + analysis.timings.phase2:.3f}s)")
    print(f"  baseline memory: {baseline.memory_bytes / 1e6:7.2f} MB "
          f"(PSG {analysis.memory_bytes / 1e6:.2f} MB)")
    agree = analysis.result.equal_summaries(baseline.result)
    print(f"  summaries identical: {agree}")
    assert agree


if __name__ == "__main__":
    main()
