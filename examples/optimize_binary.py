#!/usr/bin/env python3
"""Optimize an executable: the Figure-1 transformations end to end.

This example builds a program that contains, verbatim, the situations
of the paper's Figure 1:

* 1(a) a routine defines a return value no caller reads;
* 1(b) a caller sets up an argument the callee never uses;
* 1(c) a caller-saved register is spilled around a call that provably
  does not kill it;
* 1(d) a value lives in a callee-saved register (paying a save and a
  restore) across a call that leaves caller-saved registers untouched.

It then runs the summary-driven optimization pipeline, shows exactly
which instructions each pass removed, and proves behaviour is preserved
by executing both binaries and comparing dynamic instruction counts.

Run with:  python examples/optimize_binary.py
"""

from repro import (
    assemble,
    disassemble_image,
    AnalysisSession,
    render_listing,
)

SOURCE = """
.routine main export
    lda  sp, -32(sp)
    stq  ra, 0(sp)

    ; Figure 1(b): a1 is dead — helper only reads a0.
    li   a1, 99
    li   a0, 7

    ; Figure 1(c): t5 spilled around the call, but helper kills only
    ; {t0, v0} — the spill pair is removable.
    li   t5, 1000
    stq  t5, 16(sp)
    bsr  ra, helper
    ldq  t5, 16(sp)

    addq t5, v0, a0
    output

    ldq  ra, 0(sp)
    lda  sp, 32(sp)
    halt

.routine helper
    addq a0, #1, t0
    addq t0, t0, v0
    ret  (ra)

.routine keeper
    ; Figure 1(d): s0 holds a value across the call purely because the
    ; compiler had to assume calls kill every caller-saved register.
    ; The summaries prove helper leaves (say) t3 alone, so s0 can be
    ; renamed and the save/restore deleted.
    lda  sp, -16(sp)
    stq  ra, 0(sp)
    stq  s0, 8(sp)
    bis  zero, a0, s0
    li   a0, 3
    bsr  ra, helper
    addq s0, v0, v0
    ldq  s0, 8(sp)
    ldq  ra, 0(sp)
    lda  sp, 16(sp)
    ret  (ra)

.routine uses_keeper export
    lda  sp, -16(sp)
    stq  ra, 0(sp)
    li   a0, 10
    bsr  ra, keeper
    ; Figure 1(a): helper2's v0 result is genuinely used here, but the
    ; extra flag it computes in t9 is not used by anyone.
    bsr  ra, helper2
    ldq  ra, 0(sp)
    lda  sp, 16(sp)
    ret  (ra)

.routine helper2
    addq a0, #1, v0
    cmplt a0, v0, t9        ; Figure 1(a)-style dead definition
    ret  (ra)
"""


def main() -> None:
    program = disassemble_image(assemble(SOURCE))
    print("=== Before ===")
    print(render_listing(program))

    result = AnalysisSession.from_program(program).optimize(verify=True)

    print("=== Pass reports ===")
    for report in result.reports:
        print(
            f"  {report.name:<8} routines changed: {report.routines_changed:>2}  "
            f"deleted: {report.instructions_deleted:>3}  "
            f"rewritten: {report.instructions_rewritten:>3}"
        )
    print()

    print("=== After ===")
    print(render_listing(result.optimized))

    before = result.baseline_run
    after = result.optimized_run
    assert before is not None and after is not None
    print("=== Verification ===")
    print(f"outputs before: {before.outputs}   after: {after.outputs}")
    print(f"behaviour preserved: {result.behaviour_preserved()}")
    print(
        f"static instructions: {result.original.instruction_count} -> "
        f"{result.optimized.instruction_count} "
        f"({result.instructions_removed} removed)"
    )
    print(
        f"dynamic instructions: {before.steps} -> {after.steps} "
        f"({result.dynamic_improvement:.1%} improvement)"
    )

    assert result.behaviour_preserved()
    assert result.instructions_removed >= 4


if __name__ == "__main__":
    main()
