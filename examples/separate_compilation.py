#!/usr/bin/env python3
"""Separate compilation, linking, and why post-link optimization exists.

The paper's Figure 1 insists that "because the calling procedure and
the called procedure may be in separately compiled modules, these
optimizations are not available to a typical compiler."  This example
makes that story concrete:

1. Build two modules independently.  ``app`` spills ``t5`` around an
   external call because, at compile time, it must assume the callee
   kills every caller-saved register.  ``mathlib`` holds a value in
   callee-saved ``s0`` across a call for the symmetric reason.
2. Link them (``repro.program.linker``) into one executable image —
   this is the artifact Spike sees.
3. Run the interprocedural analysis on the *whole* program: the facts
   that were unknowable per-module now exist (the callee kills almost
   nothing).
4. Run the optimizer and watch the compile-time pessimism disappear,
   with behaviour verified by execution.
5. Link a *second* variant of the app against the byte-identical
   mathlib and analyze it through a shared summary store
   (:mod:`repro.interproc.store`): the library routines are never
   re-solved — their summaries are keyed by deep fingerprint, so any
   image that links the same library bytes reuses them.

Run with:  python examples/separate_compilation.py
"""

import tempfile

from repro import AnalysisSession, disassemble_image
from repro.api import AnalysisConfig
from repro.interproc.store import SummaryStore
from repro.program.linker import ObjectModule, link_modules


def build_app(version: int = 1) -> ObjectModule:
    app = ObjectModule("app")
    app.extern("scale")
    app.routine("main", exported=True)
    app.memory("lda", "sp", -32, "sp")
    app.memory("stq", "ra", 0, "sp")
    app.li("t5", 100 * version)
    # Compile-time pessimism: 'scale' lives in another module, so the
    # compiler spilled t5 around the call.
    app.memory("stq", "t5", 16, "sp")
    app.li("a0", 3 + version)
    app.bsr("scale")
    app.memory("ldq", "t5", 16, "sp")
    app.op("addq", "t5", "v0", "a0")
    app.output()
    app.memory("ldq", "ra", 0, "sp")
    app.memory("lda", "sp", 32, "sp")
    app.li("v0", 0)
    app.halt()
    return app


def build_mathlib() -> ObjectModule:
    lib = ObjectModule("mathlib")
    lib.extern("offset")  # calls back into another module
    lib.routine("scale")
    lib.memory("lda", "sp", -16, "sp")
    lib.memory("stq", "ra", 0, "sp")
    lib.memory("stq", "s0", 8, "sp")
    # Same pessimism on the library side: the value must survive the
    # external call, so the compiler parked it in callee-saved s0.
    lib.op("mulq", "a0", 3, "s0")
    lib.op("bis", "zero", "s0", "a0")
    lib.bsr("offset")
    lib.op("addq", "s0", "v0", "v0")
    lib.memory("ldq", "s0", 8, "sp")
    lib.memory("ldq", "ra", 0, "sp")
    lib.memory("lda", "sp", 16, "sp")
    lib.ret()
    return lib


def build_util() -> ObjectModule:
    util = ObjectModule("util")
    util.routine("offset")
    util.op("addq", "a0", 7, "v0")  # touches only a0/v0
    util.ret()
    return util


def main() -> None:
    image = link_modules([build_app(), build_mathlib(), build_util()],
                         entry="main")
    program = disassemble_image(image)
    print(f"linked image: {program.routine_count} routines from 3 modules, "
          f"{program.instruction_count} instructions")
    print()

    analysis = AnalysisSession.from_program(program).analyze()
    scale_site = analysis.summary("main").call_sites[0]
    offset_site = analysis.summary("scale").call_sites[0]
    print("facts that did not exist before linking:")
    print(f"  call to scale  kills only {scale_site.killed!r}")
    print(f"  call to offset kills only {offset_site.killed!r}")
    print()

    result = AnalysisSession.from_program(program).optimize(verify=True)
    print("optimizer reports:")
    for report in result.reports:
        print(f"  {report.name:<10} deleted {report.instructions_deleted:>2}  "
              f"rewritten {report.instructions_rewritten:>2}")
    before = result.baseline_run
    after = result.optimized_run
    print()
    print(f"outputs unchanged: {before.outputs} -> {after.outputs}")
    print(f"static:  {result.original.instruction_count} -> "
          f"{result.optimized.instruction_count} instructions")
    print(f"dynamic: {before.steps} -> {after.steps} "
          f"({result.dynamic_improvement:.0%} fewer executed)")
    assert result.behaviour_preserved()
    # The t5 spill is gone — and so is main's ra save/restore (main
    # ends in halt, so ra is dead after its only call).
    main_ops = [i.opcode.mnemonic for i in result.optimized.routine("main").instructions]
    assert main_ops.count("stq") + main_ops.count("ldq") == 0
    from repro.isa.registers import Register

    s0 = Register.parse("s0").index
    for instruction in result.optimized.routine("scale").instructions:
        assert s0 not in instruction.uses() | instruction.defs()
    print()
    print("cross-module spill and save/restore eliminated — the paper's "
          "Figure 1, via a real link step.")

    # ------------------------------------------------------------------
    # Separate compilation at scale: a second linked variant
    # ------------------------------------------------------------------
    print()
    print("now link a second app variant against the same mathlib:")
    with tempfile.TemporaryDirectory() as store_dir:
        store = SummaryStore(store_dir)
        for version in (1, 2):
            image = link_modules(
                [build_app(version), build_mathlib(), build_util()],
                entry="main",
            )
            variant = disassemble_image(image)
            session = AnalysisSession.from_program(
                variant, AnalysisConfig(store=store)
            )
            analysis = session.analyze_incremental()
            metrics = analysis.metrics
            print(f"  variant {version}: "
                  f"solved {metrics.phase1_solved} routines, "
                  f"store hits phase1={metrics.phase1_store_hits} "
                  f"phase2={metrics.phase2_store_hits}")
        stats = store.stats()
        print(f"  store: {stats['triples']} triples, "
              f"{stats['summaries']} summaries, {stats['bytes']} bytes")
        assert metrics.phase1_store_hits == 2  # scale and offset reused
        assert metrics.phase1_solved == 1      # only the edited app
    print("the shared library was analyzed once for the whole family — "
          "summaries are keyed by deep (Merkle) routine fingerprint, "
          "not by image.")


if __name__ == "__main__":
    main()
