#!/usr/bin/env python3
"""Explore a binary's interprocedural structure with the library API.

A small "binary archaeology" tool built on the public API: it loads an
executable image (or generates a benchmark stand-in), then reports

* the call graph with resolved, indirect and opaque call sites;
* strongly connected components (recursion groups);
* which routines are externally callable and why (exported /
  address-taken / program entry);
* for a chosen routine: its complete dataflow summary and what every
  call inside it uses, defines, and kills.

Run with:  python examples/callgraph_explorer.py [routine]
"""

import sys

from repro import AnalysisSession
from repro.workloads.generator import GeneratorConfig, generate_benchmark


def main() -> None:
    program, _shape = generate_benchmark(
        "li", scale=0.08, config=GeneratorConfig(seed=42)
    )
    analysis = AnalysisSession.from_program(program).analyze()
    graph = analysis.call_graph

    print(f"program: {program.routine_count} routines, "
          f"{program.instruction_count} instructions")
    print()

    print("=== Call sites ===")
    direct = indirect = opaque = 0
    for name in program.routine_names():
        for site in graph.call_sites_of(name):
            if site.callee is None:
                opaque += 1
            elif site.indirect:
                indirect += 1
            else:
                direct += 1
    print(f"direct: {direct}, resolved-indirect: {indirect}, "
          f"unknown-target: {opaque}")
    print()

    print("=== Recursion groups (SCCs with more than one member or a "
          "self-loop) ===")
    for component in graph.strongly_connected_components():
        is_recursive = len(component) > 1 or component[0] in (
            graph.callees_of(component[0])
        )
        if is_recursive:
            print(f"  {sorted(component)}")
    print()

    print("=== Externally callable routines ===")
    for name in sorted(graph.externally_callable):
        reasons = []
        if name == program.entry:
            reasons.append("program entry")
        if program.routine(name).exported:
            reasons.append("exported")
        if name in graph.address_taken:
            reasons.append("address taken")
        print(f"  {name:<12} ({', '.join(reasons) or 'unknown caller'})")
    print()

    target = sys.argv[1] if len(sys.argv) > 1 else None
    if target is None:
        # Pick the routine with the most call sites.
        target = max(
            program.routine_names(),
            key=lambda n: len(graph.call_sites_of(n)),
        )
    summary = analysis.summary(target)
    print(f"=== Summary of {target!r} ===")
    print(f"  call-used:     {summary.call_used!r}")
    print(f"  call-defined:  {summary.call_defined!r}")
    print(f"  call-killed:   {summary.call_killed!r}")
    print(f"  live-at-entry: {summary.live_at_entry!r}")
    print(f"  saved/restored callee-saved: {summary.saved_restored!r}")
    print(f"  callers: {[caller for caller, _s in graph.callers_of(target)]}")
    print()
    print(f"  call sites inside {target!r}:")
    for site in summary.call_sites:
        callee = site.site.callee or "<unknown>"
        print(f"    block {site.site.block:>3} -> {callee:<12} "
              f"uses {site.used!r} defines {site.defined!r}")


if __name__ == "__main__":
    main()
