"""Tests for the RoutineSummary / SummarySet API."""

import pytest

from repro.cfg.cfg import CallSite, ExitKind
from repro.dataflow.regset import mask_of
from tests.facade import analyze_program
from repro.interproc.summaries import (
    SummarySet,
    CallSiteSummary,
    RoutineSummary,
)


def _site(block=1, callee="g"):
    return CallSite(
        block=block, instruction_index=3, targets=(callee,), indirect=False
    )


def _summary(name="f", **overrides):
    fields = dict(
        name=name,
        call_used_mask=mask_of(["a0"]),
        call_defined_mask=mask_of(["v0"]),
        call_killed_mask=mask_of(["v0", "t0"]),
        live_at_entry_mask=mask_of(["a0", "ra"]),
        exit_live_masks={2: mask_of(["v0"])},
        exit_kinds={2: ExitKind.RETURN},
        call_sites=[
            CallSiteSummary(
                site=_site(),
                used_mask=mask_of(["a0"]),
                defined_mask=mask_of(["v0"]),
                killed_mask=mask_of(["v0", "t1"]),
                live_before_mask=mask_of(["a0"]),
                live_after_mask=mask_of(["v0"]),
            )
        ],
    )
    fields.update(overrides)
    return RoutineSummary(**fields)


class TestRoutineSummary:
    def test_register_set_accessors(self):
        summary = _summary()
        assert summary.call_used.names() == {"a0"}
        assert summary.call_defined.names() == {"v0"}
        assert summary.call_killed.names() == {"v0", "t0"}
        assert summary.live_at_entry.names() == {"a0", "ra"}

    def test_live_at_exit(self):
        summary = _summary()
        assert summary.live_at_exit(2).names() == {"v0"}
        with pytest.raises(KeyError):
            summary.live_at_exit(99)

    def test_live_at_any_exit_only_returns(self):
        summary = _summary(
            exit_live_masks={2: mask_of(["v0"]), 5: mask_of(["t7"])},
            exit_kinds={2: ExitKind.RETURN, 5: ExitKind.HALT},
        )
        assert summary.live_at_any_exit_mask == mask_of(["v0"])

    def test_site_summary_lookup(self):
        summary = _summary()
        assert summary.site_summary(1).site.callee == "g"
        with pytest.raises(KeyError):
            summary.site_summary(42)

    def test_site_effects_kill_is_defined_not_killed(self):
        effects = _summary().site_effects()
        assert effects[1].gen == mask_of(["a0"])
        assert effects[1].kill == mask_of(["v0"])  # MUST-DEF only

    def test_return_exit_live(self):
        summary = _summary(
            exit_live_masks={2: mask_of(["v0"]), 5: 0},
            exit_kinds={2: ExitKind.RETURN, 5: ExitKind.HALT},
        )
        assert summary.return_exit_live() == {2: mask_of(["v0"])}


class TestCallSiteSummary:
    def test_survives_call(self):
        site = _summary().call_sites[0]
        from repro.isa.registers import Register

        assert site.survives_call(Register.parse("t5").index)
        assert not site.survives_call(Register.parse("t1").index)

    def test_register_set_accessors(self):
        site = _summary().call_sites[0]
        assert site.used.names() == {"a0"}
        assert site.defined.names() == {"v0"}
        assert site.live_before.names() == {"a0"}
        assert site.live_after.names() == {"v0"}


class TestSummarySet:
    def test_container_protocol(self):
        result = SummarySet({"f": _summary()})
        assert "f" in result
        assert result["f"].name == "f"
        assert result.routine("f") is result["f"]
        assert [s.name for s in result] == ["f"]

    def test_equal_summaries_positive(self):
        a = SummarySet({"f": _summary()})
        b = SummarySet({"f": _summary()})
        assert a.equal_summaries(b)
        assert a.diff(b) == []

    def test_equal_summaries_detects_mask_change(self):
        a = SummarySet({"f": _summary()})
        b = SummarySet({"f": _summary(call_used_mask=mask_of(["a1"]))})
        assert not a.equal_summaries(b)
        assert any("call_used" in line for line in a.diff(b))

    def test_equal_summaries_detects_missing_routine(self):
        a = SummarySet({"f": _summary()})
        b = SummarySet({})
        assert not a.equal_summaries(b)
        assert any("missing" in line for line in a.diff(b))

    def test_equal_summaries_detects_site_change(self):
        changed = _summary()
        site = changed.call_sites[0]
        modified = CallSiteSummary(
            site=site.site,
            used_mask=site.used_mask,
            defined_mask=site.defined_mask,
            killed_mask=site.killed_mask,
            live_before_mask=mask_of(["t9"]),
            live_after_mask=site.live_after_mask,
        )
        a = SummarySet({"f": _summary()})
        b = SummarySet({"f": _summary(call_sites=[modified])})
        assert not a.equal_summaries(b)
        assert any("live_before" in line for line in a.diff(b))

    def test_exit_live_difference_detected(self):
        a = SummarySet({"f": _summary()})
        b = SummarySet(
            {"f": _summary(exit_live_masks={2: mask_of(["t2"])})}
        )
        assert not a.equal_summaries(b)


class TestSummariesFromAnalysis:
    def test_every_routine_summarized(self, small_benchmark):
        analysis = analyze_program(small_benchmark)
        assert set(analysis.result.summaries) == set(
            small_benchmark.routine_names()
        )

    def test_call_sites_in_block_order(self, small_benchmark):
        analysis = analyze_program(small_benchmark)
        for name in small_benchmark.routine_names():
            summary = analysis.summary(name)
            cfg_sites = [s.block for s in analysis.cfgs[name].call_sites]
            assert [s.site.block for s in summary.call_sites] == cfg_sites

    def test_must_def_subset_of_may_def_everywhere(self, small_benchmark):
        """call-defined ⊆ call-killed except for never-returning paths."""
        analysis = analyze_program(small_benchmark)
        for summary in analysis.result:
            exit_kinds = set(summary.exit_kinds.values())
            if exit_kinds == {ExitKind.RETURN}:
                assert (
                    summary.call_defined_mask & ~summary.call_killed_mask == 0
                ), summary.name
