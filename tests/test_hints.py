"""Tests for §3.5 call-target hints (multi-target indirect calls).

The paper's last paragraph of §3.5: "dataflow accuracy can be improved
if additional information is provided to Spike by the compiler or
linker ... about the registers assumed to be call-used, call-killed,
and call-defined by each indirect call."  We implement the natural form
of that information — a linker-provided *target set* per indirect call
— and combine the candidate callees' summaries (MAY by union, MUST by
intersection) instead of assuming the calling-standard worst case.
"""

import pytest

from repro.cfg.build import build_cfg
from repro.dataflow.regset import RegisterSet, mask_of
from tests.facade import analyze_program
from repro.interproc.baseline import analyze_program_baseline
from repro.program.asm import Assembler
from repro.program.disasm import disassemble_image
from repro.program.image import CallTargetHint, ExecutableImage, ImageFormatError
from repro.program.rewrite import apply_edits, program_to_image
from repro.sim.interpreter import run_program


def _dispatch_program(with_dead_prefix: bool = False):
    """main dispatches between two callees through a hinted jsr.

    ``alpha`` uses a0 and defines v0; ``beta`` uses a1 and defines both
    v0 and t2.  The hint lets the analysis prove the dispatch uses
    {a0, a1}, must-defines {v0} (the intersection) and may-kill
    {v0, t2} (the union).  ``with_dead_prefix`` plants a dead
    definition at main's index 0 so rewrite tests have something safe
    to delete.
    """
    asm = Assembler()
    asm.data_code_pointers("vt", ["alpha", "beta"])
    asm.routine("main", exported=True)
    if with_dead_prefix:
        asm.li("t9", 7)
    asm.li("a0", 3)
    asm.li("a1", 4)
    asm.op("and", "a0", 1, "t10")
    asm.op("sll", "t10", 3, "t10")
    asm.li("t11", "@vt")
    asm.op("addq", "t11", "t10", "t11")
    asm.memory("ldq", "pv", 0, "t11")
    asm.jsr("pv", hint_targets=["alpha", "beta"])
    asm.op("bis", "zero", "v0", "a0")
    asm.output()
    asm.halt()
    asm.routine("alpha")
    asm.op("addq", "a0", 1, "v0")
    asm.ret()
    asm.routine("beta")
    asm.op("addq", "a1", 2, "v0")
    asm.op("addq", "v0", 1, "t2")
    asm.ret()
    return disassemble_image(asm.build())


class TestImageFormat:
    def test_hint_roundtrip(self):
        program = _dispatch_program()
        image = program_to_image(program)
        restored = ExecutableImage.from_bytes(image.to_bytes())
        assert restored.call_target_hints == image.call_target_hints
        assert len(restored.call_target_hints) == 1
        assert len(restored.call_target_hints[0].targets) == 2

    def test_empty_hint_rejected(self):
        with pytest.raises(ImageFormatError):
            CallTargetHint(0x10000, ())

    def test_hint_to_non_routine_rejected(self):
        program = _dispatch_program()
        image = program_to_image(program)
        bad = CallTargetHint(
            image.symbols[0].address, (image.symbols[0].address + 4,)
        )
        image.call_target_hints.append(bad)
        with pytest.raises(ImageFormatError, match="not a routine entry"):
            image.validate()


class TestCfg:
    def test_hinted_site_has_target_set(self):
        program = _dispatch_program()
        cfg = build_cfg(program, program.routine("main"))
        site = cfg.call_sites[0]
        assert site.indirect
        assert set(site.targets) == {"alpha", "beta"}
        assert site.callee is None          # no *unique* target
        assert not site.is_unknown          # but not unknown either


class TestDataflow:
    def test_summaries_combine_candidates(self):
        program = _dispatch_program()
        analysis = analyze_program(program)
        site = analysis.summary("main").call_sites[0]
        # MAY-USE: union of {a0, ra} and {a1, ra}.
        assert {"a0", "a1", "ra"} <= site.used.names()
        # MUST-DEF: intersection -> just v0.
        assert site.defined.names() == {"v0"}
        # MAY-DEF: union -> v0 and beta's t2.
        assert {"v0", "t2"} <= site.killed.names()
        # Crucially more precise than the unknown-call assumption: the
        # dispatch does NOT kill, say, t5.
        t5 = mask_of(["t5"])
        assert site.killed_mask & t5 == 0

    def test_hint_more_precise_than_unknown(self):
        """Dropping the hint degrades the very facts §3.5 promises."""
        program = _dispatch_program()
        stripped = disassemble_image(program_to_image(program))
        stripped.call_target_hints.clear()
        with_hint = analyze_program(program)
        without = analyze_program(stripped)
        hinted_site = with_hint.summary("main").call_sites[0]
        unknown_site = without.summary("main").call_sites[0]
        assert hinted_site.killed_mask & ~unknown_site.killed_mask == 0
        assert bin(unknown_site.killed_mask).count("1") > bin(
            hinted_site.killed_mask
        ).count("1")

    def test_liveness_flows_to_both_callees(self):
        """main's post-call use of v0 makes v0 live at BOTH candidates'
        exits (phase 2's return copies follow the hint)."""
        program = _dispatch_program()
        analysis = analyze_program(program)
        for callee in ("alpha", "beta"):
            summary = analysis.summary(callee)
            assert "v0" in RegisterSet.from_mask(
                summary.live_at_any_exit_mask
            ).names()

    def test_engines_agree_on_hinted_programs(self):
        program = _dispatch_program()
        psg = analyze_program(program)
        baseline = analyze_program_baseline(program)
        assert psg.result.equal_summaries(baseline.result), (
            baseline.result.diff(psg.result)[:5]
        )


class TestExecutionAndRewrite:
    def test_dispatch_runs(self):
        program = _dispatch_program()
        result = run_program(program)
        # a0=3 -> index 1 -> beta: v0 = a1 + 2 = 6.
        assert result.outputs == [6]

    def test_hints_survive_rewriting(self):
        program = _dispatch_program(with_dead_prefix=True)
        cfg_site = build_cfg(program, program.routine("main")).call_sites[0]
        # Shift everything by deleting the dead prefix instruction.
        edited = apply_edits(program, {"main": {0: None}})
        new_site = build_cfg(edited, edited.routine("main")).call_sites[0]
        assert set(new_site.targets) == set(cfg_site.targets)
        assert run_program(edited).observable == run_program(program).observable
        assert edited.call_target_hints != program.call_target_hints  # moved

    def test_hints_survive_image_roundtrip(self):
        program = _dispatch_program()
        reloaded = disassemble_image(program_to_image(program))
        assert reloaded.call_target_hints == program.call_target_hints


class TestGeneratorHints:
    def test_generated_hinted_calls_analyzed_and_run(self):
        from repro.workloads.generator import GeneratorConfig, generate_benchmark

        program, _shape = generate_benchmark(
            "go", scale=0.1,
            config=GeneratorConfig(seed=9, hinted_call_fraction=0.25),
        )
        assert program.call_target_hints
        psg = analyze_program(program)
        baseline = analyze_program_baseline(program)
        assert psg.result.equal_summaries(baseline.result)
        assert run_program(program).halted
