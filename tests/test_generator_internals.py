"""Tests for the synthetic generator's internal planning and emission."""

import random

import pytest

from repro.workloads.generator import (
    GeneratorConfig,
    _Plan,
    _estimate_instructions,
    _plan_program,
    generate_image,
    generate_program,
)
from repro.workloads.shapes import shape_by_name


def plan(shape_name="li", scale=0.1, seed=0, **config_overrides):
    shape = shape_by_name(shape_name).scaled(scale)
    config = GeneratorConfig(seed=seed, **config_overrides)
    rng = random.Random(seed)
    return _plan_program(shape, config, rng)


class TestPlanning:
    def test_plan_count_excludes_main(self):
        shape = shape_by_name("li").scaled(0.1)
        plans, _pool = plan()
        assert len(plans) == shape.routines - 1

    def test_levels_form_a_dag_with_entry_routines(self):
        plans, _pool = plan()
        by_name = {p.name: p for p in plans}
        entry_level = [p for p in plans if p.level == 1]
        assert len(entry_level) >= 3  # main needs callees
        for p in plans:
            for target, kind, _hint in p.calls:
                if kind == "self":
                    assert target == p.name
                else:
                    assert by_name[target].level > p.level

    def test_deepest_level_routines_are_leaves(self):
        plans, _pool = plan()
        deepest = max(p.level for p in plans)
        for p in plans:
            if p.level == deepest:
                assert not p.calls

    def test_opaque_targets_collected(self):
        plans, pool = plan(opaque_call_fraction=0.5, seed=3)
        opaque_calls = [
            c for p in plans for c in p.calls if c[1] == "opaque"
        ]
        assert opaque_calls
        for target, _kind, _hint in opaque_calls:
            assert target in pool

    def test_opaque_targets_marked_exported(self):
        plans, pool = plan(opaque_call_fraction=0.5, seed=3)
        by_name = {p.name: p for p in plans}
        for name in pool:
            assert by_name[name].exported

    def test_hinted_calls_carry_targets(self):
        plans, _pool = plan(hinted_call_fraction=0.5, seed=4)
        hinted = [c for p in plans for c in p.calls if c[1] == "hinted"]
        assert hinted
        for target, _kind, hint in hinted:
            assert target in hint

    def test_switch_probability_tracks_reduction(self):
        low_plans, _ = plan("winword", scale=0.02)   # 0.3% reduction
        high_plans, _ = plan("sqlservr", scale=0.05)  # 80% reduction
        low = sum(1 for p in low_plans if p.switch_ways)
        high = sum(1 for p in high_plans if p.switch_ways)
        assert high / max(1, len(high_plans)) > low / max(1, len(low_plans))

    def test_estimate_counts_structure(self):
        empty = _Plan(name="x", level=1)
        with_calls = _Plan(
            name="y", level=1, calls=[("z", "bsr", ())] * 3
        )
        assert _estimate_instructions(with_calls) > _estimate_instructions(empty)


class TestEmissionInvariants:
    def test_budget_guard_bounds_execution(self):
        """Smaller initial budgets run strictly less work."""
        from repro.sim.interpreter import run_program

        shape = shape_by_name("go").scaled(0.08)
        small = generate_program(shape, GeneratorConfig(seed=1, initial_budget=3))
        big = generate_program(shape, GeneratorConfig(seed=1, initial_budget=9))
        steps_small = run_program(small).steps
        steps_big = run_program(big, max_steps=20_000_000).steps
        assert steps_small < steps_big

    def test_scratch_pool_untouched(self):
        """t3 and t8 are reserved for the reallocation pass."""
        from repro.isa.registers import Register

        t3 = Register.parse("t3").index
        t8 = Register.parse("t8").index
        program = generate_program(
            shape_by_name("li").scaled(0.1), GeneratorConfig(seed=2)
        )
        for routine in program:
            for instruction in routine:
                touched = instruction.uses() | instruction.defs()
                assert t3 not in touched
                assert t8 not in touched

    def test_exit_counts_near_shape(self):
        from repro.cfg.build import build_all_cfgs

        shape = shape_by_name("m88ksim").scaled(0.2)  # 1.75 exits/routine
        program = generate_program(shape, GeneratorConfig(seed=5))
        cfgs = build_all_cfgs(program)
        exits = sum(len(c.exits) for c in cfgs.values()) / len(cfgs)
        assert exits == pytest.approx(shape.exits_per_routine, abs=0.45)

    def test_conforming_frames(self):
        """Every generated routine with a frame restores sp exactly."""
        from repro.sim.interpreter import Interpreter

        program = generate_program(
            shape_by_name("perl").scaled(0.05), GeneratorConfig(seed=6)
        )
        interpreter = Interpreter(program, trace_calls=True)
        result = interpreter.run()
        assert result.halted
        from repro.isa.registers import STACK_POINTER

        sp_bit = 1 << STACK_POINTER
        for record in result.call_records:
            assert not (record.changed & sp_bit), record.callee

    def test_image_round_trip(self):
        shape = shape_by_name("compress").scaled(0.1)
        image = generate_image(shape, GeneratorConfig(seed=8))
        from repro.program.image import ExecutableImage

        assert ExecutableImage.from_bytes(image.to_bytes()).text == image.text
