"""The cross-image summary store (:mod:`repro.interproc.store`).

Four layers of guarantees:

* **key derivation** — deep fingerprints are genuine Merkle hashes:
  a callee edit propagates to every transitive caller, two callees
  swapping bodies changes keys (pair binding), and the context digest
  binds exactly the result-changing configuration knobs;
* **record robustness** — both record grades survive truncation at
  every byte offset and mutation of every byte with a clean
  :class:`SummaryFormatError` (a store read turns that into a miss);
* **byte-identity** — analysis results are identical with the store
  enabled, disabled, or poisoned, cold and warm, serial and parallel,
  including concurrent multiprocess readers and writers over one
  store directory;
* **operations** — hit/miss/write/evict counters, LRU GC under a byte
  budget, stale temp sweeping, and the ``spike-analyze store`` CLI.
"""

import multiprocessing
import os

import pytest

from repro.api import AnalysisConfig, AnalysisSession
from repro.cli import EXIT_OK, EXIT_USAGE, main
from repro.dataflow.equations import SummaryTriple
from repro.interproc.persist import SummaryFormatError, dump_summaries
from repro.interproc.store import (
    STORE_ENV_VAR,
    SUFFIX_SUMMARY,
    SUFFIX_TRIPLE,
    SummaryStore,
    config_digest,
    deep_fingerprints,
    dump_summary_record,
    dump_triple_record,
    load_summary_record,
    load_triple_record,
    phase2_component_key,
    resolve_store,
    routine_record_key,
)
from repro.obs.metrics import REGISTRY
from repro.program.disasm import disassemble_image
from repro.program.linker import ObjectModule, link_modules
from tests.facade import analyze_incremental, analyze_program


# ----------------------------------------------------------------------
# Linked variants: two apps against one byte-identical mathlib
# ----------------------------------------------------------------------


def _build_app(version: int) -> ObjectModule:
    app = ObjectModule("app")
    app.extern("scale")
    app.routine("main", exported=True)
    app.memory("lda", "sp", -32, "sp")
    app.memory("stq", "ra", 0, "sp")
    app.li("a0", 4 + version)  # the only cross-variant difference
    app.bsr("scale")
    app.op("addq", "v0", version, "a0")
    app.output()
    app.memory("ldq", "ra", 0, "sp")
    app.memory("lda", "sp", 32, "sp")
    app.halt()
    return app


def _build_mathlib() -> ObjectModule:
    lib = ObjectModule("mathlib")
    lib.extern("offset")
    lib.routine("scale")
    lib.memory("lda", "sp", -16, "sp")
    lib.memory("stq", "ra", 0, "sp")
    lib.memory("stq", "s0", 8, "sp")
    lib.op("mulq", "a0", 3, "s0")
    lib.op("bis", "zero", "s0", "a0")
    lib.bsr("offset")
    lib.op("addq", "s0", "v0", "v0")
    lib.memory("ldq", "s0", 8, "sp")
    lib.memory("ldq", "ra", 0, "sp")
    lib.memory("lda", "sp", 16, "sp")
    lib.ret()
    return lib


def _build_util() -> ObjectModule:
    util = ObjectModule("util")
    util.routine("offset")
    util.op("addq", "a0", 7, "v0")
    util.ret()
    return util


def _variant_program(version: int):
    image = link_modules(
        [_build_app(version), _build_mathlib(), _build_util()], entry="main"
    )
    return disassemble_image(image)


@pytest.fixture(scope="module")
def variant1():
    return _variant_program(1)


@pytest.fixture(scope="module")
def variant2():
    return _variant_program(2)


def _result_bytes(analysis) -> bytes:
    return dump_summaries(analysis.result)


# ----------------------------------------------------------------------
# Key derivation
# ----------------------------------------------------------------------


class _Graph:
    """callees_of over a plain edge dict (the only CallGraph surface
    deep_fingerprints touches)."""

    def __init__(self, edges):
        self.edges = edges

    def callees_of(self, name):
        return self.edges.get(name, [])


class _Cond:
    def __init__(self, components):
        self.components = components


def _deep(fps, components, edges, context=7):
    return deep_fingerprints(fps, _Cond(components), _Graph(edges), context)


class TestDeepFingerprints:
    COMPONENTS = [["leaf"], ["mid"], ["top"]]
    EDGES = {"top": ["mid"], "mid": ["leaf"]}

    def test_callee_edit_propagates_to_all_callers(self):
        base = _deep({"leaf": 1, "mid": 2, "top": 3}, self.COMPONENTS, self.EDGES)
        edited = _deep({"leaf": 9, "mid": 2, "top": 3}, self.COMPONENTS, self.EDGES)
        assert edited["leaf"] != base["leaf"]
        assert edited["mid"] != base["mid"]
        assert edited["top"] != base["top"]

    def test_caller_edit_leaves_callees_alone(self):
        base = _deep({"leaf": 1, "mid": 2, "top": 3}, self.COMPONENTS, self.EDGES)
        edited = _deep({"leaf": 1, "mid": 2, "top": 9}, self.COMPONENTS, self.EDGES)
        assert edited["leaf"] == base["leaf"]
        assert edited["mid"] == base["mid"]
        assert edited["top"] != base["top"]

    def test_body_swap_changes_caller_key(self):
        # x and y swap fingerprints: the multiset {1, 2} is unchanged,
        # so only (name, fingerprint) *pair* binding separates these.
        components = [["x"], ["y"], ["top"]]
        edges = {"top": ["x", "y"]}
        base = _deep({"x": 1, "y": 2, "top": 3}, components, edges)
        swapped = _deep({"x": 2, "y": 1, "top": 3}, components, edges)
        assert swapped["top"] != base["top"]

    def test_scc_members_share_sensitivity(self):
        components = [["a", "b"]]
        edges = {"a": ["b"], "b": ["a"]}
        base = _deep({"a": 1, "b": 2}, components, edges)
        edited = _deep({"a": 1, "b": 9}, components, edges)
        assert edited["a"] != base["a"]
        assert edited["b"] != base["b"]

    def test_context_binds_every_key(self):
        fps = {"leaf": 1, "mid": 2, "top": 3}
        base = _deep(fps, self.COMPONENTS, self.EDGES, context=7)
        other = _deep(fps, self.COMPONENTS, self.EDGES, context=8)
        assert all(other[name] != base[name] for name in fps)

    def test_unresolved_callees_contribute_nothing(self):
        # A callee outside the condensation (unknown target) is the
        # calling-standard assumption either way.
        base = _deep({"top": 3}, [["top"]], {"top": []})
        with_ghost = _deep({"top": 3}, [["top"]], {"top": ["ghost"]})
        assert base["top"] == with_ghost["top"]


class TestBoundaryKeys:
    DEEP = {"a": 11, "b": 22}

    def test_member_order_is_canonical(self):
        one = phase2_component_key(["a", "b"], self.DEEP, {"a"}, {}, 5)
        two = phase2_component_key(["b", "a"], self.DEEP, {"a"}, {}, 5)
        assert one == two

    def test_sensitive_to_every_input(self):
        base = phase2_component_key(["a", "b"], self.DEEP, {"a"}, {}, 5)
        assert base != phase2_component_key(
            ["a", "b"], {"a": 12, "b": 22}, {"a"}, {}, 5
        )
        assert base != phase2_component_key(["a", "b"], self.DEEP, set(), {}, 5)
        assert base != phase2_component_key(
            ["a", "b"], self.DEEP, {"a"}, {"b": 1}, 5
        )
        assert base != phase2_component_key(["a", "b"], self.DEEP, {"a"}, {}, 6)

    def test_routine_record_key_separates_members(self):
        assert routine_record_key(99, "a") != routine_record_key(99, "b")
        assert routine_record_key(98, "a") != routine_record_key(99, "a")


class TestConfigDigest:
    def test_result_changing_knobs_are_bound(self):
        from repro.psg.build import PsgConfig

        base = config_digest(AnalysisConfig())
        assert base != config_digest(AnalysisConfig(callee_saved_filtering=False))
        assert base != config_digest(
            AnalysisConfig(psg=PsgConfig(branch_nodes=False))
        )
        assert base != config_digest(
            AnalysisConfig(psg=PsgConfig(multiway_threshold=5))
        )

    def test_bit_identical_knobs_are_excluded(self):
        from repro.psg.build import PsgConfig

        base = config_digest(AnalysisConfig())
        # Labeling strategy, solver core and jobs are documented
        # bit-identical, so a flat-core solve may warm an object-core
        # one and vice versa.
        assert base == config_digest(
            AnalysisConfig(psg=PsgConfig(labeling="per-target"))
        )
        assert base == config_digest(
            AnalysisConfig(psg=PsgConfig(per_edge_labeling=True))
        )
        assert base == config_digest(AnalysisConfig(solver_core="flat"))
        assert base == config_digest(AnalysisConfig(jobs=4))


# ----------------------------------------------------------------------
# Record robustness
# ----------------------------------------------------------------------


TRIPLE = SummaryTriple(may_use=0x1F, may_def=0x3, must_def=0x1)


@pytest.fixture(scope="module")
def summary_record(quick_program):
    summary = analyze_program(quick_program).result.summaries["helper"]
    key = routine_record_key(0xABCD, "helper")
    return key, summary, dump_summary_record(key, "helper", summary)


class TestRecordCodecs:
    def test_triple_roundtrip(self):
        blob = dump_triple_record(42, "f", TRIPLE)
        assert load_triple_record(blob, 42, "f") == TRIPLE

    def test_summary_roundtrip(self, summary_record):
        key, summary, blob = summary_record
        assert load_summary_record(blob, key, "helper") == summary

    def test_identity_mismatch_rejected(self, summary_record):
        key, _, blob = summary_record
        with pytest.raises(SummaryFormatError, match="key"):
            load_summary_record(blob, key + 1, "helper")
        with pytest.raises(SummaryFormatError, match="name"):
            load_summary_record(blob, key, "other")

    def test_grade_confusion_rejected(self, summary_record):
        key, _, blob = summary_record
        with pytest.raises(SummaryFormatError, match="magic"):
            load_triple_record(blob, key, "helper")
        with pytest.raises(SummaryFormatError, match="magic"):
            load_summary_record(dump_triple_record(42, "f", TRIPLE), 42, "f")

    def _assert_all_prefixes_rejected(self, blob, loader):
        for size in range(len(blob)):
            try:
                loader(blob[:size])
            except SummaryFormatError:
                continue
            except Exception as error:  # pragma: no cover
                pytest.fail(
                    f"prefix of {size} bytes leaked "
                    f"{type(error).__name__}: {error}"
                )
            pytest.fail(f"prefix of {size} bytes was accepted")

    def test_triple_every_prefix_rejected(self):
        blob = dump_triple_record(42, "f", TRIPLE)
        self._assert_all_prefixes_rejected(
            blob, lambda b: load_triple_record(b, 42, "f")
        )

    def test_summary_every_prefix_rejected(self, summary_record):
        key, _, blob = summary_record
        self._assert_all_prefixes_rejected(
            blob, lambda b: load_summary_record(b, key, "helper")
        )

    def test_every_byte_mutation_rejected(self, summary_record):
        # Any single corrupted byte must fail the magic, version, CRC
        # or identity check — never parse, never leak a non-format
        # exception.
        key, _, blob = summary_record
        for index in range(len(blob)):
            mutated = bytearray(blob)
            mutated[index] ^= 0xFF
            try:
                load_summary_record(bytes(mutated), key, "helper")
            except SummaryFormatError:
                continue
            except Exception as error:  # pragma: no cover
                pytest.fail(
                    f"byte {index} mutation leaked "
                    f"{type(error).__name__}: {error}"
                )
            pytest.fail(f"byte {index} mutation was accepted")

    def test_trailing_garbage_rejected(self, summary_record):
        key, _, blob = summary_record
        with pytest.raises(SummaryFormatError):
            load_summary_record(blob + b"\x00", key, "helper")


# ----------------------------------------------------------------------
# Store I/O, counters, GC
# ----------------------------------------------------------------------


class TestStoreIO:
    def test_store_and_load(self, tmp_path):
        store = SummaryStore(str(tmp_path / "s"))
        store.store_triple(42, "f", TRIPLE)
        assert store.load_triple(42, "f") == TRIPLE
        assert store.load_triple(43, "f") is None  # absent: a miss

    def test_counters(self, tmp_path):
        store = SummaryStore(str(tmp_path / "s"))
        base = REGISTRY.snapshot()
        store.store_triple(42, "f", TRIPLE)
        store.store_triple(42, "f", TRIPLE)  # duplicate: no second write
        store.load_triple(42, "f")
        store.load_triple(43, "f")
        delta = REGISTRY.delta_since(base)
        assert delta.get("store.write") == 1
        assert delta.get("store.bytes", 0) > 0
        assert delta.get("store.hit") == 1
        assert delta.get("store.miss") == 1

    def test_corrupt_record_is_a_miss(self, tmp_path):
        store = SummaryStore(str(tmp_path / "s"))
        store.store_triple(42, "f", TRIPLE)
        path = store._path(42, SUFFIX_TRIPLE)
        with open(path, "r+b") as handle:
            handle.truncate(7)
        base = REGISTRY.snapshot()
        assert store.load_triple(42, "f") is None
        assert REGISTRY.delta_since(base).get("store.miss") == 1

    def test_fanout_layout(self, tmp_path):
        store = SummaryStore(str(tmp_path / "s"))
        key = 0xAB00000000000001
        store.store_triple(key, "f", TRIPLE)
        assert os.path.exists(
            os.path.join(str(tmp_path / "s"), "ab", f"{key:016x}.sum1r")
        )

    def test_unwritable_store_never_fails(self, tmp_path):
        # The root is occupied by a plain file: every mkdir, write and
        # read raises OSError, and all of it must degrade to misses.
        root = tmp_path / "not-a-dir"
        root.write_bytes(b"occupied")
        store = SummaryStore(str(root))
        store.store_triple(42, "f", TRIPLE)  # silently dropped
        assert store.load_triple(42, "f") is None
        assert store.stats()["triples"] == 0

    def test_stats(self, tmp_path, summary_record):
        key, summary, _ = summary_record
        store = SummaryStore(str(tmp_path / "s"))
        store.store_triple(42, "f", TRIPLE)
        store.store_summary(key, "helper", summary)
        stats = store.stats()
        assert stats["triples"] == 1
        assert stats["summaries"] == 1
        assert stats["bytes"] > 0


class TestGC:
    def test_sweeps_stale_tmp_files(self, tmp_path):
        store = SummaryStore(str(tmp_path / "s"))
        store.store_triple(42, "f", TRIPLE)
        shard = os.path.dirname(store._path(42, SUFFIX_TRIPLE))
        stale = os.path.join(shard, "dead.sum1r.tmp.999.0")
        with open(stale, "wb") as handle:
            handle.write(b"partial")
        old = os.path.getmtime(stale) - 3600
        os.utime(stale, (old, old))
        fresh = os.path.join(shard, "live.sum1r.tmp.999.1")
        with open(fresh, "wb") as handle:
            handle.write(b"partial")
        report = store.gc()
        assert report["removed"] == 1
        assert not os.path.exists(stale)
        assert os.path.exists(fresh)  # a live writer's temp survives
        assert store.load_triple(42, "f") == TRIPLE

    def test_lru_eviction_under_budget(self, tmp_path):
        root = str(tmp_path / "s")
        store = SummaryStore(root)
        for key in range(1, 9):
            store.store_triple(key, "f", TRIPLE)
        size = os.path.getsize(store._path(1, SUFFIX_TRIPLE))
        # Age keys 1..4; recently used 5..8 must survive a 4-record
        # budget.
        for key in range(1, 5):
            path = store._path(key, SUFFIX_TRIPLE)
            os.utime(path, (1_000_000 + key, 1_000_000 + key))
        base = REGISTRY.snapshot()
        report = SummaryStore(root, max_bytes=4 * size).gc()
        assert report["removed"] == 4
        assert report["remaining_bytes"] == 4 * size
        assert REGISTRY.delta_since(base).get("store.evict") == 4
        for key in range(1, 5):
            assert store.load_triple(key, "f") is None
        for key in range(5, 9):
            assert store.load_triple(key, "f") == TRIPLE

    def test_no_budget_keeps_everything(self, tmp_path):
        store = SummaryStore(str(tmp_path / "s"))
        for key in range(1, 4):
            store.store_triple(key, "f", TRIPLE)
        assert store.gc()["removed"] == 0
        assert store.stats()["triples"] == 3


class TestResolveStore:
    def test_explicit_store_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path / "env"))
        store = SummaryStore(str(tmp_path / "explicit"))
        assert resolve_store(AnalysisConfig(store=store)) is store

    def test_off_beats_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path / "env"))
        assert resolve_store(AnalysisConfig(store="off")) is None

    def test_environment_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path / "env"))
        resolved = resolve_store(AnalysisConfig())
        assert resolved is not None
        assert resolved.root == str(tmp_path / "env")

    def test_nothing_configured(self, monkeypatch):
        monkeypatch.delenv(STORE_ENV_VAR, raising=False)
        assert resolve_store(AnalysisConfig()) is None


# ----------------------------------------------------------------------
# Byte-identity: store on / off / poisoned, cold / warm, serial /
# parallel
# ----------------------------------------------------------------------


def _poison(root: str) -> int:
    poisoned = 0
    for dirpath, _dirnames, filenames in os.walk(root):
        for filename in filenames:
            with open(os.path.join(dirpath, filename), "r+b") as handle:
                handle.truncate(7)
            poisoned += 1
    return poisoned


class TestByteIdentity:
    def test_second_image_warms_from_the_first(
        self, tmp_path, variant1, variant2
    ):
        store = SummaryStore(str(tmp_path / "s"))
        config = AnalysisConfig(store=store)
        baseline1 = analyze_incremental(variant1, config=AnalysisConfig(store="off"))
        baseline2 = analyze_incremental(variant2, config=AnalysisConfig(store="off"))

        first = analyze_incremental(variant1, config=config)
        assert first.metrics.phase1_store_hits == 0
        assert _result_bytes(first) == _result_bytes(baseline1)

        second = analyze_incremental(variant2, config=config)
        # mathlib (scale) and util (offset) are byte-identical across
        # the variants; only the edited app must re-solve.
        assert second.metrics.phase1_store_hits == 2
        assert second.metrics.phase2_store_hits == 2
        assert second.metrics.phase1_solved == 1
        assert _result_bytes(second) == _result_bytes(baseline2)

    def test_identical_rerun_is_fully_store_served(self, tmp_path, variant1):
        config = AnalysisConfig(store=SummaryStore(str(tmp_path / "s")))
        analyze_incremental(variant1, config=config)
        again = analyze_incremental(variant1, config=config)
        assert again.metrics.phase1_store_hits == variant1.routine_count
        assert again.metrics.phase2_store_hits == variant1.routine_count
        assert again.metrics.phase1_solved == 0
        assert again.metrics.phase2_solved == 0

    def test_poisoned_store_is_byte_identical(self, tmp_path, variant1):
        root = str(tmp_path / "s")
        config = AnalysisConfig(store=SummaryStore(root))
        baseline = analyze_incremental(variant1, config=AnalysisConfig(store="off"))
        analyze_incremental(variant1, config=config)
        assert _poison(root) > 0
        rerun = analyze_incremental(variant1, config=config)
        assert rerun.metrics.phase1_store_hits == 0
        assert rerun.metrics.phase2_store_hits == 0
        assert _result_bytes(rerun) == _result_bytes(baseline)

    def test_warm_incremental_with_store(self, tmp_path, variant1, variant2):
        config = AnalysisConfig(store=SummaryStore(str(tmp_path / "s")))
        cold = analyze_incremental(variant1, config=config)
        warm = analyze_incremental(variant1, cache=cold.cache, config=config)
        baseline = analyze_incremental(
            variant1,
            cache=analyze_incremental(
                variant1, config=AnalysisConfig(store="off")
            ).cache,
            config=AnalysisConfig(store="off"),
        )
        assert _result_bytes(warm) == _result_bytes(baseline)
        assert not warm.metrics.cold

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_parallel_publishes_and_stays_identical(
        self, tmp_path, variant1, variant2, jobs
    ):
        store = SummaryStore(str(tmp_path / "s"))
        baseline = analyze_program(variant1, AnalysisConfig(store="off"))
        session = AnalysisSession.from_program(
            variant1, AnalysisConfig(store=store)
        )
        parallel = session.analyze(jobs=jobs)
        assert dump_summaries(parallel.result) == _result_bytes(baseline)
        # The parent published after the merge: a serial consumer of a
        # *different* linked variant now hits the shared library.
        follow = analyze_incremental(
            variant2, config=AnalysisConfig(store=store)
        )
        assert follow.metrics.phase1_store_hits == 2

    def test_serial_facade_publishes(self, tmp_path, variant1, variant2):
        store = SummaryStore(str(tmp_path / "s"))
        analyze_program(variant1, AnalysisConfig(store=store))
        assert store.stats()["triples"] == variant1.routine_count
        follow = analyze_incremental(
            variant2, config=AnalysisConfig(store=store)
        )
        assert follow.metrics.phase1_store_hits == 2

    def test_demand_query_reads_through(self, tmp_path, variant1, variant2):
        store = SummaryStore(str(tmp_path / "s"))
        analyze_incremental(variant1, config=AnalysisConfig(store=store))
        session = AnalysisSession.from_program(
            variant2, AnalysisConfig(store=store)
        )
        baseline = AnalysisSession.from_program(
            variant2, AnalysisConfig(store="off")
        )
        query = session.query("scale")
        expected = baseline.query("scale")
        assert query.summary == expected.summary

    def test_metrics_payload_and_render(self, tmp_path, variant1):
        config = AnalysisConfig(store=SummaryStore(str(tmp_path / "s")))
        analyze_incremental(variant1, config=config)
        again = analyze_incremental(variant1, config=config)
        payload = again.metrics.as_dict()
        assert payload["phase1_store_hits"] == variant1.routine_count
        assert payload["phase2_store_hits"] == variant1.routine_count
        assert "store hits" in again.metrics.render()


# ----------------------------------------------------------------------
# Concurrency: forked writers and readers over one store directory
# ----------------------------------------------------------------------


def _concurrent_worker(version: int, root: str, out_path: str) -> None:
    program = _variant_program(version)
    analysis = analyze_incremental(
        program, config=AnalysisConfig(store=SummaryStore(root))
    )
    blob = dump_summaries(analysis.result)
    with open(out_path, "wb") as handle:
        handle.write(blob)


class TestConcurrentStore:
    def test_forked_writers_and_readers_agree(self, tmp_path):
        # Six processes race cold solves of two linked variants through
        # one store: every record write races a read of the same key,
        # and first-writer-wins plus CRC framing must keep every result
        # byte-identical to the store-less baselines.
        root = str(tmp_path / "shared")
        expected = {
            version: dump_summaries(
                analyze_incremental(
                    _variant_program(version),
                    config=AnalysisConfig(store="off"),
                ).result
            )
            for version in (1, 2)
        }
        context = multiprocessing.get_context("fork")
        workers = []
        outputs = []
        for index in range(6):
            version = 1 + index % 2
            out_path = str(tmp_path / f"result.{index}.bin")
            outputs.append((version, out_path))
            workers.append(
                context.Process(
                    target=_concurrent_worker,
                    args=(version, root, out_path),
                )
            )
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
            assert worker.exitcode == 0
        for version, out_path in outputs:
            with open(out_path, "rb") as handle:
                assert handle.read() == expected[version]
        # The store converged to one record set with no temp litter.
        stats = SummaryStore(root).stats()
        assert stats["triples"] == 4  # 3 shared + 1 per-variant app
        assert stats["other"] == 0


# ----------------------------------------------------------------------
# CLI: store subcommand and --store-dir plumbing
# ----------------------------------------------------------------------


class TestStoreCLI:
    def test_stats_and_gc(self, tmp_path, capsys):
        import json

        root = str(tmp_path / "s")
        SummaryStore(root).store_triple(42, "f", TRIPLE)
        assert main(["store", "stats", "--store-dir", root]) == EXIT_OK
        stats = json.loads(capsys.readouterr().out)
        assert stats["triples"] == 1
        assert main(
            ["store", "gc", "--store-dir", root, "--max-bytes", "0"]
        ) == EXIT_OK
        report = json.loads(capsys.readouterr().out)
        assert report["removed"] == 1
        assert report["remaining_bytes"] == 0

    def test_missing_store_dir_is_usage_error(self, monkeypatch, capsys):
        monkeypatch.delenv(STORE_ENV_VAR, raising=False)
        assert main(["store", "stats"]) == EXIT_USAGE
        assert "store" in capsys.readouterr().err

    def test_env_var_names_the_store(self, tmp_path, monkeypatch, capsys):
        import json

        root = str(tmp_path / "s")
        SummaryStore(root).store_triple(42, "f", TRIPLE)
        monkeypatch.setenv(STORE_ENV_VAR, root)
        assert main(["store", "stats"]) == EXIT_OK
        assert json.loads(capsys.readouterr().out)["triples"] == 1

    def test_analyze_store_dir_round_trip(self, tmp_path, capsys):
        root = str(tmp_path / "s")
        for version in (1, 2):
            image = link_modules(
                [_build_app(version), _build_mathlib(), _build_util()],
                entry="main",
            )
            path = str(tmp_path / f"v{version}.sax")
            with open(path, "wb") as handle:
                handle.write(image.to_bytes())
            code = main(
                ["analyze", path, "--incremental",
                 "--cache", str(tmp_path / f"v{version}.sum2"),
                 "--store-dir", root, "--stats"]
            )
            assert code == EXIT_OK
            out = capsys.readouterr().out
        # The second image's run reports library hits in its stats.
        assert "store.hit" in out
        assert SummaryStore(root).stats()["triples"] == 4
