"""Tests for per-block DEF/UBD computation."""

from repro.cfg.build import build_cfg
from repro.dataflow.local import (
    compute_local_sets,
    compute_program_local_sets,
    local_sets_of_instructions,
)
from repro.isa.instructions import Instruction, Opcode
from repro.program.asm import assemble
from repro.program.disasm import disassemble_image


def regs(names):
    from repro.isa.registers import Register

    return {Register.parse(n).index for n in names}


class TestLocalSets:
    def test_use_before_def(self):
        sets = local_sets_of_instructions(
            [Instruction(Opcode.ADDQ, ra=1, rb=2, rc=3)]
        )
        assert sets.used_before_defined.names() == {"t0", "t1"}
        assert sets.defs.names() == {"t2"}

    def test_def_shadows_later_use(self):
        sets = local_sets_of_instructions(
            [
                Instruction(Opcode.LDA, ra=1, rb=31, displacement=5),  # def t0
                Instruction(Opcode.ADDQ, ra=1, rb=1, rc=2),            # use t0
            ]
        )
        assert "t0" not in sets.used_before_defined.names()
        assert sets.defs.names() == {"t0", "t1"}

    def test_use_then_def_of_same_register(self):
        sets = local_sets_of_instructions(
            [Instruction(Opcode.ADDQ, ra=1, rb=1, rc=1)]  # t0 = t0 + t0
        )
        assert "t0" in sets.used_before_defined.names()
        assert "t0" in sets.defs.names()

    def test_empty_sequence(self):
        sets = local_sets_of_instructions([])
        assert sets.def_mask == 0 and sets.ubd_mask == 0

    def test_store_uses_both(self):
        sets = local_sets_of_instructions(
            [Instruction(Opcode.STQ, ra=26, rb=30, displacement=0)]
        )
        assert sets.used_before_defined.names() == {"ra", "sp"}
        assert sets.def_mask == 0

    def test_call_instruction_defs_link_register(self):
        sets = local_sets_of_instructions(
            [Instruction(Opcode.BSR, ra=26, displacement=0)]
        )
        assert sets.defs.names() == {"ra"}


class TestPerCfg:
    def test_per_block_sets(self, quick_program):
        cfg = build_cfg(quick_program, quick_program.routine("main"))
        sets = compute_local_sets(cfg)
        assert len(sets) == cfg.block_count
        # The entry block saves ra: ra and sp are used before defined.
        assert {"ra", "sp"} <= sets[0].used_before_defined.names()

    def test_program_wide(self, quick_program):
        from repro.cfg.build import build_all_cfgs

        cfgs = build_all_cfgs(quick_program)
        all_sets = compute_program_local_sets(cfgs)
        assert set(all_sets) == {"main", "helper"}
        helper = all_sets["helper"]
        assert helper[0].used_before_defined.names() == {"a0", "ra"}
        assert helper[0].defs.names() == {"v0"}
