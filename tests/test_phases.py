"""Phase-1/phase-2 dataflow, validated on the paper's Figure 2 example.

``FIGURE2_SOURCE`` (conftest.py) reconstructs the paper's three
routines with R0..R3 mapped to t0..t3.  The paper publishes the
converged phase-1 sets for every entry node (§3.2) and the phase-2
live-at-entry/exit sets of P2 (§2):

    P1: MAY-USE = ∅        MAY-DEF = {R0,R1,R2,R3}  MUST-DEF = {R0,R1,R2}
    P2: MAY-USE = {R1}     MAY-DEF = {R2,R3}        MUST-DEF = {R2}
    P3: MAY-USE = ∅        MAY-DEF = {R1,R2,R3}     MUST-DEF = {R1,R2}

    live-at-entry(P2) = {R0, R1}      live-at-exit(P2) = {R0}

All assertions project onto {t0..t3} so the machine registers the
example abstracts away (ra, sp, v0, ...) do not interfere.
"""

import pytest

from repro.dataflow.regset import RegisterSet, mask_of
from tests.facade import analyze_program

PAPER_REGS = mask_of(["t0", "t1", "t2", "t3"])


def proj(mask: int):
    return RegisterSet.from_mask(mask & PAPER_REGS).names()


@pytest.fixture(scope="module")
def figure2(figure2_program):
    return analyze_program(figure2_program)


class TestPhase1Figure2:
    def test_p1_sets(self, figure2):
        summary = figure2.summary("P1")
        assert proj(summary.call_used_mask) == set()
        assert proj(summary.call_killed_mask) == {"t0", "t1", "t2", "t3"}
        assert proj(summary.call_defined_mask) == {"t0", "t1", "t2"}

    def test_p2_sets(self, figure2):
        summary = figure2.summary("P2")
        assert proj(summary.call_used_mask) == {"t1"}
        assert proj(summary.call_killed_mask) == {"t2", "t3"}
        assert proj(summary.call_defined_mask) == {"t2"}

    def test_p3_sets(self, figure2):
        summary = figure2.summary("P3")
        assert proj(summary.call_used_mask) == set()
        assert proj(summary.call_killed_mask) == {"t1", "t2", "t3"}
        assert proj(summary.call_defined_mask) == {"t1", "t2"}

    def test_call_summary_instruction_for_p2(self, figure2):
        """§2: the call-summary replacing a call to P2 uses R1, defines
        R2 and kills {R2, R3}."""
        site = figure2.summary("P1").call_sites[0]
        assert site.site.callee == "P2"
        assert proj(site.used_mask) == {"t1"}
        assert proj(site.defined_mask) == {"t2"}
        assert proj(site.killed_mask) == {"t2", "t3"}

    def test_must_def_subset_of_may_def(self, figure2):
        for summary in figure2.result:
            assert (
                summary.call_defined_mask & ~summary.call_killed_mask
            ) & PAPER_REGS == 0


class TestPhase2Figure2:
    def test_live_at_entry_p2(self, figure2):
        assert proj(figure2.summary("P2").live_at_entry_mask) == {"t0", "t1"}

    def test_live_at_exit_p2(self, figure2):
        summary = figure2.summary("P2")
        exit_block = next(iter(summary.exit_live_masks))
        assert proj(summary.exit_live_masks[exit_block]) == {"t0"}

    def test_r0_live_because_of_return_path(self, figure2):
        """R0 is live at P2's exit only because a return path reaches a
        use of R0 in P1 — the valid-paths property."""
        summary = figure2.summary("P2")
        assert "t0" in proj(summary.live_at_any_exit_mask)
        # P3's return point uses nothing, so nothing else appears.
        assert proj(summary.live_at_any_exit_mask) == {"t0"}

    def test_live_before_call_in_p1(self, figure2):
        """Before P1's call, R0 (used after return) and R1 (used by the
        callee) are live."""
        site = figure2.summary("P1").call_sites[0]
        assert proj(site.live_before_mask) == {"t0", "t1"}

    def test_live_after_call_in_p1(self, figure2):
        site = figure2.summary("P1").call_sites[0]
        assert proj(site.live_after_mask) == {"t0"}

    def test_live_after_call_in_p3(self, figure2):
        site = figure2.summary("P3").call_sites[0]
        assert proj(site.live_after_mask) == set()


class TestConvergenceProperties:
    def test_idempotent(self, figure2_program):
        first = analyze_program(figure2_program)
        second = analyze_program(figure2_program)
        assert first.result.equal_summaries(second.result)

    def test_summaries_idempotent_on_benchmark(self, small_benchmark):
        first = analyze_program(small_benchmark)
        second = analyze_program(small_benchmark)
        assert first.result.equal_summaries(second.result)
