"""Tests for the incremental re-analysis engine.

The contract under test (see :mod:`repro.interproc.incremental`):

* a cold run equals the one-shot pipeline and seeds a cache;
* a warm run with zero dirty routines does **no** phase-1/phase-2
  solving (asserted via the metrics counters) and returns the cached
  facts;
* editing one routine re-solves only its SCC and the dependents whose
  consumed facts actually changed, and the result is byte-identical to
  a from-scratch analysis of the edited program;
* structural edits — adding and removing routines — invalidate
  correctly too.
"""

import pytest

from repro import cli
from tests.facade import analyze_incremental, analyze_program
from repro.interproc import (
    dump_cache,
    dump_summaries,
    load_cache,
    routine_fingerprint,
)
from repro.cfg.build import build_all_cfgs
from repro.program.asm import assemble
from repro.program.disasm import disassemble_image
from repro.program.model import Program, Routine
from repro.workloads.mutate import first_editable_routine, perturb_routine


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------


class TestRoutineFingerprint:
    def test_stable(self, small_benchmark):
        cfgs = build_all_cfgs(small_benchmark)
        name = small_benchmark.routine_names()[0]
        first = routine_fingerprint(small_benchmark.routine(name), cfgs[name])
        second = routine_fingerprint(small_benchmark.routine(name), cfgs[name])
        assert first == second

    def test_code_edit_changes_fingerprint(self, small_benchmark):
        victim = first_editable_routine(small_benchmark)
        edited = perturb_routine(small_benchmark, victim)
        cfgs_a = build_all_cfgs(small_benchmark)
        cfgs_b = build_all_cfgs(edited)
        assert routine_fingerprint(
            small_benchmark.routine(victim), cfgs_a[victim]
        ) != routine_fingerprint(edited.routine(victim), cfgs_b[victim])
        # Untouched routines keep their fingerprints.
        for name in small_benchmark.routine_names():
            if name == victim:
                continue
            assert routine_fingerprint(
                small_benchmark.routine(name), cfgs_a[name]
            ) == routine_fingerprint(edited.routine(name), cfgs_b[name])

    def test_exported_flag_in_fingerprint(self, small_benchmark):
        name = [
            routine.name
            for routine in small_benchmark.routines
            if not routine.exported
        ][0]
        original = small_benchmark.routine(name)
        flipped = Routine(
            name=original.name,
            address=original.address,
            instructions=original.instructions,
            exported=True,
        )
        cfgs = build_all_cfgs(small_benchmark)
        assert routine_fingerprint(original, cfgs[name]) != routine_fingerprint(
            flipped, cfgs[name]
        )


# ----------------------------------------------------------------------
# Cold / warm / dirty runs
# ----------------------------------------------------------------------


class TestIncrementalRuns:
    def test_cold_matches_full(self, small_benchmark):
        cold = analyze_incremental(small_benchmark)
        full = analyze_program(small_benchmark)
        assert dump_summaries(cold.result) == dump_summaries(full.result)
        assert cold.metrics.cold
        assert cold.metrics.phase1_solved == small_benchmark.routine_count
        assert cold.metrics.phase1_iterations > 0
        assert cold.metrics.phase2_iterations > 0
        assert set(cold.cache.routine_fingerprints) == set(
            small_benchmark.routine_names()
        )

    def test_warm_zero_dirty_does_no_solving(self, small_benchmark):
        cold = analyze_incremental(small_benchmark)
        # Round-trip the cache through the SUM2 wire format, as a real
        # warm start from a sidecar would.
        cache = load_cache(dump_cache(cold.cache))
        warm = analyze_incremental(small_benchmark, cache=cache)
        metrics = warm.metrics
        assert not metrics.cold
        assert metrics.dirty_routines == []
        assert metrics.phase1_solved == 0
        assert metrics.phase2_solved == 0
        assert metrics.phase1_sccs_solved == 0
        assert metrics.phase2_sccs_solved == 0
        assert metrics.phase1_iterations == 0
        assert metrics.phase2_iterations == 0
        assert metrics.phase1_reused == small_benchmark.routine_count
        assert metrics.phase2_reused == small_benchmark.routine_count
        # No partial PSGs were even built.
        assert "psg_build" not in metrics.seconds
        assert "phase1" not in metrics.seconds
        assert "phase2" not in metrics.seconds
        assert dump_summaries(warm.result) == dump_summaries(cold.result)

    @pytest.mark.parametrize("seed_name", ["compress", "li", "perl"])
    def test_one_dirty_matches_full_reanalysis(self, seed_name):
        from repro.workloads.generator import GeneratorConfig, generate_benchmark

        program, _shape = generate_benchmark(
            seed_name, scale=0.15, config=GeneratorConfig(seed=5)
        )
        cold = analyze_incremental(program)
        victim = first_editable_routine(program)
        edited = perturb_routine(program, victim)

        warm = analyze_incremental(edited, cache=cold.cache)
        full = analyze_program(edited)
        assert warm.metrics.dirty_routines == [victim]
        assert dump_summaries(warm.result) == dump_summaries(full.result), (
            warm.result.diff(full.result)
        )

        # The refreshed cache is itself a valid warm-start point.
        again = analyze_incremental(edited, cache=warm.cache)
        assert again.metrics.phase1_solved == 0
        assert again.metrics.phase2_solved == 0
        assert dump_summaries(again.result) == dump_summaries(full.result)

    def test_one_dirty_reanalyzes_only_the_dependency_cone(self, small_benchmark):
        cold = analyze_incremental(small_benchmark)
        victim = first_editable_routine(small_benchmark)
        edited = perturb_routine(small_benchmark, victim)
        warm = analyze_incremental(edited, cache=cold.cache)

        condensation = warm.condensation
        assert condensation is not None
        roots = {condensation.component_index(victim)}
        phase1_cone = condensation.routines_of(
            condensation.transitive_caller_components(roots)
        )
        phase2_cone = condensation.routines_of(
            condensation.transitive_callee_components(
                condensation.transitive_caller_components(roots)
            )
        )
        assert warm.metrics.phase1_solved <= len(phase1_cone)
        assert warm.metrics.phase2_solved <= len(phase2_cone)
        assert warm.metrics.phase2_solved < small_benchmark.routine_count
        # Every routine outside the invalidation cone keeps its cached
        # summary *object* — proof it was never re-assembled.
        for name in small_benchmark.routine_names():
            if name not in phase2_cone:
                assert (
                    warm.result.summaries[name]
                    is cold.cache.result.summaries[name]
                )


# ----------------------------------------------------------------------
# Structural edits: routines added and removed
# ----------------------------------------------------------------------

_TWO_ROUTINES = """
.routine main export
    li   a0, 1
    bsr  ra, shared
    halt
.routine shared
    addq a0, #1, v0
    ret  (ra)
"""

# Same program plus one routine at the *end* (so no address shifts):
# nobody calls `extra`, but `extra` calls `shared`, contributing to
# shared's live-at-exit.
_THREE_ROUTINES = _TWO_ROUTINES + """
.routine extra
    li   a0, 7
    bsr  ra, shared
    ret  (ra)
"""

# `extra` survives but its call to `shared` is replaced by a same-size
# ALU op — only `extra` is fingerprint-dirty, yet `shared` loses an
# exit-seed contributor.
_DROPPED_CALL = _THREE_ROUTINES.replace(
    "bsr  ra, shared\n    ret", "addq a0, #1, a0\n    ret"
)

# As _THREE_ROUTINES plus a second leaf, and a variant where `extra`
# redirects its call from `shared` to `other` (same-size edit again).
_FOUR_ROUTINES = _THREE_ROUTINES + """
.routine other
    subq a0, #1, v0
    ret  (ra)
"""
_RETARGETED_CALL = _FOUR_ROUTINES.replace(
    "bsr  ra, shared\n    ret", "bsr  ra, other\n    ret"
)


def _asm(source: str) -> Program:
    return disassemble_image(assemble(source))


class TestStructuralEdits:
    def test_added_routine(self):
        small = _asm(_TWO_ROUTINES)
        grown = _asm(_THREE_ROUTINES)
        cold = analyze_incremental(small)
        warm = analyze_incremental(grown, cache=cold.cache)
        full = analyze_program(grown)
        assert warm.metrics.dirty_routines == ["extra"]
        assert dump_summaries(warm.result) == dump_summaries(full.result), (
            warm.result.diff(full.result)
        )

    def test_removed_routine(self):
        grown = _asm(_THREE_ROUTINES)
        small = _asm(_TWO_ROUTINES)
        cold = analyze_incremental(grown)
        warm = analyze_incremental(small, cache=cold.cache)
        full = analyze_program(small)
        # Nothing is fingerprint-dirty: the deleted routine sat at the
        # end of the image and nobody called it.  Its former callee
        # must still be re-solved (it lost an exit-seed contributor).
        assert warm.metrics.dirty_routines == []
        assert dump_summaries(warm.result) == dump_summaries(full.result), (
            warm.result.diff(full.result)
        )

    def test_surviving_caller_drops_its_call(self):
        # A caller that keeps existing but whose call instruction is
        # replaced by a same-size ALU op retracts a call edge without
        # deleting any routine: the former callee must be re-solved or
        # its cached exit liveness keeps the removed site's live-after.
        before = _asm(_THREE_ROUTINES)
        after = _asm(_DROPPED_CALL)
        cold = analyze_incremental(before)
        warm = analyze_incremental(after, cache=cold.cache)
        full = analyze_program(after)
        assert warm.metrics.dirty_routines == ["extra"]
        assert dump_summaries(warm.result) == dump_summaries(full.result), (
            warm.result.diff(full.result)
        )
        # The refreshed cache must be clean, not poisoned: a further
        # warm run reuses everything and still matches from-scratch.
        again = analyze_incremental(
            after, cache=load_cache(dump_cache(warm.cache))
        )
        assert again.metrics.phase2_solved == 0
        assert dump_summaries(again.result) == dump_summaries(full.result)

    def test_surviving_caller_retargets_its_call(self):
        # Same retraction, but the site swings to a different routine
        # instead of disappearing: the old target loses a seed, the new
        # one gains one, and both must end up byte-identical to a
        # from-scratch analysis.
        before = _asm(_FOUR_ROUTINES)
        after = _asm(_RETARGETED_CALL)
        cold = analyze_incremental(before)
        warm = analyze_incremental(after, cache=cold.cache)
        full = analyze_program(after)
        assert warm.metrics.dirty_routines == ["extra"]
        assert dump_summaries(warm.result) == dump_summaries(full.result), (
            warm.result.diff(full.result)
        )

    def test_removed_caller_shrinks_callee_liveness(self):
        # The scenario that makes the orphan handling observable: the
        # deleted routine's return-point liveness stops leaking into
        # the surviving callee's live-at-exit, so the mask can only
        # shrink (and test_removed_routine asserts the incremental
        # path tracks it exactly).
        with_extra = analyze_program(_asm(_THREE_ROUTINES)).result
        without_extra = analyze_program(_asm(_TWO_ROUTINES)).result
        before = with_extra["shared"].live_at_any_exit_mask
        after = without_extra["shared"].live_at_any_exit_mask
        assert after & ~before == 0


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestIncrementalCli:
    def test_cold_then_warm(self, tmp_path, capsys):
        image = tmp_path / "bench.img"
        assert cli.main(
            ["generate", "compress", "--scale", "0.1", "--seed", "3",
             "-o", str(image)]
        ) == 0
        capsys.readouterr()

        assert cli.main(
            ["analyze", str(image), "--incremental", "--stats"]
        ) == 0
        first = capsys.readouterr().out
        assert "cache:         cold (no cache file)" in first
        assert "mode:               cold" in first
        assert (image.parent / (image.name + ".sum2")).exists()

        assert cli.main(
            ["analyze", str(image), "--incremental", "--stats"]
        ) == 0
        second = capsys.readouterr().out
        assert "warm" in second
        assert "reanalyzed:    0 routines" in second
        assert "phase1 solved:      0" in second

    def test_explicit_cache_path(self, tmp_path, capsys):
        image = tmp_path / "bench.img"
        cache = tmp_path / "facts.sum2"
        cli.main(
            ["generate", "compress", "--scale", "0.1", "--seed", "3",
             "-o", str(image)]
        )
        cli.main(
            ["analyze", str(image), "--incremental", "--cache", str(cache)]
        )
        assert cache.exists()
        capsys.readouterr()
        cli.main(
            ["analyze", str(image), "--incremental", "--cache", str(cache)]
        )
        assert "warm" in capsys.readouterr().out

    def test_unreadable_cache_falls_back_to_cold(self, tmp_path, capsys):
        image = tmp_path / "bench.img"
        cache = tmp_path / "facts.sum2"
        cli.main(
            ["generate", "compress", "--scale", "0.1", "--seed", "3",
             "-o", str(image)]
        )
        cache.write_bytes(b"garbage")
        capsys.readouterr()
        assert cli.main(
            ["analyze", str(image), "--incremental", "--cache", str(cache)]
        ) == 0
        out = capsys.readouterr().out
        assert "unreadable cache" in out

    def test_cache_path_is_directory_falls_back_to_cold(
        self, tmp_path, capsys
    ):
        # An OSError on the cache read (here: the path is a directory)
        # takes the same cold fallback as malformed content; the failed
        # cache write at the end is reported as exit code 5 (not a
        # traceback) with the analysis output still printed.
        image = tmp_path / "bench.img"
        cache = tmp_path / "cachedir"
        cache.mkdir()
        cli.main(
            ["generate", "compress", "--scale", "0.1", "--seed", "3",
             "-o", str(image)]
        )
        capsys.readouterr()
        assert cli.main(
            ["analyze", str(image), "--incremental", "--cache", str(cache)]
        ) == cli.EXIT_CACHE_IO
        captured = capsys.readouterr()
        assert "unreadable cache" in captured.out
        assert "could not write cache" in captured.err

    def test_stats_without_incremental_prints_counters(
        self, tmp_path, capsys
    ):
        image = tmp_path / "bench.img"
        cli.main(
            ["generate", "compress", "--scale", "0.1", "--seed", "3",
             "-o", str(image)]
        )
        capsys.readouterr()
        assert cli.main(["analyze", str(image), "--stats"]) == 0
        out = capsys.readouterr().out
        assert "counters:" in out
        assert "solver.iterations{phase=phase1}" in out

    def test_annotate_rejected_with_incremental(self, tmp_path, capsys):
        image = tmp_path / "bench.img"
        cli.main(
            ["generate", "compress", "--scale", "0.1", "--seed", "3",
             "-o", str(image)]
        )
        capsys.readouterr()
        assert cli.main(
            ["analyze", str(image), "--incremental", "--annotate"]
        ) == 2
