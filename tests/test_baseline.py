"""Cross-validation: the PSG engine vs. the whole-program-CFG baseline.

Both engines implement the same two-phase valid-paths specification, so
their summaries must agree *exactly* on every program.  This is the
strongest correctness oracle in the suite: a bug in PSG construction,
edge labeling, phase 1 or phase 2 shows up as a summary diff.
"""

import pytest

from repro.interproc.analysis import AnalysisConfig
from tests.facade import analyze_program
from repro.interproc.baseline import analyze_program_baseline
from repro.psg.build import PsgConfig
from repro.program.asm import assemble
from repro.program.disasm import disassemble_image
from repro.workloads.generator import GeneratorConfig, generate_benchmark


def assert_equal_summaries(program):
    psg = analyze_program(program)
    baseline = analyze_program_baseline(program)
    diff = baseline.result.diff(psg.result)
    assert psg.result.equal_summaries(baseline.result), diff[:8]


class TestHandWritten:
    def test_quick_program(self, quick_program):
        assert_equal_summaries(quick_program)

    def test_figure2(self, figure2_program):
        assert_equal_summaries(figure2_program)

    def test_figure4(self, figure4_program):
        assert_equal_summaries(figure4_program)

    def test_program_with_unknown_jump(self):
        program = disassemble_image(
            assemble(
                """
                .routine main
                    beq t0, wild
                    halt
                wild:
                    jmp (t7)
                """
            )
        )
        assert_equal_summaries(program)

    def test_program_with_opaque_call(self):
        program = disassemble_image(
            assemble(
                """
                .data fp: 0
                .routine main
                    li  t0, @fp
                    ldq pv, 0(t0)
                    jsr ra, (pv)
                    halt
                .routine orphan export
                    addq a0, #1, v0
                    ret (ra)
                """
            )
        )
        assert_equal_summaries(program)

    def test_mutual_recursion(self):
        program = disassemble_image(
            assemble(
                """
                .routine main
                    li a0, 6
                    bsr ra, even
                    halt
                .routine even
                    lda sp, -16(sp)
                    stq ra, 0(sp)
                    li v0, 1
                    ble a0, even_out
                    subq a0, #1, a0
                    bsr ra, odd
                even_out:
                    ldq ra, 0(sp)
                    lda sp, 16(sp)
                    ret (ra)
                .routine odd
                    lda sp, -16(sp)
                    stq ra, 0(sp)
                    li v0, 0
                    ble a0, odd_out
                    subq a0, #1, a0
                    bsr ra, even
                odd_out:
                    ldq ra, 0(sp)
                    lda sp, 16(sp)
                    ret (ra)
                """
            )
        )
        assert_equal_summaries(program)


@pytest.mark.parametrize("bench", ["compress", "li", "perl", "vortex"])
@pytest.mark.parametrize("seed", [0, 1, 2])
class TestGeneratedPrograms:
    def test_summaries_agree(self, bench, seed):
        program, _shape = generate_benchmark(
            bench, scale=0.1, config=GeneratorConfig(seed=seed)
        )
        assert_equal_summaries(program)


class TestPsgConfigurations:
    def test_agreement_without_branch_nodes(self, switchy_benchmark):
        """Branch nodes change the PSG's size, never its answers."""
        with_nodes = analyze_program(
            switchy_benchmark,
            AnalysisConfig(psg=PsgConfig(branch_nodes=True)),
        )
        without = analyze_program(
            switchy_benchmark,
            AnalysisConfig(psg=PsgConfig(branch_nodes=False)),
        )
        assert with_nodes.result.equal_summaries(without.result)
        baseline = analyze_program_baseline(switchy_benchmark)
        assert with_nodes.result.equal_summaries(baseline.result)

    def test_agreement_with_per_edge_labeling(self, small_benchmark):
        literal = analyze_program(
            small_benchmark,
            AnalysisConfig(psg=PsgConfig(per_edge_labeling=True)),
        )
        fast = analyze_program(small_benchmark)
        assert literal.result.equal_summaries(fast.result)


class TestBaselineMeasurements:
    def test_baseline_reports_sizes(self, small_benchmark):
        baseline = analyze_program_baseline(small_benchmark)
        psg = analyze_program(small_benchmark)
        assert baseline.basic_block_count == psg.basic_block_count
        assert baseline.cfg_arc_count == psg.cfg_arc_count
        assert baseline.memory_bytes > 0
        assert baseline.elapsed_seconds > 0

    def test_psg_uses_less_model_memory(self, small_benchmark):
        """§4: the PSG's dataflow state is smaller than the CFG's."""
        baseline = analyze_program_baseline(small_benchmark)
        psg = analyze_program(small_benchmark)
        assert psg.memory_bytes < baseline.memory_bytes
