"""Tests for the spike-analyze command-line interface."""

import pytest

from repro.cli import main
from repro.program.asm import assemble

SOURCE = """
.routine main export
    li  a0, 5
    bsr ra, helper
    bis zero, v0, a0
    output
    halt
.routine helper
    addq a0, #1, v0
    ret (ra)
"""


@pytest.fixture()
def image_path(tmp_path):
    path = tmp_path / "prog.sax"
    path.write_bytes(assemble(SOURCE).to_bytes())
    return str(path)


class TestAnalyze:
    def test_analyze_prints_measurements(self, image_path, capsys):
        assert main(["analyze", image_path]) == 0
        out = capsys.readouterr().out
        assert "routines:" in out
        assert "psg nodes:" in out
        assert "phase1" in out

    def test_analyze_routine_summary(self, image_path, capsys):
        assert main(["analyze", image_path, "-r", "helper"]) == 0
        out = capsys.readouterr().out
        assert "call-used" in out
        assert "a0" in out


class TestDisasm:
    def test_listing(self, image_path, capsys):
        assert main(["disasm", image_path]) == 0
        out = capsys.readouterr().out
        assert "helper:" in out
        assert "addq" in out


class TestRun:
    def test_outputs(self, image_path, capsys):
        assert main(["run", image_path]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0] == "6"
        assert "steps=" in out


class TestGenerate:
    def test_generates_image(self, tmp_path, capsys):
        output = str(tmp_path / "bench.sax")
        code = main(
            ["generate", "compress", "-o", output, "--scale", "0.05",
             "--seed", "3"]
        )
        assert code == 0
        assert "routines" in capsys.readouterr().out
        assert main(["run", output, "--max-steps", "2000000"]) == 0


class TestOptimize:
    def test_optimize_writes_image(self, image_path, tmp_path, capsys):
        output = str(tmp_path / "opt.sax")
        assert main(["optimize", image_path, "-o", output, "--verify"]) == 0
        out = capsys.readouterr().out
        assert "instructions removed" in out
        assert "dynamic improvement" in out
        # The optimized image must still run and print the same value.
        assert main(["run", output]) == 0
        assert capsys.readouterr().out.splitlines()[0] == "6"


class TestAnalyzeOutputs:
    def test_save_summaries(self, image_path, tmp_path, capsys):
        sidecar = str(tmp_path / "prog.sum")
        assert main(["analyze", image_path, "--save-summaries", sidecar]) == 0
        from repro.interproc.persist import image_fingerprint, load_summaries

        with open(image_path, "rb") as handle:
            fingerprint = image_fingerprint(handle.read())
        with open(sidecar, "rb") as handle:
            result = load_summaries(handle.read(), fingerprint)
        assert "helper" in result

    def test_summaries_subcommand(self, image_path, tmp_path, capsys):
        sidecar = str(tmp_path / "prog.sum")
        assert main(["analyze", image_path, "--save-summaries", sidecar]) == 0
        capsys.readouterr()
        assert main(["summaries", sidecar]) == 0
        out = capsys.readouterr().out
        assert "helper:" in out
        assert "call-used" in out

    def test_annotate_flag(self, image_path, capsys):
        assert main(["analyze", image_path, "--annotate"]) == 0
        out = capsys.readouterr().out
        assert "used on return" in out

    def test_dot_export(self, image_path, tmp_path, capsys):
        dot_path = str(tmp_path / "psg.dot")
        assert main(
            ["analyze", image_path, "--dot", dot_path, "--dot-routine", "main"]
        ) == 0
        content = open(dot_path).read()
        assert content.startswith("digraph")
        assert "entry@main" in content


class TestBenchmarks:
    def test_lists_all_sixteen(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "compress" in out and "winword" in out
        assert len(out.strip().splitlines()) == 16
