"""Tests for the spike-analyze command-line interface."""

import json

import pytest

from repro.cli import main
from repro.program.asm import assemble

SOURCE = """
.routine main export
    li  a0, 5
    bsr ra, helper
    bis zero, v0, a0
    output
    halt
.routine helper
    addq a0, #1, v0
    ret (ra)
"""


@pytest.fixture()
def image_path(tmp_path):
    path = tmp_path / "prog.sax"
    path.write_bytes(assemble(SOURCE).to_bytes())
    return str(path)


class TestAnalyze:
    def test_analyze_prints_measurements(self, image_path, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert main(["analyze", image_path]) == 0
        out = capsys.readouterr().out
        assert "routines:" in out
        assert "psg nodes:" in out
        assert "phase1" in out

    def test_analyze_routine_summary(self, image_path, capsys):
        assert main(["analyze", image_path, "-r", "helper"]) == 0
        out = capsys.readouterr().out
        assert "call-used" in out
        assert "a0" in out

    @pytest.mark.parametrize("labeling", ["batched", "per-target", "per-edge"])
    def test_labeling_strategies_identical_summaries(
        self, labeling, image_path, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        sidecar = str(tmp_path / f"{labeling}.sum")
        assert main(
            ["analyze", image_path, "--labeling", labeling,
             "--save-summaries", sidecar]
        ) == 0
        baseline = str(tmp_path / "default.sum")
        assert main(
            ["analyze", image_path, "--save-summaries", baseline]
        ) == 0
        capsys.readouterr()
        with open(sidecar, "rb") as handle:
            with open(baseline, "rb") as expected:
                assert handle.read() == expected.read()

    def test_bad_labeling_rejected(self, image_path, capsys):
        with pytest.raises(SystemExit):
            main(["analyze", image_path, "--labeling", "bogus"])


class TestDisasm:
    def test_listing(self, image_path, capsys):
        assert main(["disasm", image_path]) == 0
        out = capsys.readouterr().out
        assert "helper:" in out
        assert "addq" in out


class TestRun:
    def test_outputs(self, image_path, capsys):
        assert main(["run", image_path]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0] == "6"
        assert "steps=" in out


class TestGenerate:
    def test_generates_image(self, tmp_path, capsys):
        output = str(tmp_path / "bench.sax")
        code = main(
            ["generate", "compress", "-o", output, "--scale", "0.05",
             "--seed", "3"]
        )
        assert code == 0
        assert "routines" in capsys.readouterr().out
        assert main(["run", output, "--max-steps", "2000000"]) == 0


class TestOptimize:
    def test_optimize_writes_image(self, image_path, tmp_path, capsys):
        output = str(tmp_path / "opt.sax")
        assert main(["optimize", image_path, "-o", output, "--verify"]) == 0
        out = capsys.readouterr().out
        assert "instructions removed" in out
        assert "dynamic improvement" in out
        # The optimized image must still run and print the same value.
        assert main(["run", output]) == 0
        assert capsys.readouterr().out.splitlines()[0] == "6"


class TestAnalyzeOutputs:
    def test_save_summaries(self, image_path, tmp_path, capsys):
        sidecar = str(tmp_path / "prog.sum")
        assert main(["analyze", image_path, "--save-summaries", sidecar]) == 0
        from repro.interproc.persist import image_fingerprint, load_summaries

        with open(image_path, "rb") as handle:
            fingerprint = image_fingerprint(handle.read())
        with open(sidecar, "rb") as handle:
            result = load_summaries(handle.read(), fingerprint)
        assert "helper" in result

    def test_summaries_subcommand(self, image_path, tmp_path, capsys):
        sidecar = str(tmp_path / "prog.sum")
        assert main(["analyze", image_path, "--save-summaries", sidecar]) == 0
        capsys.readouterr()
        assert main(["summaries", sidecar]) == 0
        out = capsys.readouterr().out
        assert "helper:" in out
        assert "call-used" in out

    def test_annotate_flag(self, image_path, capsys):
        assert main(["analyze", image_path, "--annotate"]) == 0
        out = capsys.readouterr().out
        assert "used on return" in out

    def test_dot_export(self, image_path, tmp_path, capsys):
        dot_path = str(tmp_path / "psg.dot")
        assert main(
            ["analyze", image_path, "--dot", dot_path, "--dot-routine", "main"]
        ) == 0
        content = open(dot_path).read()
        assert content.startswith("digraph")
        assert "entry@main" in content


class TestBenchmarks:
    def test_lists_all_sixteen(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "compress" in out and "winword" in out
        assert len(out.strip().splitlines()) == 16


class TestParallelFlag:
    def test_jobs_two_prints_pool_stats(self, image_path, capsys):
        assert main(["analyze", image_path, "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "jobs:               2" in out
        assert "pool utilization:" in out

    def test_jobs_same_summaries_as_serial(self, image_path, capsys):
        assert main(["analyze", image_path, "-r", "helper"]) == 0
        serial = capsys.readouterr().out
        assert main(
            ["analyze", image_path, "--jobs", "2", "-r", "helper"]
        ) == 0
        parallel = capsys.readouterr().out
        split = "\nhelper:\n"
        assert serial.split(split)[1] == parallel.split(split)[1]

    def test_annotate_needs_serial(self, image_path, capsys):
        code = main(["analyze", image_path, "--annotate", "--jobs", "2"])
        assert code == 2
        assert "whole-program PSG" in capsys.readouterr().err


class TestJsonFlag:
    def test_serial_payload(self, image_path, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert main(["analyze", image_path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "serial"
        assert payload["routines"] == 2
        assert payload["instructions"] > 0
        assert "stage_seconds" in payload

    def test_parallel_payload(self, image_path, capsys):
        assert main(["analyze", image_path, "--jobs", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "parallel"
        assert payload["jobs"] == 2
        assert payload["shard_count"] >= 1

    def test_incremental_payload(self, image_path, capsys):
        args = ["analyze", image_path, "--incremental", "--json"]
        assert main(args) == 0
        captured = capsys.readouterr()
        # The cache-write note must not pollute the JSON stdout.
        assert "wrote cache" in captured.err
        cold = json.loads(captured.out)
        assert cold["kind"] == "incremental"
        assert cold["mode"] == "cold"
        assert main(args) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["mode"] == "warm"
        assert warm["phase2_solved"] == 0

    def test_save_summaries_keeps_json_stdout_parseable(
        self, image_path, tmp_path, capsys
    ):
        out = tmp_path / "a.sum"
        args = [
            "analyze", image_path, "--json", "--jobs", "1",
            "--save-summaries", str(out),
        ]
        assert main(args) == 0
        captured = capsys.readouterr()
        assert "wrote summaries" in captured.err
        payload = json.loads(captured.out)
        assert payload["kind"] == "serial"
        assert out.read_bytes().startswith(b"SUM")


class TestExitCodes:
    def test_missing_image_is_3(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path / "absent.sax")]) == 3
        assert "cannot load image" in capsys.readouterr().err

    def test_corrupt_image_is_3(self, tmp_path, capsys):
        bad = tmp_path / "bad.sax"
        bad.write_bytes(b"definitely not an image")
        assert main(["analyze", str(bad)]) == 3
        assert main(["disasm", str(bad)]) == 3
        assert main(["run", str(bad)]) == 3
        assert main(["optimize", str(bad), "-o", str(tmp_path / "o")]) == 3

    def test_analysis_failure_is_4(self, image_path, capsys, monkeypatch):
        from repro.interproc import parallel

        def explode(phase, shard_index):
            raise RuntimeError("synthetic failure")

        monkeypatch.setattr(parallel, "_FAULT_HOOK", explode)
        assert main(["analyze", image_path, "--jobs", "2"]) == 4
        assert "analysis failed" in capsys.readouterr().err

    def test_unwritable_cache_is_5(self, image_path, tmp_path, capsys):
        cache_dir = tmp_path / "cache.sum2"
        cache_dir.mkdir()
        code = main(
            ["analyze", image_path, "--incremental", "--cache",
             str(cache_dir)]
        )
        assert code == 5
        captured = capsys.readouterr()
        assert "could not write cache" in captured.err
        # The analysis itself still ran and printed its report.
        assert "reanalyzed:" in captured.out

    def test_unwritable_trace_is_5(self, image_path, tmp_path, capsys):
        trace_dir = tmp_path / "trace.json"
        trace_dir.mkdir()
        code = main(["analyze", image_path, "--trace", str(trace_dir)])
        assert code == 5
        captured = capsys.readouterr()
        assert "could not write trace" in captured.err
        # The analysis itself still ran and printed its report.
        assert "routines:" in captured.out

    def test_bad_log_level_is_2(self, image_path, capsys):
        assert main(["--log-level", "bogus", "analyze", image_path]) == 2
        assert "bogus" in capsys.readouterr().err


class TestQuerySubcommand:
    def test_cold_then_warm(self, image_path, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert main(["query", image_path, "helper"]) == 0
        first = capsys.readouterr().out
        assert "routine:       helper" in first
        assert "cold (no cache file)" in first
        assert "live-at-entry" in first
        assert "wrote cache" in first
        import os as _os

        assert _os.path.exists(image_path + ".sum2")
        assert main(["query", image_path, "helper"]) == 0
        second = capsys.readouterr().out
        assert "warm" in second
        assert "reanalyzed:    0 routines" in second

    def test_json_payload(self, image_path, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert main(["query", image_path, "main", "--json"]) == 0
        captured = capsys.readouterr()
        # The cache-write note must not pollute the JSON stdout.
        assert "wrote cache" in captured.err
        payload = json.loads(captured.out)
        assert payload["kind"] == "query"
        assert payload["routine"] == "main"
        assert payload["summary"]["routine"] == "main"
        assert "live_at_entry" in payload["summary"]
        assert "live_at_exit" in payload["summary"]
        assert "query.requests" in payload["counters"]

    def test_stats_block(self, image_path, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert main(["query", image_path, "helper", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "counters:" in out
        assert "query.requests" in out

    def test_unknown_routine_is_2(self, image_path, capsys):
        assert main(["query", image_path, "nonexistent"]) == 2
        assert "no routine named 'nonexistent'" in capsys.readouterr().err

    def test_missing_image_is_3(self, tmp_path, capsys):
        assert main(["query", str(tmp_path / "absent.sax"), "main"]) == 3
        assert "cannot load image" in capsys.readouterr().err

    def test_unwritable_cache_is_5(self, image_path, tmp_path, capsys):
        cache_dir = tmp_path / "cache.sum2"
        cache_dir.mkdir()
        code = main(
            ["query", image_path, "helper", "--cache", str(cache_dir)]
        )
        assert code == 5
        captured = capsys.readouterr()
        assert "could not write cache" in captured.err
        # The query itself still ran and printed its answer.
        assert "live-at-entry" in captured.out

    def test_shares_sidecar_with_incremental_analyze(
        self, image_path, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        cache = str(tmp_path / "facts.sum2")
        assert main(
            ["analyze", image_path, "--incremental", "--cache", cache]
        ) == 0
        capsys.readouterr()
        assert main(
            ["query", image_path, "helper", "--cache", cache]
        ) == 0
        out = capsys.readouterr().out
        assert "warm" in out
        assert "reanalyzed:    0 routines" in out
        # And the refreshed sidecar warms a later incremental run.
        assert main(
            ["analyze", image_path, "--incremental", "--cache", cache]
        ) == 0
        assert "reanalyzed:    0 routines" in capsys.readouterr().out


class TestJobsEnvHardening:
    """Malformed REPRO_JOBS is a usage error (exit 2), not a traceback;
    0 and negative keep their documented one-worker-per-CPU meaning."""

    @pytest.mark.parametrize(
        "args",
        [["analyze"], ["analyze", "--incremental"], ["query", "helper"]],
        ids=["analyze", "incremental", "query"],
    )
    def test_garbage_value_is_2(self, args, image_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "banana")
        command = [args[0], image_path] + args[1:]
        assert main(command) == 2
        err = capsys.readouterr().err
        assert "REPRO_JOBS must be an integer" in err
        assert "banana" in err

    @pytest.mark.parametrize("value", ["0", "-3"])
    def test_zero_and_negative_mean_one_per_cpu(
        self, value, image_path, capsys, monkeypatch
    ):
        from repro.interproc import parallel

        monkeypatch.setenv("REPRO_JOBS", value)
        monkeypatch.setattr(
            parallel.multiprocessing, "cpu_count", lambda: 2
        )
        assert main(["analyze", image_path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "parallel"
        assert payload["jobs"] == 2
        # query validates the same setting (and solves serially).
        assert main(["query", image_path, "helper"]) == 0
        assert "routine:       helper" in capsys.readouterr().out


class TestAnnotateJobsWarning:
    def test_forced_serial_warns_when_env_set(
        self, image_path, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert main(["analyze", image_path, "--annotate"]) == 0
        captured = capsys.readouterr()
        assert "force a serial solve" in captured.err
        assert "ignoring REPRO_JOBS" in captured.err
        assert "call-used" in captured.out

    def test_no_warning_without_env(self, image_path, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert main(["analyze", image_path, "--annotate"]) == 0
        assert "force a serial solve" not in capsys.readouterr().err


class TestStatsFlag:
    """--stats works for every analyze mode, not just --incremental."""

    def test_cold_serial_stats(self, image_path, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert main(["analyze", image_path, "--stats"]) == 0
        out = capsys.readouterr().out
        assert "counters:" in out
        assert "solver.iterations{phase=phase1}" in out
        assert "psg.nodes" in out

    def test_cold_parallel_stats(self, image_path, capsys):
        assert main(["analyze", image_path, "--jobs", "2", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "pool utilization:" in out
        assert "counters:" in out
        assert "shards.solved{phase=phase1}" in out


class TestTraceFlag:
    def test_trace_writes_chrome_trace_json(
        self, image_path, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        trace = tmp_path / "trace.json"
        assert main(["analyze", image_path, "--trace", str(trace)]) == 0
        assert "wrote trace to" in capsys.readouterr().out
        document = json.loads(trace.read_text())
        events = document["traceEvents"]
        durations = [event for event in events if event["ph"] == "X"]
        assert durations
        names = {event["name"] for event in durations}
        assert "analyze" in names
        assert "psg.build" in names
        for event in durations:
            assert event["ts"] >= 0 and event["dur"] >= 0

    def test_trace_with_json_keeps_stdout_parseable(
        self, image_path, tmp_path, capsys
    ):
        trace = tmp_path / "trace.json"
        assert main(
            ["analyze", image_path, "--json", "--trace", str(trace)]
        ) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["kind"] in ("serial", "parallel")
        assert "wrote trace to" in captured.err


class TestReportSubcommand:
    def test_report_prints_hot_routine_table(self, image_path, capsys):
        assert main(["report", image_path]) == 0
        out = capsys.readouterr().out
        assert "Hot routines by worklist visits" in out
        assert "Routine" in out and "Phase1 visits" in out
        assert "main" in out and "helper" in out
        assert "solver iterations:" in out

    def test_report_json(self, image_path, capsys):
        assert main(["report", image_path, "--json", "--top", "1"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["hot_routines"]) == 1
        row = payload["hot_routines"][0]
        assert row["total"] == row["phase1"] + row["phase2"] > 0
        assert "solver.iterations{phase=phase1}" in payload["counters"]

    def test_report_missing_image_is_3(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "absent.sax")]) == 3
        assert "cannot load image" in capsys.readouterr().err

    def test_report_restores_per_routine_flag(self, image_path, capsys):
        from repro.obs import REGISTRY

        assert REGISTRY.per_routine is False
        assert main(["report", image_path]) == 0
        assert REGISTRY.per_routine is False


class TestJsonCounters:
    def test_payload_includes_counters(self, image_path, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert main(["analyze", image_path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        counters = payload["counters"]
        assert counters["solver.iterations{phase=phase1}"] > 0
        assert counters["solver.iterations{phase=phase2}"] > 0
        # Seeded keys are present even when the run never touched them.
        assert counters["cache.hit"] == 0
        assert counters["cache.miss"] == 0

    def test_incremental_payload_counts_cache_verdicts(
        self, image_path, tmp_path, capsys
    ):
        cache = str(tmp_path / "prog.sum2")
        args = [
            "analyze", image_path, "--incremental", "--cache", cache,
            "--json",
        ]
        assert main(args) == 0
        cold = json.loads(capsys.readouterr().out.split("wrote cache")[0])
        assert cold["counters"]["cache.miss"] == 2
        assert cold["counters"]["cache.hit"] == 0
        assert main(args) == 0
        warm = json.loads(capsys.readouterr().out.split("wrote cache")[0])
        assert warm["counters"]["cache.hit"] == 2
        assert warm["counters"]["cache.miss"] == 0


class TestIncrementalParallel:
    def test_warm_jobs_two_with_stats(self, image_path, tmp_path, capsys):
        cache = str(tmp_path / "prog.sum2")
        base = ["analyze", image_path, "--incremental", "--cache", cache]
        assert main(base) == 0
        capsys.readouterr()
        assert main(base + ["--jobs", "2", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "mode:               warm" in out
        assert "pool utilization:" in out


class TestAtomicByproductWrites:
    """A writer that dies mid-dump must leave the previous sidecar
    intact — never a truncated file that silently forces the next run
    cold (or worse, fails to parse)."""

    def _cold_cache(self, image_path, tmp_path):
        cache = str(tmp_path / "prog.sum2")
        assert main(
            ["analyze", image_path, "--incremental", "--cache", cache]
        ) == 0
        with open(cache, "rb") as handle:
            return cache, handle.read()

    def test_failed_replace_keeps_previous_cache(
        self, image_path, tmp_path, monkeypatch, capsys
    ):
        import os

        cache, good = self._cold_cache(image_path, tmp_path)
        real_replace = os.replace

        def failing_replace(src, dst, *args, **kwargs):
            if str(dst) == cache:
                raise OSError("simulated crash mid-dump")
            return real_replace(src, dst, *args, **kwargs)

        monkeypatch.setattr("repro.cli.os.replace", failing_replace)
        code = main(["analyze", image_path, "--incremental", "--cache", cache])
        assert code == 5  # EXIT_CACHE_IO
        assert "could not write cache" in capsys.readouterr().err
        with open(cache, "rb") as handle:
            assert handle.read() == good
        # The aborted write cleaned up its temp file.
        assert [p.name for p in tmp_path.iterdir() if ".tmp." in p.name] == []

    def test_sigkill_mid_dump_keeps_previous_cache(self, image_path, tmp_path):
        import os
        import subprocess
        import sys

        cache, good = self._cold_cache(image_path, tmp_path)
        # Re-run the CLI in a child that SIGKILLs itself at the rename:
        # the temp file is fully written, the dump genuinely dies, and
        # the published sidecar must still be the previous bytes.
        script = (
            "import os, signal, sys\n"
            "from repro.cli import main\n"
            "real = os.replace\n"
            "def die(src, dst):\n"
            "    if str(dst) == sys.argv[2]:\n"
            "        os.kill(os.getpid(), signal.SIGKILL)\n"
            "    return real(src, dst)\n"
            "os.replace = die\n"
            "sys.exit(main(['analyze', sys.argv[1], '--incremental',\n"
            "               '--cache', sys.argv[2]]))\n"
        )
        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.run(
            [sys.executable, "-c", script, image_path, cache],
            env=env, cwd=os.path.dirname(os.path.dirname(__file__)),
            capture_output=True,
        )
        assert proc.returncode == -9
        with open(cache, "rb") as handle:
            assert handle.read() == good
        # The orphaned temp does not confuse the next warm run.
        assert main(
            ["analyze", image_path, "--incremental", "--cache", cache]
        ) == 0

    def test_failed_summaries_write_keeps_previous_file(
        self, image_path, tmp_path, monkeypatch, capsys
    ):
        import os

        sidecar = str(tmp_path / "prog.sum")
        assert main(
            ["analyze", image_path, "--save-summaries", sidecar]
        ) == 0
        with open(sidecar, "rb") as handle:
            good = handle.read()
        real_replace = os.replace

        def failing_replace(src, dst, *args, **kwargs):
            if str(dst) == sidecar:
                raise OSError("simulated crash mid-dump")
            return real_replace(src, dst, *args, **kwargs)

        monkeypatch.setattr("repro.cli.os.replace", failing_replace)
        code = main(["analyze", image_path, "--save-summaries", sidecar])
        assert code == 5
        with open(sidecar, "rb") as handle:
            assert handle.read() == good
