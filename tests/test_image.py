"""Tests for the SAX executable image format."""

import pytest

from repro.isa.encoding import encode_stream
from repro.isa.instructions import Instruction, Opcode
from repro.program.image import (
    DEFAULT_DATA_BASE,
    DEFAULT_TEXT_BASE,
    ExecutableImage,
    ImageFormatError,
    JumpTableInfo,
    Symbol,
    pack_jump_table,
)


def _code(count: int) -> bytes:
    return encode_stream([Instruction(Opcode.HALT)] * count)


def _image(**overrides) -> ExecutableImage:
    fields = dict(
        text=_code(4),
        data=b"\x00" * 32,
        symbols=[
            Symbol("main", DEFAULT_TEXT_BASE, 8, exported=True),
            Symbol("f", DEFAULT_TEXT_BASE + 8, 8),
        ],
        entry_point=DEFAULT_TEXT_BASE,
    )
    fields.update(overrides)
    return ExecutableImage(**fields)


class TestSymbol:
    def test_end(self):
        assert Symbol("f", 100, 8).end == 108

    def test_empty_name_rejected(self):
        with pytest.raises(ImageFormatError):
            Symbol("", 0, 8)

    def test_unaligned_size_rejected(self):
        with pytest.raises(ImageFormatError):
            Symbol("f", 0, 6)

    def test_negative_fields_rejected(self):
        with pytest.raises(ImageFormatError):
            Symbol("f", -4, 8)


class TestValidation:
    def test_valid_image_passes(self):
        _image().validate()

    def test_unaligned_text_rejected(self):
        with pytest.raises(ImageFormatError):
            _image(text=b"\x00" * 6).validate()

    def test_duplicate_symbols_rejected(self):
        with pytest.raises(ImageFormatError, match="duplicate"):
            _image(
                symbols=[
                    Symbol("f", DEFAULT_TEXT_BASE, 8),
                    Symbol("f", DEFAULT_TEXT_BASE + 8, 8),
                ]
            ).validate()

    def test_overlapping_symbols_rejected(self):
        with pytest.raises(ImageFormatError, match="overlap"):
            _image(
                symbols=[
                    Symbol("a", DEFAULT_TEXT_BASE, 12),
                    Symbol("b", DEFAULT_TEXT_BASE + 8, 8),
                ]
            ).validate()

    def test_symbol_outside_text_rejected(self):
        with pytest.raises(ImageFormatError, match="outside text"):
            _image(symbols=[Symbol("a", DEFAULT_TEXT_BASE, 64)]).validate()

    def test_entry_point_must_be_inside_a_routine(self):
        with pytest.raises(ImageFormatError, match="entry point"):
            _image(entry_point=DEFAULT_TEXT_BASE + 100).validate()

    def test_jump_table_outside_data_rejected(self):
        with pytest.raises(ImageFormatError, match="outside data"):
            _image(
                jump_tables=[
                    JumpTableInfo(DEFAULT_TEXT_BASE, DEFAULT_DATA_BASE + 64, 2)
                ]
            ).validate()

    def test_jump_table_owner_outside_text_rejected(self):
        with pytest.raises(ImageFormatError, match="owner"):
            _image(
                jump_tables=[JumpTableInfo(0x1, DEFAULT_DATA_BASE, 2)]
            ).validate()

    def test_empty_jump_table_rejected(self):
        with pytest.raises(ImageFormatError):
            JumpTableInfo(DEFAULT_TEXT_BASE, DEFAULT_DATA_BASE, 0)

    def test_data_relocation_outside_data_rejected(self):
        with pytest.raises(ImageFormatError, match="relocation"):
            _image(data_relocations=[DEFAULT_DATA_BASE + 32]).validate()


class TestLookups:
    def test_symbol_by_name(self):
        image = _image()
        assert image.symbol_by_name("main").address == DEFAULT_TEXT_BASE
        with pytest.raises(KeyError):
            image.symbol_by_name("nope")

    def test_symbol_at(self):
        image = _image()
        assert image.symbol_at(DEFAULT_TEXT_BASE + 8).name == "f"
        assert image.symbol_at(DEFAULT_TEXT_BASE + 4) is None

    def test_read_jump_table(self):
        targets = (DEFAULT_TEXT_BASE, DEFAULT_TEXT_BASE + 4)
        image = _image(
            data=pack_jump_table(targets) + b"\x00" * 16,
            jump_tables=[JumpTableInfo(DEFAULT_TEXT_BASE, DEFAULT_DATA_BASE, 2)],
        )
        info = image.jump_tables[0]
        assert image.read_jump_table(info) == targets
        assert image.jump_table_for(DEFAULT_TEXT_BASE) is info
        assert image.jump_table_for(DEFAULT_TEXT_BASE + 4) is None

    def test_instruction_count(self):
        assert _image().instruction_count == 4


class TestSerialization:
    def test_roundtrip(self):
        image = _image(
            data=pack_jump_table((DEFAULT_TEXT_BASE,)) + b"\xAB" * 24,
            jump_tables=[JumpTableInfo(DEFAULT_TEXT_BASE, DEFAULT_DATA_BASE, 1)],
            data_relocations=[DEFAULT_DATA_BASE + 8],
        )
        restored = ExecutableImage.from_bytes(image.to_bytes())
        assert restored.text == image.text
        assert restored.data == image.data
        assert restored.symbols == image.symbols
        assert restored.jump_tables == image.jump_tables
        assert restored.data_relocations == image.data_relocations
        assert restored.entry_point == image.entry_point

    def test_bad_magic_rejected(self):
        blob = bytearray(_image().to_bytes())
        blob[:4] = b"NOPE"
        with pytest.raises(ImageFormatError, match="magic"):
            ExecutableImage.from_bytes(bytes(blob))

    def test_truncated_rejected(self):
        blob = _image().to_bytes()
        with pytest.raises(ImageFormatError):
            ExecutableImage.from_bytes(blob[:10])
        with pytest.raises(ImageFormatError):
            ExecutableImage.from_bytes(blob[:-4])

    def test_exported_flag_survives(self):
        restored = ExecutableImage.from_bytes(_image().to_bytes())
        assert restored.symbol_by_name("main").exported
        assert not restored.symbol_by_name("f").exported
