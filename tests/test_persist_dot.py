"""Tests for summary persistence and DOT export."""

import pytest

from repro.cfg.build import build_cfg
from tests.facade import analyze_program
from repro.interproc.persist import (
    SummaryFormatError,
    dump_summaries,
    image_fingerprint,
    load_summaries,
)
from repro.program.rewrite import program_to_image
from repro.reporting.dot import cfg_to_dot, psg_to_dot


class TestPersistence:
    def test_roundtrip_quick(self, quick_program):
        analysis = analyze_program(quick_program)
        blob = dump_summaries(analysis.result)
        restored = load_summaries(blob)
        assert restored.equal_summaries(analysis.result)
        assert analysis.result.diff(restored) == []

    def test_roundtrip_generated(self, small_benchmark):
        analysis = analyze_program(small_benchmark)
        blob = dump_summaries(analysis.result)
        restored = load_summaries(blob)
        assert restored.equal_summaries(analysis.result)

    def test_roundtrip_with_hints(self):
        from tests.test_hints import _dispatch_program

        program = _dispatch_program()
        analysis = analyze_program(program)
        restored = load_summaries(dump_summaries(analysis.result))
        site = restored["main"].call_sites[0]
        assert set(site.site.targets) == {"alpha", "beta"}

    def test_fingerprint_binding(self, quick_program):
        analysis = analyze_program(quick_program)
        image_bytes = program_to_image(quick_program).to_bytes()
        fingerprint = image_fingerprint(image_bytes)
        blob = dump_summaries(analysis.result, fingerprint)
        # Matching fingerprint loads.
        load_summaries(blob, fingerprint)
        # Stale fingerprint is rejected.
        with pytest.raises(SummaryFormatError, match="stale"):
            load_summaries(blob, fingerprint ^ 1)
        # Skipping the check loads regardless.
        load_summaries(blob, 0)

    def test_fingerprint_tracks_content(self):
        assert image_fingerprint(b"abc") != image_fingerprint(b"abd")
        assert image_fingerprint(b"abc") == image_fingerprint(b"abc")

    def test_bad_magic_rejected(self):
        with pytest.raises(SummaryFormatError, match="magic"):
            load_summaries(b"NOPE" + b"\x00" * 16)

    def test_truncation_rejected(self, quick_program):
        analysis = analyze_program(quick_program)
        blob = dump_summaries(analysis.result)
        with pytest.raises(SummaryFormatError):
            load_summaries(blob[:-3])

    def test_trailing_garbage_rejected(self, quick_program):
        analysis = analyze_program(quick_program)
        blob = dump_summaries(analysis.result)
        with pytest.raises(SummaryFormatError, match="trailing"):
            load_summaries(blob + b"\x00")

    def test_deterministic(self, small_benchmark):
        analysis = analyze_program(small_benchmark)
        assert dump_summaries(analysis.result) == dump_summaries(
            analysis.result
        )


class TestDotExport:
    def test_cfg_dot_shape(self, quick_program):
        cfg = build_cfg(quick_program, quick_program.routine("main"))
        dot = cfg_to_dot(cfg)
        assert dot.startswith('digraph "main_cfg"')
        assert dot.rstrip().endswith("}")
        assert "b0" in dot
        assert "->" in dot

    def test_cfg_dot_truncates_long_blocks(self, quick_program):
        cfg = build_cfg(quick_program, quick_program.routine("main"))
        dot = cfg_to_dot(cfg, max_instructions=1)
        assert "... +" in dot

    def test_psg_dot_whole_program(self, quick_program):
        analysis = analyze_program(quick_program)
        dot = psg_to_dot(analysis.psg)
        assert "entry@main:0" in dot
        assert "entry@helper:0" in dot
        assert "style=dashed" in dot  # the call-return edge

    def test_psg_dot_single_routine(self, quick_program):
        analysis = analyze_program(quick_program)
        dot = psg_to_dot(analysis.psg, routine="main")
        assert "entry@main:0" in dot
        # helper's own nodes are excluded; only main's call-return edge
        # may mention it as the callee label.
        assert "entry@helper" not in dot
        assert "exit@helper" not in dot

    def test_psg_dot_edge_labels_optional(self, quick_program):
        analysis = analyze_program(quick_program)
        with_labels = psg_to_dot(analysis.psg, show_labels=True)
        without = psg_to_dot(analysis.psg, show_labels=False)
        assert "U:{" in with_labels
        assert "U:{" not in without

    def test_dot_valid_for_branch_nodes(self, switchy_benchmark):
        analysis = analyze_program(switchy_benchmark)
        dot = psg_to_dot(analysis.psg, show_labels=False)
        assert "diamond" in dot  # at least one branch node rendered
        # Balanced braces (cheap structural sanity).
        assert dot.count("{") == dot.count("}") + dot.count("\\{")
