"""Contract tests for the :mod:`repro.api` session facade.

The facade is the supported entry point: everything a caller needs —
construction from bytes/image/path/program, serial and parallel
analysis, incremental re-analysis, optimization, summaries and
metrics — must be reachable from :class:`repro.api.AnalysisSession`
without importing submodule internals.  The legacy free functions are
deprecated shims that must keep forwarding their arguments faithfully.
"""

import json
import warnings

import pytest

from repro.api import AnalysisConfig, AnalysisError, AnalysisSession
from repro.interproc import dump_summaries
from repro.program.asm import assemble
from repro.program.image import ImageFormatError

SOURCE = """
.routine main export
    li  a0, 5
    bsr ra, helper
    bis zero, v0, a0
    output
    halt
.routine helper
    addq a0, #1, v0
    ret (ra)
"""


@pytest.fixture(scope="module")
def image():
    return assemble(SOURCE)


@pytest.fixture(scope="module")
def image_bytes(image):
    return image.to_bytes()


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------


class TestConstruction:
    def test_from_image_bytes(self, image_bytes):
        session = AnalysisSession.from_image_bytes(image_bytes)
        assert session.program.routine_count == 2
        assert session.image_fingerprint != 0

    def test_from_image_bytes_rejects_garbage(self):
        with pytest.raises(ImageFormatError):
            AnalysisSession.from_image_bytes(b"not an image")

    def test_from_image(self, image):
        session = AnalysisSession.from_image(image)
        assert "helper" in session.program.routine_names()

    def test_from_path(self, image_bytes, tmp_path):
        path = tmp_path / "prog.sax"
        path.write_bytes(image_bytes)
        session = AnalysisSession.from_path(str(path))
        assert session.program.routine_count == 2

    def test_from_path_missing_file(self, tmp_path):
        with pytest.raises(OSError):
            AnalysisSession.from_path(str(tmp_path / "absent.sax"))

    def test_from_program_has_no_fingerprint(self, quick_program):
        session = AnalysisSession.from_program(quick_program)
        assert session.image_fingerprint == 0

    def test_config_retained(self, quick_program):
        config = AnalysisConfig(jobs=2)
        session = AnalysisSession.from_program(quick_program, config)
        assert session.config is config

    def test_construction_does_not_analyze(self, quick_program):
        session = AnalysisSession.from_program(quick_program)
        assert session.metrics() == {}


# ----------------------------------------------------------------------
# Analyses through the facade
# ----------------------------------------------------------------------


class TestAnalyze:
    def test_serial(self, quick_program, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        session = AnalysisSession.from_program(quick_program)
        analysis = session.analyze()
        assert "helper" in analysis.result.summaries
        assert session.metrics()["kind"] == "serial"

    def test_parallel_matches_serial(self, quick_program):
        serial = AnalysisSession.from_program(quick_program).analyze()
        session = AnalysisSession.from_program(quick_program)
        analysis = session.analyze(jobs=2)
        assert dump_summaries(analysis.result) == dump_summaries(
            serial.result
        )
        assert session.metrics()["kind"] == "parallel"

    def test_incremental_cold_then_warm(self, quick_program):
        session = AnalysisSession.from_program(quick_program)
        cold = session.analyze_incremental()
        assert cold.metrics.cold
        warm = session.analyze_incremental(cache=cold.cache)
        assert warm.metrics.phase1_solved == 0
        assert warm.metrics.phase2_solved == 0
        assert session.metrics()["kind"] == "incremental"

    def test_optimize(self, quick_program):
        session = AnalysisSession.from_program(quick_program)
        result = session.optimize(verify=True)
        assert result.behaviour_preserved()
        # The session itself is untouched by optimization.
        assert session.program is quick_program

    def test_optimize_forwards_passes(self, quick_program):
        session = AnalysisSession.from_program(quick_program)
        result = session.optimize(passes=("dce",))
        assert [report.name for report in result.reports] == ["dce"]

    def test_optimize_rejects_unknown_pass(self, quick_program):
        session = AnalysisSession.from_program(quick_program)
        with pytest.raises(ValueError, match="unknown pass"):
            session.optimize(passes=("nonsense",))

    def test_summaries_lazily_analyzes(self, quick_program, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        session = AnalysisSession.from_program(quick_program)
        result = session.summaries()
        assert "helper" in result.summaries
        assert session.summary("helper") is result.summaries["helper"]
        assert session.metrics()["kind"] == "serial"

    def test_metrics_are_json_ready(self, quick_program):
        session = AnalysisSession.from_program(quick_program)
        session.analyze(jobs=2)
        payload = json.loads(json.dumps(session.metrics(), sort_keys=True))
        assert payload["kind"] == "parallel"
        assert payload["jobs"] == 2
        assert payload["routines"] == quick_program.routine_count


# ----------------------------------------------------------------------
# Worker-count resolution: explicit > config > environment > serial
# ----------------------------------------------------------------------


class TestJobsResolution:
    def test_env_var_enables_parallel(self, quick_program, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2")
        session = AnalysisSession.from_program(quick_program)
        session.analyze()
        assert session.metrics()["kind"] == "parallel"

    def test_explicit_beats_env(self, quick_program, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2")
        session = AnalysisSession.from_program(quick_program)
        session.analyze(jobs=1)
        assert session.metrics()["kind"] == "serial"

    def test_config_beats_env(self, quick_program, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        config = AnalysisConfig(jobs=2)
        session = AnalysisSession.from_program(quick_program, config)
        session.analyze()
        assert session.metrics()["jobs"] == 2

    def test_bad_env_value_raises(self, quick_program, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        session = AnalysisSession.from_program(quick_program)
        with pytest.raises(AnalysisError, match="REPRO_JOBS"):
            session.analyze()


# ----------------------------------------------------------------------
# The deprecated free functions are gone; the facade is the surface
# ----------------------------------------------------------------------


class TestShimRemoval:
    def test_free_functions_are_gone(self):
        import repro
        import repro.interproc
        import repro.interproc.analysis
        import repro.interproc.incremental
        import repro.opt
        import repro.opt.pipeline

        removed = {
            repro: ("analyze_program", "analyze_image", "optimize_program"),
            repro.interproc: ("analyze_program", "analyze_incremental"),
            repro.interproc.analysis: ("analyze_program", "analyze_image"),
            repro.interproc.incremental: ("analyze_incremental",),
            repro.opt: ("optimize_program",),
            repro.opt.pipeline: ("optimize_program",),
        }
        for module, names in removed.items():
            for name in names:
                assert not hasattr(module, name), (
                    f"{module.__name__}.{name} should have been removed"
                )

    def test_api_all_is_the_stable_surface(self):
        import repro.api as api

        assert set(api.__all__) == {
            "AnalysisConfig",
            "AnalysisError",
            "AnalysisResult",
            "AnalysisSession",
            "JobsConfigError",
            "QueryResult",
            "RoutineSummary",
            "SCHEMA_VERSION",
            "SummarySet",
            "UnknownRoutineError",
            "validate_payload",
        }
        for name in api.__all__:
            assert hasattr(api, name)

    def test_facade_paths_do_not_warn(self, quick_program):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            session = AnalysisSession.from_program(quick_program)
            session.analyze()
            session.analyze_incremental()
            session.optimize(passes=("dce",))
            session.to_json()


# ----------------------------------------------------------------------
# Top-level package exposure
# ----------------------------------------------------------------------


class TestTopLevelExports:
    def test_session_importable_from_repro(self):
        import repro

        assert repro.AnalysisSession is AnalysisSession
        assert repro.AnalysisError is AnalysisError
        assert "AnalysisSession" in repro.__all__
