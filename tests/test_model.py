"""Tests for the decoded program model."""

import pytest

from repro.isa.instructions import Instruction, Opcode
from repro.program.asm import assemble
from repro.program.disasm import disassemble_image
from repro.program.model import (
    Program,
    ProgramError,
    Routine,
    check_single_entry,
    program_statistics,
)


def _routine(name: str, address: int, count: int = 2) -> Routine:
    body = [Instruction(Opcode.ADDQ, ra=1, rb=2, rc=3)] * (count - 1)
    body.append(Instruction(Opcode.RET, rb=26))
    return Routine(name, address, body)


class TestRoutine:
    def test_addressing(self):
        routine = _routine("f", 0x1000, 3)
        assert routine.size == 12
        assert routine.end == 0x100C
        assert routine.address_of(2) == 0x1008
        assert routine.index_of(0x1004) == 1
        assert routine.contains(0x1008)
        assert not routine.contains(0x100C)

    def test_index_of_rejects_outside_and_unaligned(self):
        routine = _routine("f", 0x1000, 2)
        with pytest.raises(ProgramError):
            routine.index_of(0x1008)
        with pytest.raises(ProgramError):
            routine.index_of(0x1001)

    def test_empty_routine_rejected(self):
        with pytest.raises(ProgramError):
            Routine("f", 0x1000, [])

    def test_unaligned_address_rejected(self):
        with pytest.raises(ProgramError):
            _routine("f", 0x1001)

    def test_len_and_iter(self):
        routine = _routine("f", 0x1000, 3)
        assert len(routine) == 3
        assert len(list(routine)) == 3


class TestProgram:
    def _program(self) -> Program:
        return Program(
            routines=[_routine("b", 0x1010), _routine("a", 0x1000)],
            entry="a",
        )

    def test_lookup_by_name(self):
        program = self._program()
        assert program.routine("a").address == 0x1000
        with pytest.raises(ProgramError):
            program.routine("zz")

    def test_names_in_address_order(self):
        assert self._program().routine_names() == ["a", "b"]

    def test_entry_routine(self):
        assert self._program().entry_routine.name == "a"

    def test_routine_at_and_containing(self):
        program = self._program()
        assert program.routine_at(0x1010).name == "b"
        assert program.routine_at(0x1014) is None
        assert program.routine_containing(0x1014).name == "b"
        assert program.routine_containing(0x2000) is None

    def test_instruction_at(self):
        program = self._program()
        routine, index = program.instruction_at(0x1004)
        assert routine.name == "a" and index == 1
        with pytest.raises(ProgramError):
            program.instruction_at(0x9999 * 4)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ProgramError, match="duplicate"):
            Program(
                routines=[_routine("a", 0x1000), _routine("a", 0x1010)],
                entry="a",
            )

    def test_overlap_rejected(self):
        with pytest.raises(ProgramError, match="overlap"):
            Program(
                routines=[_routine("a", 0x1000, 4), _routine("b", 0x1008)],
                entry="a",
            )

    def test_missing_entry_rejected(self):
        with pytest.raises(ProgramError, match="entry"):
            Program(routines=[_routine("a", 0x1000)], entry="zz")

    def test_counts(self):
        program = self._program()
        assert program.routine_count == 2
        assert program.instruction_count == 4


class TestCheckSingleEntry:
    def test_valid_program_passes(self, quick_program):
        check_single_entry(quick_program)

    def test_branch_out_of_routine_rejected(self):
        routine = Routine(
            "f",
            0x1000,
            [Instruction(Opcode.BR, displacement=5),
             Instruction(Opcode.RET, rb=26)],
        )
        program = Program(routines=[routine], entry="f")
        with pytest.raises(ProgramError, match="outside the routine"):
            check_single_entry(program)

    def test_call_into_middle_rejected(self):
        caller = Routine(
            "caller",
            0x1000,
            [Instruction(Opcode.BSR, ra=26, displacement=2),
             Instruction(Opcode.RET, rb=26)],
        )
        callee = _routine("callee", 0x1008, 3)
        program = Program(routines=[caller, callee], entry="caller")
        with pytest.raises(ProgramError, match="not a routine entry"):
            check_single_entry(program)


class TestStatistics:
    def test_statistics_of_quick_program(self, quick_program):
        stats = program_statistics(quick_program)
        assert stats["routines"] == 2.0
        assert stats["instructions"] == float(quick_program.instruction_count)
        assert stats["calls_per_routine"] == 0.5  # one bsr over two routines
