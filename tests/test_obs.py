"""Tests for ``repro.obs`` — span tracing, counters, and logging."""

import io
import json
import logging
import os

import pytest

from repro.api import AnalysisSession
from repro.obs import (
    REGISTRY,
    MetricsRegistry,
    configure_logging,
    current_run_id,
    disable_tracing,
    enable_tracing,
    get_tracer,
    new_run_id,
    render_counters,
    render_key,
    resolve_level,
    span,
    tracing_enabled,
)
from repro.obs.metrics import SEEDED_KEYS
from repro.obs.tracer import NULL_SPAN, Tracer
from repro.program.asm import assemble

SOURCE = """
.routine main export
    li  a0, 5
    bsr ra, helper
    bis zero, v0, a0
    output
    halt
.routine helper
    addq a0, #1, v0
    ret (ra)
"""


@pytest.fixture(autouse=True)
def _reset_tracer():
    """Every test starts and ends with tracing off and a fresh buffer."""
    disable_tracing()
    yield
    disable_tracing()


class TestTracerSpans:
    def test_disabled_span_is_the_shared_null_instance(self):
        assert not tracing_enabled()
        assert span("anything", key="value") is NULL_SPAN
        assert span("other") is NULL_SPAN
        with span("nothing-recorded"):
            pass
        assert get_tracer().spans == []

    def test_enabled_spans_record_name_args_and_duration(self):
        tracer = enable_tracing()
        with span("outer", routine="main"):
            with span("inner"):
                pass
        names = [record[0] for record in tracer.spans]
        assert names == ["inner", "outer"]  # inner exits first
        outer = tracer.spans[1]
        assert outer[2] >= 0  # duration
        assert outer[3] == os.getpid()
        assert outer[5] == {"routine": "main"}

    def test_nesting_is_recoverable_from_intervals(self):
        tracer = enable_tracing()
        with span("outer"):
            with span("inner"):
                pass
        inner, outer = tracer.spans
        assert outer[1] <= inner[1]  # outer starts first
        assert inner[1] + inner[2] <= outer[1] + outer[2] + 1e-6

    def test_merge_absorbs_foreign_records(self):
        tracer = enable_tracing()
        foreign = ("worker-span", 123.0, 0.5, 99999, 1, {"shard": 0})
        tracer.merge([foreign])
        assert foreign in tracer.spans
        assert 99999 in tracer.pids()

    def test_drain_detaches_the_buffer(self):
        tracer = enable_tracing()
        with span("one"):
            pass
        drained = tracer.drain()
        assert len(drained) == 1
        assert tracer.spans == []


class TestChromeTraceExport:
    def test_round_trip_through_json(self, tmp_path):
        tracer = enable_tracing()
        with span("phase1", routines=3, label=object()):
            pass
        out = tmp_path / "trace.json"
        count = tracer.export(str(out))
        assert count == 1
        document = json.loads(out.read_text())
        assert document["displayTimeUnit"] == "ms"
        assert document["otherData"]["run_id"] == current_run_id()
        events = document["traceEvents"]
        xs = [event for event in events if event["ph"] == "X"]
        ms = [event for event in events if event["ph"] == "M"]
        assert len(xs) == 1 and len(ms) == 1
        event = xs[0]
        assert event["name"] == "phase1"
        assert event["ts"] >= 0 and event["dur"] >= 0
        assert event["args"]["routines"] == 3
        # Non-scalar args are stringified, never break serialization.
        assert isinstance(event["args"]["label"], str)
        assert ms[0]["args"]["name"] == "main"

    def test_worker_pids_labelled_distinctly(self):
        tracer = enable_tracing()
        with span("local"):
            pass
        tracer.merge([("remote", 1.0, 0.1, 4242, 1, {})])
        document = tracer.to_chrome_trace()
        labels = {
            event["pid"]: event["args"]["name"]
            for event in document["traceEvents"]
            if event["ph"] == "M"
        }
        assert labels[os.getpid()] == "main"
        assert labels[4242] == "worker-4242"

    def test_export_to_file_object(self):
        tracer = enable_tracing()
        with span("s"):
            pass
        buffer = io.StringIO()
        tracer.export(buffer)
        assert json.loads(buffer.getvalue())["traceEvents"]


class TestCrossProcessMerge:
    def test_jobs_two_trace_spans_from_worker_processes(self):
        session = AnalysisSession.from_image_bytes(
            assemble(SOURCE).to_bytes()
        )
        tracer = enable_tracing()
        session.analyze(jobs=2)
        pids = tracer.pids()
        assert os.getpid() in pids
        assert len(pids) >= 2, "expected spans merged from worker processes"
        names = {record[0] for record in tracer.spans}
        assert "phase1.shard" in names
        assert "phase2.shard" in names

    def test_inline_fallback_records_into_parent(self):
        session = AnalysisSession.from_image_bytes(
            assemble(SOURCE).to_bytes()
        )
        tracer = enable_tracing()
        session.analyze(jobs=1)
        assert tracer.pids() == {os.getpid()}
        assert "analyze" in {record[0] for record in tracer.spans}


class TestMetricsRegistry:
    def test_labels_form_distinct_series(self):
        registry = MetricsRegistry()
        registry.inc("solver.iterations", 3, phase="phase1")
        registry.inc("solver.iterations", 4, phase="phase2")
        registry.inc("solver.iterations", 1, phase="phase1")
        assert registry.value("solver.iterations", phase="phase1") == 4
        assert registry.value("solver.iterations", phase="phase2") == 4
        series = dict(
            (labels["phase"], value)
            for labels, value in registry.labeled("solver.iterations")
        )
        assert series == {"phase1": 4, "phase2": 4}

    def test_observe_max_keeps_high_water(self):
        registry = MetricsRegistry()
        registry.observe_max("depth", 5, phase="phase1")
        registry.observe_max("depth", 3, phase="phase1")
        registry.observe_max("depth", 9, phase="phase1")
        assert registry.value("depth", phase="phase1") == 9

    def test_delta_since_scopes_counters_and_seeds_keys(self):
        registry = MetricsRegistry()
        registry.inc("cache.hit", 10)
        base = registry.snapshot()
        registry.inc("cache.hit", 2)
        delta = registry.delta_since(base)
        assert delta["cache.hit"] == 2
        for key in SEEDED_KEYS:
            assert render_key(key) in delta
        assert delta["cache.miss"] == 0

    def test_merge_adds_counters_and_maxes_maxima(self):
        parent = MetricsRegistry()
        parent.inc("n", 1, kind="a")
        parent.observe_max("m", 5)
        worker = MetricsRegistry()
        worker.inc("n", 2, kind="a")
        worker.observe_max("m", 7)
        counters, maxima, _ = worker.collect(clear=True)
        # Tuples can come back as lists after a serialization round
        # trip; merge() must re-tuple them into hashable keys.  A
        # legacy 2-tuple payload (pre-histogram) must still merge.
        degrade = lambda items: [
            ((key[0], [list(pair) for pair in key[1]]), value)
            for key, value in items
        ]
        parent.merge((degrade(counters), degrade(maxima)))
        assert parent.value("n", kind="a") == 3
        assert parent.value("m") == 7
        assert worker.snapshot() == {}

    def test_render_key_and_counters_block(self):
        assert render_key(("x", ())) == "x"
        assert render_key(("x", (("a", "1"), ("b", "2")))) == "x{a=1,b=2}"
        block = render_counters({"x": 3, "y{k=v}": 1.5}, indent="  ")
        assert "  x" in block and "3" in block and "1.50" in block

    def test_global_registry_is_shared(self):
        base = REGISTRY.snapshot()
        REGISTRY.inc("test.obs.counter", 1)
        assert REGISTRY.delta_since(base)["test.obs.counter"] == 1


class TestLogging:
    def test_records_are_run_id_stamped(self):
        run_id = new_run_id()
        stream = io.StringIO()
        configure_logging("info", stream=stream)
        try:
            logging.getLogger("repro.obs.test").info("hello %s", "world")
        finally:
            configure_logging("warning")
        text = stream.getvalue()
        assert "hello world" in text
        assert run_id in text
        assert "repro.obs.test" in text

    def test_configure_is_idempotent(self):
        logger = configure_logging("warning")
        before = len(logger.handlers)
        configure_logging("warning")
        assert len(logger.handlers) == before

    def test_resolve_level(self):
        assert resolve_level("debug") == logging.DEBUG
        assert resolve_level("INFO") == logging.INFO
        assert resolve_level(17) == 17
        assert resolve_level("25") == 25
        with pytest.raises(ValueError):
            resolve_level("not-a-level")


class TestDisabledOverhead:
    def test_disabled_tracer_allocates_nothing(self):
        tracer = Tracer(enabled=False)
        first = tracer.span("a", x=1)
        second = tracer.span("b")
        assert first is second is NULL_SPAN
        assert tracer.spans == []

    def test_session_counters_still_work_with_tracing_off(self):
        session = AnalysisSession.from_image_bytes(
            assemble(SOURCE).to_bytes()
        )
        session.analyze(jobs=1)
        counters = session.metrics()["counters"]
        assert counters["solver.iterations{phase=phase1}"] > 0
        assert get_tracer().spans == []
