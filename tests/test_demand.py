"""Tests for the demand-driven query engine.

The contract under test (see :mod:`repro.interproc.demand`):

* a query's answer is **byte-identical** to the exhaustive solve's
  summary for that routine — cold, warm from a memoized cache, and
  after arbitrary edits against a stale cache;
* repeated and overlapping queries amortize: once every cone has been
  validated, further queries do no phase-1/phase-2 solving at all;
* the memoized cache a query writes back is never poisoned — routines
  the query invalidated come back as misses, never as stale facts —
  including under the structural-edit shapes (dropped and retargeted
  calls) that retract dependencies without dirtying the affected
  routine;
* the cache round-trips through the SUM2 wire format, phase-1-only
  triple entries included.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.api import AnalysisSession, UnknownRoutineError
from repro.interproc import dump_cache, dump_summaries, load_cache
from tests.facade import analyze_program
from repro.interproc.demand import query_routine
from repro.interproc.summaries import SummarySet
from repro.isa.instructions import ControlKind
from repro.isa.registers import ZERO_REGISTER
from repro.program.asm import assemble
from repro.program.disasm import disassemble_image
from repro.program.model import Program
from repro.workloads.generator import GeneratorConfig, generate_benchmark
from repro.workloads.mutate import (
    _MUTABLE_OPCODES,
    first_editable_routine,
    perturb_routine,
)


def _canon(summary) -> bytes:
    """One routine's summary in its canonical wire form — the
    byte-identity the paper-table comparisons rely on."""
    return dump_summaries(SummarySet(summaries={summary.name: summary}))


def _generate(bench: str, scale: float = 0.12, seed: int = 5) -> Program:
    program, _shape = generate_benchmark(
        bench, scale=scale, config=GeneratorConfig(seed=seed)
    )
    return program


def _editable_routines(program: Program):
    """Every routine :func:`perturb_routine` can edit."""
    return [
        routine.name
        for routine in program.routines
        if any(
            instruction.opcode in _MUTABLE_OPCODES
            and instruction.opcode.control == ControlKind.FALLTHROUGH
            and instruction.literal is None
            and instruction.ra != ZERO_REGISTER
            for instruction in routine.instructions
        )
    ]


# ----------------------------------------------------------------------
# Byte-identity with the exhaustive solve (Table-2 shapes)
# ----------------------------------------------------------------------


class TestQueryMatchesExhaustive:
    @pytest.mark.parametrize("bench", ["compress", "li", "perl"])
    def test_cold_queries_byte_identical(self, bench):
        program = _generate(bench)
        full = analyze_program(program).result.summaries
        for name in sorted(full):
            result = query_routine(program, name)
            assert _canon(result.summary) == _canon(full[name]), name
            assert result.metrics.cold
            assert (
                result.metrics.phase2_cone_routines
                <= result.metrics.phase1_cone_routines
                <= program.routine_count
            )

    @pytest.mark.parametrize("bench", ["compress", "li", "perl"])
    def test_warm_chained_queries_amortize_to_zero(self, bench):
        program = _generate(bench)
        full = analyze_program(program).result.summaries
        cache = None
        for name in sorted(full):
            result = query_routine(program, name, cache=cache)
            cache = result.cache
            assert _canon(result.summary) == _canon(full[name]), name
        # Round-trip through the SUM2 wire format, as a sidecar would.
        cache = load_cache(dump_cache(cache))
        for name in sorted(full):
            result = query_routine(program, name, cache=cache)
            cache = result.cache
            assert result.metrics.phase1_solved == 0, name
            assert result.metrics.phase2_solved == 0, name
            assert _canon(result.summary) == _canon(full[name]), name

    @pytest.mark.parametrize("bench", ["compress", "li", "perl"])
    def test_mutated_program_queries_byte_identical(self, bench):
        program = _generate(bench)
        cache = None
        for name in sorted(program.routine_names()):
            cache = query_routine(program, name, cache=cache).cache
        edited = perturb_routine(program, first_editable_routine(program))
        full = analyze_program(edited).result.summaries
        for name in sorted(full):
            result = query_routine(edited, name, cache=cache)
            cache = result.cache
            assert _canon(result.summary) == _canon(full[name]), name
        # The refreshed cache is clean: everything now amortizes.
        for name in sorted(full):
            result = query_routine(edited, name, cache=cache)
            cache = result.cache
            assert result.metrics.phase2_solved == 0, name


# ----------------------------------------------------------------------
# Structural edits: dropped and retargeted calls
# ----------------------------------------------------------------------

_CALL_FAMILY_BASE = """
.routine main export
    li   a0, 1
    bsr  ra, shared
    halt
.routine shared
    addq a0, #1, v0
    ret  (ra)
.routine extra
    li   a0, 7
    {site}
    ret  (ra)
.routine other
    subq a0, #1, v0
    ret  (ra)
"""

#: Same-size rewrites of `extra`'s call site: only `extra` goes
#: fingerprint-dirty, but each swap retracts/retargets a dependency
#: some *other* routine's cached facts were built on.
_CALL_FAMILY = {
    "calls_shared": _CALL_FAMILY_BASE.format(site="bsr  ra, shared"),
    "calls_other": _CALL_FAMILY_BASE.format(site="bsr  ra, other"),
    "dropped": _CALL_FAMILY_BASE.format(site="addq a0, #1, a0"),
}


def _asm(source: str) -> Program:
    return disassemble_image(assemble(source))


class TestStructuralEditQueries:
    def _check_variant_sequence(self, sequence):
        cache = None
        for variant in sequence:
            program = _asm(_CALL_FAMILY[variant])
            full = analyze_program(program).result.summaries
            for name in sorted(full):
                result = query_routine(program, name, cache=cache)
                cache = result.cache
                assert _canon(result.summary) == _canon(full[name]), (
                    variant,
                    name,
                )

    def test_dropped_call(self):
        # `shared` loses an exit-seed contributor without going dirty;
        # a stale cache must not keep feeding the removed site's
        # live-after into queries for `shared`.
        self._check_variant_sequence(["calls_shared", "dropped"])

    def test_retargeted_call(self):
        # The old target loses a seed, the new one gains one.
        self._check_variant_sequence(["calls_shared", "calls_other"])

    def test_round_trip_back(self):
        self._check_variant_sequence(
            ["calls_shared", "calls_other", "calls_shared", "dropped"]
        )

    def test_refreshed_cache_is_not_poisoned(self):
        cache = None
        for variant in ("calls_shared", "dropped"):
            program = _asm(_CALL_FAMILY[variant])
            for name in sorted(program.routine_names()):
                cache = query_routine(program, name, cache=cache).cache
        program = _asm(_CALL_FAMILY["dropped"])
        full = analyze_program(program).result.summaries
        for name in sorted(full):
            result = query_routine(
                program, name, cache=load_cache(dump_cache(cache))
            )
            assert result.metrics.phase2_solved == 0, name
            assert _canon(result.summary) == _canon(full[name]), name


# ----------------------------------------------------------------------
# Random mutation sequences (Hypothesis)
# ----------------------------------------------------------------------

_PROPERTY = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@_PROPERTY
@given(
    bench=st.sampled_from(["compress", "li", "perl"]),
    seed=st.integers(min_value=0, max_value=10_000),
    edits=st.lists(
        st.integers(min_value=0, max_value=1_000_000), min_size=1, max_size=3
    ),
    probe=st.integers(min_value=0, max_value=1_000_000),
)
def test_property_queries_track_random_edit_sequences(
    bench, seed, edits, probe
):
    program = _generate(bench, scale=0.08, seed=seed)
    cache = None
    for pick in edits:
        editable = _editable_routines(program)
        program = perturb_routine(program, editable[pick % len(editable)])
        full = analyze_program(program).result.summaries
        names = sorted(full)
        routine = names[probe % len(names)]
        result = query_routine(program, routine, cache=cache)
        cache = result.cache
        assert _canon(result.summary) == _canon(full[routine]), routine
    # After the last edit, every routine must agree through the chain
    # of memoized caches the probes left behind.
    for name in names:
        result = query_routine(program, name, cache=cache)
        cache = result.cache
        assert _canon(result.summary) == _canon(full[name]), name


@_PROPERTY
@given(
    sequence=st.lists(
        st.sampled_from(sorted(_CALL_FAMILY)), min_size=1, max_size=4
    ),
)
def test_property_queries_track_call_rewrite_sequences(sequence):
    cache = None
    for variant in sequence:
        program = _asm(_CALL_FAMILY[variant])
        full = analyze_program(program).result.summaries
        for name in sorted(full):
            result = query_routine(program, name, cache=cache)
            cache = result.cache
            assert _canon(result.summary) == _canon(full[name]), (
                variant,
                name,
            )


# ----------------------------------------------------------------------
# AnalysisSession.query
# ----------------------------------------------------------------------


class TestSessionQuery:
    def test_unknown_routine_raises(self, quick_program):
        session = AnalysisSession.from_program(quick_program)
        with pytest.raises(UnknownRoutineError):
            session.query("nonexistent")

    def test_session_threads_its_own_cache(self, small_benchmark):
        session = AnalysisSession.from_program(small_benchmark)
        names = sorted(small_benchmark.routine_names())
        first = session.query(names[0])
        assert first.metrics.cold
        again = session.query(names[0])
        assert not again.metrics.cold
        assert again.metrics.phase1_solved == 0
        assert again.metrics.phase2_solved == 0
        assert _canon(first.summary) == _canon(again.summary)

    def test_metrics_and_summaries_reflect_query(self, small_benchmark):
        session = AnalysisSession.from_program(small_benchmark)
        name = sorted(small_benchmark.routine_names())[0]
        result = session.query(name)
        payload = session.metrics()
        assert payload["kind"] == "query"
        assert payload["routine"] == name
        assert payload["phase2_cone_routines"] >= 1
        assert "counters" in payload
        assert name in session.summaries().summaries
        assert result.cache.result.summaries[name] is result.summary

    def test_explicit_cache_warms_a_fresh_session(self, small_benchmark):
        name = sorted(small_benchmark.routine_names())[0]
        warmed = query_routine(small_benchmark, name).cache
        session = AnalysisSession.from_program(small_benchmark)
        result = session.query(name, cache=warmed)
        assert not result.metrics.cold
        assert result.metrics.phase2_solved == 0
