"""Cross-core equivalence of the flat CSR solver on real workloads.

The flat core (:mod:`repro.interproc.flatcore`) must be a pure data
-layout/scheduling change: byte-identical summaries and identical
solver counters versus the object engines, cold and warm, serial and
sharded.  These tests pin that contract on generated Table-2 shapes.
"""

from __future__ import annotations

import pytest

from repro.api import AnalysisSession
from repro.interproc.analysis import AnalysisConfig
from repro.interproc.errors import AnalysisError
from repro.interproc.flatcore import resolve_solver_core
from repro.interproc.incremental import _analyze_incremental
from repro.interproc.persist import dump_summaries
from repro.obs.metrics import REGISTRY
from repro.workloads.generator import GeneratorConfig, generate_benchmark
from repro.workloads.mutate import first_editable_routine, perturb_routine

CORES = ("flat", "object", "fifo")

#: Table-2 rows small enough for the test tier, cached per session.
SHAPES = ("compress", "li", "perl", "vortex")

_programs = {}


def shape_program(name):
    if name not in _programs:
        program, _shape = generate_benchmark(
            name, scale=0.04, config=GeneratorConfig(seed=0)
        )
        _programs[name] = program
    return _programs[name]


def analyze_with(program, core, jobs=1):
    config = AnalysisConfig(solver_core=core, jobs=jobs)
    # jobs passed explicitly: these tests compare per-core solver
    # counters, which REPRO_JOBS-induced sharding would redistribute.
    return AnalysisSession.from_program(program, config=config).analyze(
        jobs=jobs
    )


class TestCoreSelection:
    def test_default_is_object(self, monkeypatch):
        monkeypatch.delenv("REPRO_SOLVER_CORE", raising=False)
        assert resolve_solver_core(None) == "object"

    def test_environment_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVER_CORE", "flat")
        assert resolve_solver_core(None) == "flat"

    def test_explicit_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVER_CORE", "flat")
        assert resolve_solver_core("fifo") == "fifo"

    def test_unknown_core_rejected(self):
        with pytest.raises(AnalysisError):
            resolve_solver_core("simd")


class TestColdEquivalence:
    @pytest.mark.parametrize("name", SHAPES)
    def test_summaries_byte_identical_across_cores(self, name):
        program = shape_program(name)
        blobs = {
            core: dump_summaries(analyze_with(program, core).result)
            for core in CORES
        }
        assert blobs["flat"] == blobs["object"]
        assert blobs["flat"] == blobs["fifo"]

    def test_counters_identical_flat_vs_object(self):
        """The sweep+pocket scheduler pops in exactly the global-heap
        order, so every solver counter — not just the fixed point —
        must match the object engine's."""
        program = shape_program("compress")
        snapshots = {}
        for core in ("flat", "object"):
            before = REGISTRY.snapshot()
            analyze_with(program, core)
            delta = REGISTRY.delta_since(before)
            snapshots[core] = {
                key: value
                for key, value in delta.items()
                if key.startswith("solver.")
            }
        assert snapshots["flat"] == snapshots["object"]
        assert snapshots["flat"]["solver.iterations{phase=phase1}"] > 0

    def test_priority_iterates_less_than_fifo(self):
        """The acceptance criterion for the priority worklist: strictly
        fewer total visits than FIFO on a real shape.  The win needs a
        call graph deep enough for ordering to matter — at the tiny
        tier-1 scales the two schedules nearly tie, so this test runs
        perl at a deeper scale than the byte-equality matrix."""
        program, _shape = generate_benchmark(
            "perl", scale=0.1, config=GeneratorConfig(seed=0)
        )
        totals = {}
        for core in ("flat", "fifo"):
            before = REGISTRY.snapshot()
            analyze_with(program, core)
            delta = REGISTRY.delta_since(before)
            totals[core] = (
                delta["solver.iterations{phase=phase1}"]
                + delta["solver.iterations{phase=phase2}"]
            )
        assert totals["flat"] < totals["fifo"]


class TestWarmEquivalence:
    @pytest.mark.parametrize("name", ("compress", "li"))
    def test_mutated_warm_runs_agree_across_cores(self, name):
        """Cold run, mutate one routine, warm re-run from the cache:
        every core must produce the same bytes as a from-scratch flat
        analysis of the mutated program."""
        program = shape_program(name)
        victim = first_editable_routine(program)
        edited = perturb_routine(program, victim)
        reference = dump_summaries(analyze_with(edited, "flat").result)
        for core in CORES:
            config = AnalysisConfig(solver_core=core)
            cold = _analyze_incremental(program, config=config)
            warm = _analyze_incremental(
                edited, cache=cold.cache, config=config
            )
            assert warm.metrics.dirty_routines == [victim]
            assert dump_summaries(warm.result) == reference, core


class TestParallelEquivalence:
    @pytest.mark.parametrize("jobs", (1, 2, 4))
    def test_flat_matches_object_at_every_job_count(self, jobs):
        program = shape_program("perl")
        flat = analyze_with(program, "flat", jobs=jobs)
        obj = analyze_with(program, "object", jobs=jobs)
        assert dump_summaries(flat.result) == dump_summaries(obj.result)
