"""Tests for the micro-workload library (the paper's figures)."""

import pytest

from tests.facade import analyze_program
from repro.interproc.baseline import analyze_program_baseline
from tests.facade import optimize_program
from repro.sim.interpreter import run_program
from repro.workloads.micro import (
    figure1_program,
    figure2_program,
    figure4_program,
    figure12_program,
)


@pytest.mark.parametrize(
    "builder",
    [figure1_program, figure2_program, figure4_program, figure12_program],
)
class TestAllMicroWorkloads:
    def test_engines_agree(self, builder):
        program = builder()
        psg = analyze_program(program)
        baseline = analyze_program_baseline(program)
        assert psg.result.equal_summaries(baseline.result)


class TestFigure1Micro:
    def test_runs(self):
        result = run_program(figure1_program())
        assert result.halted
        assert result.outputs == [1016]

    def test_all_four_opportunities_taken(self):
        program = figure1_program()
        result = optimize_program(program, verify=True)
        assert result.behaviour_preserved()
        by_pass = {r.name: r.total_edits for r in result.reports}
        assert by_pass["realloc"] >= 3   # 1(d): rename + save/restore
        assert by_pass["spill"] == 2     # 1(c): the stq/ldq pair
        assert by_pass["dce"] >= 2       # 1(a) + 1(b)
        assert result.dynamic_improvement > 0.1  # tiny program, big effect


class TestFigure12Micro:
    def test_runs_and_reduces(self):
        from repro.cfg.build import build_all_cfgs
        from repro.dataflow.local import compute_program_local_sets
        from repro.psg.build import PsgConfig, build_psg

        program = figure12_program()
        assert run_program(program).halted
        cfgs = build_all_cfgs(program)
        local_sets = compute_program_local_sets(cfgs)
        with_nodes = build_psg(program, cfgs, local_sets, PsgConfig())
        without = build_psg(
            program, cfgs, local_sets, PsgConfig(branch_nodes=False)
        )
        # The O(n^2) -> O(n) collapse of Figure 12.
        assert with_nodes.flow_edge_count < without.flow_edge_count


class TestFigure2Micro:
    def test_builds_and_analyzes(self):
        """Figure 2 has no main/halt (its callers are the example's
        point); it is an analysis fixture, not a runnable program."""
        program = figure2_program()
        assert program.routine_names() == ["P1", "P2", "P3"]
        analysis = analyze_program(program)
        assert "P2" in analysis.result.summaries
