"""Tests for the interpreter: opcode semantics, control flow, tracing."""

import pytest

from repro.program.asm import assemble
from repro.program.disasm import disassemble_image
from repro.sim.interpreter import ExecutionError, Interpreter, run_program


def run(source, **kwargs):
    return run_program(disassemble_image(assemble(source)), **kwargs)


def outputs(source, **kwargs):
    return run(source, **kwargs).outputs


def arith(body: str):
    """Run a straight-line body and OUTPUT a0."""
    return outputs(f".routine main\n{body}\n output\n halt\n")


class TestArithmetic:
    def test_addq(self):
        assert arith(" li t0, 40\n addq t0, #2, a0") == [42]

    def test_subq_negative_wraps(self):
        result = arith(" li t0, 1\n subq t0, #2, a0")
        assert result == [(1 << 64) - 1]

    def test_mulq(self):
        assert arith(" li t0, 7\n li t1, 6\n mulq t0, t1, a0") == [42]

    def test_logic(self):
        assert arith(" li t0, 12\n and t0, #10, a0") == [8]
        assert arith(" li t0, 12\n bis t0, #3, a0") == [15]
        assert arith(" li t0, 12\n xor t0, #10, a0") == [6]
        assert arith(" li t0, 12\n bic t0, #4, a0") == [8]

    def test_shifts(self):
        assert arith(" li t0, 3\n sll t0, #4, a0") == [48]
        assert arith(" li t0, 48\n srl t0, #4, a0") == [3]

    def test_sra_sign_extends(self):
        result = arith(" li t0, -16\n sra t0, #2, a0")
        assert result == [((1 << 64) - 4)]

    def test_comparisons(self):
        assert arith(" li t0, 3\n li t1, 5\n cmplt t0, t1, a0") == [1]
        assert arith(" li t0, 5\n li t1, 5\n cmpeq t0, t1, a0") == [1]
        assert arith(" li t0, 5\n li t1, 3\n cmple t0, t1, a0") == [0]
        assert arith(" li t0, -1\n li t1, 1\n cmplt t0, t1, a0") == [1]
        # Unsigned: -1 is huge.
        assert arith(" li t0, -1\n li t1, 1\n cmpult t0, t1, a0") == [0]

    def test_conditional_move(self):
        assert arith(" li t0, 0\n li t1, 9\n li a0, 1\n cmoveq t0, t1, a0") == [9]
        assert arith(" li t0, 5\n li t1, 9\n li a0, 1\n cmoveq t0, t1, a0") == [1]

    def test_zero_register_semantics(self):
        assert arith(" addq zero, #5, a0") == [5]
        assert arith(" li a0, 3\n addq zero, #9, zero") == [3]

    def test_lda_ldah(self):
        assert arith(" ldah t0, 2(zero)\n lda a0, 5(t0)") == [0x20005]


class TestMemory:
    def test_store_load_roundtrip(self):
        assert arith(
            " li t0, 77\n stq t0, -8(sp)\n ldq a0, -8(sp)"
        ) == [77]

    def test_data_section_preloaded(self):
        result = outputs(
            """
            .data vals: 11, 22
            .routine main
                li t0, @vals
                ldq a0, 8(t0)
                output
                halt
            """
        )
        assert result == [22]

    def test_unaligned_access_rejected(self):
        with pytest.raises(ExecutionError, match="unaligned"):
            run(".routine main\n li t0, 3\n ldq a0, 0(t0)\n halt\n")


class TestControlFlow:
    def test_conditional_branches(self):
        source = """
        .routine main
            li t0, {value}
            {op} t0, yes
            li a0, 0
            output
            halt
        yes:
            li a0, 1
            output
            halt
        """
        cases = [
            ("beq", 0, 1), ("beq", 5, 0),
            ("bne", 5, 1), ("bne", 0, 0),
            ("blt", -1, 1), ("blt", 1, 0),
            ("ble", 0, 1), ("bgt", 1, 1),
            ("bge", 0, 1), ("blbs", 3, 1), ("blbc", 2, 1),
        ]
        for op, value, expected in cases:
            got = outputs(source.format(op=op, value=value))
            assert got == [expected], (op, value)

    def test_loop(self):
        assert outputs(
            """
            .routine main
                li t0, 5
                li a0, 0
            top:
                addq a0, t0, a0
                subq t0, #1, t0
                bgt t0, top
                output
                halt
            """
        ) == [15]

    def test_call_and_return(self, quick_program):
        result = run_program(quick_program)
        assert result.outputs == [6]
        assert result.halted

    def test_indirect_call(self):
        assert outputs(
            """
            .routine main
                li  a0, 10
                li  pv, &double
                jsr ra, (pv)
                bis zero, v0, a0
                output
                halt
            .routine double
                addq a0, a0, v0
                ret (ra)
            """
        ) == [20]

    def test_jump_table_dispatch(self):
        source = """
            .routine main
                li   t0, {index}
                li   t2, &T
                sll  t0, #3, t1
                addq t2, t1, t2
                ldq  t2, 0(t2)
                jmp  t2, [T]
            c0: li a0, 100
                output
                halt
            c1: li a0, 200
                output
                halt
            .jumptable T: c0, c1
        """
        assert outputs(source.format(index=0)) == [100]
        assert outputs(source.format(index=1)) == [200]

    def test_recursion(self):
        # factorial(5) via a0, accumulating in v0.
        assert outputs(
            """
            .routine main
                li a0, 5
                bsr ra, fact
                bis zero, v0, a0
                output
                halt
            .routine fact
                lda sp, -16(sp)
                stq ra, 0(sp)
                stq s0, 8(sp)
                bis zero, a0, s0
                li v0, 1
                ble a0, done
                subq a0, #1, a0
                bsr ra, fact
                mulq v0, s0, v0
            done:
                ldq s0, 8(sp)
                ldq ra, 0(sp)
                lda sp, 16(sp)
                ret (ra)
            """
        ) == [120]


class TestLimitsAndErrors:
    def test_step_limit(self):
        with pytest.raises(ExecutionError, match="exceeded"):
            run(".routine main\nspin:\n br spin\n", max_steps=100)

    def test_wild_jump_detected(self):
        with pytest.raises(ExecutionError, match="not executable"):
            run(".routine main\n li t0, 64\n jmp (t0)\n")

    def test_opcode_counts(self):
        result = run(".routine main\n li t0, 1\n addq t0, #1, t0\n halt\n")
        assert result.opcode_counts["addq"] == 1
        assert result.opcode_counts["halt"] == 1
        assert result.steps == 3


class TestCallTracing:
    SOURCE = """
        .routine main
            li a0, 5
            bsr ra, helper
            bis zero, v0, a0
            output
            halt
        .routine helper
            addq a0, #1, v0
            ret (ra)
    """

    def _trace(self):
        program = disassemble_image(assemble(self.SOURCE))
        return run_program(program, trace_calls=True)

    def test_one_call_recorded(self):
        records = self._trace().call_records
        assert len(records) == 1
        assert records[0].callee == "helper"

    def test_read_before_write_observed(self):
        record = self._trace().call_records[0]
        from repro.dataflow.regset import RegisterSet

        names = RegisterSet.from_mask(record.read_before_write).names()
        assert "a0" in names   # helper reads its argument
        assert "ra" in names   # ret reads the return address

    def test_written_and_changed(self):
        record = self._trace().call_records[0]
        from repro.dataflow.regset import RegisterSet

        assert "v0" in RegisterSet.from_mask(record.written).names()
        assert "v0" in RegisterSet.from_mask(record.changed).names()

    def test_nested_calls_fold_into_parent(self):
        program = disassemble_image(
            assemble(
                """
                .routine main
                    li a0, 1
                    bsr ra, outer
                    halt
                .routine outer
                    lda sp, -16(sp)
                    stq ra, 0(sp)
                    bsr ra, inner
                    ldq ra, 0(sp)
                    lda sp, 16(sp)
                    ret (ra)
                .routine inner
                    addq a0, #1, v0
                    ret (ra)
                """
            )
        )
        result = run_program(program, trace_calls=True)
        by_name = {record.callee: record for record in result.call_records}
        assert set(by_name) == {"outer", "inner"}
        # inner's write of v0 is visible in outer's record too.
        from repro.dataflow.regset import RegisterSet

        assert "v0" in RegisterSet.from_mask(by_name["outer"].written).names()


class TestDeterminism:
    def test_same_program_same_result(self, small_benchmark):
        first = run_program(small_benchmark)
        second = run_program(small_benchmark)
        assert first.observable == second.observable
        assert first.steps == second.steps
