"""Tests for ``repro.obs.hist`` and the Prometheus exposition.

Covers the histogram bucket algebra (observe/merge/subtract and the
delta identity the cross-process drain relies on), the registry's
histogram plumbing (``observe_hist`` / ``snapshot`` / ``delta_since`` /
``histograms_dict``), and the text exposition's correctness properties
(label escaping, cumulative ``le``-ordered buckets ending ``+Inf``,
``_sum``/``_count`` consistency) — the latter cross-checked against
``tools/validate_prometheus.py``, the same validator CI runs.
"""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.api import AnalysisSession
from repro.obs import DEFAULT_BUCKETS, Histogram, render_prometheus
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.program.asm import assemble

_TOOL = Path(__file__).resolve().parents[1] / "tools" / "validate_prometheus.py"
_spec = importlib.util.spec_from_file_location("validate_prometheus", _TOOL)
_module = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_module)
validate_exposition = _module.validate

SOURCE = """
.routine main export
    li  a0, 5
    bsr ra, helper
    bis zero, v0, a0
    output
    halt
.routine helper
    addq a0, #1, v0
    ret (ra)
"""


class TestHistogram:
    def test_observations_land_in_le_inclusive_buckets(self):
        hist = Histogram(boundaries=(0.001, 0.01, 0.1))
        hist.observe(0.0005)   # below first bound -> bucket 0
        hist.observe(0.001)    # exactly on a bound -> that bucket (le)
        hist.observe(0.05)     # interior -> bucket 2
        hist.observe(5.0)      # above last bound -> +Inf bucket
        assert hist.counts == [2, 0, 1, 1]
        assert hist.count == 4
        assert hist.sum == pytest.approx(0.0005 + 0.001 + 0.05 + 5.0)

    def test_default_ladder_is_strictly_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert len(set(DEFAULT_BUCKETS)) == len(DEFAULT_BUCKETS)
        assert DEFAULT_BUCKETS[0] > 0

    def test_invalid_boundaries_rejected(self):
        with pytest.raises(ValueError):
            Histogram(boundaries=())
        with pytest.raises(ValueError):
            Histogram(boundaries=(0.1, 0.1))
        with pytest.raises(ValueError):
            Histogram(boundaries=(0.0, 1.0))

    def test_quantile_interpolates_within_the_bucket(self):
        hist = Histogram(boundaries=(1.0, 2.0))
        for _ in range(10):
            hist.observe(1.5)  # all ten land in the (1, 2] bucket
        # The median rank falls halfway through that bucket.
        assert hist.quantile(0.5) == pytest.approx(1.5)
        assert 1.0 < hist.quantile(0.01) <= hist.quantile(0.99) <= 2.0

    def test_quantile_edge_cases(self):
        hist = Histogram(boundaries=(1.0, 2.0))
        assert hist.quantile(0.5) == 0.0  # empty
        hist.observe(100.0)  # +Inf bucket
        assert hist.quantile(0.99) == 2.0  # clamped to last finite bound
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_merge_adds_buckets(self):
        left = Histogram(boundaries=(1.0, 2.0))
        right = Histogram(boundaries=(1.0, 2.0))
        left.observe(0.5)
        right.observe(1.5)
        right.observe(9.0)
        left.merge(right)
        assert left.counts == [1, 1, 1]
        assert left.count == 3
        assert left.sum == pytest.approx(11.0)
        with pytest.raises(ValueError):
            left.merge(Histogram(boundaries=(1.0, 3.0)))

    def test_subtract_is_bucket_wise_and_guards_monotonicity(self):
        hist = Histogram(boundaries=(1.0, 2.0))
        hist.observe(0.5)
        earlier = hist.copy()
        hist.observe(1.5)
        hist.observe(1.5)
        delta = hist.subtract(earlier)
        assert delta.counts == [0, 2, 0]
        assert delta.count == 2
        assert delta.sum == pytest.approx(3.0)
        # The "snapshot" must be an earlier state of the same series.
        with pytest.raises(ValueError):
            earlier.subtract(hist)

    def test_copy_is_independent(self):
        hist = Histogram(boundaries=(1.0,))
        hist.observe(0.5)
        clone = hist.copy()
        hist.observe(0.5)
        assert clone.count == 1
        assert hist.count == 2

    def test_payload_roundtrip_recomputes_count(self):
        hist = Histogram(boundaries=(1.0, 2.0))
        for value in (0.5, 1.5, 1.5, 9.0):
            hist.observe(value)
        loaded = Histogram.from_payload(hist.to_payload())
        assert loaded.counts == hist.counts
        assert loaded.count == hist.count
        assert loaded.sum == pytest.approx(hist.sum)
        with pytest.raises(ValueError):
            Histogram.from_payload(((1.0, 2.0), (1, 2), 3.0))  # short

    def test_cumulative_ends_in_inf(self):
        hist = Histogram(boundaries=(1.0, 2.0))
        for value in (0.5, 1.5, 9.0):
            hist.observe(value)
        pairs = hist.cumulative()
        assert pairs == [(1.0, 1), (2.0, 2), (float("inf"), 3)]

    def test_to_json_carries_headline_quantiles(self):
        hist = Histogram()
        hist.observe(0.002)
        payload = hist.to_json()
        assert set(payload) == {"count", "sum", "p50", "p95", "p99"}
        assert payload["count"] == 1
        assert json.dumps(payload)  # JSON-safe


class TestRegistryHistograms:
    def test_observe_hist_creates_labeled_series(self):
        registry = MetricsRegistry()
        registry.observe_hist("svc.seconds", 0.01, endpoint="a")
        registry.observe_hist("svc.seconds", 0.02, endpoint="b")
        assert registry.histogram("svc.seconds", endpoint="a").count == 1
        assert registry.histogram("svc.seconds", endpoint="b").count == 1
        assert registry.histogram("svc.seconds", endpoint="zzz") is None

    def test_histogram_returns_a_frozen_copy(self):
        registry = MetricsRegistry()
        registry.observe_hist("svc.seconds", 0.01)
        frozen = registry.histogram("svc.seconds")
        registry.observe_hist("svc.seconds", 0.01)
        assert frozen.count == 1
        assert registry.histogram("svc.seconds").count == 2

    def test_custom_buckets_stick_to_the_series(self):
        registry = MetricsRegistry()
        registry.observe_hist("svc.seconds", 0.5, buckets=(1.0, 2.0))
        # Later buckets args are ignored: boundaries are fixed per series.
        registry.observe_hist("svc.seconds", 0.5, buckets=(7.0,))
        assert registry.histogram("svc.seconds").boundaries == (1.0, 2.0)

    def test_delta_since_subtracts_bucket_wise(self):
        registry = MetricsRegistry()
        registry.observe_hist("svc.seconds", 0.01, endpoint="a")
        snap = registry.snapshot()
        registry.observe_hist("svc.seconds", 0.02, endpoint="a")
        registry.observe_hist("svc.seconds", 0.03, endpoint="a")
        delta = registry.delta_since(snap)
        entry = delta["svc.seconds{endpoint=a}"]
        assert entry["count"] == 2  # the pre-snapshot observation is gone
        assert entry["sum"] == pytest.approx(0.05)

    def test_untouched_histogram_is_absent_from_delta(self):
        registry = MetricsRegistry()
        registry.observe_hist("svc.seconds", 0.01)
        snap = registry.snapshot()
        assert "svc.seconds" not in registry.delta_since(snap)

    def test_as_dict_stays_scalar_only(self):
        registry = MetricsRegistry()
        registry.inc("requests")
        registry.observe_hist("svc.seconds", 0.01)
        flat = registry.as_dict()
        assert flat == {"requests": 1}
        assert all(isinstance(v, (int, float)) for v in flat.values())

    def test_histograms_dict_shape(self):
        registry = MetricsRegistry()
        registry.observe_hist("svc.seconds", 0.5, buckets=(1.0, 2.0), ep="x")
        payload = registry.histograms_dict()["svc.seconds{ep=x}"]
        assert payload["count"] == 1
        assert payload["buckets"] == {"1.0": 1, "2.0": 1, "+Inf": 1}

    def test_reset_drops_histograms(self):
        registry = MetricsRegistry()
        registry.observe_hist("svc.seconds", 0.01)
        registry.reset()
        assert registry.histograms_dict() == {}


class TestWorkerMerge:
    def test_collect_ships_and_merge_bucket_adds(self):
        worker = MetricsRegistry()
        worker.observe_hist("svc.seconds", 0.01, endpoint="a")
        worker.observe_hist("svc.seconds", 0.02, endpoint="a")
        parent = MetricsRegistry()
        parent.observe_hist("svc.seconds", 5.0, endpoint="a")
        parent.merge(worker.collect(clear=True))
        merged = parent.histogram("svc.seconds", endpoint="a")
        assert merged.count == 3
        assert merged.sum == pytest.approx(5.03)
        assert worker.histograms_dict() == {}  # clear=True detached it

    def test_merged_delta_equals_sum_of_per_worker_deltas(self):
        """The satellite regression: the delta of a worker-merged
        histogram equals the bucket-wise sum of the per-worker deltas,
        so per-run distributions stay honest across the fork drain."""
        parent = MetricsRegistry()
        parent.observe_hist("svc.seconds", 0.01)  # pre-run history
        snap = parent.snapshot()

        workers = [MetricsRegistry() for _ in range(3)]
        worker_deltas = []
        for index, worker in enumerate(workers):
            worker_snap = worker.snapshot()
            for step in range(index + 1):
                worker.observe_hist("svc.seconds", 0.01 * (step + 1))
            worker_deltas.append(
                worker.delta_since(worker_snap)["svc.seconds"]
            )
            parent.merge(worker.collect(clear=True))

        merged_delta = parent.delta_since(snap)["svc.seconds"]
        assert merged_delta["count"] == sum(
            d["count"] for d in worker_deltas
        )
        assert merged_delta["sum"] == pytest.approx(
            sum(d["sum"] for d in worker_deltas)
        )


class TestPrometheusExposition:
    def _registry(self):
        registry = MetricsRegistry()
        registry.inc("solver.iterations", 7, phase="phase1")
        registry.observe_max("solver.max_queue_depth", 42, phase="phase1")
        registry.observe_hist(
            "service.request.seconds", 0.002, endpoint="analyze", warm="true"
        )
        registry.observe_hist(
            "service.request.seconds", 1.7, endpoint="analyze", warm="false"
        )
        return registry

    def test_families_types_and_name_sanitization(self):
        text = render_prometheus(self._registry())
        assert "# TYPE solver_iterations counter" in text
        assert "# TYPE solver_max_queue_depth gauge" in text
        assert "# TYPE service_request_seconds histogram" in text
        assert 'solver_iterations{phase="phase1"} 7' in text
        assert text.endswith("\n")
        assert "." not in text.split()[2]  # dots never leak into names

    def test_buckets_are_cumulative_le_ordered_and_end_inf(self):
        text = render_prometheus(self._registry())
        bucket_lines = [
            line for line in text.splitlines()
            if line.startswith("service_request_seconds_bucket")
            and 'warm="false"' in line
        ]
        les = [line.split('le="')[1].split('"')[0] for line in bucket_lines]
        assert les[-1] == "+Inf"
        bounds = [float(le.replace("+Inf", "inf")) for le in les]
        assert bounds == sorted(bounds)
        counts = [int(line.rsplit(" ", 1)[1]) for line in bucket_lines]
        assert counts == sorted(counts)
        assert counts[-1] == 1

    def test_sum_and_count_match_the_histogram(self):
        text = render_prometheus(self._registry())
        lines = dict(
            line.rsplit(" ", 1)
            for line in text.splitlines()
            if not line.startswith("#")
        )
        key = 'service_request_seconds_count{endpoint="analyze",warm="false"}'
        assert lines[key] == "1"
        key = 'service_request_seconds_sum{endpoint="analyze",warm="false"}'
        assert float(lines[key]) == pytest.approx(1.7)

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.inc("requests", tenant='a"b\\c\nd')
        text = render_prometheus(registry)
        assert 'tenant="a\\"b\\\\c\\nd"' in text
        validate_exposition(text)

    def test_exposition_passes_the_ci_validator(self):
        validate_exposition(render_prometheus(self._registry()))

    def test_validator_catches_violations(self):
        good = render_prometheus(self._registry())
        with pytest.raises(AssertionError):
            validate_exposition(good + "still here???\n")
        # Break cumulativity: inflate one mid-ladder bucket count.
        broken = good.replace('le="0.0001"} 0', 'le="0.0001"} 99', 1)
        with pytest.raises(AssertionError):
            validate_exposition(broken)

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""
        validate_exposition("")


class TestNonServiceOverhead:
    def test_analysis_paths_record_no_histograms(self):
        """Mirror of the PR-4 tracer-overhead assertion: histograms are
        a service-layer concern, so a plain in-process analysis must
        not create any series — the non-service hot path pays nothing
        beyond the existing counter increments."""
        before = set(REGISTRY.histograms_dict())
        session = AnalysisSession.from_image_bytes(
            assemble(SOURCE).to_bytes()
        )
        session.analyze(jobs=1)
        assert set(REGISTRY.histograms_dict()) == before
