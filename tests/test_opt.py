"""Tests for the Figure-1 optimizations: DCE, spill removal, realloc."""

import pytest

from repro.cfg.build import build_cfg
from tests.facade import analyze_program
from repro.isa.instructions import Opcode
from repro.opt.dce import eliminate_dead_code
from tests.facade import optimize_program
from repro.opt.realloc import reallocate_callee_saved
from repro.opt.spill import remove_call_spills
from repro.program.asm import assemble
from repro.program.disasm import disassemble_image
from repro.program.rewrite import apply_edits
from repro.sim.interpreter import run_program


def program_of(source, entry=None):
    return disassemble_image(assemble(source, entry=entry))


class TestDceFigure1a:
    """Figure 1(a): a def of a register not used on return is dead."""

    SOURCE = """
        .routine main
            li a0, 1
            bsr ra, f
            output              ; note: uses a0, not v0
            li v0, 0            ; exit status (halt reads v0)
            halt
        .routine f
            lda v0, 42(zero)    ; dead: no caller reads v0
            ret (ra)
    """

    def test_dead_return_value_deleted(self):
        program = program_of(self.SOURCE)
        analysis = analyze_program(program)
        cfg = analysis.cfgs["f"]
        edits = eliminate_dead_code(cfg, analysis.summary("f"))
        dead = program.routine("f").instructions[0]
        assert dead.opcode is Opcode.LDA
        assert 0 in edits

    def test_live_return_value_kept(self):
        source = self.SOURCE.replace("output", "bis zero, v0, a0\n    output")
        program = program_of(source)
        analysis = analyze_program(program)
        edits = eliminate_dead_code(analysis.cfgs["f"], analysis.summary("f"))
        assert 0 not in edits


class TestDceFigure1b:
    """Figure 1(b): an argument the callee never reads is dead."""

    SOURCE = """
        .routine main
            li a1, 10           ; dead: f only uses a0
            li a0, 20
            bsr ra, f
            bis zero, v0, a0
            output
            halt
        .routine f
            addq a0, #1, v0
            ret (ra)
    """

    def test_unused_argument_setup_deleted(self):
        program = program_of(self.SOURCE)
        analysis = analyze_program(program)
        edits = eliminate_dead_code(analysis.cfgs["main"], analysis.summary("main"))
        assert 0 in edits       # li a1 is dead
        assert 1 not in edits   # li a0 feeds the call

    def test_iterative_chains(self):
        """Dead uses cascade: deleting a consumer kills its producer."""
        program = program_of(
            """
            .routine main
                li   t0, 1
                addq t0, #1, t1     ; only consumer of t0
                addq t1, #1, t9     ; t9 never used
                halt
            """
        )
        analysis = analyze_program(program)
        edits = eliminate_dead_code(analysis.cfgs["main"], analysis.summary("main"))
        assert set(edits) >= {0, 1, 2}

    def test_stores_and_output_never_deleted(self):
        program = program_of(
            """
            .routine main
                li  t0, 7
                stq t0, -8(sp)
                bis zero, t0, a0
                output
                halt
            """
        )
        analysis = analyze_program(program)
        edits = eliminate_dead_code(analysis.cfgs["main"], analysis.summary("main"))
        assert edits == {}


class TestSpillRemovalFigure1c:
    SOURCE = """
        .routine main
            lda sp, -32(sp)
            stq ra, 0(sp)
            li  t5, 123
            stq t5, 16(sp)      ; spill around the call
            li  a0, 1
            bsr ra, leaf
            ldq t5, 16(sp)      ; reload
            addq t5, v0, a0
            output
            ldq ra, 0(sp)
            lda sp, 32(sp)
            halt
        .routine leaf
            addq a0, #1, v0     ; leaf does not touch t5
            ret (ra)
    """

    def _edits(self, source):
        program = program_of(source)
        analysis = analyze_program(program)
        return (
            program,
            remove_call_spills(analysis.cfgs["main"], analysis.summary("main")),
        )

    def test_spill_pair_deleted(self):
        program, edits = self._edits(self.SOURCE)
        assert len(edits) == 2
        assert all(v is None for v in edits.values())
        optimized = apply_edits(program, {"main": edits})
        assert (
            run_program(optimized).observable
            == run_program(program).observable
        )

    def test_killed_register_not_unspilled(self):
        source = self.SOURCE.replace(
            "addq a0, #1, v0     ; leaf does not touch t5",
            "addq a0, #1, v0\n    lda t5, 0(zero)",
        )
        _program, edits = self._edits(source)
        assert edits == {}

    def test_slot_with_other_access_kept(self):
        source = self.SOURCE.replace(
            "addq t5, v0, a0",
            "addq t5, v0, a0\n    ldq t6, 16(sp)",
        )
        _program, edits = self._edits(source)
        assert edits == {}

    def test_link_register_spill_kept(self):
        """The call itself writes ra, so an ra spill must survive."""
        program = program_of(
            """
            .routine main
                lda sp, -16(sp)
                stq ra, 0(sp)
                bsr ra, leaf
                ldq ra, 0(sp)
                lda sp, 16(sp)
                halt
            .routine leaf
                ret (ra)
            """
        )
        analysis = analyze_program(program)
        edits = remove_call_spills(analysis.cfgs["main"], analysis.summary("main"))
        assert edits == {}


class TestReallocFigure1d:
    SOURCE = """
        .routine main
            li a0, 5
            bsr ra, work
            bis zero, v0, a0
            output
            halt
        .routine work
            lda sp, -16(sp)
            stq ra, 0(sp)
            stq s0, 8(sp)       ; save
            bis zero, a0, s0    ; value lives across the call
            li  a0, 1
            bsr ra, leaf
            addq s0, v0, v0     ; use after the call
            ldq s0, 8(sp)       ; restore
            ldq ra, 0(sp)
            lda sp, 16(sp)
            ret (ra)
        .routine leaf
            addq a0, #1, v0
            ret (ra)
    """

    def _realloc(self, source):
        program = program_of(source)
        analysis = analyze_program(program)
        edits = reallocate_callee_saved(
            analysis.call_graph, analysis.result, analysis.config.convention
        )
        return program, edits

    def test_save_restore_deleted_and_renamed(self):
        program, edits = self._realloc(self.SOURCE)
        assert "work" in edits
        deletions = [i for i, v in edits["work"].items() if v is None]
        assert len(deletions) == 2  # the stq/ldq of s0
        optimized = apply_edits(program, edits)
        assert (
            run_program(optimized).observable
            == run_program(program).observable
        )
        # s0 no longer occurs in work.
        from repro.isa.registers import Register

        s0 = Register.parse("s0").index
        for instruction in optimized.routine("work").instructions:
            assert s0 not in instruction.uses() | instruction.defs()

    def test_unknown_call_blocks_realloc(self):
        source = self.SOURCE.replace(
            "bsr ra, leaf",
            "li t0, @fp\n    ldq pv, 0(t0)\n    jsr ra, (pv)",
        )
        source = ".data fp: 0\n" + source
        _program, edits = self._realloc(source)
        assert "work" not in edits

    def test_self_recursive_routine_not_renamed(self):
        program, edits = self._realloc(
            """
            .routine main
                li a0, 5
                bsr ra, work
                halt
            .routine work
                lda sp, -16(sp)
                stq ra, 0(sp)
                stq s0, 8(sp)
                bis zero, a0, s0
                ble s0, done
                subq s0, #1, a0
                bsr ra, work
            done:
                ldq s0, 8(sp)
                ldq ra, 0(sp)
                lda sp, 16(sp)
                ret (ra)
            """
        )
        assert "work" not in edits


class TestPipeline:
    def test_all_passes_on_benchmark(self, small_benchmark):
        result = optimize_program(small_benchmark, verify=True)
        assert result.behaviour_preserved()
        assert result.instructions_removed > 0
        assert result.dynamic_improvement > 0
        assert [r.name for r in result.reports] == ["realloc", "spill", "dce", "deadstore"]

    def test_unknown_pass_rejected(self, quick_program):
        with pytest.raises(ValueError, match="unknown pass"):
            optimize_program(quick_program, passes=("nonsense",))

    def test_pipeline_idempotent_second_round(self, small_benchmark):
        first = optimize_program(small_benchmark, verify=False)
        second = optimize_program(first.optimized, verify=False)
        # A second full round finds almost nothing new.
        assert second.instructions_removed <= max(
            5, first.instructions_removed // 10
        )

    def test_switchy_benchmark(self, switchy_benchmark):
        result = optimize_program(switchy_benchmark, verify=True)
        assert result.behaviour_preserved()
