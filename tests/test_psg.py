"""Tests for PSG construction: nodes, edges, branch nodes, labeling modes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cfg.build import build_all_cfgs
from repro.workloads.generator import GeneratorConfig, generate_benchmark
from repro.dataflow.local import compute_program_local_sets
from repro.program.asm import assemble
from repro.program.disasm import disassemble_image
from repro.psg.build import PsgBuildError, PsgConfig, build_psg, unknown_call_label
from repro.psg.nodes import NodeKind
from repro.isa.calling_convention import NT_ALPHA


def build(program, config=None):
    cfgs = build_all_cfgs(program)
    local_sets = compute_program_local_sets(cfgs)
    return build_psg(program, cfgs, local_sets, config)


def edges_between(psg, routine):
    """Set of (src kind, dst kind) pairs for one routine's flow edges."""
    pairs = set()
    for index in psg.routines[routine].flow_edge_indices:
        edge = psg.flow_edges[index]
        pairs.add(
            (psg.nodes[edge.src].kind, psg.nodes[edge.dst].kind)
        )
    return pairs


class TestFigure4Psg:
    """Figure 4(b): entry, exit, call+return nodes; edges E_A, E_B, E_C, E_CR."""

    def test_node_inventory(self, figure4_program):
        psg = build(figure4_program)
        routine = psg.routines["f"]
        assert routine.node_count == 4  # entry + exit + call + return
        kinds = [psg.nodes[n].kind for n in (
            routine.entry_node,
            routine.exit_nodes[0][0],
            routine.call_pairs[0][0],
            routine.call_pairs[0][1],
        )]
        assert kinds == [
            NodeKind.ENTRY, NodeKind.EXIT, NodeKind.CALL, NodeKind.RETURN
        ]

    def test_three_flow_edges(self, figure4_program):
        psg = build(figure4_program)
        assert len(psg.routines["f"].flow_edge_indices) == 3
        assert edges_between(psg, "f") == {
            (NodeKind.ENTRY, NodeKind.EXIT),    # E_A
            (NodeKind.ENTRY, NodeKind.CALL),    # E_B
            (NodeKind.RETURN, NodeKind.EXIT),   # E_C
        }

    def test_call_return_edge(self, figure4_program):
        psg = build(figure4_program)
        routine = psg.routines["f"]
        call_node, return_node, site = routine.call_pairs[0]
        cr = [e for e in psg.call_return_edges if e.src == call_node]
        assert len(cr) == 1
        assert cr[0].dst == return_node
        assert cr[0].callee == "g"

    def test_check_passes(self, figure4_program):
        build(figure4_program).check()


class TestBranchNodes:
    """Figure 12: a multiway branch with calls at each target in a loop."""

    SOURCE = """
        .routine main
            li a0, 3
            bsr ra, f
            halt
        .routine f
            lda sp, -16(sp)
            stq ra, 0(sp)
        loop:
            and  t0, #3, t1
            li   t2, &T
            sll  t1, #3, t1
            addq t2, t1, t2
            ldq  t2, 0(t2)
            jmp  t2, [T]
        c0: bsr ra, g
            br next
        c1: bsr ra, g
            br next
        c2: bsr ra, g
            br next
        c3: bsr ra, g
            br next
        .jumptable T: c0, c1, c2, c3
        next:
            subq t0, #1, t0
            bgt  t0, loop
            ldq  ra, 0(sp)
            lda  sp, 16(sp)
            ret  (ra)
        .routine g
            lda v0, 1(zero)
            ret (ra)
    """

    def _program(self):
        return disassemble_image(assemble(self.SOURCE))

    def test_branch_node_created(self):
        psg = build(self._program())
        assert len(psg.routines["f"].branch_nodes) == 1
        node = psg.nodes[psg.routines["f"].branch_nodes[0]]
        assert node.kind == NodeKind.BRANCH

    def test_branch_nodes_reduce_edges(self):
        program = self._program()
        with_nodes = build(program, PsgConfig(branch_nodes=True))
        without = build(program, PsgConfig(branch_nodes=False))
        assert with_nodes.flow_edge_count < without.flow_edge_count
        # Node count grows by exactly the branch nodes.
        assert with_nodes.node_count == without.node_count + 1

    def test_without_branch_nodes_quadratic_edges(self):
        """Every return reaches every call through the multiway branch."""
        program = self._program()
        psg = build(program, PsgConfig(branch_nodes=False))
        pairs = edges_between(psg, "f")
        assert (NodeKind.RETURN, NodeKind.CALL) in pairs

    def test_threshold_disables_small_multiways(self):
        program = self._program()
        psg = build(program, PsgConfig(branch_nodes=True, multiway_threshold=5))
        assert psg.routines["f"].branch_nodes == []


def _flow_labels(psg):
    return {(e.src, e.dst): e.label for e in psg.flow_edges}


def _assert_three_way_equal(program, config_extra=None):
    """Batched, per-target and per-edge labeling all agree, edge for
    edge, on ``program``."""
    extra = config_extra or {}
    batched = build(program, PsgConfig(labeling="batched", **extra))
    per_target = build(program, PsgConfig(labeling="per-target", **extra))
    per_edge = build(program, PsgConfig(per_edge_labeling=True, **extra))
    assert batched.node_count == per_target.node_count == per_edge.node_count
    batched_labels = _flow_labels(batched)
    assert batched_labels == _flow_labels(per_target)
    assert batched_labels == _flow_labels(per_edge)


class TestLabelingModes:
    def test_per_edge_equals_per_target(self, small_benchmark):
        """The paper-literal per-edge solve and the per-target solve must
        produce identical edge labels."""
        fast = build(small_benchmark, PsgConfig(per_edge_labeling=False))
        slow = build(small_benchmark, PsgConfig(per_edge_labeling=True))
        assert fast.node_count == slow.node_count
        assert _flow_labels(fast) == _flow_labels(slow)

    def test_batched_is_the_default(self, small_benchmark):
        assert PsgConfig().labeling == "batched"
        assert _flow_labels(build(small_benchmark)) == _flow_labels(
            build(small_benchmark, PsgConfig(labeling="per-target"))
        )

    def test_bad_labeling_rejected(self):
        with pytest.raises(ValueError, match="labeling"):
            PsgConfig(labeling="bogus")

    #: Loops around call sites, a jump-table multiway branch, and an
    #: unknown-target indirect call — every structural feature the
    #: batched labeler special-cases — in one routine.
    GNARLY_SOURCE = """
        .routine main
            li a0, 3
            bsr ra, f
            halt
        .routine f
            lda sp, -16(sp)
            stq ra, 0(sp)
        loop:
            and  t0, #3, t1
            li   t2, &T
            sll  t1, #3, t1
            addq t2, t1, t2
            ldq  t2, 0(t2)
            jmp  t2, [T]
        c0: bsr ra, g
            br next
        c1: li   pv, &g
            jsr  ra, (pv)
            br next
        c2: addq t3, t0, t3
            bgt  t3, c0
            br next
        .jumptable T: c0, c1, c2
        next:
            subq t0, #1, t0
            bgt  t0, loop
            ldq  ra, 0(sp)
            lda  sp, 16(sp)
            ret  (ra)
        .routine g
            lda v0, 1(zero)
            ret (ra)
    """

    def test_three_way_equivalence_gnarly_routine(self):
        program = disassemble_image(assemble(self.GNARLY_SOURCE))
        for extra in ({}, {"branch_nodes": False}):
            _assert_three_way_equal(program, extra)

    def test_three_way_equivalence_small_benchmark(self, small_benchmark):
        _assert_three_way_equal(small_benchmark)

    @settings(max_examples=6, deadline=None)
    @given(
        bench=st.sampled_from(["compress", "li", "perl"]),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_three_way_equivalence_generated(self, bench, seed):
        program, _shape = generate_benchmark(
            bench, scale=0.05, config=GeneratorConfig(seed=seed)
        )
        _assert_three_way_equal(program)


class TestDivergenceDetection:
    def test_boundary_free_infinite_loop_rejected(self):
        program = disassemble_image(
            assemble(
                """
                .routine main
                spin:
                    addq t0, #1, t0
                    br spin
                """
            )
        )
        with pytest.raises(PsgBuildError, match="infinite loop"):
            build(program)

    def test_loop_with_call_accepted(self):
        program = disassemble_image(
            assemble(
                """
                .routine main
                spin:
                    bsr ra, f
                    br spin
                .routine f
                    ret (ra)
                """
            )
        )
        build(program).check()


class TestUnknownCallLabel:
    def test_shape(self):
        label = unknown_call_label(NT_ALPHA)
        assert label.is_consistent()
        # Arguments and ra are used; return registers defined; temporaries
        # killed.
        assert "a0" in label.may_use_set.names()
        assert "ra" in label.may_use_set.names()
        assert label.must_def_set.names() == {"v0", "f0", "f1"}
        assert "t0" in label.may_def_set.names()
        assert "s0" not in label.may_def_set.names()


class TestStatistics:
    def test_per_routine_averages(self, small_benchmark):
        psg = build(small_benchmark)
        averages = psg.per_routine_averages()
        assert averages["psg_nodes_per_routine"] > 0
        assert averages["psg_edges_per_routine"] > 0

    def test_node_count_formula(self, small_benchmark):
        psg = build(small_benchmark)
        total = sum(r.node_count for r in psg.routines.values())
        assert total == psg.node_count

    def test_nodes_of_kind(self, figure4_program):
        psg = build(figure4_program)
        assert len(psg.nodes_of_kind(NodeKind.ENTRY)) == 3  # main, f, g
        assert len(psg.nodes_of_kind(NodeKind.CALL)) == 2


class TestArenaCache:
    """get_arena keys its per-PSG cache on the graph's generation
    stamp, so mutating the graph and bumping the version re-lowers
    instead of serving a stale arena (the old behaviour cached the
    first lowering forever)."""

    def test_cache_hit_on_unchanged_graph(self, small_benchmark):
        from repro.psg.arena import get_arena

        psg = build(small_benchmark)
        assert get_arena(psg) is get_arena(psg)

    def test_bump_version_invalidates(self, small_benchmark):
        from repro.psg.arena import get_arena

        psg = build(small_benchmark)
        first = get_arena(psg)
        psg.bump_version()
        second = get_arena(psg)
        assert second is not first
        # ... and the new arena is itself cached.
        assert get_arena(psg) is second

    def test_rebuilt_arena_sees_mutated_labels(self, small_benchmark):
        from repro.dataflow.equations import SummaryTriple
        from repro.psg.arena import get_arena

        psg = build(small_benchmark)
        stale = get_arena(psg)
        edge = psg.flow_edges[0]
        mutated = SummaryTriple(
            may_use=edge.label.may_use | 1,
            may_def=edge.label.may_def,
            must_def=edge.label.must_def,
        )
        psg.flow_edges[0] = type(edge)(
            src=edge.src, dst=edge.dst, label=mutated
        )
        psg.bump_version()
        fresh = get_arena(psg)
        assert fresh is not stale
        # The rebuilt arena snapshots the new label; the stale one
        # still carries the old mask — exactly the hazard the stamp
        # closes.
        position = psg.flow_out[edge.src].index(0)
        offset = fresh.flow_off[edge.src] + position
        assert fresh.flow_mu[offset] == mutated.may_use
        assert stale.flow_mu[offset] == edge.label.may_use
