"""Tests for callee-saved save/restore detection (§3.4)."""

from repro.cfg.build import build_cfg
from repro.dataflow.regset import RegisterSet
from repro.interproc.savedregs import (
    find_save_restore_sites,
    saved_restored_registers,
)
from repro.isa.calling_convention import NT_ALPHA
from repro.program.asm import assemble
from repro.program.disasm import disassemble_image


def detect(source, routine="f"):
    program = disassemble_image(assemble(source, entry=routine))
    cfg = build_cfg(program, program.routine(routine))
    return saved_restored_registers(cfg, NT_ALPHA), cfg


def names(mask):
    return RegisterSet.from_mask(mask).names()


STANDARD = """
    .routine f export
        lda sp, -16(sp)
        stq s0, 0(sp)
        addq a0, #1, s0
        addq s0, #2, v0
        ldq s0, 0(sp)
        lda sp, 16(sp)
        ret (ra)
"""


class TestDetection:
    def test_standard_prologue_epilogue(self):
        mask, _ = detect(STANDARD)
        assert names(mask) == {"s0"}

    def test_sites_carry_locations(self):
        program = disassemble_image(assemble(STANDARD, entry="f"))
        cfg = build_cfg(program, program.routine("f"))
        sites = find_save_restore_sites(cfg, NT_ALPHA)
        info = sites[RegisterSet(["s0"]).registers()[0].index]
        assert info.slot == 0
        assert info.save_index == 1
        assert info.restore_indices == (4,)

    def test_multiple_registers(self):
        mask, _ = detect(
            """
            .routine f export
                lda sp, -32(sp)
                stq s0, 0(sp)
                stq s1, 8(sp)
                addq a0, #1, s0
                addq a0, #2, s1
                ldq s0, 0(sp)
                ldq s1, 8(sp)
                lda sp, 32(sp)
                ret (ra)
            """
        )
        assert names(mask) == {"s0", "s1"}

    def test_every_exit_must_restore(self):
        mask, _ = detect(
            """
            .routine f export
                lda sp, -16(sp)
                stq s0, 0(sp)
                beq a0, early
                ldq s0, 0(sp)
                lda sp, 16(sp)
                ret (ra)
            early:
                lda sp, 16(sp)      ; forgets to restore s0
                ret (ra)
            """
        )
        assert names(mask) == set()

    def test_save_after_def_not_counted(self):
        mask, _ = detect(
            """
            .routine f export
                lda sp, -16(sp)
                addq a0, #1, s0     ; defines s0 before the "save"
                stq s0, 0(sp)
                ldq s0, 0(sp)
                lda sp, 16(sp)
                ret (ra)
            """
        )
        assert names(mask) == set()

    def test_restore_from_wrong_slot_not_counted(self):
        mask, _ = detect(
            """
            .routine f export
                lda sp, -32(sp)
                stq s0, 0(sp)
                addq a0, #1, s0
                ldq s0, 8(sp)       ; wrong slot
                lda sp, 32(sp)
                ret (ra)
            """
        )
        assert names(mask) == set()

    def test_def_after_restore_not_counted(self):
        mask, _ = detect(
            """
            .routine f export
                lda sp, -16(sp)
                stq s0, 0(sp)
                ldq s0, 0(sp)
                addq a0, #1, s0     ; clobbers after restoring
                lda sp, 16(sp)
                ret (ra)
            """
        )
        assert names(mask) == set()

    def test_caller_saved_stores_ignored(self):
        mask, _ = detect(
            """
            .routine f export
                lda sp, -16(sp)
                stq t0, 0(sp)
                ldq t0, 0(sp)
                lda sp, 16(sp)
                ret (ra)
            """
        )
        assert names(mask) == set()

    def test_unknown_jump_exit_disqualifies(self):
        mask, _ = detect(
            """
            .routine f export
                lda sp, -16(sp)
                stq s0, 0(sp)
                ldq s0, 0(sp)
                beq a0, out
                jmp (t0)
            out:
                lda sp, 16(sp)
                ret (ra)
            """
        )
        assert names(mask) == set()

    def test_float_saves(self):
        mask, _ = detect(
            """
            .routine f export
                lda sp, -16(sp)
                stt f2, 0(sp)
                addt f16, f17, f2
                ldt f2, 0(sp)
                lda sp, 16(sp)
                ret (ra)
            """
        )
        assert names(mask) == {"f2"}

    def test_leaf_without_saves(self):
        mask, _ = detect(".routine f export\n addq a0, #1, v0\n ret (ra)\n")
        assert mask == 0


class TestFilteringEffect:
    def test_saved_register_filtered_from_summary(self):
        """§3.4: the saved/restored register must not appear call-used,
        call-killed or call-defined."""
        from tests.facade import analyze_program

        program = disassemble_image(
            assemble(
                """
                .routine main export
                    lda sp, -16(sp)
                    stq ra, 0(sp)
                    bsr ra, f
                    ldq ra, 0(sp)
                    lda sp, 16(sp)
                    halt
                """ + STANDARD.replace(".routine f export", ".routine f")
            )
        )
        analysis = analyze_program(program)
        summary = analysis.summary("f")
        assert "s0" not in summary.call_used.names()
        assert "s0" not in summary.call_killed.names()
        assert "s0" not in summary.call_defined.names()
        assert "s0" in summary.saved_restored.names()
        # But the incoming value of s0 IS needed (to save it): live at entry.
        assert "s0" in summary.live_at_entry.names()
