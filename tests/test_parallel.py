"""Tests for the sharded parallel two-phase solver.

The headline contract (see :mod:`repro.interproc.parallel`): at any
worker count and any shard count the parallel solver's summaries are
**bit-identical** to the serial driver's, cold and warm.  Workers pin
callee entry triples (phase 1) and seed caller-side exit liveness
(phase 2), so each shard reproduces exactly its slice of the global
fixed point; the tests check the merge against the serial oracle via
the canonical SUM2 wire encoding.
"""

import multiprocessing
import os

import pytest

import repro.interproc.parallel as parallel_mod
from repro.cfg.build import build_all_cfgs
from repro.cfg.callgraph import build_call_graph
from repro.interproc import (
    AnalysisError,
    analyze_incremental_parallel,
    analyze_parallel,
    dump_cache,
    dump_summaries,
    load_cache,
)
from repro.interproc.analysis import AnalysisConfig, _analyze_program
from repro.interproc.incremental import _analyze_incremental
from repro.interproc.parallel import (
    SHARDS_PER_WORKER,
    resolve_jobs,
    shard_cost_heuristic,
)
from repro.workloads.generator import GeneratorConfig, generate_benchmark
from repro.workloads.mutate import first_editable_routine, perturb_routine

#: The four Table-2 shapes the figure benchmarks use, scaled far down
#: so a pool spin-up per case stays cheap.
SHAPES = ["compress", "li", "perl", "vortex"]
JOBS = [1, 2, 4]


def _program(name: str):
    program, _shape = generate_benchmark(
        name, scale=0.04, config=GeneratorConfig(seed=0)
    )
    return program


@pytest.fixture(scope="module", params=SHAPES)
def shaped(request):
    program = _program(request.param)
    serial = _analyze_program(program)
    return program, serial


# ----------------------------------------------------------------------
# Cold runs: bit-identical to serial at every worker count
# ----------------------------------------------------------------------


class TestColdBitIdentical:
    @pytest.mark.parametrize("jobs", JOBS)
    def test_matches_serial(self, shaped, jobs):
        program, serial = shaped
        analysis = analyze_parallel(program, jobs=jobs)
        assert dump_summaries(analysis.result) == dump_summaries(
            serial.result
        ), analysis.result.diff(serial.result)

    def test_single_shard_degenerate(self, shaped):
        program, serial = shaped
        analysis = analyze_parallel(program, jobs=2, shards=1)
        assert analysis.plan.shard_count == 1
        assert dump_summaries(analysis.result) == dump_summaries(
            serial.result
        )

    def test_many_tiny_shards(self, shaped):
        program, serial = shaped
        analysis = analyze_parallel(
            program, jobs=1, shards=program.routine_count
        )
        assert dump_summaries(analysis.result) == dump_summaries(
            serial.result
        )

    def test_metrics_cover_all_shards(self, shaped):
        program, _serial = shaped
        analysis = analyze_parallel(program, jobs=2)
        metrics = analysis.metrics
        assert metrics.jobs == 2
        assert metrics.shard_count == analysis.plan.shard_count
        assert len(metrics.shards) == analysis.plan.shard_count
        assert sum(r.routines for r in metrics.shards) == (
            program.routine_count
        )
        assert 0.0 <= metrics.utilization() <= 1.0


# ----------------------------------------------------------------------
# Warm runs: dirty-shard-only parallel re-solve, still exact
# ----------------------------------------------------------------------


class TestWarmBitIdentical:
    @pytest.mark.parametrize("jobs", JOBS)
    def test_mutated_warm_matches_fresh_serial(self, shaped, jobs):
        program, _serial = shaped
        cold = _analyze_incremental(program)
        cache = load_cache(dump_cache(cold.cache))
        edited = perturb_routine(program, first_editable_routine(program))
        oracle = _analyze_program(edited)

        warm = analyze_incremental_parallel(edited, cache, jobs=jobs)
        assert dump_summaries(warm.result) == dump_summaries(
            oracle.result
        ), warm.result.diff(oracle.result)
        # Every routine is either freshly solved or served from cache.
        assert warm.metrics.phase2_solved >= 1
        assert (
            warm.metrics.phase2_solved + warm.metrics.phase2_reused
            == program.routine_count
        )
        assert warm.parallel is not None
        assert warm.parallel.jobs == jobs

    def test_partial_resolve_skips_clean_shards(self):
        # On this shape the dirty cone is a proper subset of the
        # program, so the warm run must actually reuse cached facts
        # (the conservative closure can cover everything on shapes
        # whose call graph funnels through the victim).
        program = _program("li")
        cold = _analyze_incremental(program)
        cache = load_cache(dump_cache(cold.cache))
        edited = perturb_routine(program, first_editable_routine(program))
        warm = analyze_incremental_parallel(edited, cache, jobs=2)
        oracle = _analyze_program(edited)
        assert dump_summaries(warm.result) == dump_summaries(oracle.result)
        assert warm.metrics.phase2_solved < program.routine_count
        assert warm.metrics.phase2_reused > 0

    def test_clean_warm_solves_nothing(self, shaped):
        program, _serial = shaped
        cold = _analyze_incremental(program)
        cache = load_cache(dump_cache(cold.cache))
        warm = analyze_incremental_parallel(program, cache, jobs=2)
        assert warm.metrics.phase1_solved == 0
        assert warm.metrics.phase2_solved == 0
        assert dump_summaries(warm.result) == dump_summaries(cold.result)

    def test_cold_parallel_seeds_valid_cache(self, shaped):
        program, serial = shaped
        cold = analyze_incremental_parallel(program, cache=None, jobs=2)
        assert cold.metrics.cold
        assert dump_summaries(cold.result) == dump_summaries(serial.result)
        # The cache it seeded warms a serial run to a no-op.
        warm = _analyze_incremental(
            program, cache=load_cache(dump_cache(cold.cache))
        )
        assert warm.metrics.phase1_solved == 0
        assert warm.metrics.phase2_solved == 0


# ----------------------------------------------------------------------
# Shard partitioner
# ----------------------------------------------------------------------


class TestPartitioner:
    @pytest.fixture(scope="class")
    def plan_and_condensation(self):
        program = _program("vortex")
        cfgs = build_all_cfgs(program)
        call_graph = build_call_graph(program, cfgs)
        condensation = call_graph.condensation()
        plan = condensation.partition_shards(
            shard_cost_heuristic(cfgs), max_shards=4
        )
        return plan, condensation

    def test_contiguous_intervals_cover_everything(
        self, plan_and_condensation
    ):
        plan, condensation = plan_and_condensation
        covered = []
        for shard in plan.shards:
            assert shard.components == list(
                range(shard.components[0], shard.components[-1] + 1)
            )
            covered.extend(shard.components)
        assert covered == list(range(len(condensation.components)))

    def test_shard_dag_is_callee_first(self, plan_and_condensation):
        plan, _condensation = plan_and_condensation
        # Every phase-1 prerequisite has a smaller index (callee side),
        # so both wave orders are acyclic by construction.
        for index, callees in enumerate(plan.callee_shards):
            assert all(callee < index for callee in callees)
        for index, callers in enumerate(plan.caller_shards):
            assert all(caller > index for caller in callers)

    def test_cost_balance(self, plan_and_condensation):
        plan, _condensation = plan_and_condensation
        total = sum(shard.cost for shard in plan.shards)
        # The greedy cut never lets one shard exceed the ideal share by
        # more than the largest single component.
        largest_component = max(
            shard.cost for shard in plan.shards
        )  # upper bound on any component
        assert plan.largest_cost() <= total // len(plan.shards) + (
            largest_component
        )

    def test_max_shards_validated(self, plan_and_condensation):
        _plan, condensation = plan_and_condensation
        with pytest.raises(ValueError):
            condensation.partition_shards({}, max_shards=0)


# ----------------------------------------------------------------------
# Failure handling
# ----------------------------------------------------------------------


def _crash_phase1(phase: str, shard_index: int) -> None:
    if phase == "phase1":
        os._exit(13)


def _raise_phase2(phase: str, shard_index: int) -> None:
    if phase == "phase2":
        raise RuntimeError("synthetic shard failure")


class TestWorkerFailures:
    @pytest.fixture()
    def program(self):
        return _program("compress")

    @pytest.fixture(autouse=True)
    def _reset_fault_hook(self):
        yield
        parallel_mod._FAULT_HOOK = None

    def test_worker_crash_raises_analysis_error(self, program):
        # The hook rides into the forked workers as module state and
        # kills them hard; the scheduler must surface a clean error,
        # not hang or leak a traceback from pool internals.
        parallel_mod._FAULT_HOOK = _crash_phase1
        with pytest.raises(AnalysisError):
            analyze_parallel(program, jobs=2)

    def test_worker_exception_raises_analysis_error(self, program):
        parallel_mod._FAULT_HOOK = _raise_phase2
        with pytest.raises(AnalysisError, match="phase2"):
            analyze_parallel(program, jobs=2)

    def test_inline_exception_raises_analysis_error(self, program):
        parallel_mod._FAULT_HOOK = _raise_phase2
        with pytest.raises(AnalysisError, match="phase2"):
            analyze_parallel(program, jobs=1)


# ----------------------------------------------------------------------
# Knob plumbing
# ----------------------------------------------------------------------


class TestResolveJobs:
    def test_explicit_beats_config(self):
        assert resolve_jobs(3, AnalysisConfig(jobs=2)) == 3

    def test_config_default(self):
        assert resolve_jobs(None, AnalysisConfig(jobs=2)) == 2
        assert resolve_jobs(None, None) == 1

    def test_zero_means_cpu_count(self):
        assert resolve_jobs(0, None) == multiprocessing.cpu_count()
        assert resolve_jobs(-1, None) == multiprocessing.cpu_count()

    def test_shard_target_scales_with_jobs(self):
        program = _program("compress")
        analysis = analyze_parallel(program, jobs=2)
        assert analysis.plan.shard_count <= 2 * SHARDS_PER_WORKER
