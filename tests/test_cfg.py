"""Tests for CFG construction: leaders, call blocks, exits, jump tables."""

import pytest

from repro.cfg.build import build_all_cfgs, build_cfg, resolve_register_constant
from repro.cfg.cfg import CfgError, ExitKind, TerminatorKind
from repro.isa.instructions import Instruction, Opcode
from repro.program.asm import assemble
from repro.program.disasm import disassemble_image


def cfg_of(source: str, routine: str = "main", entry=None):
    program = disassemble_image(assemble(source, entry=entry))
    return build_cfg(program, program.routine(routine)), program


class TestBlockSplitting:
    def test_straight_line_is_one_block(self):
        cfg, _ = cfg_of(".routine main\n addq t0, #1, t1\n subq t1, #1, t2\n halt\n")
        assert cfg.block_count == 1
        assert cfg.blocks[0].terminator == TerminatorKind.HALT

    def test_blocks_end_at_calls(self):
        # The paper's convention: a call ends its basic block.
        cfg, _ = cfg_of(
            """
            .routine main
                addq t0, #1, t1
                bsr  ra, f
                addq t0, #2, t1
                halt
            .routine f
                ret (ra)
            """
        )
        assert cfg.block_count == 2
        assert cfg.blocks[0].terminator == TerminatorKind.CALL
        assert cfg.blocks[0].successors == [1]
        assert cfg.blocks[1].predecessors == [0]

    def test_conditional_branch_successors(self):
        cfg, _ = cfg_of(
            """
            .routine main
                beq t0, skip
                addq t0, #1, t1
            skip:
                halt
            """
        )
        assert cfg.block_count == 3
        assert sorted(cfg.blocks[0].successors) == [1, 2]

    def test_branch_to_fallthrough_deduplicated(self):
        cfg, _ = cfg_of(
            """
            .routine main
                beq t0, next
            next:
                halt
            """
        )
        assert cfg.blocks[0].successors == [1]

    def test_unconditional_branch(self):
        cfg, _ = cfg_of(
            """
            .routine main
                br over
                addq t0, #1, t1   ; unreachable
            over:
                halt
            """
        )
        assert cfg.blocks[0].terminator == TerminatorKind.UNCOND_BRANCH
        assert cfg.blocks[0].successors == [2]
        assert cfg.blocks[1].predecessors == []

    def test_loop_back_edge(self):
        cfg, _ = cfg_of(
            """
            .routine main
            top:
                subq t0, #1, t0
                bgt t0, top
                halt
            """
        )
        assert 0 in cfg.blocks[0].successors  # self loop

    def test_entry_block_is_index_zero(self, quick_program):
        cfg = build_cfg(quick_program, quick_program.routine("main"))
        assert cfg.entry_block.start == 0
        cfg.check()


class TestExits:
    def test_return_exit(self):
        cfg, _ = cfg_of(".routine main\n ret (ra)\n")
        assert cfg.exits == [(0, ExitKind.RETURN)]
        assert cfg.return_exits() == [0]

    def test_halt_exit(self):
        cfg, _ = cfg_of(".routine main\n halt\n")
        assert cfg.exits == [(0, ExitKind.HALT)]

    def test_unknown_jump_exit(self):
        cfg, _ = cfg_of(".routine main\n jmp (t0)\n")
        assert cfg.exits == [(0, ExitKind.UNKNOWN_JUMP)]

    def test_multiple_exits(self):
        cfg, _ = cfg_of(
            """
            .routine main
                beq t0, other
                ret (ra)
            other:
                ret (ra)
            """
        )
        assert len(cfg.return_exits()) == 2

    def test_fall_off_end_rejected(self):
        program = disassemble_image(
            assemble(".routine main\n addq t0, #1, t1\n halt\n")
        )
        # Manufacture a routine whose last instruction falls through.
        bad = program.routine("main")
        bad.instructions[-1] = Instruction(Opcode.ADDQ, ra=1, rb=2, rc=3)
        with pytest.raises(CfgError, match="falls off"):
            build_cfg(program, bad)

    def test_call_as_last_instruction_rejected(self):
        program = disassemble_image(
            assemble(
                ".routine main\n bsr ra, f\n halt\n.routine f\n ret (ra)\n"
            )
        )
        routine = program.routine("main")
        routine.instructions.pop()  # drop the halt; call is now last
        with pytest.raises(CfgError, match="return point"):
            build_cfg(program, routine)


class TestMultiway:
    SOURCE = """
        .routine main
            and  t0, #3, t1
            li   t2, &T
            sll  t1, #3, t1
            addq t2, t1, t2
            ldq  t2, 0(t2)
            jmp  t2, [T]
        c0: halt
        c1: halt
        c2: halt
        c3: halt
        .jumptable T: c0, c1, c2, c3
    """

    def test_table_targets_become_successors(self):
        cfg, _ = cfg_of(self.SOURCE)
        jmp_block = cfg.blocks[0]
        assert jmp_block.terminator == TerminatorKind.MULTIWAY
        assert len(jmp_block.successors) == 4

    def test_multiway_is_not_an_exit(self):
        cfg, _ = cfg_of(self.SOURCE)
        assert all(kind == ExitKind.HALT for _b, kind in cfg.exits)


class TestCallSites:
    def test_direct_call_resolved(self, quick_program):
        cfg = build_cfg(quick_program, quick_program.routine("main"))
        assert len(cfg.call_sites) == 1
        site = cfg.call_sites[0]
        assert site.callee == "helper"
        assert not site.indirect
        assert cfg.call_site_of(site.block) is site

    def test_indirect_call_resolved_through_li(self):
        cfg, _ = cfg_of(
            """
            .routine main
                li  pv, &f
                jsr ra, (pv)
                halt
            .routine f
                ret (ra)
            """
        )
        site = cfg.call_sites[0]
        assert site.callee == "f"
        assert site.indirect

    def test_indirect_call_through_move(self):
        cfg, _ = cfg_of(
            """
            .routine main
                li  t0, &f
                bis zero, t0, pv
                jsr ra, (pv)
                halt
            .routine f
                ret (ra)
            """
        )
        assert cfg.call_sites[0].callee == "f"

    def test_opaque_call_unresolved(self):
        cfg, _ = cfg_of(
            """
            .data p: 0
            .routine main
                li  t0, @p
                ldq pv, 0(t0)
                jsr ra, (pv)
                halt
            """
        )
        site = cfg.call_sites[0]
        assert site.callee is None
        assert site.is_unknown

    def test_resolver_gives_up_on_arithmetic(self):
        instructions = [
            Instruction(Opcode.ADDQ, ra=1, rb=2, rc=27),
            Instruction(Opcode.JSR, ra=26, rb=27),
        ]
        assert resolve_register_constant(instructions, 1, 27) is None

    def test_resolver_follows_lda_chain(self):
        instructions = [
            Instruction(Opcode.LDAH, ra=27, rb=31, displacement=1),
            Instruction(Opcode.LDA, ra=27, rb=27, displacement=0x24),
            Instruction(Opcode.JSR, ra=26, rb=27),
        ]
        assert resolve_register_constant(instructions, 2, 27) == 0x10024

    def test_resolver_sees_through_clobber(self):
        instructions = [
            Instruction(Opcode.LDA, ra=27, rb=31, displacement=100),
            Instruction(Opcode.LDA, ra=27, rb=31, displacement=200),
        ]
        assert resolve_register_constant(instructions, 2, 27) == 200


class TestWholeProgram:
    def test_build_all(self, small_benchmark):
        cfgs = build_all_cfgs(small_benchmark)
        assert set(cfgs) == set(small_benchmark.routine_names())
        for cfg in cfgs.values():
            cfg.check()

    def test_block_of_instruction(self, quick_program):
        cfg = build_cfg(quick_program, quick_program.routine("main"))
        for block in cfg.blocks:
            for index in range(block.start, block.stop):
                assert cfg.block_of_instruction(index) is block
        with pytest.raises(CfgError):
            cfg.block_of_instruction(999)

    def test_arc_count(self):
        cfg, _ = cfg_of(
            """
            .routine main
                beq t0, a
                halt
            a:  halt
            """
        )
        assert cfg.arc_count == 2
