"""Tests for benchmark shapes and the synthetic generator."""

import pytest

from repro.cfg.build import build_all_cfgs
from repro.program.model import check_single_entry, program_statistics
from repro.sim.interpreter import run_program
from repro.workloads.generator import (
    GeneratorConfig,
    generate_benchmark,
    generate_image,
    generate_program,
)
from repro.workloads.shapes import (
    ALL_SHAPES,
    PC_APP_SHAPES,
    SPEC95_SHAPES,
    shape_by_name,
)


class TestShapes:
    def test_all_sixteen_benchmarks_present(self):
        assert len(SPEC95_SHAPES) == 8
        assert len(PC_APP_SHAPES) == 8
        assert len(ALL_SHAPES) == 16

    def test_lookup(self):
        assert shape_by_name("gcc").routines == 1878
        with pytest.raises(KeyError):
            shape_by_name("nope")

    def test_table2_values_transcribed(self):
        acad = shape_by_name("acad")
        assert acad.basic_blocks == 339962
        assert acad.instructions == 1734700
        assert acad.paper_time_seconds == 12.04
        assert acad.paper_memory_mbytes == 41.11

    def test_table3_values_transcribed(self):
        maxeda = shape_by_name("maxeda")
        assert maxeda.calls_per_routine == 15.45
        assert maxeda.paper_psg_nodes_per_routine == 32.96

    def test_table4_values_transcribed(self):
        assert shape_by_name("sqlservr").paper_edge_reduction_pct == 80.0
        assert shape_by_name("winword").paper_edge_reduction_pct == 0.3

    def test_derived_statistics(self):
        compress = shape_by_name("compress")
        assert compress.blocks_per_routine == pytest.approx(20.87, abs=0.01)
        assert compress.instructions_per_block == pytest.approx(5.30, abs=0.01)

    def test_scaled_shape(self):
        scaled = shape_by_name("gcc").scaled(0.1)
        assert scaled.routines == 188
        # Per-routine statistics survive scaling.
        assert scaled.calls_per_routine == shape_by_name("gcc").calls_per_routine
        assert scaled.blocks_per_routine == pytest.approx(
            shape_by_name("gcc").blocks_per_routine, rel=0.05
        )

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            shape_by_name("gcc").scaled(0)


class TestGenerator:
    def test_deterministic(self):
        first = generate_image(shape_by_name("compress").scaled(0.1))
        second = generate_image(shape_by_name("compress").scaled(0.1))
        assert first.to_bytes() == second.to_bytes()

    def test_seed_changes_program(self):
        a = generate_image(
            shape_by_name("compress").scaled(0.1), GeneratorConfig(seed=0)
        )
        b = generate_image(
            shape_by_name("compress").scaled(0.1), GeneratorConfig(seed=1)
        )
        assert a.to_bytes() != b.to_bytes()

    def test_routine_count_matches_shape(self):
        program, shape = generate_benchmark("li", scale=0.1)
        assert program.routine_count == shape.routines

    def test_single_entry_model_respected(self, small_benchmark):
        check_single_entry(small_benchmark)

    def test_cfgs_buildable(self, small_benchmark):
        for cfg in build_all_cfgs(small_benchmark).values():
            cfg.check()

    def test_call_density_tracks_shape(self):
        program, shape = generate_benchmark("maxeda", scale=0.05)
        stats = program_statistics(program)
        # maxeda has ~15 calls/routine; tolerate generator variance.
        assert stats["calls_per_routine"] == pytest.approx(
            shape.calls_per_routine, rel=0.45
        )

    def test_branch_density_tracks_shape(self):
        program, shape = generate_benchmark("vc", scale=0.05)
        stats = program_statistics(program)
        assert stats["branches_per_routine"] == pytest.approx(
            shape.branches_per_routine, rel=0.5
        )

    def test_switch_heavy_shapes_get_jump_tables(self, switchy_benchmark):
        assert len(switchy_benchmark.jump_targets) > 0

    def test_low_reduction_shapes_get_few_jump_tables(self):
        program, _ = generate_benchmark("winword", scale=0.01)
        switch_count = len(program.jump_targets)
        routine_count = program.routine_count
        assert switch_count <= routine_count * 0.1

    def test_programs_terminate(self, small_benchmark):
        result = run_program(small_benchmark)
        assert result.halted
        assert result.outputs  # main OUTPUTs its callees' results

    def test_every_spec_benchmark_generates_and_runs(self):
        for shape in SPEC95_SHAPES:
            program = generate_program(shape.scaled(0.03))
            result = run_program(program, max_steps=2_000_000)
            assert result.halted, shape.name

    def test_opaque_calls_are_exported(self):
        program, _ = generate_benchmark(
            "gcc", scale=0.05, config=GeneratorConfig(seed=3, opaque_call_fraction=0.3)
        )
        exported = {routine.name for routine in program.exported_routines()}
        assert exported  # pointer-table targets are exported
