"""Tests for the paper-style annotated listings."""

import pytest

from tests.facade import analyze_program
from repro.program.asm import assemble
from repro.program.disasm import disassemble_image
from repro.reporting.annotate import render_annotated_listing


@pytest.fixture(scope="module")
def annotated(quick_program):
    analysis = analyze_program(quick_program)
    return render_annotated_listing(analysis)


class TestAnnotatedListing:
    def test_routine_headers_carry_entry_summary(self, annotated):
        assert "main:  [ live-at-entry =" in annotated
        assert "helper:  [ live-at-entry =" in annotated
        assert "call-used = " in annotated

    def test_call_annotated_like_figure_1b(self, annotated):
        line = next(l for l in annotated.splitlines() if "bsr" in l)
        assert "[ helper: used = {a0, ra}" in line
        assert "defined = {v0}" in line

    def test_return_annotated_like_figure_1a(self, annotated):
        line = next(l for l in annotated.splitlines() if "ret" in l)
        assert "[ used on return =" in line
        # main reads v0 after the call, so v0 is live on return.
        assert "v0" in line.split("used on return")[1]

    def test_routine_filter(self, quick_program):
        analysis = analyze_program(quick_program)
        only_helper = render_annotated_listing(analysis, ["helper"])
        assert "helper:" in only_helper
        assert "main:" not in only_helper

    def test_unknown_call_annotated(self):
        program = disassemble_image(
            assemble(
                """
                .data p: 0
                .routine main
                    li  t0, @p
                    ldq pv, 0(t0)
                    jsr ra, (pv)
                    halt
                """
            )
        )
        analysis = analyze_program(program)
        listing = render_annotated_listing(analysis)
        assert "<unknown>" in listing

    def test_hinted_call_shows_target_set(self):
        from tests.test_hints import _dispatch_program

        analysis = analyze_program(_dispatch_program())
        listing = render_annotated_listing(analysis, ["main"])
        assert "alpha/beta" in listing

    def test_saved_restored_note(self):
        program = disassemble_image(
            assemble(
                """
                .routine main
                    bsr ra, f
                    halt
                .routine f
                    lda sp, -16(sp)
                    stq s0, 0(sp)
                    bis zero, a0, s0
                    addq s0, #1, v0
                    ldq s0, 0(sp)
                    lda sp, 16(sp)
                    ret (ra)
                """
            )
        )
        analysis = analyze_program(program)
        listing = render_annotated_listing(analysis, ["f"])
        assert "saves/restores {s0}" in listing
