"""Tests for the traffic-shaped load driver (:mod:`repro.workloads.driver`).

Engines must be seeded and deterministic (that is what lets CI assert
"server histogram count == requests sent" with no slack), the cold
fraction must mint never-seen tenants, the edit-replay engine must lead
with the base analyze, and a live workload against an in-process daemon
must account for every request in the server's histograms.
"""

import threading

import pytest

from repro.obs import REGISTRY
from repro.program.asm import assemble
from repro.service import AnalysisDaemon, ServiceClient, ServiceConfig
from repro.workloads.driver import (
    KIND_ANALYZE,
    KIND_EDIT,
    KIND_QUERY,
    EditReplayEngine,
    ImageSpec,
    Req,
    ReqResult,
    UniformEngine,
    Workload,
    WorkloadReport,
    ZipfEngine,
    assign_arrivals,
    record_edit_trace,
    zipf_weights,
)

SOURCE = """
.routine main export
    li  a0, 3
    bsr ra, inc
    bis zero, v0, a0
    output
    halt
.routine inc
    addq a0, a1, v0
    addq v0, a0, v0
    ret (ra)
"""


@pytest.fixture(scope="module")
def spec():
    return ImageSpec(
        name="tiny",
        image_bytes=assemble(SOURCE).to_bytes(),
        routines=("main", "inc"),
        editable=("inc",),
    )


@pytest.fixture(scope="module")
def specs(spec):
    return [
        spec,
        ImageSpec(
            name="tiny2",
            image_bytes=spec.image_bytes,
            routines=("main", "inc"),
            editable=("inc",),
        ),
    ]


class TestEngines:
    def test_streams_are_seeded_and_deterministic(self, specs):
        first = UniformEngine(specs, seed=7, cold_fraction=0.3).requests(40)
        second = UniformEngine(specs, seed=7, cold_fraction=0.3).requests(40)
        assert first == second
        different = UniformEngine(specs, seed=8, cold_fraction=0.3)
        assert different.requests(40) != first

    def test_uniform_mixes_analyze_and_query(self, specs):
        reqs = UniformEngine(specs, seed=1, query_fraction=0.5).requests(60)
        kinds = {req.kind for req in reqs}
        assert kinds == {KIND_ANALYZE, KIND_QUERY}
        for req in reqs:
            if req.kind == KIND_QUERY:
                assert req.routine in ("main", "inc")
            else:
                assert req.routine is None

    def test_cold_fraction_mints_unique_tenants(self, specs):
        reqs = UniformEngine(specs, seed=3, cold_fraction=0.4).requests(50)
        cold = [r for r in reqs if r.tenant != "load"]
        assert 0 < len(cold) < len(reqs)
        assert len({r.tenant for r in cold}) == len(cold)  # never reused
        assert all(r.tenant.startswith("load-cold-") for r in cold)

    def test_zero_cold_fraction_shares_one_tenant(self, specs):
        reqs = UniformEngine(specs, seed=3, cold_fraction=0.0).requests(20)
        assert {r.tenant for r in reqs} == {"load"}

    def test_requires_at_least_one_image(self):
        with pytest.raises(ValueError):
            UniformEngine([])

    def test_zipf_weights_normalized_and_decreasing(self):
        weights = zipf_weights(5, 1.1)
        assert sum(weights) == pytest.approx(1.0)
        assert weights == sorted(weights, reverse=True)
        assert weights[0] / weights[4] == pytest.approx(5 ** 1.1)

    def test_zipf_concentrates_on_the_head(self, specs):
        reqs = ZipfEngine(specs, seed=5, skew=1.5).requests(200)
        hot = sum(1 for r in reqs if r.image == "tiny")
        assert hot > len(reqs) // 2  # rank 1 absorbs most traffic

    def test_from_benchmark_is_deterministic(self):
        one = ImageSpec.from_benchmark("compress", scale=0.05, seed=0)
        two = ImageSpec.from_benchmark("compress", scale=0.05, seed=0)
        assert one == two
        assert one.routines
        assert set(one.editable) <= set(one.routines)


class TestEditReplay:
    def test_trace_is_seeded_and_bounded_to_editable(self, spec):
        trace = record_edit_trace(spec, 12, seed=4)
        assert trace == record_edit_trace(spec, 12, seed=4)
        assert len(trace) == 12
        assert set(trace) <= set(spec.editable)

    def test_trace_requires_editable_routines(self, spec):
        bare = ImageSpec(
            name="bare", image_bytes=spec.image_bytes, routines=("main",)
        )
        with pytest.raises(ValueError):
            record_edit_trace(bare, 4)

    def test_replay_leads_with_the_base_analyze(self, spec):
        trace = ["inc", "inc"]
        reqs = EditReplayEngine(spec, trace).requests(5)
        assert len(reqs) == 5
        assert reqs[0].kind == KIND_ANALYZE
        assert all(r.kind == KIND_EDIT for r in reqs[1:])
        assert all(r.routine == "inc" for r in reqs[1:])

    def test_replay_cycles_a_short_trace(self, spec):
        reqs = EditReplayEngine(spec, ["inc"]).requests(4)
        assert [r.routine for r in reqs[1:]] == ["inc"] * 3


class TestArrivals:
    def test_offsets_are_monotonic_and_seeded(self):
        reqs = [Req(kind=KIND_ANALYZE, image="i") for _ in range(30)]
        stamped = assign_arrivals(reqs, rate=100.0, seed=9)
        offsets = [r.at for r in stamped]
        assert offsets == sorted(offsets)
        assert offsets[0] == 0.0
        again = [r.at for r in assign_arrivals(reqs, rate=100.0, seed=9)]
        assert offsets == again

    def test_bursts_arrive_back_to_back(self):
        reqs = [Req(kind=KIND_ANALYZE, image="i") for _ in range(50)]
        stamped = assign_arrivals(
            reqs, rate=100.0, seed=9, burst_probability=0.5
        )
        offsets = [r.at for r in stamped]
        pairs = list(zip(offsets, offsets[1:]))
        assert any(a == b for a, b in pairs)  # bursts share an instant
        assert any(a < b for a, b in pairs)  # but not everything bursts

    def test_rate_must_be_positive(self):
        with pytest.raises(ValueError):
            assign_arrivals([], rate=0.0)


class TestWorkloadReport:
    def _result(self, seconds, status=200, warm=False):
        return ReqResult(
            kind=KIND_ANALYZE, image="i", status=status, warm=warm,
            seconds=seconds,
        )

    def test_quantiles_are_exact_order_statistics(self):
        results = [self._result(s / 100) for s in range(1, 101)]
        report = WorkloadReport("uniform", results, wall_seconds=2.0)
        assert report.quantile(0.50) == pytest.approx(0.51)
        assert report.quantile(0.99) == pytest.approx(1.0)
        assert report.throughput == pytest.approx(50.0)

    def test_to_json_counts_errors_and_warm(self):
        results = [
            self._result(0.01, warm=True),
            self._result(0.02),
            self._result(0.03, status=500),
        ]
        summary = WorkloadReport("zipf", results, 1.0).to_json()
        assert summary["requests"] == 3
        assert summary["errors"] == 1
        assert summary["warm"] == 1
        assert summary["p50_ms"] == pytest.approx(20.0)


class TestWorkloadLive:
    def _request_seconds_count(self):
        return sum(
            int(entry["count"])
            for key, entry in REGISTRY.histograms_dict().items()
            if key.startswith("service.request.seconds")
        )

    def test_every_request_lands_in_the_server_histogram(self, specs):
        daemon = AnalysisDaemon(ServiceConfig(port=0))
        thread = threading.Thread(target=daemon.serve_forever)
        thread.start()
        base = self._request_seconds_count()
        try:
            host, port = daemon.server.server_address[:2]

            def connect(tenant):
                return ServiceClient.tcp(host, port, tenant=tenant)

            workload = Workload(
                UniformEngine(
                    specs, seed=2, cold_fraction=0.25, query_fraction=0.5
                ),
                count=12,
                concurrency=3,
                seed=2,
            )
            report = workload.run(connect)
            replay = Workload(
                EditReplayEngine(specs[0], ["inc"]), count=4, concurrency=1
            )
            replay_report = replay.run(connect)
        finally:
            daemon.drain()
            thread.join(timeout=30)

        assert report.count == 12
        assert report.errors == 0
        assert replay_report.errors == 0
        # Repeats within the warm tenant and the edit warm-starts mix
        # warm responses in; the cold-tenant mints guarantee colds.
        assert 0 < report.warm_count + replay_report.warm_count < 16
        assert self._request_seconds_count() - base == 16
