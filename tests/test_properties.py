"""Property-based end-to-end tests.

Hypothesis drives the synthetic generator with arbitrary seeds and
shapes, then checks global invariants:

* **engine agreement** — PSG summaries equal the full-CFG baseline's;
* **dynamic soundness** — for every dynamic call observed by the
  tracing interpreter, the registers actually read before being
  written are covered by call-used (modulo the §3.4-filtered
  callee-saved registers and the preserved sp/gp), and the registers
  whose values actually change are covered by call-killed;
* **optimizer safety** — the full pipeline never changes observable
  behaviour and never grows the program;
* **rewriter integrity** — programs survive image round-trips after
  arbitrary optimization.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.dataflow.regset import RegisterSet, mask_of
from tests.facade import analyze_program
from repro.interproc.baseline import analyze_program_baseline
from tests.facade import optimize_program
from repro.program.disasm import disassemble_image
from repro.program.rewrite import program_to_image
from repro.sim.interpreter import run_program
from repro.workloads.generator import GeneratorConfig, generate_benchmark

_SLOW = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_BENCHES = st.sampled_from(["compress", "li", "go", "perl"])
_SEEDS = st.integers(min_value=0, max_value=10_000)


def _generate(bench, seed):
    program, _shape = generate_benchmark(
        bench, scale=0.08, config=GeneratorConfig(seed=seed)
    )
    return program


@_SLOW
@given(bench=_BENCHES, seed=_SEEDS)
def test_property_engines_agree(bench, seed):
    program = _generate(bench, seed)
    psg = analyze_program(program)
    baseline = analyze_program_baseline(program)
    assert psg.result.equal_summaries(baseline.result), (
        baseline.result.diff(psg.result)[:5]
    )


#: Callee-saved registers anywhere in the dynamic extent of a call may
#: be read harmlessly by save instructions that §3.4 filters away at
#: every level of the call tree, so soundness of call-used is asserted
#: modulo the entire callee-saved set (plus the preserved sp/gp).
_FILTERABLE = mask_of(
    ["s0", "s1", "s2", "s3", "s4", "s5", "fp", "sp", "gp"]
    + [f"f{i}" for i in range(2, 10)]
)


@_SLOW
@given(bench=_BENCHES, seed=_SEEDS)
def test_property_summaries_sound_against_execution(bench, seed):
    program = _generate(bench, seed)
    analysis = analyze_program(program)
    trace = run_program(program, trace_calls=True)
    for record in trace.call_records:
        if record.callee not in analysis.result.summaries:
            continue
        summary = analysis.summary(record.callee)
        allowed_reads = summary.call_used_mask | _FILTERABLE
        stray_reads = record.read_before_write & ~allowed_reads
        assert stray_reads == 0, (
            f"{record.callee}: dynamically read-before-write "
            f"{RegisterSet.from_mask(stray_reads)!r} not in call-used"
        )
        allowed_changes = summary.call_killed_mask
        stray_changes = record.changed & ~allowed_changes
        assert stray_changes == 0, (
            f"{record.callee}: dynamically changed "
            f"{RegisterSet.from_mask(stray_changes)!r} not in call-killed"
        )
        # call-defined registers must in fact have been written.
        missing_defs = summary.call_defined_mask & ~record.written
        assert missing_defs == 0, (
            f"{record.callee}: call-defined "
            f"{RegisterSet.from_mask(missing_defs)!r} never written"
        )


@_SLOW
@given(bench=_BENCHES, seed=_SEEDS)
def test_property_optimizer_preserves_behaviour(bench, seed):
    program = _generate(bench, seed)
    result = optimize_program(program, verify=True)
    assert result.behaviour_preserved()
    assert result.optimized.instruction_count <= program.instruction_count


@_SLOW
@given(bench=_BENCHES, seed=_SEEDS)
def test_property_optimized_image_roundtrip(bench, seed):
    program = _generate(bench, seed)
    optimized = optimize_program(program, verify=False).optimized
    reloaded = disassemble_image(program_to_image(optimized))
    assert (
        run_program(reloaded).observable == run_program(program).observable
    )


@_SLOW
@given(bench=_BENCHES, seed=_SEEDS)
def test_property_live_at_entry_covers_dynamic_reads(bench, seed):
    """The entry routine's live-at-entry covers every register the whole
    run reads before writing (tracked via a synthetic whole-program
    frame)."""
    program = _generate(bench, seed)
    analysis = analyze_program(program)
    trace = run_program(program, trace_calls=True)
    for record in trace.call_records:
        if record.callee not in analysis.result.summaries:
            continue
        summary = analysis.summary(record.callee)
        allowed = summary.live_at_entry_mask | _FILTERABLE
        stray = record.read_before_write & ~allowed
        assert stray == 0, (
            f"{record.callee}: read {RegisterSet.from_mask(stray)!r} "
            f"not live at entry"
        )
