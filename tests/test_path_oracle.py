"""Phase-1 verified against brute-force path enumeration.

For small random *acyclic* single-routine PSGs we can compute the
entry-node sets directly from their definition: compose each edge
label along every entry→exit path, then combine across paths (MAY by
union, MUST by intersection).  The worklist engine must agree exactly.

Composition of two consecutive path segments (A then B):

    MAY-USE  = A.may_use  ∪ (B.may_use − A.must_def)
    MAY-DEF  = A.may_def  ∪ B.may_def
    MUST-DEF = A.must_def ∪ B.must_def
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cfg.cfg import ExitKind
from repro.dataflow.equations import SummaryTriple
from repro.interproc.phase1 import run_phase1
from repro.psg.graph import ProgramSummaryGraph, RoutinePSG
from repro.psg.nodes import FlowEdge, NodeKind, PSGNode

_REGS = 6  # small universe keeps enumeration readable
_MASK = (1 << _REGS) - 1


def compose(a: SummaryTriple, b: SummaryTriple) -> SummaryTriple:
    return SummaryTriple(
        may_use=a.may_use | (b.may_use & ~a.must_def),
        may_def=a.may_def | b.may_def,
        must_def=a.must_def | b.must_def,
    )


def build_random_dag(rng: random.Random):
    """A random layered DAG: entry -> (branch layer) -> exits.

    Uses only entry, branch and exit nodes (no calls), which keeps the
    path semantics exact while still exercising joins, fan-out and the
    ∩ meet.
    """
    nodes = []
    edges = []

    def node(kind, **extra):
        n = PSGNode(id=len(nodes), kind=kind, routine="f", block=len(nodes),
                    **extra)
        nodes.append(n)
        return n.id

    def triple():
        may_def = rng.getrandbits(_REGS)
        must_def = may_def & rng.getrandbits(_REGS)
        return SummaryTriple(
            may_use=rng.getrandbits(_REGS),
            may_def=may_def,
            must_def=must_def,
        )

    entry = node(NodeKind.ENTRY)
    layers = [[entry]]
    for _ in range(rng.randrange(0, 3)):
        layer = [node(NodeKind.BRANCH) for _ in range(rng.randrange(1, 3))]
        layers.append(layer)
    exits = [
        node(NodeKind.EXIT, exit_kind=ExitKind.RETURN)
        for _ in range(rng.randrange(1, 3))
    ]
    layers.append(exits)

    # Every node connects to >=1 node of the next layer.
    for above, below in zip(layers, layers[1:]):
        for src in above:
            targets = rng.sample(below, rng.randrange(1, len(below) + 1))
            for dst in targets:
                edges.append(FlowEdge(src, dst, triple()))
        for dst in below:  # ensure reachability of every node
            if not any(e.dst == dst for e in edges):
                edges.append(FlowEdge(rng.choice(above), dst, triple()))

    routine = RoutinePSG(
        routine="f",
        entry_node=entry,
        exit_nodes=[(x, ExitKind.RETURN) for x in exits],
        call_pairs=[],
        branch_nodes=[n.id for n in nodes if n.kind == NodeKind.BRANCH],
    )
    psg = ProgramSummaryGraph(
        nodes=nodes, flow_edges=edges, call_return_edges=[],
        routines={"f": routine},
    )
    return psg, entry, set(exits)


def enumerate_paths(psg, entry, exits):
    """Every entry→exit label composition, by DFS (the graph is a DAG)."""
    out_edges = {}
    for edge in psg.flow_edges:
        out_edges.setdefault(edge.src, []).append(edge)
    results = []

    def walk(node, acc):
        if node in exits:
            results.append(acc)
            return
        for edge in out_edges.get(node, []):
            walk(edge.dst, compose(acc, edge.label))

    for edge in out_edges.get(entry, []):
        walk(edge.dst, edge.label)
    return results


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_phase1_equals_path_enumeration(seed):
    rng = random.Random(seed)
    psg, entry, exits = build_random_dag(rng)
    paths = enumerate_paths(psg, entry, exits)
    assert paths, "every generated DAG must have a path"

    expected_mu = 0
    expected_md = 0
    expected_xd = _MASK
    for path in paths:
        expected_mu |= path.may_use
        expected_md |= path.may_def
        expected_xd &= path.must_def

    result = run_phase1(psg, {}, 0, list(range(len(psg.nodes))))
    assert result.may_use[entry] & _MASK == expected_mu
    assert result.may_def[entry] & _MASK == expected_md
    assert result.must_def[entry] & _MASK == expected_xd
