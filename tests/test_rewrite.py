"""Tests for the binary rewriter: deletions, renames, relocation fix-ups."""

import pytest

from repro.isa.instructions import Instruction, Opcode
from repro.program.asm import assemble
from repro.program.disasm import disassemble_image
from repro.program.rewrite import (
    RewriteError,
    apply_edits,
    program_to_image,
)
from repro.sim.interpreter import run_program


def program_of(source, entry=None):
    return disassemble_image(assemble(source, entry=entry))


class TestDeletion:
    SOURCE = """
        .routine main
            li  t9, 999         ; dead: deleted by the edit below
            li  t0, 5
        top:
            subq t0, #1, t0
            bgt  t0, top
            bis  zero, t0, a0
            output
            halt
    """

    def test_delete_preserves_behaviour(self):
        program = program_of(self.SOURCE)
        before = run_program(program)
        edited = apply_edits(program, {"main": {0: None}})
        after = run_program(edited)
        assert before.observable == after.observable
        assert edited.instruction_count == program.instruction_count - 1

    def test_branch_displacements_fixed(self):
        program = program_of(self.SOURCE)
        edited = apply_edits(program, {"main": {0: None}})
        # The loop still branches back one instruction.
        branch = edited.routine("main").instructions[2]
        assert branch.opcode is Opcode.BGT
        assert branch.displacement == -2

    def test_delete_control_instruction_rejected(self):
        program = program_of(self.SOURCE)
        # Index 3 is the bgt.
        with pytest.raises(RewriteError, match="control"):
            apply_edits(program, {"main": {3: None}})

    def test_delete_everything_rejected(self):
        program = program_of(".routine main\n halt\n")
        with pytest.raises(RewriteError):
            apply_edits(program, {"main": {0: None}})

    def test_unknown_routine_rejected(self):
        program = program_of(".routine main\n halt\n")
        with pytest.raises(RewriteError, match="unknown routine"):
            apply_edits(program, {"ghost": {0: None}})


class TestReplacement:
    def test_register_rename(self):
        program = program_of(
            ".routine main\n li t0, 7\n bis zero, t0, a0\n output\n halt\n"
        )
        renamed = apply_edits(
            program,
            {
                "main": {
                    0: Instruction(Opcode.LDA, ra=8, rb=31, displacement=7),
                    1: Instruction(Opcode.BIS, ra=31, rb=8, rc=16),
                }
            },
        )
        assert run_program(renamed).outputs == [7]

    def test_control_kind_change_rejected(self):
        program = program_of(".routine main\n li t0, 7\n halt\n")
        with pytest.raises(RewriteError, match="control"):
            apply_edits(
                program,
                {"main": {0: Instruction(Opcode.RET, rb=26)}},
            )


class TestCrossRoutineFixups:
    SOURCE = """
        .routine main
            li  t9, 1           ; filler to delete (shifts everything)
            li  t9, 2
            li  a0, 4
            bsr ra, callee
            bis zero, v0, a0
            output
            halt
        .routine callee
            addq a0, #1, v0
            ret (ra)
    """

    def test_bsr_retargeted_after_shift(self):
        program = program_of(self.SOURCE)
        edited = apply_edits(program, {"main": {0: None, 1: None}})
        assert run_program(edited).outputs == [5]
        # Callee moved down by 8 bytes.
        assert edited.routine("callee").address == (
            program.routine("callee").address - 8
        )

    def test_ldah_lda_chain_repaired(self):
        source = """
            .routine main
                li  t9, 1       ; deleted
                li  a0, 4
                li  pv, &callee
                jsr ra, (pv)
                bis zero, v0, a0
                output
                halt
            .routine callee
                addq a0, #3, v0
                ret (ra)
        """
        program = program_of(source)
        edited = apply_edits(program, {"main": {0: None}})
        assert run_program(edited).outputs == [7]

    def test_jump_table_patched(self):
        source = """
            .routine main
                li   t9, 1      ; deleted
                li   t0, 1
                li   t2, &T
                sll  t0, #3, t1
                addq t2, t1, t2
                ldq  t2, 0(t2)
                jmp  t2, [T]
            c0: li a0, 100
                output
                halt
            c1: li a0, 200
                output
                halt
            .jumptable T: c0, c1
        """
        program = program_of(source)
        edited = apply_edits(program, {"main": {0: None}})
        assert run_program(edited).outputs == [200]
        # The table's data location did not move; its contents did.
        jump_address = next(iter(edited.jump_targets))
        assert edited.jump_table_locations[jump_address] == next(
            iter(program.jump_table_locations.values())
        )

    def test_data_relocations_patched(self):
        from repro.program.asm import Assembler

        asm = Assembler()
        asm.data_code_pointers("fns", ["callee"])
        asm.routine("main")
        asm.li("t9", 1)  # deleted
        asm.li("a0", 30)
        asm.li("t0", "@fns")
        asm.memory("ldq", "pv", 0, "t0")
        asm.jsr("pv")
        asm.op("bis", "zero", "v0", "a0")
        asm.output()
        asm.halt()
        asm.routine("callee")
        asm.op("addq", "a0", 3, "v0")
        asm.ret()
        program = disassemble_image(asm.build())
        edited = apply_edits(program, {"main": {0: None}})
        assert run_program(edited).outputs == [33]


class TestProgramToImage:
    def test_roundtrip(self, quick_program):
        image = program_to_image(quick_program)
        reloaded = disassemble_image(image)
        assert reloaded.routine_names() == quick_program.routine_names()
        assert (
            run_program(reloaded).observable
            == run_program(quick_program).observable
        )

    def test_rewritten_program_serializes(self):
        program = program_of(TestCrossRoutineFixups.SOURCE)
        edited = apply_edits(program, {"main": {0: None}})
        image = program_to_image(edited)
        reloaded = disassemble_image(image)
        assert run_program(reloaded).outputs == [5]

    def test_generated_benchmark_roundtrips(self, small_benchmark):
        image = program_to_image(small_benchmark)
        reloaded = disassemble_image(image)
        assert (
            run_program(reloaded).observable
            == run_program(small_benchmark).observable
        )


class TestNoOpEdit:
    def test_empty_edits_identity(self, quick_program):
        edited = apply_edits(quick_program, {})
        assert edited.instruction_count == quick_program.instruction_count
        assert (
            run_program(edited).observable
            == run_program(quick_program).observable
        )
