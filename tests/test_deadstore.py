"""Tests for dead frame-store elimination and the cycle cost model."""

import pytest

from repro.cfg.build import build_cfg
from tests.facade import analyze_program
from repro.opt.deadstore import eliminate_dead_stores
from tests.facade import optimize_program
from repro.program.asm import assemble
from repro.program.disasm import disassemble_image
from repro.program.rewrite import apply_edits
from repro.sim.cost_model import ALPHA_21164, CostModel, cycle_improvement
from repro.sim.interpreter import run_program


def edits_of(source, routine="main"):
    program = disassemble_image(assemble(source))
    analysis = analyze_program(program)
    return (
        program,
        eliminate_dead_stores(
            analysis.cfgs[routine], analysis.summary(routine)
        ),
    )


class TestDeadStores:
    def test_store_without_load_removed(self):
        program, edits = edits_of(
            """
            .routine main
                lda sp, -16(sp)
                li  t0, 7
                stq t0, 0(sp)       ; never loaded
                bis zero, t0, a0
                output
                lda sp, 16(sp)
                halt
            """
        )
        assert list(edits.values()) == [None]
        optimized = apply_edits(program, {"main": edits})
        assert run_program(optimized).observable == run_program(program).observable

    def test_store_with_load_kept(self):
        _program, edits = edits_of(
            """
            .routine main
                lda sp, -16(sp)
                li  t0, 7
                stq t0, 0(sp)
                ldq a0, 0(sp)
                output
                lda sp, 16(sp)
                halt
            """
        )
        assert edits == {}

    def test_overwritten_store_removed(self):
        _program, edits = edits_of(
            """
            .routine main
                lda sp, -16(sp)
                li  t0, 1
                stq t0, 0(sp)       ; dead: overwritten before any load
                li  t0, 2
                stq t0, 0(sp)
                ldq a0, 0(sp)
                output
                lda sp, 16(sp)
                halt
            """
        )
        assert len(edits) == 1
        assert 2 in edits  # the first store (index 2)

    def test_store_live_through_branch_kept(self):
        _program, edits = edits_of(
            """
            .routine main
                lda sp, -16(sp)
                li  t0, 7
                stq t0, 0(sp)
                beq t0, skip
                ldq a0, 0(sp)       ; load on one path only
                output
            skip:
                lda sp, 16(sp)
                halt
            """
        )
        assert edits == {}

    def test_non_sp_memory_access_bails(self):
        _program, edits = edits_of(
            """
            .routine main
                lda sp, -16(sp)
                li  t0, 7
                stq t0, 0(sp)
                li  t1, 0x400000
                ldq t2, 0(t1)       ; non-sp access: no frame privacy proof
                lda sp, 16(sp)
                halt
            """
        )
        assert edits == {}

    def test_mid_routine_sp_adjustment_bails(self):
        _program, edits = edits_of(
            """
            .routine main
                lda sp, -16(sp)
                stq t0, 0(sp)       ; removing this would be wrong: the
                beq t0, done        ; inner frame's 0(sp) is a different slot
                lda sp, -16(sp)
                ldq t1, 0(sp)
                lda sp, 16(sp)
            done:
                lda sp, 16(sp)
                halt
            """
        )
        assert edits == {}

    def test_unknown_jump_exit_bails(self):
        _program, edits = edits_of(
            """
            .routine main
                lda sp, -16(sp)
                stq t0, 0(sp)
                beq t0, wild
                lda sp, 16(sp)
                halt
            wild:
                jmp (t7)
            """
        )
        assert edits == {}

    def test_save_orphaned_by_dce_removed_by_pipeline(self):
        """An internal routine whose callers never need s0 preserved:
        DCE kills the restore, deadstore kills the save."""
        program = disassemble_image(
            assemble(
                """
                .routine main
                    li a0, 1
                    bsr ra, f
                    bis zero, v0, a0
                    output
                    halt
                .routine f
                    lda sp, -16(sp)
                    stq s0, 0(sp)
                    bis zero, a0, s0
                    addq s0, #1, v0
                    ldq s0, 0(sp)
                    lda sp, 16(sp)
                    ret (ra)
                """
            )
        )
        result = optimize_program(
            program, passes=("dce", "deadstore"), verify=True
        )
        assert result.behaviour_preserved()
        names = [
            i.opcode.mnemonic for i in result.optimized.routine("f").instructions
        ]
        assert "stq" not in names
        assert "ldq" not in names

    def test_frame_slots_are_per_activation(self):
        """Recursive activations have distinct frames; a store read only
        by the same activation's load must be kept."""
        program = disassemble_image(
            assemble(
                """
                .routine main
                    li a0, 3
                    bsr ra, fact
                    bis zero, v0, a0
                    output
                    halt
                .routine fact
                    lda sp, -16(sp)
                    stq ra, 0(sp)
                    stq a0, 8(sp)
                    li v0, 1
                    ble a0, done
                    subq a0, #1, a0
                    bsr ra, fact
                    ldq t0, 8(sp)
                    mulq v0, t0, v0
                done:
                    ldq ra, 0(sp)
                    lda sp, 16(sp)
                    ret (ra)
                """
            )
        )
        analysis = analyze_program(program)
        edits = eliminate_dead_stores(
            analysis.cfgs["fact"], analysis.summary("fact")
        )
        assert edits == {}
        assert run_program(program).outputs == [6]


class TestCostModel:
    def test_default_weights(self):
        assert ALPHA_21164.cost_of("ldq") == 3
        assert ALPHA_21164.cost_of("stq") == 2
        assert ALPHA_21164.cost_of("mulq") == 8
        assert ALPHA_21164.cost_of("addq") == 1
        assert ALPHA_21164.cost_of("bsr") == 2
        assert ALPHA_21164.cost_of("nonsense") == 1

    def test_estimate_cycles(self):
        program = disassemble_image(
            assemble(
                ".routine main\n li t0, 1\n stq t0, -8(sp)\n "
                "ldq t1, -8(sp)\n halt\n"
            )
        )
        result = run_program(program)
        # lda(1) + stq(2) + ldq(3) + halt(2) = 8
        assert ALPHA_21164.estimate_cycles(result) == 8

    def test_cycle_improvement_weighs_memory_ops(self):
        source = ".routine main\n li t0, 1\n {body} halt\n"
        with_spill = disassemble_image(
            assemble(source.format(body="stq t0, -8(sp)\n ldq t0, -8(sp)\n"))
        )
        without = disassemble_image(assemble(source.format(body="")))
        before = run_program(with_spill)
        after = run_program(without)
        instr_gain = (before.steps - after.steps) / before.steps
        cycles_gain = cycle_improvement(before, after)
        assert cycles_gain > instr_gain  # memory ops weigh more

    def test_custom_model(self):
        model = CostModel(weights={"halt": 10}, default=0)
        program = disassemble_image(assemble(".routine main\n halt\n"))
        assert model.estimate_cycles(run_program(program)) == 10
