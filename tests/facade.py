"""Test-suite helpers over the :class:`repro.api.AnalysisSession` facade.

The deprecated free functions (``analyze_program``, ``analyze_image``,
``analyze_incremental``, ``optimize_program``) are gone; the session
facade is the only supported entry point.  Most tests just want "give
me the analysis for this program" without spelling out session
construction, so these wrappers keep call sites one line.

``jobs=1`` is pinned explicitly everywhere: an explicit jobs argument
beats the ``REPRO_JOBS`` environment variable, so the CI parallel
variant (``REPRO_JOBS=2``) cannot silently flip these helpers to the
sharded engine — many callers reach into serial-only attributes like
``.psg`` and ``.phase1``.  Tests that want the parallel engine ask for
it explicitly.
"""

from typing import Optional, Sequence

from repro.api import AnalysisConfig, AnalysisSession
from repro.interproc.analysis import InterproceduralAnalysis
from repro.interproc.incremental import IncrementalAnalysis
from repro.interproc.persist import SummaryCache
from repro.program.image import ExecutableImage
from repro.program.model import Program


def analyze_program(
    program: Program, config: Optional[AnalysisConfig] = None
) -> InterproceduralAnalysis:
    """Serial analysis of an in-memory program via the facade."""
    session = AnalysisSession.from_program(program, config)
    return session.analyze(jobs=1)


def analyze_image(
    image: ExecutableImage, config: Optional[AnalysisConfig] = None
) -> InterproceduralAnalysis:
    """Serial analysis of an executable image via the facade."""
    session = AnalysisSession.from_image(image, config)
    return session.analyze(jobs=1)


def analyze_incremental(
    program: Program,
    cache: Optional[SummaryCache] = None,
    config: Optional[AnalysisConfig] = None,
    jobs: int = 1,
) -> IncrementalAnalysis:
    """Incremental analysis via the facade (cold when ``cache=None``)."""
    session = AnalysisSession.from_program(program, config)
    return session.analyze_incremental(cache=cache, jobs=jobs)


def optimize_program(
    program: Program,
    passes: Optional[Sequence[str]] = None,
    config: Optional[AnalysisConfig] = None,
    verify: bool = False,
    max_steps: int = 5_000_000,
):
    """The Figure-1 optimization pipeline via the facade."""
    session = AnalysisSession.from_program(program, config)
    return session.optimize(passes=passes, verify=verify, max_steps=max_steps)
