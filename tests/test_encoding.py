"""Tests for repro.isa.encoding: 32-bit round trips and error paths."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.encoding import (
    EncodingError,
    decode_instruction,
    decode_stream,
    encode_instruction,
    encode_stream,
)
from repro.isa.instructions import ControlKind, Format, Instruction, Opcode
from repro.isa.registers import Register, ZERO_REGISTER


def roundtrip(instruction: Instruction) -> Instruction:
    word = encode_instruction(instruction)
    assert 0 <= word < 1 << 32
    return decode_instruction(word)


class TestRoundTrips:
    def test_operate_register_form(self):
        ins = Instruction(Opcode.ADDQ, ra=1, rb=2, rc=3)
        assert roundtrip(ins) == ins

    def test_operate_literal_form(self):
        ins = Instruction(Opcode.SUBQ, ra=1, rc=3, literal=255)
        assert roundtrip(ins) == ins

    def test_float_operate(self):
        ins = Instruction(Opcode.MULT, ra=34, rb=35, rc=36)
        assert roundtrip(ins) == ins

    def test_itoft_mixed_files(self):
        ins = Instruction(Opcode.ITOFT, ra=5, rb=ZERO_REGISTER, rc=40)
        decoded = roundtrip(ins)
        assert decoded.ra == 5 and decoded.rc == 40

    def test_ftoit_mixed_files(self):
        ins = Instruction(Opcode.FTOIT, ra=40, rb=63, rc=5)
        decoded = roundtrip(ins)
        assert decoded.ra == 40 and decoded.rc == 5

    def test_memory_negative_displacement(self):
        ins = Instruction(Opcode.LDQ, ra=1, rb=30, displacement=-32768)
        assert roundtrip(ins) == ins

    def test_memory_positive_displacement(self):
        ins = Instruction(Opcode.STQ, ra=1, rb=30, displacement=32767)
        assert roundtrip(ins) == ins

    def test_float_memory(self):
        ins = Instruction(Opcode.STT, ra=40, rb=30, displacement=8)
        assert roundtrip(ins) == ins

    def test_branch_displacements(self):
        for displacement in (-(1 << 20), -1, 0, 1, (1 << 20) - 1):
            ins = Instruction(Opcode.BEQ, ra=1, displacement=displacement)
            assert roundtrip(ins) == ins

    def test_bsr(self):
        ins = Instruction(Opcode.BSR, ra=26, displacement=1000)
        assert roundtrip(ins) == ins

    def test_float_branch(self):
        ins = Instruction(Opcode.FBNE, ra=34, displacement=-5)
        assert roundtrip(ins) == ins

    def test_jump_family(self):
        for opcode in (Opcode.JMP, Opcode.JSR, Opcode.RET):
            ins = Instruction(opcode, ra=26, rb=27)
            assert roundtrip(ins) == ins

    def test_pal(self):
        assert roundtrip(Instruction(Opcode.HALT)) == Instruction(Opcode.HALT)
        assert roundtrip(Instruction(Opcode.OUTPUT)) == Instruction(Opcode.OUTPUT)

    @pytest.mark.parametrize("opcode", [
        op for op in Opcode
        if op.format in (Format.OPERATE, Format.OPERATE_FP)
    ])
    def test_every_operate_opcode(self, opcode):
        if opcode.format == Format.OPERATE_FP:
            ins = Instruction(opcode, ra=33, rb=34, rc=35)
            if opcode is Opcode.FTOIT:
                ins = Instruction(opcode, ra=33, rb=34, rc=3)
        elif opcode is Opcode.ITOFT:
            ins = Instruction(opcode, ra=3, rb=4, rc=35)
        else:
            ins = Instruction(opcode, ra=3, rb=4, rc=5)
        assert roundtrip(ins) == ins


class TestErrors:
    def test_branch_displacement_out_of_range(self):
        with pytest.raises(EncodingError):
            encode_instruction(Instruction(Opcode.BR, displacement=1 << 20))

    def test_memory_displacement_out_of_range(self):
        with pytest.raises(EncodingError):
            encode_instruction(
                Instruction(Opcode.LDQ, ra=1, rb=2, displacement=1 << 15)
            )

    def test_wrong_register_file_rejected(self):
        with pytest.raises(EncodingError):
            encode_instruction(Instruction(Opcode.ADDQ, ra=40, rb=2, rc=3))
        with pytest.raises(EncodingError):
            encode_instruction(Instruction(Opcode.ADDT, ra=1, rb=34, rc=35))

    def test_unknown_major_rejected(self):
        with pytest.raises(EncodingError):
            decode_instruction(0x07 << 26)  # major 0x07 is unassigned

    def test_unknown_operate_function_rejected(self):
        with pytest.raises(EncodingError):
            decode_instruction(0x10 << 26 | 0x7F << 5)  # bad function

    def test_unknown_pal_function(self):
        with pytest.raises(EncodingError):
            decode_instruction(0x0000_1234)

    def test_word_out_of_range(self):
        with pytest.raises(EncodingError):
            decode_instruction(1 << 32)

    def test_stream_length_checked(self):
        with pytest.raises(EncodingError):
            decode_stream(b"\x00\x01\x02")


class TestStreams:
    def test_stream_roundtrip(self):
        instructions = [
            Instruction(Opcode.LDA, ra=1, rb=31, displacement=7),
            Instruction(Opcode.ADDQ, ra=1, rb=1, rc=2),
            Instruction(Opcode.RET, rb=26),
        ]
        assert decode_stream(encode_stream(instructions)) == instructions

    def test_empty_stream(self):
        assert decode_stream(b"") == []
        assert encode_stream([]) == b""


# Hypothesis strategies for arbitrary well-formed instructions.
_INT_REG = st.integers(min_value=0, max_value=31)
_FP_REG = st.integers(min_value=32, max_value=63)


@st.composite
def instructions(draw):
    opcode = draw(st.sampled_from(list(Opcode)))
    fmt = opcode.format
    if fmt == Format.OPERATE:
        if opcode is Opcode.ITOFT:
            ra, rb, rc = draw(_INT_REG), draw(_INT_REG), draw(_FP_REG)
        else:
            ra, rb, rc = draw(_INT_REG), draw(_INT_REG), draw(_INT_REG)
        if draw(st.booleans()):
            return Instruction(
                opcode, ra=ra, rc=rc,
                literal=draw(st.integers(min_value=0, max_value=255)),
            )
        return Instruction(opcode, ra=ra, rb=rb, rc=rc)
    if fmt == Format.OPERATE_FP:
        if opcode is Opcode.FTOIT:
            return Instruction(
                opcode, ra=draw(_FP_REG), rb=draw(_FP_REG), rc=draw(_INT_REG)
            )
        return Instruction(
            opcode, ra=draw(_FP_REG), rb=draw(_FP_REG), rc=draw(_FP_REG)
        )
    if fmt in (Format.MEMORY, Format.MEMORY_FP):
        ra = draw(_FP_REG if fmt == Format.MEMORY_FP else _INT_REG)
        return Instruction(
            opcode, ra=ra, rb=draw(_INT_REG),
            displacement=draw(st.integers(min_value=-(1 << 15), max_value=(1 << 15) - 1)),
        )
    if fmt in (Format.BRANCH, Format.BRANCH_FP):
        ra = draw(_FP_REG if fmt == Format.BRANCH_FP else _INT_REG)
        return Instruction(
            opcode, ra=ra,
            displacement=draw(st.integers(min_value=-(1 << 20), max_value=(1 << 20) - 1)),
        )
    if fmt == Format.JUMP:
        return Instruction(opcode, ra=draw(_INT_REG), rb=draw(_INT_REG))
    return Instruction(opcode)


@given(instructions())
def test_property_roundtrip(instruction):
    """Every well-formed instruction survives encode/decode unchanged."""
    assert roundtrip(instruction) == instruction


@given(instructions())
def test_property_encoding_is_deterministic(instruction):
    assert encode_instruction(instruction) == encode_instruction(instruction)
