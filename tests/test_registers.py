"""Tests for repro.isa.registers."""

import pytest

from repro.isa.registers import (
    FLOAT_ZERO_REGISTER,
    NUM_REGISTERS,
    RETURN_ADDRESS,
    STACK_POINTER,
    Register,
    RegisterFile,
    ZERO_REGISTER,
    all_registers,
)


class TestRegister:
    def test_integer_indices(self):
        assert Register.integer(0).index == 0
        assert Register.integer(31).index == 31

    def test_float_indices_offset_by_32(self):
        assert Register.float(0).index == 32
        assert Register.float(31).index == 63

    def test_out_of_range_index_rejected(self):
        with pytest.raises(ValueError):
            Register(64)
        with pytest.raises(ValueError):
            Register(-1)

    def test_integer_constructor_rejects_32(self):
        with pytest.raises(ValueError):
            Register.integer(32)

    def test_float_constructor_rejects_32(self):
        with pytest.raises(ValueError):
            Register.float(32)

    def test_is_integer_is_float_partition(self):
        for register in all_registers():
            assert register.is_integer != register.is_float

    def test_zero_registers(self):
        assert Register(ZERO_REGISTER).is_zero
        assert Register(FLOAT_ZERO_REGISTER).is_zero
        assert not Register(0).is_zero

    def test_hardware_names(self):
        assert Register(4).hardware_name == "r4"
        assert Register(36).hardware_name == "f4"

    def test_software_names(self):
        assert Register(0).name == "v0"
        assert Register(9).name == "s0"
        assert Register(16).name == "a0"
        assert Register(RETURN_ADDRESS).name == "ra"
        assert Register(STACK_POINTER).name == "sp"
        assert Register(ZERO_REGISTER).name == "zero"

    def test_float_names_fall_back_to_hardware(self):
        assert Register.float(7).name == "f7"

    def test_parse_hardware_name(self):
        assert Register.parse("r17").index == 17
        assert Register.parse("f2").index == 34

    def test_parse_software_name(self):
        assert Register.parse("t0").index == 1
        assert Register.parse("pv").index == 27

    def test_parse_is_case_insensitive(self):
        assert Register.parse("SP").index == STACK_POINTER

    def test_parse_unknown_name(self):
        with pytest.raises(ValueError):
            Register.parse("r99")
        with pytest.raises(ValueError):
            Register.parse("bogus")

    def test_parse_roundtrips_every_register(self):
        for register in all_registers():
            assert Register.parse(register.name) == register
            assert Register.parse(register.hardware_name) == register

    def test_ordering_by_index(self):
        assert Register(3) < Register(7)
        assert sorted([Register(5), Register(1)]) == [Register(1), Register(5)]

    def test_equality_and_hash(self):
        assert Register(12) == Register(12)
        assert len({Register(1), Register(1), Register(2)}) == 2

    def test_all_registers_count(self):
        assert len(list(all_registers())) == NUM_REGISTERS


class TestRegisterFile:
    def test_initial_zero(self):
        assert RegisterFile().read(5) == 0

    def test_write_read(self):
        rf = RegisterFile()
        rf.write(3, 42)
        assert rf.read(3) == 42

    def test_write_accepts_register_objects(self):
        rf = RegisterFile()
        rf.write(Register(7), 9)
        assert rf.read(Register(7)) == 9

    def test_zero_register_reads_zero(self):
        rf = RegisterFile()
        rf.write(ZERO_REGISTER, 99)
        assert rf.read(ZERO_REGISTER) == 0

    def test_float_zero_register_discards_writes(self):
        rf = RegisterFile()
        rf.write(FLOAT_ZERO_REGISTER, 99)
        assert rf.read(FLOAT_ZERO_REGISTER) == 0

    def test_values_wrap_to_64_bits(self):
        rf = RegisterFile()
        rf.write(1, 1 << 64)
        assert rf.read(1) == 0
        rf.write(1, -1)
        assert rf.read(1) == (1 << 64) - 1

    def test_read_signed(self):
        rf = RegisterFile()
        rf.write(2, (1 << 64) - 5)
        assert rf.read_signed(2) == -5
        rf.write(2, 7)
        assert rf.read_signed(2) == 7

    def test_out_of_range_rejected(self):
        rf = RegisterFile()
        with pytest.raises(IndexError):
            rf.read(64)
        with pytest.raises(IndexError):
            rf.write(-1, 0)

    def test_initial_values(self):
        rf = RegisterFile({4: 11, 5: 22})
        assert rf.read(4) == 11
        assert rf.read(5) == 22

    def test_snapshot_is_immutable_copy(self):
        rf = RegisterFile({1: 10})
        snap = rf.snapshot()
        rf.write(1, 20)
        assert snap[1] == 10
        assert len(snap) == NUM_REGISTERS

    def test_copy_is_independent(self):
        rf = RegisterFile({1: 10})
        clone = rf.copy()
        clone.write(1, 99)
        assert rf.read(1) == 10
        assert clone.read(1) == 99
