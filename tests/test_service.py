"""Tests for the analysis daemon (:mod:`repro.service`).

The daemon's contract: every response body is the same schema-1 payload
an in-process :class:`~repro.api.AnalysisSession` produces (identical
dataflow facts, byte for byte), retained sessions make repeats warm,
tenants are isolated, the registry evicts LRU under its byte budget,
bad input maps to 4xx without leaving registry residue, and SIGTERM
drains gracefully.
"""

import base64
import json
import threading
import time

import pytest

from repro.api import AnalysisSession, validate_payload
from repro.program.asm import assemble
from repro.service import (
    AnalysisDaemon,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    SessionRegistry,
    TenantError,
    validate_tenant,
)

SOURCE_A = """
.routine main export
    li  a0, 3
    bsr ra, inc
    bis zero, v0, a0
    output
    halt
.routine inc
    addq a0, a1, v0
    addq v0, a0, v0
    ret (ra)
"""

SOURCE_B = """
.routine main export
    li  a0, 7
    bsr ra, dbl
    bsr ra, dbl
    bis zero, v0, a0
    output
    halt
.routine dbl
    addq a0, a0, v0
    bis zero, v0, a0
    ret (ra)
"""


@pytest.fixture(scope="module")
def image_a():
    return assemble(SOURCE_A).to_bytes()


@pytest.fixture(scope="module")
def image_b():
    return assemble(SOURCE_B).to_bytes()


@pytest.fixture()
def daemon():
    """A live daemon on an ephemeral TCP port, drained on teardown."""
    instance = AnalysisDaemon(ServiceConfig(port=0))
    thread = threading.Thread(target=instance.serve_forever)
    thread.start()
    try:
        yield instance
    finally:
        instance.drain()
        thread.join(timeout=30)
        assert not thread.is_alive()


def _client(daemon, tenant=None):
    host, port = daemon.server.server_address[:2]
    return ServiceClient.tcp(host, port, tenant=tenant)


def _local_payload(image_bytes, **to_json_kwargs):
    session = AnalysisSession.from_image_bytes(image_bytes)
    session.analyze(jobs=1)
    return session.to_json(**to_json_kwargs)


# ----------------------------------------------------------------------
# The core contract: served payloads == in-process payloads
# ----------------------------------------------------------------------


class TestAnalyzeEndpoint:
    def test_response_is_a_valid_schema1_payload(self, daemon, image_a):
        response = _client(daemon).analyze(image_a)
        assert response.status == 200
        validate_payload(response.payload)
        assert response.headers["X-Repro-Schema"] == "1"
        assert response.run_id

    def test_summaries_byte_identical_to_in_process(self, daemon, image_a):
        served = _client(daemon).analyze(image_a, include_summaries=True)
        local = _local_payload(image_a, include_summaries=True)
        assert served.payload["summaries_crc64"] == local["summaries_crc64"]
        assert json.dumps(served.payload["summaries"], sort_keys=True) == (
            json.dumps(local["summaries"], sort_keys=True)
        )

    def test_repeat_of_unchanged_image_is_warm_and_identical(
        self, daemon, image_a
    ):
        client = _client(daemon)
        first = client.analyze(image_a)
        second = client.analyze(image_a)
        assert not first.warm
        assert second.warm
        # The retained payload is served verbatim — byte identical.
        assert first.payload == second.payload

    def test_summaries_stripped_unless_requested(self, daemon, image_a):
        client = _client(daemon)
        bare = client.analyze(image_a)
        full = client.analyze(image_a, include_summaries=True)
        assert "summaries" not in bare.payload
        assert set(full.payload["summaries"]) == {"main", "inc"}

    def test_edit_request_warm_starts_from_base_cache(self, daemon, image_a):
        client = _client(daemon)
        client.analyze(image_a)
        first_edit = client.analyze(image_a, edit={"routine": "inc"})
        assert first_edit.payload["kind"] == "incremental"
        assert not first_edit.warm  # had to seed the base cache
        second_edit = client.analyze(image_a, edit={"routine": "inc"})
        assert second_edit.warm
        assert second_edit.payload["mode"] == "warm"
        # Only the perturbed routine's cone re-solves.
        total = second_edit.payload["routines"]
        assert second_edit.payload["phase2_solved"] < total or total <= 2

    def test_edit_default_routine(self, daemon, image_a):
        response = _client(daemon).analyze(image_a, edit={})
        assert response.payload["kind"] == "incremental"

    def test_raw_body_edit_flag(self, daemon, image_a):
        """A raw octet-stream POST with a blank ``?edit=`` means "edit
        the default routine" — it must not degrade to a warm repeat
        (parse_qsl drops blank values unless told otherwise)."""
        import http.client

        _client(daemon).analyze(image_a)  # retain a warm payload
        host, port = daemon.server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=60)
        try:
            connection.request(
                "POST", "/v1/analyze?edit=", body=image_a,
                headers={"Content-Type": "application/octet-stream"},
            )
            raw = connection.getresponse()
            payload = json.loads(raw.read().decode("utf-8"))
        finally:
            connection.close()
        assert raw.status == 200
        assert payload["kind"] == "incremental"

    def test_concurrent_clients_on_distinct_images(
        self, daemon, image_a, image_b
    ):
        """Distinct images are served concurrently; each response
        matches its own in-process analysis byte for byte."""
        results = {}
        errors = []

        def hit(name, blob):
            try:
                client = _client(daemon)
                for _ in range(3):
                    results[name] = client.analyze(
                        blob, include_summaries=True
                    ).payload
            except Exception as error:  # pragma: no cover - diagnostic
                errors.append(error)

        threads = [
            threading.Thread(target=hit, args=("a", image_a)),
            threading.Thread(target=hit, args=("b", image_b)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        for name, blob in (("a", image_a), ("b", image_b)):
            local = _local_payload(blob, include_summaries=True)
            assert results[name]["summaries_crc64"] == (
                local["summaries_crc64"]
            ), name
            assert json.dumps(results[name]["summaries"], sort_keys=True) == (
                json.dumps(local["summaries"], sort_keys=True)
            ), name


class TestQueryEndpoint:
    def test_query_matches_full_analysis(self, daemon, image_a):
        response = _client(daemon).query(
            image_a, "inc", include_summaries=True
        )
        validate_payload(response.payload)
        assert response.payload["kind"] == "query"
        assert response.payload["routine"] == "inc"
        local = _local_payload(image_a, include_summaries=True)
        assert (
            response.payload["summary"] == local["summaries"]["inc"]
        )

    def test_second_query_is_warm(self, daemon, image_a):
        client = _client(daemon)
        assert not client.query(image_a, "inc").warm
        assert client.query(image_a, "main").warm

    def test_unknown_routine_is_404(self, daemon, image_a):
        with pytest.raises(ServiceError) as excinfo:
            _client(daemon).query(image_a, "missing")
        assert excinfo.value.status == 404


# ----------------------------------------------------------------------
# Tenancy and the registry
# ----------------------------------------------------------------------


class TestTenantIsolation:
    def test_tenants_get_independent_entries(self, daemon, image_a):
        team_a = _client(daemon, tenant="team-a")
        team_b = _client(daemon, tenant="team-b")
        assert not team_a.analyze(image_a).warm
        assert team_a.analyze(image_a).warm
        # Same image, different tenant: no cross-tenant warmth.
        assert not team_b.analyze(image_a).warm
        registry = _client(daemon).metricsz()["registry"]
        tenants = {entry["tenant"] for entry in registry["entries"]}
        assert tenants == {"team-a", "team-b"}

    def test_invalid_tenant_header_is_400(self, daemon, image_a):
        client = _client(daemon, tenant="../escape")
        with pytest.raises(ServiceError) as excinfo:
            client.analyze(image_a)
        assert excinfo.value.status == 400

    def test_validate_tenant(self):
        assert validate_tenant(None) == "public"
        assert validate_tenant("") == "public"
        assert validate_tenant("team-a.prod") == "team-a.prod"
        for bad in ("../x", ".hidden", "a/b", "a b", "x" * 80):
            with pytest.raises(TenantError):
                validate_tenant(bad)


class TestEviction:
    def test_lru_eviction_under_tiny_budget(self, image_a, image_b):
        """With a budget that fits one image, the second analyze evicts
        the first, and re-posting the first is cold again."""
        budget = max(len(image_a), len(image_b)) + 16
        daemon = AnalysisDaemon(ServiceConfig(port=0, max_bytes=budget))
        thread = threading.Thread(target=daemon.serve_forever)
        thread.start()
        try:
            client = _client(daemon)
            assert not client.analyze(image_a).warm
            assert not client.analyze(image_b).warm  # evicts a
            stats = client.metricsz()
            assert stats["registry"]["sessions"] == 1
            assert stats["counters"]["service.session.evicted"] >= 1
            assert not client.analyze(image_a).warm  # cold again
        finally:
            daemon.drain()
            thread.join(timeout=30)

    def test_most_recently_used_survives(self, image_a, image_b):
        registry = SessionRegistry(max_bytes=len(image_a) + len(image_b))
        registry.acquire("public", image_a)
        registry.acquire("public", image_b)
        registry.acquire("public", image_a)  # refresh a's recency
        # Push over budget with a copy under another tenant.
        registry.max_bytes = len(image_a) + 16
        registry.acquire("other", image_a)
        stats = registry.stats()
        survivors = {
            (entry["tenant"], entry["fingerprint"])
            for entry in stats["entries"]
        }
        # b (least recently used) went first.
        tenants = {tenant for tenant, _ in survivors}
        assert "other" in tenants


# ----------------------------------------------------------------------
# Bad input: 4xx, and nothing sticks
# ----------------------------------------------------------------------


class TestBadRequests:
    @pytest.mark.parametrize(
        "body, status",
        [
            (b"not json at all", 400),
            (b'["a", "list"]', 400),
            (b"{}", 400),
            (b'{"image_b64": "!!!"}', 400),
            (b'{"image_b64": "bm90IGFuIGltYWdl"}', 400),  # bad magic
        ],
    )
    def test_malformed_analyze_bodies(self, daemon, image_a, body, status):
        import http.client

        client = _client(daemon)
        host, port = daemon.server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=30)
        try:
            connection.request(
                "POST", "/v1/analyze", body=body,
                headers={"Content-Type": "application/json"},
            )
            raw = connection.getresponse()
            payload = json.loads(raw.read().decode())
            assert raw.status == status
            assert "error" in payload
        finally:
            connection.close()
        # No registry residue from any failed request.
        assert client.metricsz()["registry"]["sessions"] == 0

    def test_oversized_body_is_413(self, image_a):
        daemon = AnalysisDaemon(ServiceConfig(port=0, max_request_bytes=64))
        thread = threading.Thread(target=daemon.serve_forever)
        thread.start()
        try:
            client = _client(daemon)
            with pytest.raises(ServiceError) as excinfo:
                client.analyze(image_a)
            assert excinfo.value.status == 413
            assert client.metricsz()["registry"]["sessions"] == 0
        finally:
            daemon.drain()
            thread.join(timeout=30)

    def test_missing_body_is_411(self, daemon):
        response = _client(daemon).request(
            "POST", "/v1/analyze", raise_on_error=False
        )
        assert response.status == 411

    def test_unknown_paths(self, daemon):
        client = _client(daemon)
        assert client.request(
            "GET", "/nope", raise_on_error=False
        ).status == 404
        assert client.request(
            "POST", "/v2/analyze", body={}, raise_on_error=False
        ).status == 404

    def test_bad_jobs_value_is_400(self, daemon, image_a):
        body = {
            "image_b64": base64.b64encode(image_a).decode(),
            "jobs": "many",
        }
        response = _client(daemon).request(
            "POST", "/v1/analyze", body, raise_on_error=False
        )
        assert response.status == 400


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------


class TestLifecycle:
    def test_healthz_flips_to_draining(self, image_a):
        daemon = AnalysisDaemon(ServiceConfig(port=0))
        thread = threading.Thread(target=daemon.serve_forever)
        thread.start()
        client = _client(daemon)
        assert client.healthz().status == 200
        daemon.drain()
        thread.join(timeout=30)
        assert not thread.is_alive()
        # Idempotent.
        daemon.drain()

    def test_graceful_drain_finishes_inflight_request(self, image_a):
        """A drain issued while a request is solving lets it finish."""
        daemon = AnalysisDaemon(ServiceConfig(port=0))
        thread = threading.Thread(target=daemon.serve_forever)
        thread.start()
        results = {}

        def slow_request():
            results["response"] = _client(daemon).analyze(image_a)

        worker = threading.Thread(target=slow_request)
        try:
            worker.start()
            # Drain races the in-flight analyze; the handler must
            # complete either way (block_on_close joins it).
            time.sleep(0.01)
            daemon.drain()
            worker.join(timeout=60)
            assert not worker.is_alive()
            response = results["response"]
            # Either it got in before the accept loop stopped (200)
            # or it was refused cleanly (503) — never truncated.
            assert response.status in (200, 503)
            if response.status == 200:
                validate_payload(response.payload)
        finally:
            daemon.drain()
            thread.join(timeout=30)

    def test_metricsz_counts_requests(self, daemon, image_a):
        client = _client(daemon)
        client.analyze(image_a)
        client.analyze(image_a)
        counters = client.metricsz()["counters"]
        assert counters["service.requests{endpoint=analyze}"] >= 2
        assert counters["service.result.warm"] >= 1
        assert counters["service.result.cold"] >= 1

    def test_sidecar_persists_across_restarts(self, tmp_path, image_a):
        """An edit request after a daemon restart warm-starts from the
        tenant's on-disk SUM2 sidecar."""
        config = dict(port=0, cache_dir=str(tmp_path))
        first = AnalysisDaemon(ServiceConfig(**config))
        thread = threading.Thread(target=first.serve_forever)
        thread.start()
        try:
            client = _client(first, tenant="team-a")
            client.analyze(image_a, edit={"routine": "inc"})
        finally:
            first.drain()
            thread.join(timeout=30)
        sidecars = list(tmp_path.glob("team-a/*.sum2"))
        assert len(sidecars) == 1

        second = AnalysisDaemon(ServiceConfig(**config))
        thread = threading.Thread(target=second.serve_forever)
        thread.start()
        try:
            client = _client(second, tenant="team-a")
            response = client.analyze(image_a, edit={"routine": "inc"})
            # Warm on the *first* request of the new process: the
            # sidecar supplied the base cache.
            assert response.warm
            assert response.payload["mode"] == "warm"
        finally:
            second.drain()
            thread.join(timeout=30)


class TestUnixSocket:
    def test_serves_over_unix_socket(self, tmp_path, image_a):
        sockpath = str(tmp_path / "svc.sock")
        daemon = AnalysisDaemon(ServiceConfig(socket_path=sockpath))
        thread = threading.Thread(target=daemon.serve_forever)
        thread.start()
        try:
            client = ServiceClient.unix(sockpath)
            assert client.healthz().status == 200
            response = client.analyze(image_a)
            validate_payload(response.payload)
        finally:
            daemon.drain()
            thread.join(timeout=30)
        import os

        assert not os.path.exists(sockpath)


# ----------------------------------------------------------------------
# Request-level observability
# ----------------------------------------------------------------------


class TestObservabilityEndpoints:
    def test_healthz_reports_uptime_inflight_and_sessions(
        self, daemon, image_a
    ):
        client = _client(daemon)
        client.analyze(image_a)
        # The in-flight decrement runs after the response bytes are
        # written (the histogram observe is what happens before), so a
        # freshly answered request may still show for an instant.
        deadline = time.monotonic() + 5
        while daemon.inflight and time.monotonic() < deadline:
            time.sleep(0.005)
        health = client.healthz().payload
        assert health["status"] == "ok"
        assert health["uptime_seconds"] >= 0
        assert health["inflight"] == 0
        assert health["sessions"] == 1
        assert health["session_bytes"] > 0

    def test_metricsz_default_json_unchanged_by_histograms(
        self, daemon, image_a
    ):
        """The default JSON stays byte-compatible: no histogram block
        unless explicitly requested with ``?include=histograms``."""
        client = _client(daemon)
        client.analyze(image_a)
        payload = client.metricsz()
        assert set(payload) == {"counters", "registry", "draining"}
        assert all(
            isinstance(value, (int, float))
            for value in payload["counters"].values()
        )

    def test_metricsz_include_histograms_adds_the_block(
        self, daemon, image_a
    ):
        client = _client(daemon)
        client.analyze(image_a)
        client.analyze(image_a)
        payload = client.metricsz(include_histograms=True)
        histograms = payload["histograms"]
        cold = histograms[
            "service.request.seconds{endpoint=analyze,warm=false}"
        ]
        warm = histograms[
            "service.request.seconds{endpoint=analyze,warm=true}"
        ]
        assert cold["count"] >= 1
        assert warm["count"] >= 1
        assert cold["buckets"]["+Inf"] == cold["count"]
        # Queue-wait and stage sub-histograms ride along.
        assert any(
            key.startswith("service.queue_wait.seconds") for key in histograms
        )
        assert any(
            key.startswith("service.stage.seconds{stage=analyze}")
            for key in histograms
        )

    def test_metricsz_prometheus_format_param(self, daemon, image_a):
        client = _client(daemon)
        client.analyze(image_a)
        text = client.metricsz_prometheus()
        assert "# TYPE service_request_seconds histogram" in text
        assert 'service_requests{endpoint="analyze"}' in text
        assert 'le="+Inf"' in text

    def test_metricsz_prometheus_via_accept_header(self, daemon, image_a):
        import http.client

        _client(daemon).analyze(image_a)
        host, port = daemon.server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=30)
        try:
            connection.request(
                "GET", "/metricsz", headers={"Accept": "text/plain"}
            )
            raw = connection.getresponse()
            body = raw.read().decode("utf-8")
            assert raw.status == 200
            assert raw.headers["Content-Type"].startswith("text/plain")
        finally:
            connection.close()
        assert "# TYPE service_request_seconds histogram" in body

    def test_request_histogram_counts_every_request(self, daemon, image_a):
        def served(histograms):
            return sum(
                entry["count"]
                for key, entry in histograms.items()
                if key.startswith("service.request.seconds")
            )

        client = _client(daemon)
        # The registry is process-global (other tests' daemons feed the
        # same histograms), so count the delta across our requests.
        base = served(client.metricsz(include_histograms=True)["histograms"])
        client.analyze(image_a)
        client.analyze(image_a)
        client.query(image_a, "inc")
        after = served(client.metricsz(include_histograms=True)["histograms"])
        # Every POST in between (the metricsz GETs don't count).
        assert after - base == 3


class TestRequestTracing:
    def test_trace_header_attaches_spans(self, daemon, image_a):
        response = _client(daemon).analyze(image_a, trace=True)
        trace = response.payload["trace"]
        names = {event["name"] for event in trace["traceEvents"]}
        assert "analyze" in names
        spans = int(response.headers["X-Repro-Trace-Spans"])
        assert spans == len(trace["traceEvents"]) > 0

    def test_untraced_requests_carry_no_trace(self, daemon, image_a):
        client = _client(daemon)
        client.analyze(image_a, trace=True)
        response = client.analyze(image_a)
        assert "trace" not in response.payload
        assert "X-Repro-Trace-Spans" not in response.headers

    def test_concurrent_traces_do_not_interleave(
        self, daemon, image_a, image_b
    ):
        """Two traced requests in flight at once each see only their
        own spans (the tracer override is request-thread-local)."""
        payloads = {}

        def hit(name, blob):
            payloads[name] = _client(daemon).analyze(
                blob, trace=True
            ).payload

        threads = [
            threading.Thread(target=hit, args=("a", image_a)),
            threading.Thread(target=hit, args=("b", image_b)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        for name in ("a", "b"):
            events = payloads[name]["trace"]["traceEvents"]
            analyze_spans = [e for e in events if e["name"] == "analyze"]
            assert len(analyze_spans) == 1, name

    def test_trace_dir_samples_to_disk(self, tmp_path, image_a):
        trace_dir = tmp_path / "traces"
        daemon = AnalysisDaemon(
            ServiceConfig(port=0, trace_dir=str(trace_dir), trace_sample=2)
        )
        thread = threading.Thread(target=daemon.serve_forever)
        thread.start()
        try:
            client = _client(daemon)
            responses = [client.analyze(image_a) for _ in range(4)]
        finally:
            daemon.drain()
            thread.join(timeout=30)
        exported = sorted(trace_dir.glob("*.json"))
        # 1-in-2 sampling over sequence numbers 1..4 exports two.
        assert len(exported) == 2
        run_ids = {response.run_id for response in responses}
        assert {path.stem for path in exported} <= run_ids
        for path in exported:
            trace = json.loads(path.read_text(encoding="utf-8"))
            assert trace["traceEvents"]
        # Sampling never leaks spans into response payloads.
        assert all("trace" not in r.payload for r in responses)
