"""Golden-file regression tests for the analysis results.

The micro-workloads' summaries are stored under ``tests/golden/`` as
SUM sidecars.  Any change to the analysis' answers — intended or not —
shows up here as a semantic diff, not just a byte diff, so refactors of
the engines can be validated against frozen ground truth.

History note: the original seed goldens were corrupted in transit, not
wrong in substance — each seed ``.sum`` file was byte-for-byte the
correct serialization with **every byte >= 0x80 deleted** (a 7-bit /
text-mode stripping artifact; verifiable as
``bytes(b for b in dump_summaries(result) if b < 0x80)`` reproduced
all four seed files exactly).  They were regenerated from the
unchanged analysis; no semantic value differed.
``test_goldens_are_parseable`` below guards against that corruption
class recurring: a stripped blob cannot survive a full parse.

To regenerate after an *intended* semantic change::

    python -c "
    from repro.workloads.micro import *
    from tests.facade import analyze_program
    from repro.interproc.persist import dump_summaries
    for name, builder in [('figure1', figure1_program),
                          ('figure2', figure2_program),
                          ('figure4', figure4_program),
                          ('figure12', figure12_program)]:
        blob = dump_summaries(analyze_program(builder()).result)
        open(f'tests/golden/{name}.sum', 'wb').write(blob)
    "
"""

from pathlib import Path

import pytest

from tests.facade import analyze_program
from repro.interproc.persist import dump_summaries, load_summaries
from repro.workloads.micro import (
    figure1_program,
    figure2_program,
    figure4_program,
    figure12_program,
)

GOLDEN_DIR = Path(__file__).parent / "golden"

CASES = {
    "figure1": figure1_program,
    "figure2": figure2_program,
    "figure4": figure4_program,
    "figure12": figure12_program,
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_goldens_are_parseable(name):
    """The golden blobs themselves parse cleanly and re-serialize to the
    identical bytes (catches byte-level corruption of the golden files,
    e.g. the 7-bit stripping that mangled the original seed goldens)."""
    blob = (GOLDEN_DIR / f"{name}.sum").read_bytes()
    assert dump_summaries(load_summaries(blob)) == blob


@pytest.mark.parametrize("name", sorted(CASES))
def test_summaries_match_golden(name):
    golden = load_summaries((GOLDEN_DIR / f"{name}.sum").read_bytes())
    current = analyze_program(CASES[name]()).result
    diff = golden.diff(current)
    assert current.equal_summaries(golden), diff[:10]


@pytest.mark.parametrize("name", sorted(CASES))
def test_serialization_is_byte_stable(name):
    """Dumping the same result twice yields identical bytes, and the
    current dump matches the golden bytes exactly (full determinism)."""
    current = analyze_program(CASES[name]()).result
    blob = dump_summaries(current)
    assert blob == dump_summaries(current)
    assert blob == (GOLDEN_DIR / f"{name}.sum").read_bytes()
