"""Tests for the top-level analysis driver and its configuration."""

import pytest

from repro.interproc.analysis import AnalysisConfig
from tests.facade import analyze_image, analyze_program
from repro.program.asm import assemble
from repro.program.rewrite import program_to_image
from repro.psg.build import PsgConfig
from repro.sim.interpreter import run_program


class TestDriver:
    def test_analyze_image_equals_analyze_program(self, quick_program):
        from_program = analyze_program(quick_program)
        from_image = analyze_image(program_to_image(quick_program))
        assert from_program.result.equal_summaries(from_image.result)

    def test_all_structures_exposed(self, quick_program):
        analysis = analyze_program(quick_program)
        assert set(analysis.cfgs) == {"main", "helper"}
        assert analysis.call_graph.program is analysis.program
        assert set(analysis.local_sets) == {"main", "helper"}
        assert analysis.psg.node_count > 0
        assert len(analysis.phase1.may_use) == analysis.psg.node_count
        assert len(analysis.phase2.may_use) == analysis.psg.node_count

    def test_counts(self, quick_program):
        analysis = analyze_program(quick_program)
        assert analysis.basic_block_count == sum(
            cfg.block_count for cfg in analysis.cfgs.values()
        )
        calls = sum(len(c.call_sites) for c in analysis.cfgs.values())
        intra = sum(c.arc_count for c in analysis.cfgs.values())
        assert analysis.cfg_arc_count == intra + 2 * calls

    def test_memory_accounted(self, quick_program):
        analysis = analyze_program(quick_program)
        assert analysis.memory_bytes > 0

    def test_timings_cover_all_stages(self, small_benchmark):
        analysis = analyze_program(small_benchmark)
        timings = analysis.timings
        assert timings.cfg_build > 0
        assert timings.initialization > 0
        assert timings.psg_build > 0
        assert timings.phase1 > 0
        assert timings.phase2 > 0


class TestFilteringAblationConfig:
    def test_disabling_filtering_is_sound_but_coarser(self, small_benchmark):
        filtered = analyze_program(small_benchmark)
        unfiltered = analyze_program(
            small_benchmark, AnalysisConfig(callee_saved_filtering=False)
        )
        for name in small_benchmark.routine_names():
            a = filtered.summary(name)
            b = unfiltered.summary(name)
            # Unfiltered sets can only be supersets of the filtered ones.
            assert a.call_used_mask & ~b.call_used_mask == 0
            assert a.call_killed_mask & ~b.call_killed_mask == 0
            # And no saved/restored registers are recorded.
            assert b.saved_restored_mask == 0

    def test_unfiltered_still_sound_against_execution(self, small_benchmark):
        unfiltered = analyze_program(
            small_benchmark, AnalysisConfig(callee_saved_filtering=False)
        )
        trace = run_program(small_benchmark, trace_calls=True)
        from repro.dataflow.regset import mask_of

        preserved = mask_of(["sp", "gp"])
        for record in trace.call_records:
            if record.callee not in unfiltered.result.summaries:
                continue
            summary = unfiltered.summary(record.callee)
            # With filtering off, call-used covers save-reads directly.
            stray = record.read_before_write & ~(
                summary.call_used_mask | preserved
            )
            assert stray == 0, record.callee


class TestPsgConfigPlumbing:
    def test_branch_threshold_respected(self, switchy_benchmark):
        few = analyze_program(
            switchy_benchmark,
            AnalysisConfig(psg=PsgConfig(multiway_threshold=100)),
        )
        assert few.psg.branch_node_count == 0
        default = analyze_program(switchy_benchmark)
        assert default.psg.branch_node_count > 0
        assert few.result.equal_summaries(default.result)
