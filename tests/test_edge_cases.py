"""Assorted edge cases across modules."""

import pytest

from tests.facade import analyze_program
from repro.interproc.baseline import analyze_program_baseline
from repro.program.asm import Assembler, AssemblyError, assemble
from repro.program.disasm import disassemble_image
from repro.sim.interpreter import run_program


def program_of(source, entry=None):
    return disassemble_image(assemble(source, entry=entry))


class TestAssemblerEdges:
    def test_empty_hint_targets_rejected(self):
        asm = Assembler().routine("f")
        with pytest.raises(AssemblyError, match="hint_targets"):
            asm.jsr("pv", hint_targets=[])

    def test_hint_to_unknown_routine_rejected(self):
        asm = Assembler()
        asm.routine("f")
        asm.jsr("pv", hint_targets=["ghost"])
        asm.halt()
        with pytest.raises(AssemblyError, match="unknown routine"):
            asm.build()

    def test_pointer_to_unknown_routine_rejected(self):
        asm = Assembler()
        asm.data_code_pointers("t", ["ghost"])
        asm.routine("f")
        asm.halt()
        with pytest.raises(AssemblyError, match="unknown routine"):
            asm.build()

    def test_duplicate_data_label_rejected(self):
        asm = Assembler()
        asm.data_quads("d", [1])
        with pytest.raises(AssemblyError, match="duplicate"):
            asm.data_quads("d", [2])

    def test_li_address_out_of_range(self):
        asm = Assembler().routine("f")
        with pytest.raises(AssemblyError, match="range"):
            asm.li("t0", 1 << 40)


class TestSingleRoutinePrograms:
    def test_minimal_halt_program(self):
        program = program_of(".routine main\n halt\n")
        analysis = analyze_program(program)
        baseline = analyze_program_baseline(program)
        assert analysis.result.equal_summaries(baseline.result)
        assert run_program(program).halted

    def test_routine_that_only_returns(self):
        program = program_of(".routine f export\n ret (ra)\n", entry="f")
        analysis = analyze_program(program)
        summary = analysis.summary("f")
        assert "ra" in summary.call_used.names()
        assert summary.call_defined.names() == set()

    def test_self_loop_single_block(self):
        program = program_of(
            """
            .routine main
            top:
                subq t0, #1, t0
                bgt t0, top
                halt
            """
        )
        analysis = analyze_program(program)
        baseline = analyze_program_baseline(program)
        assert analysis.result.equal_summaries(baseline.result)


class TestConditionalStructures:
    def test_deeply_nested_diamonds(self):
        parts = [".routine main"]
        for i in range(12):
            parts.append(f"    beq t{i % 8}, L{i}")
            parts.append(f"    addq t0, #{i + 1}, t0")
            parts.append(f"L{i}:")
        parts.append("    bis zero, t0, a0")
        parts.append("    output")
        parts.append("    halt")
        program = program_of("\n".join(parts))
        analysis = analyze_program(program)
        baseline = analyze_program_baseline(program)
        assert analysis.result.equal_summaries(baseline.result)
        assert run_program(program).halted

    def test_long_call_chain(self):
        """A 30-deep call chain exercises the callee-first ordering."""
        parts = []
        parts.append(".routine main")
        parts.append("    li a0, 1")
        parts.append("    bsr ra, f0")
        parts.append("    bis zero, v0, a0")
        parts.append("    output")
        parts.append("    halt")
        depth = 30
        for i in range(depth):
            parts.append(f".routine f{i}")
            parts.append("    lda sp, -16(sp)")
            parts.append("    stq ra, 0(sp)")
            if i + 1 < depth:
                parts.append("    addq a0, #1, a0")
                parts.append(f"    bsr ra, f{i + 1}")
            else:
                parts.append("    bis zero, a0, v0")
            parts.append("    ldq ra, 0(sp)")
            parts.append("    lda sp, 16(sp)")
            parts.append("    ret (ra)")
        program = program_of("\n".join(parts))
        analysis = analyze_program(program)
        baseline = analyze_program_baseline(program)
        assert analysis.result.equal_summaries(baseline.result)
        result = run_program(program)
        assert result.outputs == [depth]  # 1 + 29 increments

    def test_call_in_both_diamond_arms(self):
        program = program_of(
            """
            .routine main
                lda sp, -16(sp)
                stq ra, 0(sp)
                beq a0, other
                bsr ra, left
                br join
            other:
                bsr ra, right
            join:
                bis zero, v0, a0
                output
                ldq ra, 0(sp)
                lda sp, 16(sp)
                li v0, 0
                halt
            .routine left
                li v0, 1
                ret (ra)
            .routine right
                li v0, 2
                ret (ra)
            """
        )
        analysis = analyze_program(program)
        baseline = analyze_program_baseline(program)
        assert analysis.result.equal_summaries(baseline.result)
        # Both callees see v0 live at exit (the join uses it).
        for callee in ("left", "right"):
            assert "v0" in analysis.summary(callee).live_at_exit(
                next(iter(analysis.summary(callee).exit_live_masks))
            ).names()


class TestMultipleEntrances:
    def test_two_independent_entry_points(self):
        """Exported routines act as extra entrances to the program."""
        program = program_of(
            """
            .routine main export
                li v0, 0
                halt
            .routine api export
                addq a0, #1, v0
                ret (ra)
            """
        )
        analysis = analyze_program(program)
        summary = analysis.summary("api")
        # Unknown external callers: conservative exit liveness.
        assert "v0" in summary.live_at_exit(
            next(iter(summary.exit_live_masks))
        ).names()
