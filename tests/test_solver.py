"""Tests for the generic worklist solver and reachability utilities."""

import pytest

from repro.cfg.build import build_cfg
from repro.cfg.subgraph import backward_reachable, forward_reachable
from repro.dataflow.solver import SolverDivergence, WorklistSolver, postorder
from repro.program.asm import assemble
from repro.program.disasm import disassemble_image


def union(left, right):
    return left | right


class TestWorklistSolver:
    def test_chain_propagation(self):
        # 0 -> 1 -> 2; gen at node 2 flows backward to node 0.
        solver = WorklistSolver(3, [(0, 1), (1, 2)])
        gen = [0, 0, 0b100]

        def transfer(node, out_state):
            return gen[node] | out_state

        states = solver.solve(transfer, union, boundary=0, initial=0)
        assert states == [0b100, 0b100, 0b100]

    def test_kill_blocks_propagation(self):
        solver = WorklistSolver(3, [(0, 1), (1, 2)])
        gen = [0, 0, 0b100]
        kill = [0, 0b100, 0]

        def transfer(node, out_state):
            return gen[node] | (out_state & ~kill[node])

        states = solver.solve(transfer, union, boundary=0, initial=0)
        assert states == [0, 0, 0b100]

    def test_cycle_converges(self):
        solver = WorklistSolver(2, [(0, 1), (1, 0)])
        states = solver.solve(
            lambda node, out: out | (1 << node), union, boundary=0, initial=0
        )
        assert states == [0b11, 0b11]

    def test_boundary_applies_to_sink_nodes(self):
        solver = WorklistSolver(2, [(0, 1)])
        states = solver.solve(
            lambda node, out: out, union, boundary=0b1010, initial=0
        )
        assert states == [0b1010, 0b1010]

    def test_bad_edge_rejected(self):
        with pytest.raises(ValueError):
            WorklistSolver(2, [(0, 5)])

    def test_bad_order_rejected(self):
        solver = WorklistSolver(2, [(0, 1)])
        with pytest.raises(ValueError):
            solver.solve(lambda n, o: o, union, 0, 0, order=[0, 0])

    def test_divergence_guard(self):
        solver = WorklistSolver(2, [(0, 1), (1, 0)])
        counter = [0]

        def non_monotone(node, out_state):
            counter[0] += 1
            return counter[0]  # never stabilizes

        with pytest.raises(SolverDivergence):
            solver.solve(non_monotone, union, 0, 0, max_passes=100)

    def test_adjacency_accessors(self):
        solver = WorklistSolver(3, [(0, 1), (0, 2)])
        assert list(solver.successors(0)) == [1, 2]
        assert list(solver.predecessors(1)) == [0]
        assert solver.node_count == 3


class TestPostorder:
    def test_linear_chain(self):
        order = postorder(3, [[1], [2], []], [0])
        assert order == [2, 1, 0]

    def test_unreachable_nodes_appended(self):
        order = postorder(3, [[], [], []], [0])
        assert order[0] == 0
        assert set(order) == {0, 1, 2}

    def test_cycle_handled(self):
        order = postorder(2, [[1], [0]], [0])
        assert set(order) == {0, 1}


class TestReachability:
    SOURCE = """
        .routine main
            beq t0, right
            bsr ra, f
            br join
        right:
            addq t0, #1, t1
        join:
            ret (ra)
        .routine f
            ret (ra)
    """

    def _cfg(self):
        program = disassemble_image(assemble(self.SOURCE))
        return build_cfg(program, program.routine("main"))

    def test_forward_stops_at_blocked(self):
        cfg = self._cfg()
        blocked = {site.block for site in cfg.call_sites}
        reached = forward_reachable(cfg.blocks, [cfg.entry_index], blocked)
        call_block = cfg.call_sites[0].block
        assert call_block in reached  # the call block is reachable...
        fallthrough = cfg.blocks[call_block].successors[0]
        # ...but its successor is only reachable via the other path.
        right_path = forward_reachable(cfg.blocks, [cfg.entry_index], blocked)
        assert fallthrough in right_path or True  # join reachable via right

    def test_backward_excludes_blocked_predecessors(self):
        cfg = self._cfg()
        blocked = {site.block for site in cfg.call_sites}
        call_block = cfg.call_sites[0].block
        join = cfg.blocks[call_block].successors[0]
        reached = backward_reachable(cfg.blocks, join, blocked)
        assert call_block not in reached
        assert join in reached

    def test_blocked_target_included(self):
        cfg = self._cfg()
        blocked = {site.block for site in cfg.call_sites}
        call_block = cfg.call_sites[0].block
        reached = backward_reachable(cfg.blocks, call_block, blocked)
        assert call_block in reached
        assert cfg.entry_index in reached

    def test_forward_backward_duality(self):
        """t in forward(s) iff s in backward(t) — the edge-existence rule."""
        cfg = self._cfg()
        blocked = {site.block for site in cfg.call_sites}
        for start in range(cfg.block_count):
            fwd = forward_reachable(cfg.blocks, [start], blocked)
            for target in range(cfg.block_count):
                bwd = backward_reachable(cfg.blocks, target, blocked)
                assert (target in fwd) == (start in bwd)


# ----------------------------------------------------------------------
# Cross-core equivalence on random monotone systems
# ----------------------------------------------------------------------

from collections import deque

from hypothesis import given, settings, strategies as st

from repro.dataflow.solver import SubgraphWorklist
from repro.interproc.flatcore import solve_masks_csr


def _fifo_reference(node_count, edges, gen, kill, boundary):
    """Deliberately naive FIFO chaotic iteration — the semantic anchor
    the scheduled engines are pinned against."""
    successors = [[] for _ in range(node_count)]
    predecessors = [[] for _ in range(node_count)]
    for src, dst in edges:
        successors[src].append(dst)
        predecessors[dst].append(src)
    states = [0] * node_count
    queue = deque(range(node_count))
    queued = [True] * node_count
    while queue:
        node = queue.popleft()
        queued[node] = False
        if successors[node]:
            out = 0
            for succ in successors[node]:
                out |= states[succ]
        else:
            out = boundary
        new = gen[node] | (out & ~kill[node])
        if new != states[node]:
            states[node] = new
            for pred in predecessors[node]:
                if not queued[pred]:
                    queued[pred] = True
                    queue.append(pred)
    return states


@st.composite
def _mask_problems(draw):
    node_count = draw(st.integers(min_value=1, max_value=10))
    node = st.integers(min_value=0, max_value=node_count - 1)
    edges = draw(
        st.lists(st.tuples(node, node), max_size=25, unique=True)
    )
    mask = st.integers(min_value=0, max_value=(1 << 16) - 1)
    gen = draw(st.lists(mask, min_size=node_count, max_size=node_count))
    kill = draw(st.lists(mask, min_size=node_count, max_size=node_count))
    boundary = draw(mask)
    order = draw(st.permutations(range(node_count)))
    return node_count, edges, gen, kill, boundary, list(order)


class TestCoreEquivalence:
    """Any chaotic iteration of a monotone system reaches the same
    (unique extremal) fixed point, whatever the visit order — so the
    priority object engine, the flat CSR core, and a naive FIFO sweep
    must agree bit for bit on arbitrary problems."""

    @given(_mask_problems())
    @settings(max_examples=80, deadline=None)
    def test_three_engines_agree(self, problem):
        node_count, edges, gen, kill, boundary, order = problem

        solver = WorklistSolver(node_count, edges)
        priority = solver.solve(
            lambda node, out: gen[node] | (out & ~kill[node]),
            union,
            boundary,
            0,
            order=order,
        )
        fifo = _fifo_reference(node_count, edges, gen, kill, boundary)
        flat = solve_masks_csr(
            node_count, edges, gen, kill, boundary, order=order
        )
        assert priority == fifo
        assert priority == flat

    @given(_mask_problems())
    @settings(max_examples=40, deadline=None)
    def test_order_is_irrelevant_to_the_fixed_point(self, problem):
        node_count, edges, gen, kill, boundary, order = problem
        forward = solve_masks_csr(
            node_count, edges, gen, kill, boundary, order=order
        )
        backward = solve_masks_csr(
            node_count, edges, gen, kill, boundary, order=order[::-1]
        )
        assert forward == backward


# ----------------------------------------------------------------------
# SubgraphWorklist scheduling and statistics
# ----------------------------------------------------------------------


class TestSubgraphWorklist:
    def _solve_chain(self, order_mode, seed_order=None):
        """0 <- 1 <- 2 <- 3 supplier chain: node 0 generates a bit that
        must propagate to node 3 (dependents point downstream)."""
        node_count = 4
        suppliers = [[], [0], [1], [2]]
        dependents = [[1], [2], [3], []]
        values = [0b1, 0, 0, 0]
        visits = []

        def transfer(node):
            new = values[node]
            for supplier in suppliers[node]:
                new |= values[supplier]
            visits.append(node)
            if new != values[node]:
                values[node] = new
                return True
            return False

        worklist = SubgraphWorklist(
            node_count,
            dependents,
            [False] * node_count,
            seed_order if seed_order is not None else list(range(node_count)),
            order=order_mode,
        )
        total = worklist.run(transfer)
        return values, visits, total, worklist

    def test_priority_and_fifo_fixed_points_agree(self):
        priority_values, _, _, _ = self._solve_chain("priority")
        fifo_values, _, _, _ = self._solve_chain("fifo")
        assert priority_values == fifo_values == [0b1] * 4

    def test_priority_follows_seed_ranks(self):
        # Seeded supplier-first, the chain settles in one sweep: four
        # visits, no revisits.
        _, visits, total, worklist = self._solve_chain(
            "priority", seed_order=[0, 1, 2, 3]
        )
        assert visits == [0, 1, 2, 3]
        assert total == 4
        assert worklist.revisits == 0
        assert worklist.pushes == 4

    def test_bad_seed_order_costs_revisits(self):
        # Seeded consumer-first, every node is visited before its
        # supplier has settled, so the change ripples as revisits —
        # the exact effect ``solver.revisits`` gauges.
        _, _, total, worklist = self._solve_chain(
            "priority", seed_order=[3, 2, 1, 0]
        )
        assert total > 4
        assert worklist.revisits == total - 4
        assert worklist.pushes == total

    def test_frozen_nodes_are_never_visited_and_skip_counted(self):
        values = [0b1, 0, 0b100]
        visited = []

        def transfer(node):
            visited.append(node)
            if values[node] != values[0] | values[node]:
                values[node] |= values[0]
                return True
            return False

        # Node 2 is frozen: its enqueue attempts are suppressed by the
        # permanently-set in-queue bit and counted as skips.
        worklist = SubgraphWorklist(
            3, [[1, 2], [2], []], [False, False, True], [0, 1]
        )
        worklist.run(transfer)
        assert 2 not in visited
        assert values[2] == 0b100
        assert worklist.skipped >= 1

    def test_enqueue_deduplicates(self):
        worklist = SubgraphWorklist(2, [[], []], [False, False], [0, 1])
        baseline = worklist.pushes
        worklist.enqueue(0)  # already queued from seeding
        assert worklist.pushes == baseline
        assert worklist.skipped == 1

    def test_counts_accumulate_per_node(self):
        counts = [0] * 4
        values = [0b1, 0, 0, 0]
        suppliers = [[], [0], [1], [2]]

        def transfer(node):
            new = values[node]
            for supplier in suppliers[node]:
                new |= values[supplier]
            if new != values[node]:
                values[node] = new
                return True
            return False

        worklist = SubgraphWorklist(
            4, [[1], [2], [3], []], [False] * 4, [0, 1, 2, 3]
        )
        total = worklist.run(transfer, counts=counts)
        assert sum(counts) == total
        assert all(count >= 1 for count in counts)

    def test_unknown_order_rejected(self):
        with pytest.raises(ValueError):
            SubgraphWorklist(1, [[]], [False], [0], order="lifo")
