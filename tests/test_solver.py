"""Tests for the generic worklist solver and reachability utilities."""

import pytest

from repro.cfg.build import build_cfg
from repro.cfg.subgraph import backward_reachable, forward_reachable
from repro.dataflow.solver import SolverDivergence, WorklistSolver, postorder
from repro.program.asm import assemble
from repro.program.disasm import disassemble_image


def union(left, right):
    return left | right


class TestWorklistSolver:
    def test_chain_propagation(self):
        # 0 -> 1 -> 2; gen at node 2 flows backward to node 0.
        solver = WorklistSolver(3, [(0, 1), (1, 2)])
        gen = [0, 0, 0b100]

        def transfer(node, out_state):
            return gen[node] | out_state

        states = solver.solve(transfer, union, boundary=0, initial=0)
        assert states == [0b100, 0b100, 0b100]

    def test_kill_blocks_propagation(self):
        solver = WorklistSolver(3, [(0, 1), (1, 2)])
        gen = [0, 0, 0b100]
        kill = [0, 0b100, 0]

        def transfer(node, out_state):
            return gen[node] | (out_state & ~kill[node])

        states = solver.solve(transfer, union, boundary=0, initial=0)
        assert states == [0, 0, 0b100]

    def test_cycle_converges(self):
        solver = WorklistSolver(2, [(0, 1), (1, 0)])
        states = solver.solve(
            lambda node, out: out | (1 << node), union, boundary=0, initial=0
        )
        assert states == [0b11, 0b11]

    def test_boundary_applies_to_sink_nodes(self):
        solver = WorklistSolver(2, [(0, 1)])
        states = solver.solve(
            lambda node, out: out, union, boundary=0b1010, initial=0
        )
        assert states == [0b1010, 0b1010]

    def test_bad_edge_rejected(self):
        with pytest.raises(ValueError):
            WorklistSolver(2, [(0, 5)])

    def test_bad_order_rejected(self):
        solver = WorklistSolver(2, [(0, 1)])
        with pytest.raises(ValueError):
            solver.solve(lambda n, o: o, union, 0, 0, order=[0, 0])

    def test_divergence_guard(self):
        solver = WorklistSolver(2, [(0, 1), (1, 0)])
        counter = [0]

        def non_monotone(node, out_state):
            counter[0] += 1
            return counter[0]  # never stabilizes

        with pytest.raises(SolverDivergence):
            solver.solve(non_monotone, union, 0, 0, max_passes=100)

    def test_adjacency_accessors(self):
        solver = WorklistSolver(3, [(0, 1), (0, 2)])
        assert list(solver.successors(0)) == [1, 2]
        assert list(solver.predecessors(1)) == [0]
        assert solver.node_count == 3


class TestPostorder:
    def test_linear_chain(self):
        order = postorder(3, [[1], [2], []], [0])
        assert order == [2, 1, 0]

    def test_unreachable_nodes_appended(self):
        order = postorder(3, [[], [], []], [0])
        assert order[0] == 0
        assert set(order) == {0, 1, 2}

    def test_cycle_handled(self):
        order = postorder(2, [[1], [0]], [0])
        assert set(order) == {0, 1}


class TestReachability:
    SOURCE = """
        .routine main
            beq t0, right
            bsr ra, f
            br join
        right:
            addq t0, #1, t1
        join:
            ret (ra)
        .routine f
            ret (ra)
    """

    def _cfg(self):
        program = disassemble_image(assemble(self.SOURCE))
        return build_cfg(program, program.routine("main"))

    def test_forward_stops_at_blocked(self):
        cfg = self._cfg()
        blocked = {site.block for site in cfg.call_sites}
        reached = forward_reachable(cfg.blocks, [cfg.entry_index], blocked)
        call_block = cfg.call_sites[0].block
        assert call_block in reached  # the call block is reachable...
        fallthrough = cfg.blocks[call_block].successors[0]
        # ...but its successor is only reachable via the other path.
        right_path = forward_reachable(cfg.blocks, [cfg.entry_index], blocked)
        assert fallthrough in right_path or True  # join reachable via right

    def test_backward_excludes_blocked_predecessors(self):
        cfg = self._cfg()
        blocked = {site.block for site in cfg.call_sites}
        call_block = cfg.call_sites[0].block
        join = cfg.blocks[call_block].successors[0]
        reached = backward_reachable(cfg.blocks, join, blocked)
        assert call_block not in reached
        assert join in reached

    def test_blocked_target_included(self):
        cfg = self._cfg()
        blocked = {site.block for site in cfg.call_sites}
        call_block = cfg.call_sites[0].block
        reached = backward_reachable(cfg.blocks, call_block, blocked)
        assert call_block in reached
        assert cfg.entry_index in reached

    def test_forward_backward_duality(self):
        """t in forward(s) iff s in backward(t) — the edge-existence rule."""
        cfg = self._cfg()
        blocked = {site.block for site in cfg.call_sites}
        for start in range(cfg.block_count):
            fwd = forward_reachable(cfg.blocks, [start], blocked)
            for target in range(cfg.block_count):
                bwd = backward_reachable(cfg.blocks, target, blocked)
                assert (target in fwd) == (start in bwd)
