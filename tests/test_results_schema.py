"""Contract tests for the schema-1 result payload.

Every analysis outcome — serial, parallel, incremental, demand query —
renders through :func:`repro.interproc.results.build_payload`, and the
CLI ``--json`` output and the service daemon responses are that same
object.  These tests pin the external shape: common keys, kind keys,
JSON round-trip fidelity, digest determinism across engines, and the
validator that clients (and the CI smoke) code against.
"""

import json

import pytest

from repro.api import (
    AnalysisConfig,
    AnalysisResult,
    AnalysisSession,
    SCHEMA_VERSION,
    validate_payload,
)
from repro.interproc.results import COMMON_KEYS, KIND_KEYS, summaries_digest
from repro.program.asm import assemble

SOURCE = """
.routine main export
    li  a0, 3
    bsr ra, inc
    bsr ra, dbl
    bis zero, v0, a0
    output
    halt
.routine inc
    addq a0, #1, v0
    ret (ra)
.routine dbl
    addq a0, a0, v0
    ret (ra)
"""


@pytest.fixture(scope="module")
def image():
    return assemble(SOURCE)


def _session(image, **kwargs):
    return AnalysisSession.from_image(image, **kwargs)


def _check_common(payload, kind):
    validate_payload(payload)
    assert payload["schema"] == SCHEMA_VERSION
    assert payload["kind"] == kind
    for key in COMMON_KEYS:
        assert key in payload
    for key in KIND_KEYS[kind]:
        assert key in payload


class TestShapePerKind:
    def test_serial(self, image):
        session = _session(image)
        session.analyze(jobs=1)
        payload = session.to_json()
        _check_common(payload, "serial")
        assert payload["routines"] == 3

    def test_parallel(self, image):
        session = _session(image)
        session.analyze(jobs=2)
        payload = session.to_json()
        _check_common(payload, "parallel")
        assert payload["jobs"] == 2

    def test_incremental(self, image):
        session = _session(image)
        session.analyze_incremental(jobs=1)
        payload = session.to_json()
        _check_common(payload, "incremental")
        assert payload["mode"] == "cold"

    def test_query(self, image):
        session = _session(image)
        session.query("inc")
        payload = session.to_json()
        _check_common(payload, "query")
        assert payload["routine"] == "inc"
        assert payload["summary"]["routine"] == "inc"

    def test_lazy_to_json_runs_analysis(self, image, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        session = _session(image, config=AnalysisConfig(jobs=1))
        payload = session.to_json()
        _check_common(payload, "serial")


class TestRoundTrip:
    def test_json_round_trip_is_lossless(self, image):
        session = _session(image)
        session.analyze(jobs=1)
        payload = session.to_json(include_summaries=True)
        wire = json.dumps(payload, indent=2, sort_keys=True)
        back = json.loads(wire)
        validate_payload(back)
        assert back == json.loads(json.dumps(payload, sort_keys=True))
        assert set(back["summaries"]) == {"main", "inc", "dbl"}

    def test_digest_agrees_across_engines(self, image):
        serial = _session(image)
        serial.analyze(jobs=1)
        parallel = _session(image)
        parallel.analyze(jobs=2)
        assert (
            serial.to_json()["summaries_crc64"]
            == parallel.to_json()["summaries_crc64"]
        )

    def test_digest_matches_summaries(self, image):
        session = _session(image)
        analysis = session.analyze(jobs=1)
        payload = session.to_json()
        assert payload["summaries_crc64"] == summaries_digest(analysis.result)

    def test_volatile_keys_do_not_leak_into_digest(self, image):
        first = _session(image)
        first.analyze(jobs=1)
        second = _session(image)
        second.analyze(jobs=1)
        a, b = first.to_json(), second.to_json()
        assert a["summaries_crc64"] == b["summaries_crc64"]
        # Timings differ run to run; the digest must not.
        assert a["stage_seconds"] != {} and b["stage_seconds"] != {}


class TestProtocol:
    def test_all_kinds_satisfy_protocol(self, image):
        session = _session(image)
        results = [
            session.analyze(jobs=1),
            session.analyze(jobs=2),
            session.analyze_incremental(jobs=1),
            session.query("dbl"),
        ]
        kinds = [r.kind for r in results]
        assert kinds == ["serial", "parallel", "incremental", "query"]
        for result in results:
            assert isinstance(result, AnalysisResult)
            payload = result.to_json()
            validate_payload(payload)

    def test_bare_result_renders_empty_counters(self, image):
        session = _session(image)
        analysis = session.analyze(jobs=1)
        assert analysis.to_json()["counters"] == {}


class TestValidator:
    def test_rejects_wrong_schema(self, image):
        session = _session(image)
        session.analyze(jobs=1)
        payload = dict(session.to_json())
        payload["schema"] = 2
        with pytest.raises(ValueError, match="schema must be 1"):
            validate_payload(payload)

    def test_rejects_unknown_kind(self, image):
        session = _session(image)
        session.analyze(jobs=1)
        payload = dict(session.to_json())
        payload["kind"] = "mystery"
        with pytest.raises(ValueError, match="unknown kind"):
            validate_payload(payload)

    def test_lists_every_problem(self):
        with pytest.raises(ValueError) as excinfo:
            validate_payload({"schema": 0, "kind": "nope"})
        message = str(excinfo.value)
        assert "schema must be" in message
        assert "unknown kind" in message
        assert "missing common key" in message
