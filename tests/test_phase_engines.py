"""Unit tests for the phase-1/phase-2 engines on hand-built PSGs.

These bypass the CFG and PSG builders entirely: nodes and labeled edges
are constructed directly, so the dataflow engines are tested in
isolation against values computed by hand.  The graphs use tiny
register universes (R0=bit0, R1=bit1, ...) — the engines are agnostic.
"""

import pytest

from repro.cfg.cfg import CallSite, ExitKind
from repro.dataflow.equations import SummaryTriple
from repro.dataflow.regset import TRACKED_MASK
from repro.interproc.phase1 import run_phase1
from repro.interproc.phase2 import run_phase2
from repro.isa.calling_convention import NT_ALPHA
from repro.psg.graph import ProgramSummaryGraph, RoutinePSG
from repro.psg.nodes import CallReturnEdge, FlowEdge, NodeKind, PSGNode

R0, R1, R2, R3 = 1, 2, 4, 8


class _Builder:
    """Minimal PSG assembly helper for tests."""

    def __init__(self):
        self.nodes = []
        self.flow_edges = []
        self.cr_edges = []
        self.routines = {}

    def node(self, kind, routine, block=0, **extra):
        node = PSGNode(
            id=len(self.nodes), kind=kind, routine=routine, block=block, **extra
        )
        self.nodes.append(node)
        return node.id

    def flow(self, src, dst, may_use=0, may_def=0, must_def=0):
        self.flow_edges.append(
            FlowEdge(src, dst, SummaryTriple(may_use, may_def, must_def))
        )

    def routine(self, name, entry, exits, call_pairs=(), branch=()):
        self.routines[name] = RoutinePSG(
            routine=name,
            entry_node=entry,
            exit_nodes=list(exits),
            call_pairs=list(call_pairs),
            branch_nodes=list(branch),
        )

    def graph(self):
        return ProgramSummaryGraph(
            nodes=self.nodes,
            flow_edges=self.flow_edges,
            call_return_edges=self.cr_edges,
            routines=self.routines,
        )


def _order(psg):
    return list(range(len(psg.nodes)))


def _site(block=0, targets=("callee",)):
    return CallSite(
        block=block, instruction_index=0, targets=tuple(targets), indirect=False
    )


def build_caller_callee(callee_use=R1, callee_must=R2, callee_may=R2 | R3):
    """caller: entry -> call -> return -> exit; callee: entry -> exit.

    The callee's single flow edge carries the given sets; the caller's
    edges are transparent except entry->call defining R0.
    """
    b = _Builder()
    site = _site(targets=("callee",))
    caller_entry = b.node(NodeKind.ENTRY, "caller")
    caller_exit = b.node(NodeKind.EXIT, "caller", exit_kind=ExitKind.RETURN)
    call = b.node(NodeKind.CALL, "caller", call_site=site)
    ret = b.node(NodeKind.RETURN, "caller", call_site=site)
    callee_entry = b.node(NodeKind.ENTRY, "callee")
    callee_exit = b.node(NodeKind.EXIT, "callee", exit_kind=ExitKind.RETURN)

    b.flow(caller_entry, call, may_use=0, may_def=R0, must_def=R0)
    b.flow(ret, caller_exit, may_use=R0)  # caller uses R0 after the return
    b.cr_edges.append(CallReturnEdge(src=call, dst=ret, callees=("callee",)))
    b.flow(
        callee_entry, callee_exit,
        may_use=callee_use, may_def=callee_may, must_def=callee_must,
    )
    b.routine("caller", caller_entry, [(caller_exit, ExitKind.RETURN)],
              [(call, ret, site)])
    b.routine("callee", callee_entry, [(callee_exit, ExitKind.RETURN)])
    psg = b.graph()
    ids = dict(
        caller_entry=caller_entry, caller_exit=caller_exit, call=call,
        ret=ret, callee_entry=callee_entry, callee_exit=callee_exit,
    )
    return psg, ids


class TestPhase1HandBuilt:
    def test_callee_summary_propagates_to_caller(self):
        psg, ids = build_caller_callee()
        result = run_phase1(psg, {}, 0, _order(psg))
        # Callee entry: uses R1, must-def R2, may-def {R2, R3}.
        assert result.may_use[ids["callee_entry"]] == R1
        assert result.must_def[ids["callee_entry"]] == R2
        assert result.may_def[ids["callee_entry"]] == R2 | R3
        # Caller entry: R1 blocked? No - the caller's entry->call edge
        # only defines R0, so the callee's use of R1 surfaces.
        assert result.may_use[ids["caller_entry"]] == R1
        assert result.must_def[ids["caller_entry"]] == R0 | R2
        assert result.may_def[ids["caller_entry"]] == R0 | R2 | R3

    def test_caller_defining_arg_blocks_callee_use(self):
        psg, ids = build_caller_callee(callee_use=R0)
        result = run_phase1(psg, {}, 0, _order(psg))
        # The entry->call edge must-defines R0, so the callee's use of
        # R0 does not reach the caller's entry.
        assert result.may_use[ids["caller_entry"]] == 0

    def test_cr_label_written_after_convergence(self):
        psg, ids = build_caller_callee()
        run_phase1(psg, {}, 0, _order(psg))
        label = psg.call_return_edges[0].label
        assert label.may_use == R1
        assert label.must_def == R2
        assert label.may_def == R2 | R3

    def test_filtering_strips_saved_registers(self):
        psg, ids = build_caller_callee(
            callee_use=R1 | R3, callee_must=R2 | R3, callee_may=R2 | R3
        )
        # Pretend the callee saves/restores "R3".
        result = run_phase1(psg, {"callee": R3}, 0, _order(psg))
        assert result.may_use[ids["callee_entry"]] == R1
        assert result.must_def[ids["callee_entry"]] == R2
        assert result.may_def[ids["callee_entry"]] == R2

    def test_preserved_mask_strips_defs_only(self):
        psg, ids = build_caller_callee(
            callee_use=R1, callee_must=R1 | R2, callee_may=R1 | R2
        )
        result = run_phase1(psg, {}, preserved_mask=R1, seed_order=_order(psg))
        # R1 still call-used, no longer call-defined/killed.
        assert result.may_use[ids["callee_entry"]] & R1
        assert not result.must_def[ids["callee_entry"]] & R1
        assert not result.may_def[ids["callee_entry"]] & R1

    def test_halt_exit_is_vacuous_must_def(self):
        b = _Builder()
        entry = b.node(NodeKind.ENTRY, "f")
        halt = b.node(NodeKind.EXIT, "f", exit_kind=ExitKind.HALT)
        ret = b.node(NodeKind.EXIT, "f", block=1, exit_kind=ExitKind.RETURN)
        b.flow(entry, halt, must_def=R0, may_def=R0)
        b.flow(entry, ret, must_def=R1, may_def=R1)
        b.routine("f", entry, [(halt, ExitKind.HALT), (ret, ExitKind.RETURN)])
        psg = b.graph()
        result = run_phase1(psg, {}, 0, _order(psg))
        # The halting path contributes T to the intersection, so only
        # the returning path's R1 is call-defined.
        assert result.must_def[entry] == R1
        assert result.may_def[entry] == R0 | R1

    def test_unknown_jump_exit_poisons_may_sets(self):
        b = _Builder()
        entry = b.node(NodeKind.ENTRY, "f")
        wild = b.node(NodeKind.EXIT, "f", exit_kind=ExitKind.UNKNOWN_JUMP)
        b.flow(entry, wild, must_def=R0, may_def=R0)
        b.routine("f", entry, [(wild, ExitKind.UNKNOWN_JUMP)])
        psg = b.graph()
        result = run_phase1(psg, {}, 0, _order(psg))
        assert result.may_use[entry] == TRACKED_MASK & ~R0  # R0 defined first
        assert result.may_def[entry] == TRACKED_MASK | R0
        assert result.must_def[entry] == R0

    def test_recursion_converges(self):
        """f calls itself; must-def via the GFP stays precise."""
        b = _Builder()
        site = _site(targets=("f",))
        entry = b.node(NodeKind.ENTRY, "f")
        exit_node = b.node(NodeKind.EXIT, "f", exit_kind=ExitKind.RETURN)
        call = b.node(NodeKind.CALL, "f", call_site=site)
        ret = b.node(NodeKind.RETURN, "f", call_site=site)
        # entry: either straight to exit defining R2, or into the call.
        b.flow(entry, exit_node, may_def=R2, must_def=R2)
        b.flow(entry, call, may_def=R1, must_def=R1)
        b.flow(ret, exit_node, may_def=R2, must_def=R2)
        b.cr_edges.append(CallReturnEdge(src=call, dst=ret, callees=("f",)))
        b.routine("f", entry, [(exit_node, ExitKind.RETURN)],
                  [(call, ret, site)])
        psg = b.graph()
        result = run_phase1(psg, {}, 0, _order(psg))
        # Every returning path defines R2; only recursive paths touch R1.
        assert result.must_def[entry] == R2
        assert result.may_def[entry] == R1 | R2

    def test_multi_callee_combines(self):
        b = _Builder()
        site = _site(targets=("a", "b"))
        entry = b.node(NodeKind.ENTRY, "main")
        exit_node = b.node(NodeKind.EXIT, "main", exit_kind=ExitKind.RETURN)
        call = b.node(NodeKind.CALL, "main", call_site=site)
        ret = b.node(NodeKind.RETURN, "main", call_site=site)
        a_entry = b.node(NodeKind.ENTRY, "a")
        a_exit = b.node(NodeKind.EXIT, "a", exit_kind=ExitKind.RETURN)
        b_entry = b.node(NodeKind.ENTRY, "b")
        b_exit = b.node(NodeKind.EXIT, "b", exit_kind=ExitKind.RETURN)
        b.flow(entry, call)
        b.flow(ret, exit_node)
        b.cr_edges.append(CallReturnEdge(src=call, dst=ret, callees=("a", "b")))
        b.flow(a_entry, a_exit, may_use=R0, may_def=R1 | R2, must_def=R1 | R2)
        b.flow(b_entry, b_exit, may_use=R3, may_def=R1, must_def=R1)
        b.routine("main", entry, [(exit_node, ExitKind.RETURN)],
                  [(call, ret, site)])
        b.routine("a", a_entry, [(a_exit, ExitKind.RETURN)])
        b.routine("b", b_entry, [(b_exit, ExitKind.RETURN)])
        psg = b.graph()
        result = run_phase1(psg, {}, 0, _order(psg))
        # main's entry: MAY-USE unions, MUST-DEF intersects.
        assert result.may_use[entry] == R0 | R3
        assert result.must_def[entry] == R1
        assert result.may_def[entry] == R1 | R2


class TestPhase2HandBuilt:
    def test_live_at_exit_via_return_copy(self):
        psg, ids = build_caller_callee()
        run_phase1(psg, {}, 0, _order(psg))
        result = run_phase2(psg, set(), NT_ALPHA, _order(psg))
        # The caller uses R0 after the return; the callee never defines
        # R0, so it is live at the callee's exit AND entry.
        assert result.may_use[ids["callee_exit"]] == R0
        assert result.may_use[ids["callee_entry"]] == R0 | R1

    def test_callee_must_def_blocks_liveness(self):
        # Callee must-defines R0; the caller's post-call use of R0 then
        # does NOT make R0 live before the call.
        psg, ids = build_caller_callee(
            callee_use=0, callee_must=R0, callee_may=R0
        )
        run_phase1(psg, {}, 0, _order(psg))
        result = run_phase2(psg, set(), NT_ALPHA, _order(psg))
        assert result.may_use[ids["call"]] == 0
        # ...but it IS live at the callee's exit (the callee's value
        # flows out to the caller's use).
        assert result.may_use[ids["callee_exit"]] == R0

    def test_externally_callable_seed(self):
        psg, ids = build_caller_callee()
        run_phase1(psg, {}, 0, _order(psg))
        result = run_phase2(psg, {"callee"}, NT_ALPHA, _order(psg))
        from repro.interproc.phase2 import conservative_exit_live_mask

        seed = conservative_exit_live_mask(NT_ALPHA)
        assert result.may_use[ids["callee_exit"]] & seed == seed

    def test_valid_paths_precision(self):
        """Liveness at one call site does not leak to another caller.

        Two callers call the same callee; only caller1 uses R3 after
        its return.  live-at-exit(callee) must include R3 (some return
        path uses it) but caller2's live-before-call must NOT — the
        meet-over-valid-paths property the two-phase approach buys.
        """
        b = _Builder()
        site1 = _site(targets=("shared",))
        site2 = CallSite(
            block=1, instruction_index=0, targets=("shared",), indirect=False
        )
        c1_entry = b.node(NodeKind.ENTRY, "c1")
        c1_exit = b.node(NodeKind.EXIT, "c1", exit_kind=ExitKind.RETURN)
        c1_call = b.node(NodeKind.CALL, "c1", call_site=site1)
        c1_ret = b.node(NodeKind.RETURN, "c1", call_site=site1)
        c2_entry = b.node(NodeKind.ENTRY, "c2")
        c2_exit = b.node(NodeKind.EXIT, "c2", exit_kind=ExitKind.RETURN)
        c2_call = b.node(NodeKind.CALL, "c2", call_site=site2)
        c2_ret = b.node(NodeKind.RETURN, "c2", call_site=site2)
        s_entry = b.node(NodeKind.ENTRY, "shared")
        s_exit = b.node(NodeKind.EXIT, "shared", exit_kind=ExitKind.RETURN)

        b.flow(c1_entry, c1_call)
        b.flow(c1_ret, c1_exit, may_use=R3)   # caller1 uses R3 after return
        b.flow(c2_entry, c2_call)
        b.flow(c2_ret, c2_exit)               # caller2 does not
        b.cr_edges.append(CallReturnEdge(src=c1_call, dst=c1_ret,
                                         callees=("shared",)))
        b.cr_edges.append(CallReturnEdge(src=c2_call, dst=c2_ret,
                                         callees=("shared",)))
        b.flow(s_entry, s_exit)               # transparent callee
        b.routine("c1", c1_entry, [(c1_exit, ExitKind.RETURN)],
                  [(c1_call, c1_ret, site1)])
        b.routine("c2", c2_entry, [(c2_exit, ExitKind.RETURN)],
                  [(c2_call, c2_ret, site2)])
        b.routine("shared", s_entry, [(s_exit, ExitKind.RETURN)])
        psg = b.graph()
        run_phase1(psg, {}, 0, _order(psg))
        result = run_phase2(psg, set(), NT_ALPHA, _order(psg))
        assert result.may_use[s_exit] == R3          # union over returns
        assert result.may_use[c1_call] == R3         # R3 live before call 1
        assert result.may_use[c2_call] == 0          # but NOT before call 2
        # The callee reports R3 live at entry (it might be c1's call),
        # which is the conservative union the PSG summaries give.
        assert result.may_use[s_entry] == R3
