"""Tests for the disassembler, loader and listing renderer."""

import pytest

from repro.program.asm import assemble
from repro.program.disasm import disassemble_image, load_program, render_listing
from repro.program.image import ExecutableImage, ImageFormatError, Symbol


class TestDisassembleImage:
    def test_routines_carved_along_symbols(self, quick_program):
        assert quick_program.routine_names() == ["main", "helper"]
        assert len(quick_program.routine("helper")) == 2

    def test_entry_resolved(self, quick_program):
        assert quick_program.entry == "main"

    def test_exported_flags(self, quick_program):
        assert quick_program.routine("main").exported
        assert not quick_program.routine("helper").exported

    def test_jump_tables_resolved(self):
        program = disassemble_image(
            assemble(
                """
                .routine main
                    jmp t0, [T]
                a:  halt
                b:  halt
                .jumptable T: a, b
                """
            )
        )
        assert len(program.jump_targets) == 1
        targets = next(iter(program.jump_targets.values()))
        assert len(targets) == 2
        assert len(program.jump_table_locations) == 1

    def test_entry_point_must_be_routine_start(self):
        image = assemble(".routine main\n halt\n halt\n")
        image.entry_point += 4
        with pytest.raises(ImageFormatError, match="entry"):
            disassemble_image(image)


class TestLoadProgram:
    def test_bytes_roundtrip(self, quick_program):
        from repro.program.rewrite import program_to_image

        blob = program_to_image(quick_program).to_bytes()
        reloaded = load_program(blob)
        assert reloaded.routine_names() == quick_program.routine_names()
        assert reloaded.instruction_count == quick_program.instruction_count


class TestRenderListing:
    def test_contains_routines_and_addresses(self, quick_program):
        listing = render_listing(quick_program)
        assert "main:" in listing
        assert "helper:" in listing
        assert "0x00010000" in listing

    def test_call_annotated_with_callee(self, quick_program):
        listing = render_listing(quick_program)
        assert "calls helper" in listing

    def test_branch_targets_labeled(self, figure4_program):
        listing = render_listing(figure4_program)
        assert "L0" in listing
        assert "-> L" in listing

    def test_jump_table_annotated(self):
        program = disassemble_image(
            assemble(
                """
                .routine main
                    jmp t0, [T]
                a:  halt
                b:  halt
                .jumptable T: a, b
                """
            )
        )
        listing = render_listing(program)
        assert "table:" in listing
