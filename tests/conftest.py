"""Shared fixtures: canonical programs used across the test suite."""

from __future__ import annotations

import os

import pytest

from repro.program.asm import assemble
from repro.program.disasm import disassemble_image
from repro.program.model import Program
from repro.workloads.generator import GeneratorConfig, generate_benchmark
from repro.workloads.micro import figure2_program, figure4_program


@pytest.fixture(autouse=True)
def _isolated_summary_store(tmp_path, monkeypatch):
    """Repoint REPRO_SUMMARY_STORE at a fresh per-test directory.

    The CI tier-1 variant runs the whole suite with a shared summary
    store enabled.  Tests assert exact solve counts, so each test gets
    its own empty store — the store code paths still run everywhere,
    but no test can warm another.  A no-op when the variable is unset.
    """
    if os.environ.get("REPRO_SUMMARY_STORE"):
        monkeypatch.setenv("REPRO_SUMMARY_STORE", str(tmp_path / "sumstore"))


#: A two-routine program exercising calls, liveness and OUTPUT.
QUICK_SOURCE = """
.routine main export
    lda  sp, -16(sp)
    stq  ra, 0(sp)
    li   a0, 5
    bsr  ra, helper
    bis  zero, v0, a0
    output
    ldq  ra, 0(sp)
    lda  sp, 16(sp)
    halt
.routine helper
    addq a0, #1, v0
    ret  (ra)
"""


@pytest.fixture(scope="session")
def quick_program() -> Program:
    return disassemble_image(assemble(QUICK_SOURCE))


@pytest.fixture(scope="session", name="figure2_program")
def figure2_program_fixture() -> Program:
    """The paper's Figure 2 / 9 / 11 worked example (repro.workloads.micro)."""
    return figure2_program()


@pytest.fixture(scope="session", name="figure4_program")
def figure4_program_fixture() -> Program:
    """The paper's Figure 4(a) example (repro.workloads.micro)."""
    return figure4_program()


@pytest.fixture(scope="session")
def small_benchmark() -> Program:
    """A small but structurally rich generated program."""
    program, _shape = generate_benchmark(
        "compress", scale=0.2, config=GeneratorConfig(seed=7)
    )
    return program


@pytest.fixture(scope="session")
def switchy_benchmark() -> Program:
    """A generated program heavy in multiway branches (sqlservr-shaped)."""
    program, _shape = generate_benchmark(
        "sqlservr", scale=0.02, config=GeneratorConfig(seed=11)
    )
    return program
