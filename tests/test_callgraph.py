"""Tests for the call graph, SCCs and the address-taken escape analysis."""

from repro.cfg.callgraph import build_call_graph, find_address_taken
from repro.program.asm import assemble
from repro.program.disasm import disassemble_image


def program_of(source: str, entry=None):
    return disassemble_image(assemble(source, entry=entry))


class TestCallers:
    def test_callers_recorded(self, quick_program):
        graph = build_call_graph(quick_program)
        callers = graph.callers_of("helper")
        assert len(callers) == 1
        assert callers[0][0] == "main"
        assert graph.callees_of("main") == ["helper"]

    def test_unknown_sites(self):
        program = program_of(
            """
            .data p: 0
            .routine main
                li  t0, @p
                ldq pv, 0(t0)
                jsr ra, (pv)
                halt
            """
        )
        graph = build_call_graph(program)
        assert len(graph.unknown_sites) == 1
        assert graph.unknown_sites[0][0] == "main"


class TestExternallyCallable:
    def test_entry_always_externally_callable(self, quick_program):
        graph = build_call_graph(quick_program)
        assert "main" in graph.externally_callable
        assert "helper" not in graph.externally_callable

    def test_exported_routines(self):
        program = program_of(
            """
            .routine main
                halt
            .routine api export
                ret (ra)
            """
        )
        graph = build_call_graph(program)
        assert "api" in graph.externally_callable


class TestAddressTaken:
    def test_address_stored_to_memory_escapes(self):
        program = program_of(
            """
            .routine main
                li  t0, &f
                stq t0, 0(sp)
                halt
            .routine f
                ret (ra)
            """
        )
        assert "f" in find_address_taken(program)

    def test_address_feeding_resolved_jsr_does_not_escape(self):
        program = program_of(
            """
            .routine main
                li  pv, &f
                jsr ra, (pv)
                halt
            .routine f
                ret (ra)
            """
        )
        assert "f" not in find_address_taken(program)

    def test_address_surviving_block_boundary_escapes(self):
        program = program_of(
            """
            .routine main
                li  t5, &f
                beq t0, skip
                addq t1, #1, t1
            skip:
                halt
            .routine f
                ret (ra)
            """
        )
        assert "f" in find_address_taken(program)

    def test_address_used_arithmetically_escapes(self):
        program = program_of(
            """
            .routine main
                li   t0, &f
                addq t0, t1, t2
                halt
            .routine f
                ret (ra)
            """
        )
        assert "f" in find_address_taken(program)

    def test_plain_constants_do_not_escape(self):
        program = program_of(
            """
            .routine main
                li  t0, 1234
                stq t0, 0(sp)
                halt
            .routine f
                ret (ra)
            """
        )
        assert find_address_taken(program) == set()


class TestOrderings:
    DIAMOND = """
        .routine main
            bsr ra, left
            bsr ra, right
            halt
        .routine left
            lda sp, -16(sp)
            stq ra, 0(sp)
            bsr ra, leaf
            ldq ra, 0(sp)
            lda sp, 16(sp)
            ret (ra)
        .routine right
            lda sp, -16(sp)
            stq ra, 0(sp)
            bsr ra, leaf
            ldq ra, 0(sp)
            lda sp, 16(sp)
            ret (ra)
        .routine leaf
            ret (ra)
    """

    def test_reverse_topological_order(self):
        graph = build_call_graph(program_of(self.DIAMOND))
        order = graph.reverse_topological_order()
        assert order.index("leaf") < order.index("left")
        assert order.index("leaf") < order.index("right")
        assert order.index("left") < order.index("main")
        assert set(order) == {"main", "left", "right", "leaf"}

    def test_sccs_of_mutual_recursion(self):
        program = program_of(
            """
            .routine main
                bsr ra, even
                halt
            .routine even
                lda sp, -16(sp)
                stq ra, 0(sp)
                ble a0, even_done
                subq a0, #1, a0
                bsr ra, odd
            even_done:
                ldq ra, 0(sp)
                lda sp, 16(sp)
                ret (ra)
            .routine odd
                lda sp, -16(sp)
                stq ra, 0(sp)
                ble a0, odd_done
                subq a0, #1, a0
                bsr ra, even
            odd_done:
                ldq ra, 0(sp)
                lda sp, 16(sp)
                ret (ra)
            """
        )
        graph = build_call_graph(program)
        components = graph.strongly_connected_components()
        by_size = sorted(components, key=len)
        assert sorted(by_size[-1]) == ["even", "odd"]
        # Callees-first: the even/odd component precedes main's.
        names = [set(c) for c in components]
        assert names.index({"even", "odd"}) < names.index({"main"})

    def test_self_recursion_is_singleton_scc(self):
        program = program_of(
            """
            .routine main
                lda sp, -16(sp)
                stq ra, 0(sp)
                ble a0, done
                subq a0, #1, a0
                bsr ra, main
            done:
                ldq ra, 0(sp)
                lda sp, 16(sp)
                ret (ra)
            """
        )
        graph = build_call_graph(program)
        assert [["main"]] == graph.strongly_connected_components()

    def test_scc_on_generated_program(self, small_benchmark):
        graph = build_call_graph(small_benchmark)
        order = graph.reverse_topological_order()
        assert sorted(order) == sorted(small_benchmark.routine_names())
