"""Tests for repro.isa.calling_convention."""

import pytest

from repro.isa.calling_convention import NT_ALPHA, CallingConvention, _ints
from repro.isa.registers import Register


class TestNtAlpha:
    def test_return_registers(self):
        names = {r.name for r in NT_ALPHA.return_registers}
        assert names == {"v0", "f0", "f1"}

    def test_argument_registers(self):
        names = {r.name for r in NT_ALPHA.argument_registers}
        assert names == {"a0", "a1", "a2", "a3", "a4", "a5",
                         "f16", "f17", "f18", "f19", "f20", "f21"}

    def test_callee_saved(self):
        names = {r.name for r in NT_ALPHA.callee_saved}
        assert {"s0", "s1", "s2", "s3", "s4", "s5", "fp"} <= names
        assert {"f2", "f9"} <= names

    def test_special_registers(self):
        assert NT_ALPHA.stack_pointer.name == "sp"
        assert NT_ALPHA.return_address.name == "ra"
        assert NT_ALPHA.global_pointer.name == "gp"

    def test_roles_do_not_overlap(self):
        groups = (
            NT_ALPHA.argument_registers,
            NT_ALPHA.callee_saved,
            NT_ALPHA.temporaries,
        )
        seen = set()
        for group in groups:
            assert not (seen & set(group))
            seen |= set(group)

    def test_caller_saved_includes_temporaries_and_returns(self):
        caller = NT_ALPHA.caller_saved
        assert NT_ALPHA.temporaries <= caller
        assert NT_ALPHA.return_registers <= caller
        assert NT_ALPHA.return_address in caller

    def test_preserved_across_calls(self):
        preserved = NT_ALPHA.preserved_across_calls
        assert NT_ALPHA.callee_saved <= preserved
        assert NT_ALPHA.stack_pointer in preserved
        assert not (preserved & NT_ALPHA.temporaries)

    def test_unknown_call_used_has_args_ra_sp(self):
        used = NT_ALPHA.unknown_call_used()
        assert NT_ALPHA.argument_registers <= used
        assert NT_ALPHA.return_address in used
        assert NT_ALPHA.stack_pointer in used

    def test_unknown_call_defined_is_return_registers(self):
        assert NT_ALPHA.unknown_call_defined() == NT_ALPHA.return_registers

    def test_unknown_call_killed_excludes_callee_saved(self):
        killed = NT_ALPHA.unknown_call_killed()
        assert not (killed & NT_ALPHA.callee_saved)
        assert NT_ALPHA.temporaries <= killed

    def test_is_callee_saved(self):
        assert NT_ALPHA.is_callee_saved(Register.parse("s0"))
        assert not NT_ALPHA.is_callee_saved(Register.parse("t0"))


class TestValidation:
    def test_overlapping_roles_rejected(self):
        with pytest.raises(ValueError):
            CallingConvention(
                name="bad",
                argument_registers=_ints(16),
                return_registers=_ints(0),
                callee_saved=_ints(16),  # overlaps arguments
                temporaries=_ints(1),
            )

    def test_unknown_jump_live_is_everything(self):
        assert len(NT_ALPHA.unknown_jump_live()) == 64
