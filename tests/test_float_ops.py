"""Tests for floating-point register flows through the whole stack.

The dataflow analysis treats the 32 floating-point registers uniformly
with the integer ones (Callahan's per-variable PSG vs Spike's shared
one, §5).  These tests cover the FP opcodes end to end: assembly,
encoding round trips happen in test_encoding; here we check execution
semantics, dataflow facts and the calling convention's FP roles.
"""

import pytest

from tests.facade import analyze_program
from repro.program.asm import assemble
from repro.program.disasm import disassemble_image
from repro.sim.interpreter import run_program


def run(source):
    return run_program(disassemble_image(assemble(source)))


class TestFloatExecution:
    def test_fp_arithmetic(self):
        result = run(
            """
            .routine main
                li   t0, 6
                itoft t0, zero, f2
                li   t1, 7
                itoft t1, zero, f3
                mult f2, f3, f4
                ftoit f4, fzero, a0
                output
                halt
            """
        )
        assert result.outputs == [42]

    def test_fp_add_sub(self):
        result = run(
            """
            .routine main
                li  t0, 10
                itoft t0, zero, f10
                li  t1, 4
                itoft t1, zero, f11
                addt f10, f11, f12
                subt f12, f11, f13
                ftoit f13, fzero, a0
                output
                halt
            """
        )
        assert result.outputs == [10]

    def test_fp_memory_roundtrip(self):
        result = run(
            """
            .routine main
                li   t0, 99
                itoft t0, zero, f5
                stt  f5, -8(sp)
                ldt  f6, -8(sp)
                ftoit f6, fzero, a0
                output
                halt
            """
        )
        assert result.outputs == [99]

    def test_fp_compare_and_branch(self):
        result = run(
            """
            .routine main
                li   t0, 5
                itoft t0, zero, f2
                li   t1, 5
                itoft t1, zero, f3
                cmpteq f2, f3, f4
                fbne f4, equal
                li a0, 0
                output
                halt
            equal:
                li a0, 1
                output
                halt
            """
        )
        assert result.outputs == [1]

    def test_cpys_moves_value(self):
        result = run(
            """
            .routine main
                li   t0, 17
                itoft t0, zero, f10
                cpys f10, f10, f11
                ftoit f11, fzero, a0
                output
                halt
            """
        )
        assert result.outputs == [17]


class TestFloatDataflow:
    SOURCE = """
        .routine main export
            lda sp, -16(sp)
            stq ra, 0(sp)
            li  t0, 21
            itoft t0, zero, f16      ; FP argument
            bsr ra, fdouble
            ftoit f0, fzero, a0
            output
            ldq ra, 0(sp)
            lda sp, 16(sp)
            halt
        .routine fdouble
            addt f16, f16, f0        ; FP return value
            ret (ra)
    """

    def test_fp_registers_in_summaries(self):
        program = disassemble_image(assemble(self.SOURCE))
        analysis = analyze_program(program)
        summary = analysis.summary("fdouble")
        assert "f16" in summary.call_used.names()
        assert "f0" in summary.call_defined.names()
        assert "f0" in summary.call_killed.names()

    def test_fp_execution_matches(self):
        program = disassemble_image(assemble(self.SOURCE))
        assert run_program(program).outputs == [42]

    def test_fp_callee_saved_filtering(self):
        program = disassemble_image(
            assemble(
                """
                .routine main
                    bsr ra, f
                    halt
                .routine f
                    lda sp, -16(sp)
                    stt f2, 0(sp)
                    addt f16, f16, f2
                    cpys f2, f2, f0
                    ldt f2, 0(sp)
                    lda sp, 16(sp)
                    ret (ra)
                """
            )
        )
        analysis = analyze_program(program)
        summary = analysis.summary("f")
        assert "f2" in summary.saved_restored.names()
        assert "f2" not in summary.call_killed.names()
