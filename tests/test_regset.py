"""Tests for repro.dataflow.regset, including algebraic property tests."""

import pytest
from hypothesis import given, strategies as st

from repro.dataflow.regset import (
    EMPTY_SET,
    FULL_MASK,
    TRACKED_MASK,
    UNIVERSE,
    RegisterSet,
    iter_mask,
    mask_of,
)
from repro.isa.registers import Register


class TestConstruction:
    def test_empty(self):
        assert not RegisterSet()
        assert len(RegisterSet()) == 0

    def test_from_names(self):
        s = RegisterSet(["t0", "sp"])
        assert "t0" in s and "sp" in s and "t1" not in s

    def test_from_registers_and_indices(self):
        s = RegisterSet([Register(3), 5])
        assert 3 in s and 5 in s

    def test_from_mask(self):
        assert RegisterSet.from_mask(0b101) == RegisterSet([0, 2])

    def test_from_mask_range_checked(self):
        with pytest.raises(ValueError):
            RegisterSet.from_mask(1 << 64)
        with pytest.raises(ValueError):
            RegisterSet.from_mask(-1)

    def test_bad_index_rejected(self):
        with pytest.raises(ValueError):
            RegisterSet([64])

    def test_constants(self):
        assert EMPTY_SET.mask == 0
        assert UNIVERSE.mask == FULL_MASK
        assert len(UNIVERSE) == 64
        # TRACKED excludes the two hardwired zero registers.
        assert bin(TRACKED_MASK).count("1") == 62
        assert not (TRACKED_MASK >> 31) & 1
        assert not (TRACKED_MASK >> 63) & 1


class TestAlgebra:
    def test_union(self):
        assert RegisterSet([1]) | RegisterSet([2]) == RegisterSet([1, 2])

    def test_intersection(self):
        assert RegisterSet([1, 2]) & RegisterSet([2, 3]) == RegisterSet([2])

    def test_difference(self):
        assert RegisterSet([1, 2]) - RegisterSet([2]) == RegisterSet([1])

    def test_symmetric_difference(self):
        assert RegisterSet([1, 2]) ^ RegisterSet([2, 3]) == RegisterSet([1, 3])

    def test_complement(self):
        assert RegisterSet([0]).complement() == UNIVERSE - RegisterSet([0])

    def test_varargs_union_intersection(self):
        a, b, c = RegisterSet([1]), RegisterSet([2]), RegisterSet([3])
        assert a.union(b, c) == RegisterSet([1, 2, 3])
        assert RegisterSet([1, 2, 3]).intersection(
            RegisterSet([1, 2]), RegisterSet([2, 3])
        ) == RegisterSet([2])

    def test_add_remove_are_persistent(self):
        s = RegisterSet([1])
        t = s.add(2)
        u = t.remove(1)
        assert s == RegisterSet([1])
        assert t == RegisterSet([1, 2])
        assert u == RegisterSet([2])

    def test_subset_superset_disjoint(self):
        small, big = RegisterSet([1]), RegisterSet([1, 2])
        assert small.issubset(big) and big.issuperset(small)
        assert not big.issubset(small)
        assert small.isdisjoint(RegisterSet([3]))
        assert not small.isdisjoint(big)


class TestPresentation:
    def test_iteration_sorted(self):
        regs = list(RegisterSet([5, 1, 3]))
        assert [r.index for r in regs] == [1, 3, 5]

    def test_names(self):
        assert RegisterSet(["v0", "sp"]).names() == frozenset({"v0", "sp"})

    def test_repr(self):
        assert repr(RegisterSet(["t0"])) == "{t0}"
        assert repr(EMPTY_SET) == "{}"

    def test_hashable(self):
        assert len({RegisterSet([1]), RegisterSet([1]), RegisterSet([2])}) == 2

    def test_equality_against_other_types(self):
        assert RegisterSet([1]) != "not a set"


class TestHelpers:
    def test_mask_of(self):
        assert mask_of(["r0", "r2"]) == 0b101

    def test_iter_mask(self):
        assert list(iter_mask(0b1011)) == [0, 1, 3]
        assert list(iter_mask(0)) == []


masks = st.integers(min_value=0, max_value=FULL_MASK)


@given(masks, masks)
def test_property_de_morgan(a, b):
    sa, sb = RegisterSet.from_mask(a), RegisterSet.from_mask(b)
    assert (sa | sb).complement() == sa.complement() & sb.complement()
    assert (sa & sb).complement() == sa.complement() | sb.complement()


@given(masks, masks, masks)
def test_property_distributivity(a, b, c):
    sa, sb, sc = (RegisterSet.from_mask(m) for m in (a, b, c))
    assert sa & (sb | sc) == (sa & sb) | (sa & sc)
    assert sa | (sb & sc) == (sa | sb) & (sa | sc)


@given(masks, masks)
def test_property_difference_via_complement(a, b):
    sa, sb = RegisterSet.from_mask(a), RegisterSet.from_mask(b)
    assert sa - sb == sa & sb.complement()


@given(masks)
def test_property_iteration_matches_mask(a):
    s = RegisterSet.from_mask(a)
    rebuilt = 0
    for register in s:
        rebuilt |= 1 << register.index
    assert rebuilt == a
    assert len(s) == bin(a).count("1")


@given(masks, masks)
def test_property_subset_consistency(a, b):
    sa, sb = RegisterSet.from_mask(a), RegisterSet.from_mask(b)
    assert sa.issubset(sb) == ((sa | sb) == sb)
    assert sa.isdisjoint(sb) == (len(sa & sb) == 0)
