"""Tests for repro.isa.instructions: def/use semantics and control kinds."""

import pytest

from repro.isa.instructions import (
    ControlKind,
    Format,
    Instruction,
    MNEMONIC_TO_OPCODE,
    Opcode,
    branch_ops,
    is_call,
    is_conditional_branch,
    is_indirect_jump,
    is_return,
    is_unconditional_branch,
)
from repro.isa.registers import FLOAT_ZERO_REGISTER, Register, ZERO_REGISTER


def reg(name: str) -> int:
    return Register.parse(name).index


class TestOperateSemantics:
    def test_register_form_uses_both_sources(self):
        ins = Instruction(Opcode.ADDQ, ra=reg("t0"), rb=reg("t1"), rc=reg("t2"))
        assert ins.uses() == {reg("t0"), reg("t1")}
        assert ins.defs() == {reg("t2")}

    def test_literal_form_uses_only_ra(self):
        ins = Instruction(Opcode.ADDQ, ra=reg("t0"), rc=reg("t2"), literal=5)
        assert ins.uses() == {reg("t0")}
        assert ins.defs() == {reg("t2")}

    def test_zero_register_source_not_reported(self):
        ins = Instruction(Opcode.BIS, ra=ZERO_REGISTER, rb=reg("t1"), rc=reg("t2"))
        assert ins.uses() == {reg("t1")}

    def test_zero_register_destination_not_reported(self):
        ins = Instruction(Opcode.ADDQ, ra=reg("t0"), rb=reg("t1"), rc=ZERO_REGISTER)
        assert ins.defs() == set()

    def test_float_operate(self):
        ins = Instruction(Opcode.ADDT, ra=reg("f2"), rb=reg("f3"), rc=reg("f4"))
        assert ins.uses() == {reg("f2"), reg("f3")}
        assert ins.defs() == {reg("f4")}

    def test_float_zero_not_reported(self):
        ins = Instruction(
            Opcode.ADDT, ra=FLOAT_ZERO_REGISTER, rb=reg("f3"), rc=reg("f4")
        )
        assert ins.uses() == {reg("f3")}

    def test_conditional_move_reads_destination(self):
        ins = Instruction(Opcode.CMOVEQ, ra=reg("t0"), rb=reg("t1"), rc=reg("t2"))
        assert ins.uses() == {reg("t0"), reg("t1"), reg("t2")}
        assert ins.defs() == {reg("t2")}

    def test_literal_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.ADDQ, ra=0, rc=1, literal=256)
        with pytest.raises(ValueError):
            Instruction(Opcode.ADDQ, ra=0, rc=1, literal=-1)

    def test_literal_invalid_on_memory_format(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.LDQ, ra=0, rb=1, literal=5)


class TestMemorySemantics:
    def test_load_defines_ra_uses_base(self):
        ins = Instruction(Opcode.LDQ, ra=reg("t0"), rb=reg("sp"), displacement=8)
        assert ins.uses() == {reg("sp")}
        assert ins.defs() == {reg("t0")}

    def test_store_uses_value_and_base(self):
        ins = Instruction(Opcode.STQ, ra=reg("t0"), rb=reg("sp"), displacement=8)
        assert ins.uses() == {reg("t0"), reg("sp")}
        assert ins.defs() == set()

    def test_lda_is_a_load_shaped_def(self):
        ins = Instruction(Opcode.LDA, ra=reg("t0"), rb=reg("sp"), displacement=-16)
        assert ins.uses() == {reg("sp")}
        assert ins.defs() == {reg("t0")}

    def test_float_load_store(self):
        load = Instruction(Opcode.LDT, ra=reg("f4"), rb=reg("sp"))
        store = Instruction(Opcode.STT, ra=reg("f4"), rb=reg("sp"))
        assert load.defs() == {reg("f4")}
        assert store.uses() == {reg("f4"), reg("sp")}


class TestControlFlow:
    def test_conditional_branch_uses_condition(self):
        ins = Instruction(Opcode.BEQ, ra=reg("t0"), displacement=3)
        assert ins.uses() == {reg("t0")}
        assert ins.defs() == set()
        assert is_conditional_branch(ins)
        assert ins.falls_through

    def test_unconditional_branch_defines_link(self):
        ins = Instruction(Opcode.BR, ra=reg("t0"), displacement=3)
        assert ins.defs() == {reg("t0")}
        assert is_unconditional_branch(ins)
        assert not ins.falls_through

    def test_br_through_zero_defines_nothing(self):
        ins = Instruction(Opcode.BR, ra=ZERO_REGISTER, displacement=1)
        assert ins.defs() == set()

    def test_bsr_is_direct_call(self):
        ins = Instruction(Opcode.BSR, ra=reg("ra"), displacement=10)
        assert is_call(ins)
        assert ins.defs() == {reg("ra")}
        assert ins.control == ControlKind.CALL_DIRECT
        assert ins.falls_through  # returns to the next instruction

    def test_jsr_is_indirect_call(self):
        ins = Instruction(Opcode.JSR, ra=reg("ra"), rb=reg("pv"))
        assert is_call(ins)
        assert ins.uses() == {reg("pv")}
        assert ins.defs() == {reg("ra")}

    def test_ret(self):
        ins = Instruction(Opcode.RET, ra=ZERO_REGISTER, rb=reg("ra"))
        assert is_return(ins)
        assert ins.uses() == {reg("ra")}
        assert not ins.falls_through

    def test_jmp_is_indirect_jump(self):
        ins = Instruction(Opcode.JMP, ra=ZERO_REGISTER, rb=reg("t0"))
        assert is_indirect_jump(ins)
        assert ins.uses() == {reg("t0")}

    def test_halt_reads_exit_status(self):
        ins = Instruction(Opcode.HALT)
        assert ins.uses() == {reg("v0")}  # v0 is the exit status
        assert ins.defs() == set()
        assert ins.control == ControlKind.HALT

    def test_output_reads_a0(self):
        ins = Instruction(Opcode.OUTPUT)
        assert ins.uses() == {reg("a0")}
        assert ins.defs() == set()

    def test_block_terminators(self):
        assert Instruction(Opcode.BSR, ra=26, displacement=0).is_block_terminator
        assert Instruction(Opcode.BEQ, ra=1, displacement=0).is_block_terminator
        assert Instruction(Opcode.RET, rb=26).is_block_terminator
        assert not Instruction(Opcode.ADDQ, ra=1, rb=2, rc=3).is_block_terminator

    def test_branch_ops_are_all_conditional(self):
        ops = branch_ops()
        assert Opcode.BEQ in ops and Opcode.BNE in ops
        assert all(op.control == ControlKind.COND_BRANCH for op in ops)


class TestPresentation:
    def test_render_operate(self):
        ins = Instruction(Opcode.ADDQ, ra=reg("t0"), rb=reg("t1"), rc=reg("t2"))
        assert ins.render() == "addq t0, t1, t2"

    def test_render_literal(self):
        ins = Instruction(Opcode.SUBQ, ra=reg("t0"), rc=reg("t0"), literal=1)
        assert ins.render() == "subq t0, #1, t0"

    def test_render_memory(self):
        ins = Instruction(Opcode.STQ, ra=reg("ra"), rb=reg("sp"), displacement=0)
        assert ins.render() == "stq ra, 0(sp)"

    def test_render_jump(self):
        ins = Instruction(Opcode.RET, ra=ZERO_REGISTER, rb=reg("ra"))
        assert ins.render() == "ret zero, (ra)"

    def test_mnemonic_table_is_total(self):
        assert len(MNEMONIC_TO_OPCODE) == len(Opcode)
        for opcode in Opcode:
            assert MNEMONIC_TO_OPCODE[opcode.mnemonic] is opcode

    def test_register_field_range_checked(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.ADDQ, ra=64, rb=0, rc=0)


class TestFormatConsistency:
    @pytest.mark.parametrize("opcode", list(Opcode))
    def test_every_opcode_has_format_and_control(self, opcode):
        assert isinstance(opcode.format, Format)
        assert isinstance(opcode.control, ControlKind)

    @pytest.mark.parametrize("opcode", list(Opcode))
    def test_uses_defs_disjoint_from_zero_registers(self, opcode):
        kwargs = {}
        if opcode.format in (Format.OPERATE_FP, Format.MEMORY_FP, Format.BRANCH_FP):
            kwargs = {"ra": 33, "rb": 34 if opcode.format == Format.OPERATE_FP else 2,
                      "rc": 35}
            if opcode is Opcode.FTOIT:
                kwargs["rc"] = 3
        elif opcode is Opcode.ITOFT:
            kwargs = {"ra": 1, "rb": 2, "rc": 35}
        else:
            kwargs = {"ra": 1, "rb": 2, "rc": 3}
        ins = Instruction(opcode, **kwargs)
        for index in ins.uses() | ins.defs():
            assert index not in (31, 63)
