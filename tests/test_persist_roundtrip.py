"""Robustness and round-trip properties of the summary sidecar formats.

Three layers of guarantees for ``SUM1`` and ``SUM2``:

* **truncation fuzz** — a valid blob cut at *every* byte offset raises
  :class:`SummaryFormatError`; no ``struct.error``, ``IndexError`` or
  ``UnicodeDecodeError`` ever escapes the parser;
* **Hypothesis round-trip** — ``load(dump(r)) == r`` for generated
  :class:`SummarySet`/:class:`SummaryCache` values covering every
  exit kind, indirect and hinted sites, empty target tuples, unicode
  routine names, and all-ones masks;
* **fingerprint strength** — :func:`image_fingerprint` is a genuine
  64-bit hash: known CRC32-colliding inputs (which the historical
  ``crc32 | (len << 32)`` scheme could not tell apart) get distinct
  fingerprints.
"""

import zlib

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cfg.cfg import CallSite, ExitKind
from repro.dataflow.regset import FULL_MASK, TRACKED_MASK
from tests.facade import analyze_program
from repro.interproc.persist import (
    SummaryCache,
    SummaryFormatError,
    crc64,
    dump_cache,
    dump_summaries,
    image_fingerprint,
    load_cache,
    load_summaries,
)
from repro.interproc.summaries import (
    SummarySet,
    CallSiteSummary,
    RoutineSummary,
)


# ----------------------------------------------------------------------
# Truncation fuzz: every malformed prefix is a clean format error
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def sum1_blob(quick_program):
    return dump_summaries(analyze_program(quick_program).result)


@pytest.fixture(scope="module")
def sum2_blob(quick_program):
    from tests.facade import analyze_incremental

    return dump_cache(analyze_incremental(quick_program).cache)


def _assert_all_prefixes_rejected(blob, loader):
    for size in range(len(blob)):
        try:
            loader(blob[:size])
        except SummaryFormatError:
            continue
        except Exception as error:  # pragma: no cover - the failure mode
            pytest.fail(
                f"prefix of {size} bytes leaked "
                f"{type(error).__name__}: {error}"
            )
        pytest.fail(f"prefix of {size} bytes was accepted")


class TestTruncationFuzz:
    def test_sum1_every_prefix(self, sum1_blob):
        _assert_all_prefixes_rejected(sum1_blob, load_summaries)

    def test_sum2_every_prefix(self, sum2_blob):
        _assert_all_prefixes_rejected(sum2_blob, load_cache)

    def test_sum1_trailing_garbage(self, sum1_blob):
        with pytest.raises(SummaryFormatError, match="trailing"):
            load_summaries(sum1_blob + b"\x00")

    def test_sum2_trailing_garbage(self, sum2_blob):
        with pytest.raises(SummaryFormatError, match="trailing"):
            load_cache(sum2_blob + b"\x00")

    def test_sum2_unknown_flag_bits_rejected(self, sum2_blob):
        blob = load_cache(sum2_blob)  # premise: valid as-is
        assert blob is not None
        # The flags byte follows magic+fingerprint+count+name+fp; flip a
        # reserved bit everywhere and require at least one clean reject
        # (and never a non-format exception anywhere).
        saw_flag_error = False
        for index in range(len(sum2_blob)):
            mutated = bytearray(sum2_blob)
            mutated[index] |= 0x80
            try:
                load_cache(bytes(mutated))
            except SummaryFormatError as error:
                saw_flag_error = saw_flag_error or "flags" in str(error)
            except Exception as error:  # pragma: no cover
                pytest.fail(
                    f"byte {index} mutation leaked "
                    f"{type(error).__name__}: {error}"
                )
        assert saw_flag_error

    def test_wrong_magic_each_format(self, sum1_blob, sum2_blob):
        with pytest.raises(SummaryFormatError, match="magic"):
            load_cache(sum1_blob)
        with pytest.raises(SummaryFormatError, match="magic"):
            load_summaries(sum2_blob)


# ----------------------------------------------------------------------
# Hypothesis: dump/load round-trips
# ----------------------------------------------------------------------

_MASKS = st.one_of(
    st.just(0),
    st.just(FULL_MASK),  # all-ones
    st.just(TRACKED_MASK),
    st.integers(min_value=0, max_value=FULL_MASK),
)
_NAMES = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)),
    min_size=1,
    max_size=8,
)
_EXIT_KINDS = st.sampled_from(list(ExitKind))


@st.composite
def _call_site_summaries(draw):
    # Covers direct (1 target), hinted (several), and unknown (empty
    # tuple) sites, both direct and indirect.
    targets = tuple(draw(st.lists(_NAMES, max_size=3)))
    site = CallSite(
        block=draw(st.integers(min_value=0, max_value=2**31 - 1)),
        instruction_index=draw(st.integers(min_value=0, max_value=2**31 - 1)),
        targets=targets,
        indirect=draw(st.booleans()),
    )
    return CallSiteSummary(
        site=site,
        used_mask=draw(_MASKS),
        defined_mask=draw(_MASKS),
        killed_mask=draw(_MASKS),
        live_before_mask=draw(_MASKS),
        live_after_mask=draw(_MASKS),
    )


@st.composite
def _routine_summaries(draw, name):
    exit_blocks = draw(
        st.lists(
            st.integers(min_value=0, max_value=2**31 - 1),
            unique=True,
            max_size=3,
        )
    )
    return RoutineSummary(
        name=name,
        call_used_mask=draw(_MASKS),
        call_defined_mask=draw(_MASKS),
        call_killed_mask=draw(_MASKS),
        live_at_entry_mask=draw(_MASKS),
        exit_live_masks={block: draw(_MASKS) for block in exit_blocks},
        exit_kinds={block: draw(_EXIT_KINDS) for block in exit_blocks},
        call_sites=draw(st.lists(_call_site_summaries(), max_size=3)),
        saved_restored_mask=draw(_MASKS),
    )


@st.composite
def _analysis_results(draw):
    names = draw(st.lists(_NAMES, unique=True, max_size=4))
    return SummarySet(
        summaries={name: draw(_routine_summaries(name)) for name in names}
    )


@st.composite
def _summary_caches(draw):
    result = draw(_analysis_results())
    names = sorted(result.summaries)
    return SummaryCache(
        image_fingerprint=draw(
            st.integers(min_value=0, max_value=2**64 - 1)
        ),
        result=result,
        routine_fingerprints={
            name: draw(st.integers(min_value=0, max_value=2**64 - 1))
            for name in names
        },
        externally_callable=set(
            draw(st.lists(st.sampled_from(names), max_size=4)) if names else []
        ),
    )


_PROPERTY = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestRoundTripProperties:
    @_PROPERTY
    @given(result=_analysis_results())
    def test_sum1_roundtrip(self, result):
        blob = dump_summaries(result)
        loaded = load_summaries(blob)
        assert loaded == result
        assert dump_summaries(loaded) == blob

    @_PROPERTY
    @given(cache=_summary_caches())
    def test_sum2_roundtrip(self, cache):
        blob = dump_cache(cache)
        loaded = load_cache(blob)
        assert loaded == cache
        assert dump_cache(loaded) == blob

    @_PROPERTY
    @given(result=_analysis_results(), fingerprint=st.integers(2, 2**64 - 1))
    def test_sum1_fingerprint_binding(self, result, fingerprint):
        blob = dump_summaries(result, fingerprint)
        assert load_summaries(blob, fingerprint) == result
        # A *nonzero* mismatch is stale (0 means "skip the check").
        with pytest.raises(SummaryFormatError, match="stale"):
            load_summaries(blob, fingerprint - 1)


# ----------------------------------------------------------------------
# Fingerprint strength
# ----------------------------------------------------------------------


class TestFingerprintStrength:
    # A classic CRC32 collision pair: equal length, equal CRC32.
    COLLIDING = (b"plumless", b"buckeroo")

    def test_premise_crc32_collides(self):
        a, b = self.COLLIDING
        assert a != b and len(a) == len(b)
        assert zlib.crc32(a) == zlib.crc32(b)

    def test_crc64_separates_crc32_collisions(self):
        a, b = self.COLLIDING
        # The historical `crc32 | (len << 32)` fingerprint collides
        # here by construction; the 64-bit hash must not.
        assert crc64(a) != crc64(b)
        assert image_fingerprint(a) != image_fingerprint(b)

    def test_crc64_uses_high_bits(self):
        assert crc64(b"spike") >> 32 != 0

    def test_crc64_empty_and_stability(self):
        assert crc64(b"") == crc64(b"")
        assert crc64(b"abc") != crc64(b"acb")
