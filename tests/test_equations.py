"""The Figure-6 equations, validated on the paper's Figure 4/5/7 example.

The fixture program (``FIGURE4_SOURCE`` in conftest.py) reconstructs
the CFG of the paper's Figure 4(a) — four basic blocks, a single call
ending block 3 — with register contents chosen so that the published
label of flow-summary edge E_A (Figure 7) comes out exactly:

    MUST-DEF = {R2, R3}, MAY-DEF = {R2, R3}, MAY-USE = {R1}

with the paper's abstract R1, R2, R3 mapped to t1, t2, t3.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cfg.build import build_cfg
from repro.cfg.cfg import TerminatorKind
from repro.cfg.subgraph import backward_reachable, forward_reachable
from repro.dataflow.equations import (
    BatchedLabeler,
    SummaryTriple,
    intern_triple,
    label_from_starts,
    solve_summary_subgraph,
)
from repro.dataflow.local import compute_local_sets
from repro.dataflow.regset import RegisterSet, TRACKED_MASK, mask_of


@pytest.fixture()
def figure4(figure4_program):
    routine = figure4_program.routine("f")
    cfg = build_cfg(figure4_program, routine)
    local_sets = compute_local_sets(cfg)
    blocked = {site.block for site in cfg.call_sites}
    return cfg, local_sets, blocked


def names(mask: int):
    return RegisterSet.from_mask(mask).names()


class TestFigure4Structure:
    def test_four_blocks_and_one_call(self, figure4):
        cfg, _sets, _blocked = figure4
        assert cfg.block_count == 4
        assert len(cfg.call_sites) == 1
        assert cfg.blocks[2].terminator == TerminatorKind.CALL

    def test_block_local_sets_as_designed(self, figure4):
        _cfg, sets, _blocked = figure4
        # Block 1 (index 0): UBD {R1}, DEF {R2}.
        assert "t1" in sets[0].used_before_defined.names()
        assert "t2" in sets[0].defs.names()
        # Block 2 (index 1): DEF {R3}.
        assert "t3" in sets[1].defs.names()
        # Block 4 (index 3): DEF {R3}.
        assert "t3" in sets[3].defs.names()


class TestFlowSummaryLabels:
    def _solve_edge(self, figure4, starts, target):
        cfg, sets, blocked = figure4
        subgraph = backward_reachable(cfg.blocks, target, blocked)
        solution = solve_summary_subgraph(cfg.blocks, sets, subgraph, blocked)
        return label_from_starts(solution, [s for s in starts if s in subgraph])

    def test_edge_ea_matches_figure7(self, figure4):
        """Entry -> exit: the paper publishes this label explicitly."""
        cfg, _sets, _blocked = figure4
        exit_block = cfg.return_exits()[0]
        label = self._solve_edge(figure4, [cfg.entry_index], exit_block)
        assert {"t2", "t3"} <= names(label.must_def)
        assert {"t2", "t3"} <= names(label.may_def)
        assert "t1" in names(label.may_use)
        # Projected onto the paper's registers, nothing else appears.
        paper = mask_of(["t0", "t1", "t2", "t3"])
        assert names(label.must_def & paper) == {"t2", "t3"}
        assert names(label.may_use & paper) == {"t1"}

    def test_edge_eb_entry_to_call(self, figure4):
        cfg, _sets, _blocked = figure4
        call_block = cfg.call_sites[0].block
        label = self._solve_edge(figure4, [cfg.entry_index], call_block)
        paper = mask_of(["t0", "t1", "t2", "t3"])
        assert names(label.must_def & paper) == {"t2"}
        assert names(label.may_def & paper) == {"t2"}
        assert names(label.may_use & paper) == {"t1"}

    def test_edge_ec_return_to_exit(self, figure4):
        cfg, _sets, _blocked = figure4
        call_block = cfg.call_sites[0].block
        return_point = cfg.blocks[call_block].successors[0]
        exit_block = cfg.return_exits()[0]
        label = self._solve_edge(figure4, [return_point], exit_block)
        paper = mask_of(["t0", "t1", "t2", "t3"])
        assert names(label.must_def & paper) == {"t3"}
        assert names(label.may_use & paper) == {"t2"}  # block 4 reads t2

    def test_subgraphs_match_figure5(self, figure4):
        """E_B covers blocks {1,3}; E_C covers {4} (paper's Figure 5)."""
        cfg, _sets, blocked = figure4
        call_block = cfg.call_sites[0].block
        eb = forward_reachable(cfg.blocks, [cfg.entry_index], blocked) & (
            backward_reachable(cfg.blocks, call_block, blocked)
        )
        assert eb == {0, 2}  # blocks "1" and "3" in the paper's numbering
        return_point = cfg.blocks[call_block].successors[0]
        exit_block = cfg.return_exits()[0]
        ec = forward_reachable(cfg.blocks, [return_point], blocked) & (
            backward_reachable(cfg.blocks, exit_block, blocked)
        )
        assert ec == {3}  # block "4"


class TestMustDefOverLoops:
    def test_loop_does_not_lose_must_defs(self):
        """The ⊤ initialization keeps defs that every path performs.

        A ∅-initialized MUST-DEF (the paper's literal initialization)
        would drop t2 here because of the loop; see the module note in
        repro.dataflow.equations.
        """
        from repro.program.asm import assemble
        from repro.program.disasm import disassemble_image

        program = disassemble_image(
            assemble(
                """
                .routine main
                loop:
                    subq t0, #1, t0
                    bgt  t0, loop
                    lda  t2, 1(zero)
                    ret  (ra)
                """
            )
        )
        cfg = build_cfg(program, program.routine("main"))
        sets = compute_local_sets(cfg)
        exit_block = cfg.return_exits()[0]
        subgraph = backward_reachable(cfg.blocks, exit_block, set())
        solution = solve_summary_subgraph(cfg.blocks, sets, subgraph, set())
        label = solution[cfg.entry_index]
        assert "t2" in names(label.must_def)


class _FakeBlock:
    """Just enough of a BasicBlock for the subgraph/equations layer."""

    __slots__ = ("successors", "predecessors")

    def __init__(self):
        self.successors = []
        self.predecessors = []


class _FakeLocal:
    __slots__ = ("ubd_mask", "def_mask")

    def __init__(self, ubd_mask, def_mask):
        self.ubd_mask = ubd_mask
        self.def_mask = def_mask


@st.composite
def cut_graphs(draw):
    """An arbitrary digraph (cycles and self-loops included) with
    random blocked blocks and random per-block UBD/DEF masks."""
    n = draw(st.integers(min_value=1, max_value=8))
    blocks = [_FakeBlock() for _ in range(n)]
    for src in range(n):
        for dst in draw(
            st.sets(st.integers(min_value=0, max_value=n - 1), max_size=3)
        ):
            blocks[src].successors.append(dst)
            blocks[dst].predecessors.append(src)
    blocked = draw(
        st.sets(st.integers(min_value=0, max_value=n - 1), max_size=n)
    )
    masks = st.integers(min_value=0, max_value=0xFF)
    local_sets = [
        _FakeLocal(draw(masks) << 2, draw(masks) << 2) for _ in range(n)
    ]
    target = draw(st.integers(min_value=0, max_value=n - 1))
    return blocks, local_sets, blocked, target


class TestBatchedEquivalence:
    """The batched labeler must agree with the per-target solver on
    arbitrary cut graphs — regions, converged triples, and labels."""

    @settings(max_examples=200, deadline=None)
    @given(cut_graphs())
    def test_batched_matches_per_target(self, data):
        blocks, local_sets, blocked, target = data
        labeler = BatchedLabeler(blocks, local_sets, blocked)

        region = labeler.region(target)
        assert region == backward_reachable(blocks, target, blocked)

        expected = solve_summary_subgraph(blocks, local_sets, region, blocked)
        solution = labeler.solve(region)
        assert set(solution) == set(expected)
        for block, triple in expected.items():
            assert solution[block] == (
                triple.may_use, triple.may_def, triple.must_def
            )

        starts = sorted(region)[:2]
        assert labeler.label(solution, starts) == label_from_starts(
            expected, starts
        )

    @settings(max_examples=50, deadline=None)
    @given(cut_graphs(), st.randoms(use_true_random=False))
    def test_overlapping_regions_share_memo(self, data, rng):
        """Solving every target in random order — regions overlap, so
        the transfer memo is exercised — never changes any answer."""
        blocks, local_sets, blocked, _target = data
        labeler = BatchedLabeler(blocks, local_sets, blocked)
        targets = list(range(len(blocks)))
        rng.shuffle(targets)
        for target in targets:
            region = labeler.region(target)
            expected = solve_summary_subgraph(
                blocks, local_sets, region, blocked
            )
            solution = labeler.solve(region)
            for block, triple in expected.items():
                assert solution[block] == (
                    triple.may_use, triple.may_def, triple.must_def
                )


class TestInternTriple:
    def test_returns_canonical_instance(self):
        a = intern_triple(0b1, 0b10, 0b10)
        b = intern_triple(0b1, 0b10, 0b10)
        assert a is b
        assert a == SummaryTriple(may_use=0b1, may_def=0b10, must_def=0b10)

    def test_distinct_masks_distinct_triples(self):
        assert intern_triple(1, 0, 0) is not intern_triple(0, 1, 0)


class TestSummaryTriple:
    def test_consistency(self):
        assert SummaryTriple(may_def=0b11, must_def=0b01).is_consistent()
        assert not SummaryTriple(may_def=0b01, must_def=0b10).is_consistent()

    def test_accessors(self):
        triple = SummaryTriple(may_use=0b1, may_def=0b10, must_def=0b10)
        assert triple.may_use_set == RegisterSet([0])
        assert triple.may_def_set == RegisterSet([1])
        assert triple.must_def_set == RegisterSet([1])

    def test_label_from_starts_intersects_must(self):
        solution = {
            0: SummaryTriple(may_use=0b1, may_def=0b1, must_def=0b11),
            1: SummaryTriple(may_use=0b10, may_def=0b10, must_def=0b01),
        }
        label = label_from_starts(solution, [0, 1])
        assert label.may_use == 0b11
        assert label.may_def == 0b11
        assert label.must_def == 0b01

    def test_label_from_starts_empty(self):
        assert label_from_starts({}, [0]) == SummaryTriple()
