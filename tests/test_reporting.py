"""Tests for stage timing, the memory model, and table rendering."""

import time

import pytest

from tests.facade import analyze_program
from repro.reporting.memory import (
    DEFAULT_MODEL,
    MemoryModel,
    cfg_analysis_memory,
    memory_breakdown,
    psg_analysis_memory,
)
from repro.reporting.metrics import STAGE_NAMES, StageTimer, StageTimings
from repro.reporting.tables import format_markdown_table, format_table


class TestStageTimer:
    def test_accumulates(self):
        timer = StageTimer()
        with timer.stage("phase1"):
            time.sleep(0.002)
        with timer.stage("phase1"):
            time.sleep(0.002)
        assert timer.timings.phase1 >= 0.004

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError):
            with StageTimer().stage("nonsense"):
                pass

    def test_total_and_fractions(self):
        timings = StageTimings(
            cfg_build=1.0, initialization=1.0, psg_build=1.0, phase1=0.5,
            phase2=0.5,
        )
        assert timings.total == 4.0
        fractions = timings.fractions()
        assert fractions["cfg_build"] == 0.25
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_zero_total_fractions(self):
        assert all(v == 0.0 for v in StageTimings().fractions().values())

    def test_as_dict(self):
        d = StageTimings(phase1=2.0).as_dict()
        assert d["phase1"] == 2.0
        assert d["total"] == 2.0
        assert set(d) == set(STAGE_NAMES) | {"total"}

    def test_analysis_populates_all_stages(self, small_benchmark):
        analysis = analyze_program(small_benchmark)
        for stage in STAGE_NAMES:
            assert getattr(analysis.timings, stage) >= 0
        assert analysis.timings.total > 0


class TestMemoryModel:
    def test_psg_memory_positive_and_composed(self, small_benchmark):
        analysis = analyze_program(small_benchmark)
        total = psg_analysis_memory(analysis.psg, analysis.cfgs)
        breakdown = memory_breakdown(analysis.psg, analysis.cfgs)
        assert total == sum(breakdown.values())
        assert breakdown["psg_nodes"] == (
            analysis.psg.node_count * DEFAULT_MODEL.psg_node_bytes
        )

    def test_cfg_mode_blocks_cost_more(self):
        """§4: a CFG block holds 8 sets vs a PSG node's 3."""
        assert (
            DEFAULT_MODEL.block_bytes_cfg_mode
            > DEFAULT_MODEL.block_bytes_psg_mode
        )
        assert DEFAULT_MODEL.block_bytes_cfg_mode == 8 * 8 + 16

    def test_custom_model(self, small_benchmark):
        analysis = analyze_program(small_benchmark)
        doubled = MemoryModel(
            psg_node_bytes=2 * DEFAULT_MODEL.psg_node_bytes,
            psg_edge_bytes=2 * DEFAULT_MODEL.psg_edge_bytes,
            block_bytes_psg_mode=2 * DEFAULT_MODEL.block_bytes_psg_mode,
            block_bytes_cfg_mode=2 * DEFAULT_MODEL.block_bytes_cfg_mode,
            arc_bytes=2 * DEFAULT_MODEL.arc_bytes,
        )
        assert psg_analysis_memory(analysis.psg, analysis.cfgs, doubled) == (
            2 * psg_analysis_memory(analysis.psg, analysis.cfgs)
        )

    def test_cfg_analysis_memory(self, small_benchmark):
        analysis = analyze_program(small_benchmark)
        calls = sum(len(cfg.call_sites) for cfg in analysis.cfgs.values())
        memory = cfg_analysis_memory(analysis.cfgs, 2 * calls)
        assert memory > psg_analysis_memory(analysis.psg, analysis.cfgs) / 2


class TestTables:
    def test_alignment(self):
        text = format_table(
            ["Benchmark", "Time"],
            [["compress", 0.05], ["gcc", 1.9]],
            title="Table 2",
        )
        lines = text.splitlines()
        assert lines[0] == "Table 2"
        # Title, header, separator, then the rows.
        assert "compress" in lines[3]
        # Numeric column right-aligned.
        assert lines[3].rstrip().endswith("0.05")

    def test_thousands_and_precision(self):
        text = format_table(["n", "v"], [["x", 1234567], ["y", 12.345]])
        assert "1,234,567" in text
        assert "12.3" in text

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_markdown(self):
        text = format_markdown_table(["a", "b"], [[1, 2]])
        assert text.splitlines()[0] == "| a | b |"
        assert text.splitlines()[1] == "|---|---|"
        assert "| 1 | 2 |" in text
