"""Tests for the assembler (programmatic API and text syntax)."""

import pytest

from repro.isa.encoding import decode_stream
from repro.isa.instructions import Instruction, Opcode
from repro.program.asm import Assembler, AssemblyError, assemble
from repro.program.disasm import disassemble_image
from repro.program.image import DEFAULT_DATA_BASE, DEFAULT_TEXT_BASE


def decode(image):
    return decode_stream(image.text)


class TestProgrammaticApi:
    def test_simple_routine(self):
        asm = Assembler()
        asm.routine("main").op("addq", "t0", "t1", "t2").halt()
        image = asm.build()
        instructions = decode(image)
        assert instructions[0].opcode is Opcode.ADDQ
        assert instructions[1].opcode is Opcode.HALT
        assert image.symbol_by_name("main").size == 8

    def test_branch_resolution_forward_and_backward(self):
        asm = Assembler()
        asm.routine("main")
        asm.label("top")
        asm.op("subq", "t0", 1, "t0")
        asm.branch("bgt", "t0", "top")      # backward
        asm.branch("beq", "t0", "done")     # forward
        asm.op("addq", "t0", 1, "t0")
        asm.label("done")
        asm.halt()
        instructions = decode(asm.build())
        assert instructions[1].displacement == -2
        assert instructions[2].displacement == 1

    def test_bsr_targets_routine(self):
        asm = Assembler()
        asm.routine("main").bsr("callee").halt()
        asm.routine("callee").ret()
        instructions = decode(asm.build())
        # bsr at index 0, callee at index 2 -> displacement 1
        assert instructions[0].opcode is Opcode.BSR
        assert instructions[0].displacement == 1

    def test_li_small_constant_single_lda(self):
        asm = Assembler()
        asm.routine("main").li("t0", 41).halt()
        instructions = decode(asm.build())
        assert instructions[0].opcode is Opcode.LDA
        assert instructions[0].displacement == 41
        assert len(instructions) == 2

    def test_li_large_constant_pair(self):
        asm = Assembler()
        asm.routine("main").li("t0", 0x12345).halt()
        instructions = decode(asm.build())
        assert instructions[0].opcode is Opcode.LDAH
        assert instructions[1].opcode is Opcode.LDA
        high, low = instructions[0].displacement, instructions[1].displacement
        assert (high << 16) + low == 0x12345

    def test_li_symbol_resolves_to_routine_address(self):
        asm = Assembler()
        asm.routine("main").li("pv", "&callee").jsr("pv").halt()
        asm.routine("callee").ret()
        image = asm.build()
        instructions = decode(image)
        high, low = instructions[0].displacement, instructions[1].displacement
        assert (high << 16) + low == image.symbol_by_name("callee").address

    def test_li_negative_low_split(self):
        value = 0x1FFFF  # low part sign-extends negative
        asm = Assembler()
        asm.routine("main").li("t0", value).halt()
        instructions = decode(asm.build())
        high, low = instructions[0].displacement, instructions[1].displacement
        assert (high << 16) + low == value
        assert low < 0

    def test_jump_table(self):
        asm = Assembler()
        asm.routine("main")
        asm.jump_table("T", ["a", "b"])
        asm.jmp("t0", table="T")
        asm.label("a").op("addq", "t0", 1, "t0").halt()
        asm.label("b").halt()
        image = asm.build()
        assert len(image.jump_tables) == 1
        info = image.jump_tables[0]
        targets = image.read_jump_table(info)
        assert targets == (
            image.text_base + 4,  # label a
            image.text_base + 12,  # label b
        )

    def test_data_quads(self):
        asm = Assembler()
        asm.data_quads("tbl", [1, 2, 3])
        asm.routine("main").li("t0", "@tbl").halt()
        image = asm.build()
        assert image.data[:8] == (1).to_bytes(8, "little")
        instructions = decode(image)
        high, low = instructions[0].displacement, instructions[1].displacement
        assert (high << 16) + low == DEFAULT_DATA_BASE

    def test_data_code_pointers_resolve_and_relocate(self):
        asm = Assembler()
        asm.data_code_pointers("fns", ["callee"])
        asm.routine("main").halt()
        asm.routine("callee").ret()
        image = asm.build()
        pointer = int.from_bytes(image.data[:8], "little")
        assert pointer == image.symbol_by_name("callee").address
        assert image.data_relocations == [DEFAULT_DATA_BASE]

    def test_exported_routine(self):
        asm = Assembler()
        asm.routine("main", exported=True).halt()
        assert asm.build().symbol_by_name("main").exported


class TestFarCalls:
    def test_out_of_range_bsr_gets_a_veneer(self):
        """A call beyond ±2^20 instructions becomes li pv + jsr."""
        asm = Assembler()
        asm.routine("main")
        asm.bsr("far")
        asm.halt()
        asm.routine("pad")
        # Over a million filler instructions between caller and callee.
        for _ in range((1 << 20) + 8):
            asm.op("bis", "zero", "zero", "zero")
        asm.ret()
        asm.routine("far")
        asm.op("addq", "a0", 1, "v0")
        asm.ret()
        image = asm.build()
        instructions = decode(image)
        # The bsr became ldah/lda/jsr.
        assert instructions[0].opcode is Opcode.LDAH
        assert instructions[1].opcode is Opcode.LDA
        assert instructions[2].opcode is Opcode.JSR
        # And the veneer targets the right routine.
        from repro.program.disasm import disassemble_image
        from repro.cfg.build import build_cfg

        program = disassemble_image(image)
        cfg = build_cfg(program, program.routine("main"))
        assert cfg.call_sites[0].callee == "far"

    def test_near_calls_unchanged(self):
        asm = Assembler()
        asm.routine("main")
        asm.bsr("near")
        asm.halt()
        asm.routine("near")
        asm.ret()
        instructions = decode(asm.build())
        assert instructions[0].opcode is Opcode.BSR


class TestProgrammaticErrors:
    def test_instruction_before_routine(self):
        with pytest.raises(AssemblyError):
            Assembler().halt()

    def test_duplicate_routine(self):
        asm = Assembler().routine("f")
        asm.halt()
        with pytest.raises(AssemblyError):
            asm.routine("f")

    def test_duplicate_label(self):
        asm = Assembler().routine("f").label("x")
        with pytest.raises(AssemblyError):
            asm.label("x")

    def test_unknown_label(self):
        asm = Assembler().routine("f")
        asm.br("nowhere")
        asm.halt()
        with pytest.raises(AssemblyError, match="unknown label"):
            asm.build()

    def test_call_to_unknown_routine(self):
        asm = Assembler().routine("f")
        asm.bsr("ghost")
        asm.halt()
        with pytest.raises(AssemblyError, match="unknown routine"):
            asm.build()

    def test_empty_routine(self):
        asm = Assembler().routine("a")
        asm.routine("b")
        asm.halt()
        with pytest.raises(AssemblyError, match="empty"):
            asm.build()

    def test_empty_program(self):
        with pytest.raises(AssemblyError):
            Assembler().build()

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError):
            Assembler().routine("f").op("frobnicate", "t0", "t1", "t2")

    def test_wrong_format_via_op(self):
        with pytest.raises(AssemblyError):
            Assembler().routine("f").op("ldq", "t0", "t1", "t2")

    def test_unknown_entry(self):
        asm = Assembler().routine("f")
        asm.halt()
        with pytest.raises(AssemblyError, match="entry"):
            asm.build(entry="ghost")

    def test_empty_jump_table(self):
        with pytest.raises(AssemblyError):
            Assembler().routine("f").jump_table("T", [])


class TestTextSyntax:
    def test_full_program(self, quick_program):
        assert quick_program.routine_count == 2
        assert quick_program.entry == "main"

    def test_comments_and_blank_lines(self):
        image = assemble(
            """
            ; leading comment
            .routine main export

                halt      ; trailing comment
            # hash comment
            """
        )
        assert decode(image)[0].opcode is Opcode.HALT

    def test_label_with_instruction_on_same_line(self):
        image = assemble(
            """
            .routine main
            top: subq t0, #1, t0
                bgt t0, top
                halt
            """
        )
        assert decode(image)[1].displacement == -2

    def test_literal_operand(self):
        image = assemble(".routine m\n addq t0, #200, t1\n halt\n")
        assert decode(image)[0].literal == 200

    def test_memory_operands(self):
        image = assemble(".routine m\n ldq t0, -8(sp)\n stq t0, 16(sp)\n halt\n")
        instructions = decode(image)
        assert instructions[0].displacement == -8
        assert instructions[1].displacement == 16

    def test_memory_operand_without_displacement(self):
        image = assemble(".routine m\n ldq t0, (sp)\n halt\n")
        assert decode(image)[0].displacement == 0

    def test_jsr_and_ret_forms(self):
        image = assemble(
            """
            .routine m
                jsr (pv)
                jsr ra, (pv)
                ret (ra)
            """
        )
        instructions = decode(image)
        assert instructions[0].opcode is Opcode.JSR
        assert instructions[1].opcode is Opcode.JSR
        assert instructions[2].opcode is Opcode.RET

    def test_jmp_with_table(self):
        image = assemble(
            """
            .routine m
                jmp t0, [T]
            a:  halt
            b:  halt
            .jumptable T: a, b
            """
        )
        assert len(image.jump_tables) == 1
        assert image.read_jump_table(image.jump_tables[0]) == (
            image.text_base + 4,
            image.text_base + 8,
        )

    def test_jmp_unknown_target(self):
        image = assemble(".routine m\n jmp (t0)\n halt\n")
        assert image.jump_tables == []

    def test_data_directive(self):
        image = assemble(
            """
            .data vals: 1, 0x10, 3
            .routine m
                li t0, @vals
                ldq t1, 8(t0)
                halt
            """
        )
        assert image.data[8:16] == (0x10).to_bytes(8, "little")

    def test_entry_directive(self):
        image = assemble(
            """
            .entry start
            .routine other
                halt
            .routine start
                halt
            """
        )
        assert image.entry_point == image.symbol_by_name("start").address

    def test_error_reports_line_number(self):
        with pytest.raises(AssemblyError, match="line 3"):
            assemble(".routine m\n halt\n bogus t0\n")

    def test_li_ampersand_and_at(self):
        program = disassemble_image(
            assemble(
                """
                .data d: 7
                .routine m
                    li t0, &m
                    li t1, @d
                    halt
                """
            )
        )
        assert program.routine_count == 1
