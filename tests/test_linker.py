"""Tests for the linker: separately assembled modules -> one image."""

import pytest

from tests.facade import analyze_program
from repro.program.disasm import disassemble_image
from repro.program.linker import LinkError, ObjectModule, link_modules
from repro.sim.interpreter import run_program


def _main_module():
    main = ObjectModule("app")
    main.extern("inc")
    main.routine("main", exported=True)
    main.li("a0", 41)
    main.bsr("inc")                 # cross-module call
    main.op("bis", "zero", "v0", "a0")
    main.output()
    main.halt()
    return main


def _lib_module():
    lib = ObjectModule("lib")
    lib.routine("inc")
    lib.op("addq", "a0", 1, "v0")
    lib.ret()
    return lib


class TestBasicLinking:
    def test_cross_module_call(self):
        image = link_modules([_main_module(), _lib_module()], entry="main")
        program = disassemble_image(image)
        assert program.routine_names() == ["main", "inc"]
        assert run_program(program).outputs == [42]

    def test_module_order_is_layout_order(self):
        image = link_modules([_lib_module(), _main_module()], entry="main")
        program = disassemble_image(image)
        assert program.routine_names() == ["inc", "main"]
        assert run_program(program).outputs == [42]

    def test_cross_module_interprocedural_facts(self):
        """The whole point: facts invisible before linking exist after."""
        image = link_modules([_main_module(), _lib_module()], entry="main")
        program = disassemble_image(image)
        analysis = analyze_program(program)
        site = analysis.summary("main").call_sites[0]
        assert site.site.callee == "inc"
        assert site.used.names() == {"a0", "ra"}
        assert site.defined.names() == {"v0"}

    def test_object_module_cannot_build_standalone(self):
        with pytest.raises(LinkError, match="standalone"):
            _main_module().build()


class TestSymbolResolution:
    def test_unresolved_external_rejected(self):
        main = _main_module()  # declares extern inc, nobody defines it
        with pytest.raises(LinkError, match="unresolved external 'inc'"):
            link_modules([main], entry="main")

    def test_duplicate_definition_rejected(self):
        other = ObjectModule("dup")
        other.routine("inc")
        other.ret()
        with pytest.raises(LinkError, match="defined in both"):
            link_modules([_lib_module(), other], entry="inc")

    def test_missing_entry_rejected(self):
        with pytest.raises(LinkError, match="entry routine"):
            link_modules([_lib_module()], entry="main")

    def test_empty_link_rejected(self):
        with pytest.raises(LinkError, match="nothing"):
            link_modules([], entry="main")


class TestDataMerging:
    def test_data_labels_are_module_scoped(self):
        a = ObjectModule("a")
        a.data_quads("k", [111])
        a.extern("get_b")
        a.routine("main", exported=True)
        a.li("t0", "@k")
        a.memory("ldq", "a0", 0, "t0")
        a.output()
        a.bsr("get_b")
        a.op("bis", "zero", "v0", "a0")
        a.output()
        a.halt()

        b = ObjectModule("b")
        b.data_quads("k", [222])      # same label name, different module
        b.routine("get_b")
        b.li("t0", "@k")
        b.memory("ldq", "v0", 0, "t0")
        b.ret()

        image = link_modules([a, b], entry="main")
        result = run_program(disassemble_image(image))
        assert result.outputs == [111, 222]

    def test_pointer_tables_relocated_across_modules(self):
        a = ObjectModule("a")
        a.extern("callee")
        a.data_code_pointers("fns", ["callee"])
        a.routine("main", exported=True)
        a.li("t0", "@fns")
        a.memory("ldq", "pv", 0, "t0")
        a.jsr("pv")
        a.op("bis", "zero", "v0", "a0")
        a.output()
        a.halt()

        b = ObjectModule("b")
        b.routine("callee")
        b.li("v0", 9)
        b.ret()

        image = link_modules([a, b], entry="main")
        program = disassemble_image(image)
        assert run_program(program).outputs == [9]
        assert program.data_relocations  # the pointer is relocatable

    def test_cross_module_hints(self):
        a = ObjectModule("a")
        a.extern("impl1")
        a.extern("impl2")
        a.routine("main", exported=True)
        a.li("pv", "&impl1")
        a.jsr("pv", hint_targets=["impl1", "impl2"])
        a.op("bis", "zero", "v0", "a0")
        a.output()
        a.halt()

        b = ObjectModule("b")
        b.routine("impl1")
        b.li("v0", 1)
        b.ret()
        b.routine("impl2")
        b.li("v0", 2)
        b.ret()

        program = disassemble_image(link_modules([a, b], entry="main"))
        analysis = analyze_program(program)
        site = analysis.summary("main").call_sites[0]
        assert set(site.site.targets) == {"impl1", "impl2"}


class TestJumpTables:
    def test_jump_table_survives_linking(self):
        a = ObjectModule("a")
        a.routine("main", exported=True)
        a.li("t0", 1)
        a.li("t2", "&T")
        a.op("sll", "t0", 3, "t1")
        a.op("addq", "t2", "t1", "t2")
        a.memory("ldq", "t2", 0, "t2")
        a.jump_table("T", ["c0", "c1"])
        a.jmp("t2", table="T")
        a.label("c0")
        a.li("a0", 10)
        a.output()
        a.halt()
        a.label("c1")
        a.li("a0", 20)
        a.output()
        a.halt()

        filler = ObjectModule("pad")  # shifts a's layout when first
        filler.routine("pad")
        filler.li("v0", 0)
        filler.ret()

        program = disassemble_image(link_modules([filler, a], entry="main"))
        assert run_program(program).outputs == [20]

    def test_duplicate_table_names_rejected(self):
        def module(name):
            m = ObjectModule(name)
            m.routine(f"r_{name}")
            m.jump_table("T", ["x"])
            m.label("x")
            m.jmp("t0", table="T")
            return m

        with pytest.raises(LinkError, match="jump table"):
            link_modules([module("a"), module("b")], entry="r_a")


class TestLargerLink:
    def test_three_modules(self):
        mods = []
        main = ObjectModule("m0")
        main.extern("f1")
        main.extern("f2")
        main.routine("main", exported=True)
        main.li("a0", 5)
        main.bsr("f1")
        main.op("bis", "zero", "v0", "a0")
        main.output()
        main.halt()
        mods.append(main)
        m1 = ObjectModule("m1")
        m1.extern("f2")
        m1.routine("f1")
        m1.memory("lda", "sp", -16, "sp")
        m1.memory("stq", "ra", 0, "sp")
        m1.bsr("f2")
        m1.op("addq", "v0", 1, "v0")
        m1.memory("ldq", "ra", 0, "sp")
        m1.memory("lda", "sp", 16, "sp")
        m1.ret()
        mods.append(m1)
        m2 = ObjectModule("m2")
        m2.routine("f2")
        m2.op("mulq", "a0", 2, "v0")
        m2.ret()
        mods.append(m2)
        program = disassemble_image(link_modules(mods, entry="main"))
        assert run_program(program).outputs == [11]  # 5*2 + 1
        # And the optimizer works on the linked artifact.
        from tests.facade import optimize_program

        result = optimize_program(program, verify=True)
        assert result.behaviour_preserved()
