"""Tests for client-side liveness with call summaries (§2)."""

from repro.cfg.build import build_cfg
from repro.dataflow.liveness import (
    SiteEffect,
    effective_gen_kill,
    instruction_liveness,
    solve_liveness,
)
from repro.dataflow.regset import RegisterSet, TRACKED_MASK, mask_of
from repro.isa.instructions import Instruction, Opcode
from repro.program.asm import assemble
from repro.program.disasm import disassemble_image


def names(mask):
    return RegisterSet.from_mask(mask).names()


def cfg_of(source, routine="main"):
    program = disassemble_image(assemble(source))
    return build_cfg(program, program.routine(routine))


class TestEffectiveGenKill:
    def test_plain_instruction(self):
        gen, kill = effective_gen_kill(Instruction(Opcode.ADDQ, ra=1, rb=2, rc=3))
        assert names(gen) == {"t0", "t1"}
        assert names(kill) == {"t2"}

    def test_call_with_site_effect(self):
        site = SiteEffect(gen=mask_of(["a0"]), kill=mask_of(["v0"]))
        gen, kill = effective_gen_kill(
            Instruction(Opcode.BSR, ra=26, displacement=0), site
        )
        assert names(gen) == {"a0"}       # call-used
        assert names(kill) == {"v0", "ra"}  # call-defined + link register

    def test_jsr_reads_target_register(self):
        site = SiteEffect(gen=0, kill=0)
        gen, _kill = effective_gen_kill(
            Instruction(Opcode.JSR, ra=26, rb=27), site
        )
        assert "pv" in names(gen)


class TestSolveLiveness:
    def test_exit_live_seeds_liveness(self):
        cfg = cfg_of(
            """
            .routine main
                lda t0, 1(zero)
                ret (ra)
            """
        )
        exit_block = cfg.return_exits()[0]
        result = solve_liveness(cfg, {}, {exit_block: mask_of(["t0"])})
        # t0 defined inside, so not live at entry; ra is (the ret reads it).
        assert "t0" not in names(result.live_in[0])
        assert "ra" in names(result.live_in[0])
        assert "t0" in names(result.live_out[exit_block])

    def test_halt_exit_has_nothing_live(self):
        cfg = cfg_of(".routine main\n halt\n")
        result = solve_liveness(cfg, {}, {})
        assert result.live_out[0] == 0

    def test_unknown_jump_exit_everything_live(self):
        cfg = cfg_of(".routine main\n jmp (t0)\n")
        result = solve_liveness(cfg, {}, {})
        assert result.live_out[0] == TRACKED_MASK

    def test_call_summary_gen_kill(self):
        cfg = cfg_of(
            """
            .routine main
                lda t5, 1(zero)
                bsr ra, f
                halt
            .routine f
                ret (ra)
            """
        )
        call_block = cfg.call_sites[0].block
        # Callee uses a0 and defines v0.
        effects = {call_block: SiteEffect(gen=mask_of(["a0"]), kill=mask_of(["v0"]))}
        result = solve_liveness(cfg, effects, {})
        assert "a0" in names(result.live_in[0])
        # t5's def is dead (nothing uses it) but the def itself doesn't
        # make t5 live-in.
        assert "t5" not in names(result.live_in[0])

    def test_branch_join_unions_liveness(self):
        cfg = cfg_of(
            """
            .routine main
                beq t0, other
                bis zero, t1, a0
                halt
            other:
                bis zero, t2, a0
                halt
            """
        )
        live_entry = names(solve_liveness(cfg, {}, {}).live_in[0])
        assert {"t0", "t1", "t2"} <= live_entry


class TestInstructionLiveness:
    def test_per_instruction_walk(self):
        cfg = cfg_of(
            """
            .routine main
                lda t0, 1(zero)
                addq t0, #1, t1
                bis zero, t1, a0
                output
                halt
            """
        )
        result = solve_liveness(cfg, {}, {})
        live_after = instruction_liveness(result, 0, {})
        assert len(live_after) == 5
        assert "t0" in names(live_after[0])   # t0 still needed by addq
        assert "t0" not in names(live_after[1])
        assert "a0" in names(live_after[2])   # output reads a0
        assert live_after[4] == 0             # after halt
