#!/usr/bin/env python
"""Validate a ``spike-analyze analyze --trace`` export (CI smoke check).

Usage::

    python tools/validate_trace.py trace.json [--min-pids N] \
        [--require-span NAME]... [--stats stats.json]

Checks the file is a well-formed Chrome trace-event document:

* ``traceEvents`` is a list of ``X`` (complete) and ``M`` (metadata)
  events with the required fields, numeric non-negative ``ts``/``dur``;
* at least ``--min-pids`` distinct pids contributed duration events
  (``--min-pids 3`` on a ``--jobs 2`` run asserts spans were merged
  from two real worker processes plus the parent);
* every pid has a ``process_name`` metadata event;
* every ``--require-span NAME`` (repeatable) matches at least one
  ``X`` event — e.g. ``--require-span frontend --require-span
  frontend.chunk`` proves the parallel front end actually ran and its
  worker spans were merged back.

With ``--stats``, also validates the ``--json`` stats payload captured
from the same run: the ``counters`` object must carry the seeded cache
verdict keys and per-phase solver iteration counts.

Exits 0 when everything holds, 1 with a message otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List


def fail(message: str) -> "None":
    print(f"trace validation failed: {message}", file=sys.stderr)
    raise SystemExit(1)


def validate_trace(
    document: Dict[str, Any],
    min_pids: int,
    require_spans: List[str] | None = None,
) -> None:
    if not isinstance(document, dict) or "traceEvents" not in document:
        fail("top level must be an object with a traceEvents list")
    events = document["traceEvents"]
    if not isinstance(events, list) or not events:
        fail("traceEvents must be a non-empty list")
    duration_pids = set()
    named_pids = set()
    span_names = set()
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            fail(f"event {index} is not an object")
        phase = event.get("ph")
        if phase not in ("X", "M"):
            fail(f"event {index} has unsupported ph {phase!r}")
        if "pid" not in event:
            fail(f"event {index} has no pid")
        if phase == "X":
            for field in ("name", "ts", "dur", "tid"):
                if field not in event:
                    fail(f"X event {index} missing {field!r}")
            for field in ("ts", "dur"):
                value = event[field]
                if not isinstance(value, (int, float)) or value < 0:
                    fail(f"X event {index} has bad {field}: {value!r}")
            duration_pids.add(event["pid"])
            span_names.add(event["name"])
        elif event.get("name") == "process_name":
            named_pids.add(event["pid"])
    missing = [
        name for name in (require_spans or []) if name not in span_names
    ]
    if missing:
        fail(f"required spans absent from the trace: {missing}")
    if len(duration_pids) < min_pids:
        fail(
            f"expected duration events from >= {min_pids} processes, "
            f"got {len(duration_pids)} ({sorted(duration_pids)})"
        )
    unnamed = duration_pids - named_pids
    if unnamed:
        fail(f"pids without process_name metadata: {sorted(unnamed)}")
    print(
        f"trace ok: {sum(1 for e in events if e.get('ph') == 'X')} spans "
        f"from {len(duration_pids)} processes"
    )


REQUIRED_COUNTERS = [
    "cache.hit",
    "cache.miss",
    "cache.stale",
    "cache.write",
    "frontend.routines",
    "solver.iterations{phase=phase1}",
    "solver.iterations{phase=phase2}",
]


def validate_stats(payload: Dict[str, Any]) -> None:
    counters = payload.get("counters")
    if not isinstance(counters, dict):
        fail("--json payload has no counters object")
    for name in REQUIRED_COUNTERS:
        if name not in counters:
            fail(f"counters missing {name!r}")
    for phase in ("phase1", "phase2"):
        if counters[f"solver.iterations{{phase={phase}}}"] <= 0:
            fail(f"no {phase} solver iterations recorded")
    print(f"stats ok: {len(counters)} counters, required keys present")


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument(
        "--min-pids", type=int, default=1, metavar="N",
        help="require duration events from at least N distinct processes",
    )
    parser.add_argument(
        "--require-span", dest="require_spans", action="append",
        default=[], metavar="NAME",
        help="require an X event with this name (repeatable)",
    )
    parser.add_argument(
        "--stats", metavar="FILE", default=None,
        help="also validate a --json stats payload from the same run",
    )
    args = parser.parse_args(argv)
    with open(args.trace, "r", encoding="utf-8") as handle:
        validate_trace(json.load(handle), args.min_pids, args.require_spans)
    if args.stats:
        with open(args.stats, "r", encoding="utf-8") as handle:
            validate_stats(json.load(handle))
    return 0


if __name__ == "__main__":
    sys.exit(main())
