#!/usr/bin/env python
"""End-to-end smoke test of the ``spike-analyze serve`` daemon.

Launches the serve CLI as a real subprocess on a unix socket, posts a
Table-2 image twice, and checks the full service contract:

* both responses carry a valid schema-1 payload (``validate_payload``);
* the second POST is served warm — asserted three ways: the
  ``X-Repro-Warm`` header, byte-identical payloads, and the
  ``service.session.hit`` / ``service.result.warm`` counters on
  ``GET /metricsz``;
* SIGTERM drains the daemon: it exits 0 and the socket is removed.

Usage::

    PYTHONPATH=src python tools/service_smoke.py [--benchmark compress]
        [--scale 0.1] [--timeout 120]

Exits non-zero with a one-line reason on any contract violation, so CI
can run it as a single step.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from typing import List

from repro.api import SCHEMA_VERSION, validate_payload
from repro.service import ServiceClient, ServiceError
from repro.workloads.generator import GeneratorConfig, generate_image
from repro.workloads.shapes import shape_by_name


def fail(message: str) -> None:
    print(f"service smoke FAILED: {message}", file=sys.stderr)
    sys.exit(1)


def wait_for_ready(client: ServiceClient, deadline: float) -> None:
    while time.monotonic() < deadline:
        try:
            response = client.healthz()
        except (ServiceError, OSError):
            time.sleep(0.05)
            continue
        if response.status == 200:
            return
        time.sleep(0.05)
    fail("daemon did not become healthy before the timeout")


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--benchmark", default="compress",
        help="Table-2 shape to post (default: compress)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.1,
        help="shape scale factor (default: 0.1)",
    )
    parser.add_argument(
        "--timeout", type=float, default=120.0,
        help="overall deadline in seconds (default: 120)",
    )
    args = parser.parse_args(argv)
    deadline = time.monotonic() + args.timeout

    shape = shape_by_name(args.benchmark)
    if args.scale != 1.0:
        shape = shape.scaled(args.scale)
    image_bytes = generate_image(shape, GeneratorConfig()).to_bytes()
    print(f"image: {args.benchmark} x{args.scale}, {len(image_bytes)} bytes")

    with tempfile.TemporaryDirectory(prefix="service-smoke-") as tmp:
        socket_path = os.path.join(tmp, "svc.sock")
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--socket", socket_path,
                "--cache-dir", os.path.join(tmp, "cache"),
            ],
        )
        try:
            client = ServiceClient.unix(socket_path)
            wait_for_ready(client, deadline)

            cold = client.analyze(image_bytes)
            if cold.status != 200:
                fail(f"cold analyze returned {cold.status}: {cold.payload}")
            if cold.warm:
                fail("first analyze of a fresh daemon reported warm")
            try:
                validate_payload(cold.payload)
            except ValueError as error:
                fail(f"cold payload is not valid schema 1: {error}")
            if cold.payload["schema"] != SCHEMA_VERSION:
                fail(f"unexpected schema version: {cold.payload['schema']}")
            print(
                f"cold: kind={cold.payload['kind']} "
                f"routines={cold.payload['routines']} "
                f"digest={cold.payload['summaries_crc64']} "
                f"run-id={cold.run_id}"
            )

            warm = client.analyze(image_bytes)
            if warm.status != 200:
                fail(f"warm analyze returned {warm.status}: {warm.payload}")
            if not warm.warm:
                fail("repeat analyze of the unchanged image was not warm")
            if warm.payload != cold.payload:
                fail("warm payload differs from the cold payload")
            print(f"warm: served retained payload, run-id={warm.run_id}")

            metrics = client.metricsz()
            counters = metrics["counters"]
            if counters.get("service.session.hit", 0) < 1:
                fail(f"no session hit recorded in /metricsz: {counters}")
            if counters.get("service.result.warm", 0) < 1:
                fail(f"no warm result recorded in /metricsz: {counters}")
            sessions = metrics["registry"]["sessions"]
            if sessions != 1:
                fail(f"expected exactly one retained session, got {sessions}")
            print(
                "metricsz: "
                + ", ".join(
                    f"{name}={counters[name]}"
                    for name in sorted(counters)
                    if name.startswith("service.")
                )
            )

            process.send_signal(signal.SIGTERM)
            exit_code = process.wait(
                timeout=max(1.0, deadline - time.monotonic())
            )
            if exit_code != 0:
                fail(f"daemon exited {exit_code} after SIGTERM")
            if os.path.exists(socket_path):
                fail("daemon left its socket behind after drain")
            print("drain: daemon exited 0, socket removed")
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)

    print("service smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
