#!/usr/bin/env python
"""CI smoke: a seeded load-driver burst against a real serve process.

Launches ``spike-analyze serve`` as a subprocess on a unix socket,
fires a short mixed warm/cold burst (uniform + edit-replay engines,
≥50 requests total) through :mod:`repro.workloads.driver`, then checks
the observability contract end to end:

* zero request errors, and the server's ``service.request.seconds``
  histogram count equals the number of requests the driver sent —
  exactly;
* ``/healthz`` reports zero in-flight requests and a positive
  retained-session count once the burst completes;
* ``/metricsz?format=prometheus`` passes ``tools/validate_prometheus``
  (cumulative ``le``-ordered buckets, ``+Inf`` present, ``_sum``/
  ``_count`` consistent);
* SIGTERM drains: the daemon exits 0, removes its socket, and its
  shutdown log line reports ``in_flight=0``.

Usage::

    PYTHONPATH=src python tools/load_smoke.py [--requests 60]
        [--benchmark compress] [--scale 0.15] [--timeout 240]
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time
from typing import List

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from validate_prometheus import validate  # noqa: E402

from repro.service import ServiceClient, ServiceError  # noqa: E402
from repro.workloads.driver import (  # noqa: E402
    EditReplayEngine,
    ImageSpec,
    UniformEngine,
    Workload,
    record_edit_trace,
)


def fail(message: str) -> None:
    print(f"load smoke FAILED: {message}", file=sys.stderr)
    sys.exit(1)


def wait_for_ready(client: ServiceClient, deadline: float) -> None:
    while time.monotonic() < deadline:
        try:
            if client.healthz().status == 200:
                return
        except (ServiceError, OSError):
            pass
        time.sleep(0.05)
    fail("daemon did not become healthy before the timeout")


def request_seconds_count(text: str) -> int:
    return sum(
        int(line.rsplit(" ", 1)[1])
        for line in text.splitlines()
        if line.startswith("service_request_seconds_count")
    )


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=60)
    parser.add_argument("--benchmark", default="compress")
    parser.add_argument("--scale", type=float, default=0.15)
    parser.add_argument("--timeout", type=float, default=240.0)
    args = parser.parse_args(argv)
    if args.requests < 50:
        fail("--requests must be >= 50 (the smoke is a burst, not a ping)")
    deadline = time.monotonic() + args.timeout

    spec = ImageSpec.from_benchmark(args.benchmark, scale=args.scale, seed=0)
    print(
        f"image: {args.benchmark} x{args.scale}, "
        f"{len(spec.image_bytes)} bytes, {len(spec.routines)} routines"
    )

    with tempfile.TemporaryDirectory(prefix="load-smoke-") as tmp:
        socket_path = os.path.join(tmp, "svc.sock")
        log_path = os.path.join(tmp, "serve.log")
        log_handle = open(log_path, "w", encoding="utf-8")
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli",
                "--log-level", "info", "serve",
                "--socket", socket_path,
                "--trace-dir", os.path.join(tmp, "traces"),
                "--trace-sample", "25",
            ],
            stderr=log_handle,
        )
        try:
            probe = ServiceClient.unix(socket_path)
            wait_for_ready(probe, deadline)

            def connect(tenant):
                return ServiceClient.unix(socket_path, tenant=tenant)

            uniform = Workload(
                UniformEngine(
                    [spec], seed=5, cold_fraction=0.15, query_fraction=0.4
                ),
                count=args.requests * 2 // 3,
                concurrency=4,
                rate=300.0,
                seed=5,
            )
            replay = Workload(
                EditReplayEngine(spec, record_edit_trace(spec, 8, seed=6)),
                count=args.requests - uniform.count,
                concurrency=2,
                seed=6,
            )
            reports = [uniform.run(connect), replay.run(connect)]
            sent = sum(report.count for report in reports)
            errors = sum(report.errors for report in reports)
            warm = sum(report.warm_count for report in reports)
            print(
                f"burst: {sent} requests ({warm} warm), {errors} errors, "
                f"p95 {max(r.quantile(0.95) for r in reports) * 1e3:.1f} ms"
            )
            if errors:
                fail(f"{errors} request errors during the burst")
            if not 0 < warm < sent:
                fail(f"expected a warm/cold mix, got {warm}/{sent} warm")

            exposition = probe.metricsz_prometheus()
            served = request_seconds_count(exposition)
            if served != sent:
                fail(
                    f"server histogram count {served} != "
                    f"{sent} requests sent"
                )
            try:
                validate(exposition)
            except AssertionError as error:
                fail(f"prometheus exposition invalid: {error}")
            print(f"metricsz: histogram count {served} == sent, "
                  "prometheus exposition valid")

            health = probe.healthz().payload
            if health.get("inflight") != 0:
                fail(f"in-flight not zero after burst: {health}")
            if not health.get("sessions"):
                fail(f"no retained sessions after burst: {health}")
            print(
                f"healthz: inflight=0, sessions={health['sessions']}, "
                f"uptime={health['uptime_seconds']}s"
            )

            process.send_signal(signal.SIGTERM)
            exit_code = process.wait(
                timeout=max(1.0, deadline - time.monotonic())
            )
            if exit_code != 0:
                fail(f"daemon exited {exit_code} after SIGTERM")
            if os.path.exists(socket_path):
                fail("daemon left its socket behind after drain")
            log_handle.flush()
            log_text = open(log_path, encoding="utf-8").read()
            if "in_flight=0" not in log_text:
                fail("shutdown log does not report in_flight=0")
            print("drain: daemon exited 0, socket removed, in_flight=0")
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)
            log_handle.close()

    print("load smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
