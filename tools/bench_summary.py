#!/usr/bin/env python
"""Aggregate ``benchmarks/results/*.json`` into one ``BENCH_<pr>.json``.

Usage::

    python tools/bench_summary.py [--results-dir DIR] [--pr N] [--out FILE]

Every benchmark session writes one machine-readable JSON per table into
``benchmarks/results/`` (see ``benchmarks/conftest.py``); this tool
folds them into a single top-level summary CI can upload and trend
tooling can diff across PRs::

    {
      "pr": 9,
      "benches": {
        "<table stem>": {"seconds": <total (s)-column seconds>,
                         "counters": {...obs registry snapshot...},
                         "histograms": {series: {count, sum,
                                                 p50, p95, p99}}},
        ...
      }
    }

The ``histograms`` block (present when a bench recorded latency
distributions — the service and load benches) carries the headline
quantiles, so trend tooling can diff tails, not just totals.

Exits 1 when the results directory holds no readable result files —
an empty summary usually means the bench job silently did nothing.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List


def _seconds_from_samples(payload: Dict[str, Any]) -> float:
    """Fallback wall time: the sum of every numeric sample value under
    a ``(s)``-suffixed key (the same rule the result writer applies to
    table columns)."""
    total = 0.0
    for sample in payload.get("samples", ()):
        if not isinstance(sample, dict):
            continue
        for key, value in sample.items():
            if "(s)" in key and isinstance(value, (int, float)):
                total += float(value)
    return total


def summarize(results_dir: Path, pr: int) -> Dict[str, Any]:
    benches: Dict[str, Any] = {}
    for path in sorted(results_dir.glob("*.json")):
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            print(f"skipping {path}: {error}", file=sys.stderr)
            continue
        stem = payload.get("bench", path.stem)
        seconds = payload.get("seconds", 0.0)
        if not seconds:
            # A missing or zero total silently erased figure_13's wall
            # time from past summaries (its table carried only percent
            # columns): re-derive from the samples and say so loudly.
            seconds = _seconds_from_samples(payload)
            print(
                f"WARNING: {path.name} reports no top-level seconds; "
                f"derived {seconds:.6f}s from its samples",
                file=sys.stderr,
            )
        entry: Dict[str, Any] = {
            "seconds": seconds,
            "counters": payload.get("counters", {}),
        }
        histograms = payload.get("histograms") or {}
        if histograms:
            # Carry the quantiles, drop the raw bucket maps: the
            # summary is for diffing across PRs, and p50/p95/p99 are
            # the numbers a regression shows up in.
            entry["histograms"] = {
                series: {
                    key: value
                    for key, value in data.items()
                    if key in ("count", "sum", "p50", "p95", "p99")
                }
                for series, data in histograms.items()
                if isinstance(data, dict)
            }
        benches[stem] = entry
    return {"pr": pr, "benches": benches}


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results-dir", type=Path, default=Path("benchmarks/results"),
        metavar="DIR", help="directory of per-table result JSON files",
    )
    parser.add_argument(
        "--pr", type=int, default=10, metavar="N",
        help="PR number recorded in the summary (default: 10)",
    )
    parser.add_argument(
        "--out", type=Path, default=None, metavar="FILE",
        help="output path (default: BENCH_<pr>.json in the cwd)",
    )
    args = parser.parse_args(argv)
    summary = summarize(args.results_dir, args.pr)
    if not summary["benches"]:
        print(
            f"no benchmark results found in {args.results_dir}",
            file=sys.stderr,
        )
        return 1
    out = args.out or Path(f"BENCH_{args.pr}.json")
    out.write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {out}: {len(summary['benches'])} benches")
    return 0


if __name__ == "__main__":
    sys.exit(main())
