#!/usr/bin/env python3
"""Validate Prometheus text exposition (stdin or a file) — stdlib only.

Checks: every line is a comment or a parseable sample; every sample
family has a ``# TYPE``; histogram buckets are cumulative, ``le``-sorted
and end in ``+Inf``; ``_count`` equals the ``+Inf`` bucket; ``_sum``
and ``_count`` are present.  Exit 0 on success, 1 with a message on the
first violation.  Used by tests and the CI ``load-smoke`` job.
"""
import re
import sys

SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"
    r'(\{(?:[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*",?)*\})? '
    r"(-?[0-9.eE+-]+|[+-]Inf|NaN)$"
)


def validate(text: str) -> None:
    types, hist = {}, {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            parts = line.split()
            if line.startswith("# TYPE"):
                types[parts[2]] = parts[3]
            continue
        match = SAMPLE.match(line)
        assert match, f"unparseable sample line: {line!r}"
        name, labels, value = match.group(1), match.group(2) or "", match.group(3)
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        family = base if types.get(base) == "histogram" else name
        assert family in types, f"sample {name!r} has no # TYPE line"
        if types.get(base) == "histogram" and name.endswith("_bucket"):
            le = re.search(r'le="([^"]*)"', labels)
            assert le, f"histogram bucket without le label: {line!r}"
            rest = re.sub(r',?le="[^"]*"', "", labels).replace("{}", "")
            series = hist.setdefault((base, rest), [])
            series.append((float(le.group(1).replace("+Inf", "inf")), float(value)))
        if types.get(base) == "histogram" and name.endswith("_count"):
            buckets = hist.get((base, labels), [])
            assert buckets and buckets[-1][0] == float("inf"), \
                f"{base}{labels}: bucket list missing +Inf"
            bounds = [b for b, _ in buckets]
            counts = [c for _, c in buckets]
            assert bounds == sorted(bounds), f"{base}{labels}: le not sorted"
            assert counts == sorted(counts), f"{base}{labels}: not cumulative"
            assert counts[-1] == float(value), \
                f"{base}{labels}: _count {value} != +Inf bucket {counts[-1]}"


if __name__ == "__main__":
    text = open(sys.argv[1]).read() if len(sys.argv) > 1 else sys.stdin.read()
    try:
        validate(text)
    except AssertionError as err:
        print(f"INVALID: {err}", file=sys.stderr)
        sys.exit(1)
    print("prometheus exposition OK")
