"""Command-line interface: ``spike-analyze``.

Subcommands:

* ``analyze <image>`` — run the interprocedural dataflow analysis on a
  SAX executable image and print per-routine summaries plus the §4
  measurements (sizes, stage times, memory); ``--jobs N`` solves on a
  sharded worker pool (bit-identical results), ``--incremental``
  warm-starts from (and refreshes) a ``SUM2`` cache sidecar, and
  ``--json`` emits one machine-readable stats object instead of text;
* ``disasm <image>`` — print a disassembly listing;
* ``generate <benchmark> -o <image>`` — write a synthetic benchmark
  image (see :mod:`repro.workloads`);
* ``optimize <image> -o <image>`` — run the Figure-1 optimization
  pipeline and write the rewritten image;
* ``query <image> <routine>`` — answer one routine's summary on
  demand, solving only its caller/callee cones; reuses and refreshes
  the same ``SUM2`` sidecar as ``analyze --incremental``, so repeated
  queries amortize toward zero solver work;
* ``report <image>`` — analyze with per-routine solver attribution on
  and print a convergence / hot-routine table;
* ``run <image>`` — execute an image in the interpreter.

Observability: ``analyze --trace FILE`` exports a Chrome trace-event
JSON of the run's spans (open it in https://ui.perfetto.dev),
``--stats`` prints the obs counter block for any analyze mode (cold,
parallel, or incremental), and ``--log-level`` / the ``REPRO_LOG``
environment variable turn on structured logging for the ``repro.*``
logger tree.

All analysis goes through :class:`repro.api.AnalysisSession`.  Exit
codes are distinct per failure class so scripts can tell them apart:

* 0 — success;
* 2 — usage error (bad flags or flag combinations, a malformed
  ``REPRO_JOBS`` value, or a query for an unknown routine);
* 3 — the input image could not be read or parsed;
* 4 — the analysis itself failed (:class:`AnalysisError`);
* 5 — the analysis succeeded but a by-product (the cache sidecar or
  the ``--trace`` file) could not be written; the run's output is
  still printed.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.api import (
    JOBS_ENV_VAR,
    AnalysisConfig,
    AnalysisError,
    AnalysisSession,
    JobsConfigError,
    UnknownRoutineError,
)
from repro.dataflow.regset import RegisterSet
from repro.obs import (
    REGISTRY,
    configure_logging,
    enable_tracing,
    get_tracer,
    render_counters,
)
from repro.interproc.persist import (
    SummaryFormatError,
    dump_cache,
    dump_summaries,
    image_fingerprint,
    load_cache,
    load_summaries,
)
from repro.program.disasm import disassemble_image, render_listing
from repro.program.image import ExecutableImage, ImageFormatError
from repro.program.rewrite import program_to_image
from repro.reporting.annotate import render_annotated_listing
from repro.reporting.dot import psg_to_dot
from repro.sim.interpreter import run_program
from repro.workloads.generator import GeneratorConfig, generate_image
from repro.workloads.shapes import ALL_SHAPES, shape_by_name

EXIT_OK = 0
EXIT_USAGE = 2
EXIT_BAD_IMAGE = 3
EXIT_ANALYSIS = 4
EXIT_CACHE_IO = 5


def _load(path: str) -> ExecutableImage:
    with open(path, "rb") as handle:
        return ExecutableImage.from_bytes(handle.read())


def _atomic_write_bytes(path: str, blob: bytes) -> None:
    """Write a by-product file atomically (tmp + ``os.replace``).

    A writer killed mid-dump leaves the previous file intact instead of
    a truncated sidecar that silently forces the next run cold (the
    same idiom as ``service/registry.py:_write_sidecar``).
    """
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as handle:
            handle.write(blob)
        os.replace(tmp, path)
    except OSError:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise


def _print_routine_summaries(result, names: List[str]) -> None:
    print()
    for name in names:
        summary = result.summaries[name]
        print(f"{name}:")
        print(f"  call-used:     {summary.call_used!r}")
        print(f"  call-defined:  {summary.call_defined!r}")
        print(f"  call-killed:   {summary.call_killed!r}")
        print(f"  live-at-entry: {summary.live_at_entry!r}")
        for block, mask in sorted(summary.exit_live_masks.items()):
            live = RegisterSet.from_mask(mask)
            print(f"  live-at-exit[block {block}]: {live!r}")


def _print_counters(session: AnalysisSession) -> None:
    counters = session.metrics().get("counters", {})
    if counters:
        print()
        print("counters:")
        print(render_counters(counters, indent="  "))


def _finish_trace(args: argparse.Namespace) -> int:
    """Export the collected spans to ``args.trace`` (no-op without it)."""
    if not getattr(args, "trace", None):
        return EXIT_OK
    tracer = get_tracer()
    try:
        count = tracer.export(args.trace)
    except OSError as error:
        print(
            f"could not write trace to {args.trace}: {error}",
            file=sys.stderr,
        )
        return EXIT_CACHE_IO
    # Keep --json stdout parseable: the note goes to stderr there.
    print(
        f"wrote trace to {args.trace} ({count} spans); "
        "open in https://ui.perfetto.dev",
        file=sys.stderr if getattr(args, "json", False) else sys.stdout,
    )
    return EXIT_OK


def _cmd_analyze_incremental(
    args: argparse.Namespace, session: AnalysisSession, image_bytes: bytes
) -> int:
    if args.annotate or args.dot:
        print(
            "--annotate/--dot need the whole-program PSG; "
            "drop --incremental to use them",
            file=sys.stderr,
        )
        return EXIT_USAGE
    cache_path = args.cache or args.image + ".sum2"
    cache = None
    cache_note = "cold (no cache file)"
    if os.path.exists(cache_path):
        try:
            with open(cache_path, "rb") as handle:
                cache = load_cache(handle.read())
            cache_note = f"warm ({cache_path})"
        except (SummaryFormatError, OSError) as error:
            cache_note = f"cold (unreadable cache: {error})"
    incremental = session.analyze_incremental(cache=cache, jobs=args.jobs)
    metrics = incremental.metrics
    program = session.program
    if args.json:
        # The schema-1 result payload; the daemon serves the same shape
        # (see repro.interproc.results).  "cache" is CLI-side context.
        payload = session.to_json()
        payload["cache"] = cache_note
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"routines:      {program.routine_count}")
        print(f"instructions:  {program.instruction_count}")
        print(f"cache:         {cache_note}")
        print(
            f"reanalyzed:    {metrics.phase2_solved} routines  "
            f"(reused {metrics.phase2_reused}, "
            f"{len(metrics.dirty_routines)} dirty)"
        )
        if args.stats:
            print()
            print(metrics.render())
            if incremental.parallel is not None:
                print()
                print(incremental.parallel.render())
            _print_counters(session)
    if args.routines:
        _print_routine_summaries(incremental.result, args.routines)
    if args.save_summaries:
        blob = dump_summaries(
            incremental.result, image_fingerprint(image_bytes)
        )
        try:
            _atomic_write_bytes(args.save_summaries, blob)
        except OSError as error:
            print(
                f"could not write summaries to {args.save_summaries}: "
                f"{error}",
                file=sys.stderr,
            )
            return EXIT_CACHE_IO
        print(
            f"wrote summaries to {args.save_summaries}",
            file=sys.stderr if args.json else sys.stdout,
        )
    try:
        _atomic_write_bytes(cache_path, dump_cache(incremental.cache))
    except OSError as error:
        print(
            f"could not write cache to {cache_path}: {error}",
            file=sys.stderr,
        )
        return EXIT_CACHE_IO
    print(
        f"wrote cache to {cache_path}",
        file=sys.stderr if args.json else sys.stdout,
    )
    # After the cache write so the cache.dump span lands in the trace.
    return _finish_trace(args)


def _analysis_config(
    labeling: Optional[str],
    solver_core: Optional[str] = None,
    store_dir: Optional[str] = None,
) -> Optional[AnalysisConfig]:
    """Map the ``--labeling`` / ``--solver-core`` / ``--store-dir``
    choices to an analysis config (None = all defaults, so
    env-variable resolution applies)."""
    if labeling is None and solver_core is None and store_dir is None:
        return None
    from repro.psg.build import PsgConfig

    if labeling is None:
        psg = PsgConfig()
    elif labeling == "per-edge":
        psg = PsgConfig(per_edge_labeling=True)
    else:
        psg = PsgConfig(labeling=labeling)
    store = None
    if store_dir is not None:
        from repro.interproc.store import SummaryStore

        store = SummaryStore(store_dir)
    return AnalysisConfig(psg=psg, solver_core=solver_core, store=store)


def _cmd_analyze(args: argparse.Namespace) -> int:
    if args.trace:
        enable_tracing()
    try:
        with open(args.image, "rb") as handle:
            image_bytes = handle.read()
        session = AnalysisSession.from_image_bytes(
            image_bytes,
            _analysis_config(args.labeling, args.solver_core, args.store_dir),
        )
    except (OSError, ImageFormatError) as error:
        print(f"cannot load image {args.image}: {error}", file=sys.stderr)
        return EXIT_BAD_IMAGE
    try:
        if args.incremental:
            return _cmd_analyze_incremental(args, session, image_bytes)
        jobs = args.jobs
        if args.annotate or args.dot:
            if jobs is not None and jobs != 1:
                print(
                    "--annotate/--dot need the whole-program PSG; "
                    "use --jobs 1 with them",
                    file=sys.stderr,
                )
                return EXIT_USAGE
            jobs = 1  # force serial even when REPRO_JOBS says otherwise
            if os.environ.get(JOBS_ENV_VAR):
                print(
                    f"note: --annotate/--dot force a serial solve; "
                    f"ignoring {JOBS_ENV_VAR}="
                    f"{os.environ[JOBS_ENV_VAR]!r}",
                    file=sys.stderr,
                )
        analysis = session.analyze(jobs=jobs)
    except JobsConfigError as error:
        print(str(error), file=sys.stderr)
        return EXIT_USAGE
    except AnalysisError as error:
        print(f"analysis failed: {error}", file=sys.stderr)
        return EXIT_ANALYSIS
    program = session.program
    if args.json:
        # One result shape for every engine: the session's schema-1
        # payload (the daemon serves the identical object).
        print(json.dumps(session.to_json(), indent=2, sort_keys=True))
    else:
        print(f"routines:      {program.routine_count}")
        print(f"instructions:  {program.instruction_count}")
        print(analysis.describe())
        if args.stats:
            _print_counters(session)
    if args.routines:
        _print_routine_summaries(analysis.result, args.routines)
    if args.annotate:
        print()
        print(render_annotated_listing(analysis, args.routines or None))
    if args.save_summaries:
        blob = dump_summaries(
            analysis.result, image_fingerprint(image_bytes)
        )
        try:
            _atomic_write_bytes(args.save_summaries, blob)
        except OSError as error:
            print(
                f"could not write summaries to {args.save_summaries}: "
                f"{error}",
                file=sys.stderr,
            )
            return EXIT_CACHE_IO
        # Keep --json stdout parseable, as with the trace note above.
        print(
            f"wrote summaries to {args.save_summaries}",
            file=sys.stderr if args.json else sys.stdout,
        )
    if args.dot:
        with open(args.dot, "w", encoding="utf-8") as handle:
            handle.write(psg_to_dot(analysis.psg, routine=args.dot_routine))
        print(f"wrote PSG dot to {args.dot}")
    return _finish_trace(args)


def _cmd_disasm(args: argparse.Namespace) -> int:
    try:
        image = _load(args.image)
    except (OSError, ImageFormatError) as error:
        print(f"cannot load image {args.image}: {error}", file=sys.stderr)
        return EXIT_BAD_IMAGE
    print(render_listing(disassemble_image(image)))
    return EXIT_OK


def _cmd_generate(args: argparse.Namespace) -> int:
    shape = shape_by_name(args.benchmark)
    if args.scale != 1.0:
        shape = shape.scaled(args.scale)
    image = generate_image(shape, GeneratorConfig(seed=args.seed))
    with open(args.output, "wb") as handle:
        handle.write(image.to_bytes())
    print(
        f"wrote {args.output}: {len(image.symbols)} routines, "
        f"{image.instruction_count} instructions"
    )
    return EXIT_OK


def _cmd_optimize(args: argparse.Namespace) -> int:
    try:
        session = AnalysisSession.from_path(args.image)
    except (OSError, ImageFormatError) as error:
        print(f"cannot load image {args.image}: {error}", file=sys.stderr)
        return EXIT_BAD_IMAGE
    try:
        result = session.optimize(verify=args.verify)
    except AnalysisError as error:
        print(f"optimization failed: {error}", file=sys.stderr)
        return EXIT_ANALYSIS
    for report in result.reports:
        print(
            f"{report.name}: {report.routines_changed} routines, "
            f"{report.instructions_deleted} deleted, "
            f"{report.instructions_rewritten} rewritten"
        )
    print(f"instructions removed: {result.instructions_removed}")
    if args.verify:
        print(f"dynamic improvement: {result.dynamic_improvement:.1%}")
    with open(args.output, "wb") as handle:
        handle.write(program_to_image(result.optimized).to_bytes())
    print(f"wrote {args.output}")
    return EXIT_OK


def _cmd_query(args: argparse.Namespace) -> int:
    if args.trace:
        enable_tracing()
    try:
        session = AnalysisSession.from_path(
            args.image,
            _analysis_config(args.labeling, args.solver_core, args.store_dir),
        )
    except (OSError, ImageFormatError) as error:
        print(f"cannot load image {args.image}: {error}", file=sys.stderr)
        return EXIT_BAD_IMAGE
    cache_path = args.cache or args.image + ".sum2"
    cache = None
    cache_note = "cold (no cache file)"
    if os.path.exists(cache_path):
        try:
            with open(cache_path, "rb") as handle:
                cache = load_cache(handle.read())
            cache_note = f"warm ({cache_path})"
        except (SummaryFormatError, OSError) as error:
            cache_note = f"cold (unreadable cache: {error})"
    try:
        result = session.query(args.routine, cache=cache)
    except (JobsConfigError, UnknownRoutineError) as error:
        print(str(error), file=sys.stderr)
        return EXIT_USAGE
    except AnalysisError as error:
        print(f"query failed: {error}", file=sys.stderr)
        return EXIT_ANALYSIS
    summary = result.summary
    metrics = result.metrics
    if args.json:
        # Query results carry their rendered summary in the schema-1
        # payload itself ("summary"); nothing is rebuilt here.
        payload = session.to_json()
        payload["cache"] = cache_note
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"routine:       {summary.name}")
        print(f"cache:         {cache_note}")
        print(
            f"cones:         phase1 {metrics.phase1_cone_routines} / "
            f"phase2 {metrics.phase2_cone_routines} routines "
            f"(of {session.program.routine_count})"
        )
        print(
            f"reanalyzed:    {metrics.phase2_solved} routines  "
            f"(reused {metrics.phase2_reused}, "
            f"{len(metrics.dirty_routines)} dirty)"
        )
        _print_routine_summaries(
            result.cache.result, [args.routine]
        )
        if args.stats:
            print()
            print(metrics.render())
            _print_counters(session)
    try:
        _atomic_write_bytes(cache_path, dump_cache(result.cache))
    except OSError as error:
        print(
            f"could not write cache to {cache_path}: {error}",
            file=sys.stderr,
        )
        return EXIT_CACHE_IO
    print(
        f"wrote cache to {cache_path}",
        file=sys.stderr if args.json else sys.stdout,
    )
    return _finish_trace(args)


def _parse_labeled(rendered: str) -> dict:
    """Labels of a rendered counter key (``name{k=v,...}`` -> dict)."""
    if "{" not in rendered:
        return {}
    inner = rendered.split("{", 1)[1].rstrip("}")
    return dict(pair.split("=", 1) for pair in inner.split(","))


def _cmd_report(args: argparse.Namespace) -> int:
    try:
        session = AnalysisSession.from_path(args.image)
    except (OSError, ImageFormatError) as error:
        print(f"cannot load image {args.image}: {error}", file=sys.stderr)
        return EXIT_BAD_IMAGE
    # Per-routine visit attribution is O(nodes) per solver pass, so the
    # registry gates it; this subcommand is the only consumer.
    REGISTRY.per_routine = True
    try:
        session.analyze(jobs=1)
    except AnalysisError as error:
        print(f"analysis failed: {error}", file=sys.stderr)
        return EXIT_ANALYSIS
    finally:
        REGISTRY.per_routine = False
    counters = session.metrics()["counters"]
    per_routine: dict = {}
    for rendered, value in counters.items():
        if not rendered.startswith("solver.routine_iterations{"):
            continue
        labels = _parse_labeled(rendered)
        entry = per_routine.setdefault(
            labels["routine"], {"phase1": 0, "phase2": 0}
        )
        entry[labels["phase"]] = entry.get(labels["phase"], 0) + value
    hot = sorted(
        (
            {
                "routine": routine,
                "phase1": visits["phase1"],
                "phase2": visits["phase2"],
                "total": visits["phase1"] + visits["phase2"],
            }
            for routine, visits in per_routine.items()
        ),
        key=lambda row: (-row["total"], row["routine"]),
    )[: args.top]
    if args.json:
        payload = {
            "routines": session.program.routine_count,
            "counters": counters,
            "hot_routines": hot,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return EXIT_OK
    from repro.reporting.tables import format_table

    print(f"routines:          {session.program.routine_count}")
    print(
        f"psg nodes/edges:   "
        f"{counters.get('psg.nodes', 0)} / "
        f"{counters.get('psg.flow_edges', 0)} flow + "
        f"{counters.get('psg.call_return_edges', 0)} call/return"
    )
    print(
        f"solver iterations: "
        f"phase1 {counters.get('solver.iterations{phase=phase1}', 0)}, "
        f"phase2 {counters.get('solver.iterations{phase=phase2}', 0)}"
    )
    print(
        f"max queue depth:   "
        f"phase1 {counters.get('solver.max_queue_depth{phase=phase1}', 0)}, "
        f"phase2 {counters.get('solver.max_queue_depth{phase=phase2}', 0)}"
    )
    print()
    print(
        format_table(
            ["Routine", "Phase1 visits", "Phase2 visits", "Total"],
            [
                [row["routine"], row["phase1"], row["phase2"], row["total"]]
                for row in hot
            ],
            title=f"Hot routines by worklist visits (top {args.top})",
        )
    )
    return EXIT_OK


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        image = _load(args.image)
    except (OSError, ImageFormatError) as error:
        print(f"cannot load image {args.image}: {error}", file=sys.stderr)
        return EXIT_BAD_IMAGE
    result = run_program(disassemble_image(image), max_steps=args.max_steps)
    for value in result.outputs:
        print(value)
    print(f"# steps={result.steps} exit={result.exit_value}")
    return EXIT_OK


def _cmd_summaries(args: argparse.Namespace) -> int:
    with open(args.sidecar, "rb") as handle:
        result = load_summaries(handle.read())
    for name in sorted(result.summaries):
        summary = result.summaries[name]
        print(f"{name}:")
        print(f"  call-used:     {summary.call_used!r}")
        print(f"  call-defined:  {summary.call_defined!r}")
        print(f"  call-killed:   {summary.call_killed!r}")
        print(f"  live-at-entry: {summary.live_at_entry!r}")
        print(f"  call sites:    {len(summary.call_sites)}")
    return EXIT_OK


def _cmd_benchmarks(_args: argparse.Namespace) -> int:
    for shape in ALL_SHAPES:
        print(
            f"{shape.name:<10} {shape.suite:<16} {shape.routines:>7} routines  "
            f"{shape.instructions:>9} instructions   {shape.description}"
        )
    return EXIT_OK


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported lazily: the daemon pulls in http.server and the
    # registry, which no other subcommand needs.
    from repro.service import ServiceConfig, serve

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        socket_path=args.socket,
        cache_dir=args.cache_dir,
        max_bytes=args.max_bytes,
        jobs=args.jobs,
        trace_dir=args.trace_dir,
        trace_sample=args.trace_sample,
        store_dir=args.store_dir,
    )
    try:
        serve(config)
    except OSError as error:
        print(f"cannot serve: {error}", file=sys.stderr)
        return EXIT_ANALYSIS
    return EXIT_OK


def _cmd_store(args: argparse.Namespace) -> int:
    from repro.interproc.store import STORE_ENV_VAR, SummaryStore

    root = args.store_dir or os.environ.get(STORE_ENV_VAR)
    if not root:
        print(
            "no store directory: pass --store-dir or set "
            f"{STORE_ENV_VAR}",
            file=sys.stderr,
        )
        return EXIT_USAGE
    store = SummaryStore(root, max_bytes=args.max_bytes)
    if args.action == "stats":
        print(json.dumps(store.stats(), indent=2, sort_keys=True))
    else:
        print(json.dumps(store.gc(), indent=2, sort_keys=True))
    return EXIT_OK


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="spike-analyze",
        description=(
            "Interprocedural register dataflow analysis for SAX executables "
            "(reproduction of Goodwin, PLDI 1997)"
        ),
    )
    # Main parser only: a subparser default of None would overwrite a
    # value parsed here (argparse applies subparser defaults last).
    parser.add_argument(
        "--log-level", metavar="LEVEL", default=None,
        help=(
            "log verbosity for the repro.* loggers (debug, info, "
            "warning, ...); the REPRO_LOG environment variable is the "
            "fallback default"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="analyze an executable image")
    analyze.add_argument("image")
    analyze.add_argument(
        "-j", "--jobs", type=int, default=None, metavar="N",
        help=(
            "solve on N worker processes (0 = one per CPU); results are "
            "bit-identical at any setting (default: REPRO_JOBS or 1)"
        ),
    )
    analyze.add_argument(
        "--json", action="store_true",
        help="print one machine-readable JSON stats object",
    )
    analyze.add_argument(
        "--labeling", choices=["batched", "per-target", "per-edge"],
        default=None, metavar="STRATEGY",
        help=(
            "flow-summary labeling strategy: batched (default; one "
            "region pass per routine), per-target (one worklist solve "
            "per PSG target), or per-edge (the paper's literal Figure-6 "
            "formulation; slowest).  All three produce identical labels"
        ),
    )
    analyze.add_argument(
        "--solver-core", choices=["flat", "object", "fifo"],
        default=None, metavar="CORE",
        help=(
            "two-phase solver core: flat (CSR-arena fast path), object "
            "(object-graph engines; default), or fifo (legacy FIFO "
            "scheduling, kept for bisects).  Summaries are bit-identical "
            "for every choice (default: REPRO_SOLVER_CORE or object)"
        ),
    )
    analyze.add_argument(
        "-r", "--routine", dest="routines", action="append", default=[],
        help="print the summary of this routine (repeatable)",
    )
    analyze.add_argument(
        "--annotate", action="store_true",
        help="print a paper-style listing with summaries inline",
    )
    analyze.add_argument(
        "--save-summaries", metavar="FILE",
        help="write a summary sidecar bound to the image's fingerprint",
    )
    analyze.add_argument(
        "--incremental", action="store_true",
        help=(
            "reuse and refresh a summary cache sidecar, re-solving only "
            "routines whose fingerprints changed (and their dependents)"
        ),
    )
    analyze.add_argument(
        "--cache", metavar="FILE", default=None,
        help="cache sidecar path for --incremental (default: IMAGE.sum2)",
    )
    analyze.add_argument(
        "--store-dir", metavar="DIR", default=None,
        help=(
            "cross-image content-addressed summary store: consult it "
            "before solving (with --incremental) and publish solved "
            "summaries into it, keyed by deep routine fingerprint so "
            "linked variants warm each other (default: "
            "REPRO_SUMMARY_STORE)"
        ),
    )
    analyze.add_argument(
        "--stats", action="store_true",
        help=(
            "print the obs counter block (and, with --incremental, the "
            "incremental work metrics)"
        ),
    )
    analyze.add_argument(
        "--trace", metavar="FILE",
        help=(
            "record spans for the whole run (workers included) and "
            "write a Chrome trace-event JSON; open in "
            "https://ui.perfetto.dev"
        ),
    )
    analyze.add_argument(
        "--dot", metavar="FILE", help="write the PSG as a Graphviz digraph"
    )
    analyze.add_argument(
        "--dot-routine", metavar="NAME", default=None,
        help="restrict --dot to one routine",
    )
    analyze.set_defaults(func=_cmd_analyze)

    disasm = sub.add_parser("disasm", help="disassemble an image")
    disasm.add_argument("image")
    disasm.set_defaults(func=_cmd_disasm)

    generate = sub.add_parser("generate", help="generate a benchmark image")
    generate.add_argument("benchmark", help="benchmark name (see 'benchmarks')")
    generate.add_argument("-o", "--output", required=True)
    generate.add_argument("--scale", type=float, default=1.0)
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(func=_cmd_generate)

    optimize = sub.add_parser("optimize", help="optimize an image")
    optimize.add_argument("image")
    optimize.add_argument("-o", "--output", required=True)
    optimize.add_argument(
        "--verify", action="store_true",
        help="execute before/after and compare observable behaviour",
    )
    optimize.set_defaults(func=_cmd_optimize)

    query = sub.add_parser(
        "query",
        help="answer one routine's summary on demand (cone-scoped solve)",
    )
    query.add_argument("image")
    query.add_argument("routine", help="routine name to query")
    query.add_argument(
        "--cache", metavar="FILE", default=None,
        help=(
            "SUM2 cache sidecar to warm-start from and refresh "
            "(default: IMAGE.sum2; shared with analyze --incremental)"
        ),
    )
    query.add_argument(
        "--json", action="store_true",
        help="print one machine-readable JSON object (summary + stats)",
    )
    query.add_argument(
        "--labeling", choices=["batched", "per-target", "per-edge"],
        default=None, metavar="STRATEGY",
        help="flow-summary labeling strategy (see analyze --labeling)",
    )
    query.add_argument(
        "--solver-core", choices=["flat", "object", "fifo"],
        default=None, metavar="CORE",
        help="two-phase solver core (see analyze --solver-core)",
    )
    query.add_argument(
        "--store-dir", metavar="DIR", default=None,
        help=(
            "cross-image summary store to read grade-1 triples through "
            "and publish into (see analyze --store-dir)"
        ),
    )
    query.add_argument(
        "--stats", action="store_true",
        help="print the query work metrics and obs counter block",
    )
    query.add_argument(
        "--trace", metavar="FILE",
        help="write a Chrome trace-event JSON of the query's spans",
    )
    query.set_defaults(func=_cmd_query)

    report = sub.add_parser(
        "report",
        help="print a convergence / hot-routine table for an image",
    )
    report.add_argument("image")
    report.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="number of routines to list (default: 10)",
    )
    report.add_argument(
        "--json", action="store_true",
        help="print the counters and hot-routine list as JSON",
    )
    report.set_defaults(func=_cmd_report)

    run = sub.add_parser("run", help="execute an image in the interpreter")
    run.add_argument("image")
    run.add_argument("--max-steps", type=int, default=5_000_000)
    run.set_defaults(func=_cmd_run)

    summaries = sub.add_parser(
        "summaries", help="dump a summary sidecar written by analyze"
    )
    summaries.add_argument("sidecar")
    summaries.set_defaults(func=_cmd_summaries)

    benchmarks = sub.add_parser("benchmarks", help="list known benchmarks")
    benchmarks.set_defaults(func=_cmd_benchmarks)

    serve = sub.add_parser(
        "serve",
        help="run the analysis daemon (POST images, get --json payloads)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", metavar="ADDR",
        help="TCP bind address (default 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=8484, metavar="N",
        help="TCP port (default 8484; 0 picks an ephemeral port)",
    )
    serve.add_argument(
        "--socket", default=None, metavar="PATH",
        help="serve HTTP over this unix domain socket instead of TCP",
    )
    serve.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help=(
            "persist per-tenant SUM2 cache sidecars under DIR so edit "
            "requests warm-start across daemon restarts"
        ),
    )
    serve.add_argument(
        "--max-bytes", type=int, default=256 * 1024 * 1024,
        metavar="N",
        help=(
            "retained-session byte budget; least-recently-used "
            "sessions are evicted beyond it (default 256 MiB)"
        ),
    )
    serve.add_argument(
        "-j", "--jobs", type=int, default=None, metavar="N",
        help="default worker count for solves (per-request jobs wins)",
    )
    serve.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help=(
            "sample per-request Perfetto traces to DIR/<run-id>.json "
            "(see --trace-sample; clients can always request a trace "
            "inline with the X-Repro-Trace: 1 header)"
        ),
    )
    serve.add_argument(
        "--trace-sample", type=int, default=10, metavar="N",
        help="with --trace-dir, capture 1 in N requests (default 10)",
    )
    serve.add_argument(
        "--store-dir", default=None, metavar="DIR",
        help=(
            "process-wide cross-image summary store: tenants analyzing "
            "successive builds of shared libraries warm each other "
            "(see analyze --store-dir)"
        ),
    )
    serve.set_defaults(func=_cmd_serve)

    store = sub.add_parser(
        "store",
        help="inspect or garbage-collect a cross-image summary store",
    )
    store.add_argument(
        "action", choices=["gc", "stats"],
        help=(
            "gc: sweep stale temp files and evict least-recently-used "
            "records down to --max-bytes; stats: print record counts "
            "and byte totals"
        ),
    )
    store.add_argument(
        "--store-dir", metavar="DIR", default=None,
        help="store directory (default: REPRO_SUMMARY_STORE)",
    )
    store.add_argument(
        "--max-bytes", type=int, default=None, metavar="N",
        help="byte budget for gc eviction (default: sweep temps only)",
    )
    store.set_defaults(func=_cmd_store)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.log_level is not None:
        try:
            configure_logging(args.log_level)
        except ValueError as error:
            print(str(error), file=sys.stderr)
            return EXIT_USAGE
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
