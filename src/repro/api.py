"""The public analysis API: one session object, one config, one error.

Everything the package can do to a program — analyze it (serial,
sharded-parallel, or incrementally against a summary cache), optimize
it, and report on the work — historically lived on free functions
scattered across submodules (``repro.interproc.analysis``,
``repro.interproc.incremental``, ``repro.opt.pipeline``).  Each grew
its own entry point, its own way of accepting a program, and its own
failure modes.  This module fronts them all with a single facade:

>>> from repro.api import AnalysisSession
>>> session = AnalysisSession.from_image_bytes(blob)
>>> analysis = session.analyze(jobs=4)          # sharded parallel
>>> session.summaries().summaries["main"].call_used
>>> session.metrics()                           # JSON-ready stats

Every constructor accepts an optional :class:`AnalysisConfig`; e.g. to
pin the flow-summary labeling strategy (``"batched"`` is the default,
``"per-target"`` the pre-batching implementation — results are
identical, see :mod:`repro.dataflow.equations`):

>>> from repro.psg.build import PsgConfig
>>> config = AnalysisConfig(psg=PsgConfig(labeling="per-target"))
>>> session = AnalysisSession.from_image_bytes(blob, config)

Construction never analyzes; the first ``analyze*`` call does, and its
products are retained on the session for ``summaries()``/``metrics()``.
Failures that prevent an analysis from completing — a PSG that cannot
represent the program, a diverging solver, a crashed worker process —
are normalized to :class:`~repro.interproc.errors.AnalysisError`;
unparseable images raise
:class:`~repro.program.image.ImageFormatError` from the constructor
instead, so callers can tell "bad input" from "analysis failed".

The old free functions still work but are deprecated shims around this
facade (they emit :class:`DeprecationWarning`); new code should not
import them.

Worker-count resolution, everywhere in the facade: an explicit
``jobs=`` argument wins, then :attr:`AnalysisConfig.jobs`, then the
``REPRO_JOBS`` environment variable, then 1 (serial).  0 or a negative
value means "one worker per available CPU".

Solver-core resolution mirrors it: :attr:`AnalysisConfig.solver_core`
wins, then the ``REPRO_SOLVER_CORE`` environment variable, then
``"object"``.  ``"flat"`` runs the CSR-arena fast path, ``"object"``
the object-graph engines, ``"fifo"`` the legacy FIFO scheduling —
summaries are bit-identical for every choice, at every worker count
(see :mod:`repro.interproc.flatcore`).
"""

from __future__ import annotations

import logging
import os
from typing import Dict, List, Optional, Sequence, Union

from repro.dataflow.regset import construction_count
from repro.obs.metrics import REGISTRY
from repro.obs.runid import current_run_id, new_run_id
from repro.obs.tracer import span
from repro.interproc.analysis import (
    AnalysisConfig,
    InterproceduralAnalysis,
    _analyze_program,
)
from repro.interproc.demand import QueryResult, query_routine
from repro.interproc.errors import (
    AnalysisError,
    JobsConfigError,
    UnknownRoutineError,
)
from repro.interproc.incremental import (
    IncrementalAnalysis,
    _analyze_incremental,
)
from repro.interproc.parallel import ParallelAnalysis, analyze_parallel
from repro.interproc.persist import SummaryCache, image_fingerprint
from repro.interproc.results import SCHEMA_VERSION, validate_payload
from repro.interproc.summaries import SummarySet, RoutineSummary
from repro.program.disasm import disassemble_image
from repro.program.image import ExecutableImage, ImageFormatError
from repro.program.model import Program
from repro.psg.build import PsgBuildError
from repro.dataflow.solver import SolverDivergence
from typing import Mapping, Protocol, runtime_checkable

#: The documented stable surface of the analysis API.  Everything else
#: under ``repro.*`` is an implementation detail that may change
#: between releases; the deprecated free-function shims of the pre-
#: session era (``analyze_program``/``analyze_image``/
#: ``analyze_incremental``/``optimize_program``) have been removed.
__all__ = [
    "AnalysisConfig",
    "AnalysisError",
    "AnalysisResult",
    "AnalysisSession",
    "JobsConfigError",
    "QueryResult",
    "RoutineSummary",
    "SCHEMA_VERSION",
    "SummarySet",
    "UnknownRoutineError",
    "validate_payload",
]


@runtime_checkable
class AnalysisResult(Protocol):
    """What every analysis outcome looks like, whichever engine ran.

    :meth:`AnalysisSession.analyze`, :meth:`~AnalysisSession.
    analyze_incremental` and :meth:`~AnalysisSession.query` return
    four concrete types (serial, parallel, incremental, query); all of
    them satisfy this protocol, so callers that only consume results
    never need to know which engine produced them.  ``to_json()`` is
    the versioned external shape (``"schema": 1``) — the CLI
    ``--json`` output and the ``repro.service`` daemon responses are
    both exactly this payload (see :mod:`repro.interproc.results`).
    """

    #: ``"serial"``, ``"parallel"``, ``"incremental"`` or ``"query"``.
    kind: str
    #: True when the run solved on the sharded worker pool.
    is_parallel: bool

    @property
    def result(self) -> SummarySet: ...

    def summary(self, routine: str) -> RoutineSummary: ...

    def stats(self) -> Mapping[str, object]: ...

    def to_json(
        self, counters=None, include_summaries: bool = False
    ) -> Mapping[str, object]: ...

_log = logging.getLogger(__name__)

#: Environment variable consulted for the default worker count.
JOBS_ENV_VAR = "REPRO_JOBS"

#: Environment variable consulted for the default solver core
#: (re-exported from :mod:`repro.interproc.flatcore` for discovery).
SOLVER_CORE_ENV_VAR = "REPRO_SOLVER_CORE"

#: Environment variable naming the shared summary-store directory
#: (re-exported from :mod:`repro.interproc.store` for discovery).
#: When set, cold and incremental solves consult and publish
#: content-addressed routine summaries there; results stay
#: byte-identical with the store on, off, or corrupted.
SUMMARY_STORE_ENV_VAR = "REPRO_SUMMARY_STORE"

#: Exceptions an analysis run normalizes into AnalysisError.
_ANALYSIS_FAILURES = (PsgBuildError, SolverDivergence)


def _jobs_from_env() -> Optional[int]:
    raw = os.environ.get(JOBS_ENV_VAR)
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        raise JobsConfigError(
            f"{JOBS_ENV_VAR} must be an integer, got {raw!r} "
            "(0 or negative means one worker per CPU)"
        ) from None


class AnalysisSession:
    """One program plus everything analyzed about it so far.

    Build one with :meth:`from_image_bytes`, :meth:`from_image`,
    :meth:`from_path` or :meth:`from_program`; then call
    :meth:`analyze`, :meth:`analyze_incremental` or :meth:`optimize`.
    The session caches the most recent analysis, so
    :meth:`summaries` and :meth:`metrics` never recompute — and
    :meth:`optimize` is the only method that mutates nothing on the
    session (it returns a new, optimized program).
    """

    def __init__(
        self,
        program: Program,
        config: Optional[AnalysisConfig] = None,
        image_bytes: Optional[bytes] = None,
    ) -> None:
        self._program = program
        self._config = config or AnalysisConfig()
        self._image_bytes = image_bytes
        self._last: Union[
            InterproceduralAnalysis,
            ParallelAnalysis,
            IncrementalAnalysis,
            QueryResult,
            None,
        ] = None
        # The memoized cache the demand path threads between query()
        # calls (when the caller does not manage one explicitly), plus
        # the program's reusable front-end (CFGs, call graph,
        # condensation — immutable for the session's program and the
        # dominant warm-query cost).
        self._query_cache: Optional[SummaryCache] = None
        self._query_frontend = None
        # Counter scoping: metrics() reports the registry's delta since
        # session construction, so work done on behalf of this session
        # before analyze() — a CLI cache load, for instance — is
        # attributed to it while unrelated earlier runs are not.
        self._counter_base = REGISTRY.snapshot()
        self._regset_base = construction_count()

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_image_bytes(
        cls, data: bytes, config: Optional[AnalysisConfig] = None
    ) -> "AnalysisSession":
        """A session over a serialized SAX executable image.

        Raises :class:`ImageFormatError` when ``data`` is not a valid
        image — construction validates the input so the caller can
        distinguish bad input from a later analysis failure.
        """
        image = ExecutableImage.from_bytes(data)
        return cls(disassemble_image(image), config, image_bytes=data)

    @classmethod
    def from_image(
        cls, image: ExecutableImage, config: Optional[AnalysisConfig] = None
    ) -> "AnalysisSession":
        """A session over an in-memory executable image."""
        return cls(
            disassemble_image(image), config, image_bytes=image.to_bytes()
        )

    @classmethod
    def from_path(
        cls, path: str, config: Optional[AnalysisConfig] = None
    ) -> "AnalysisSession":
        """A session over an image file on disk (``OSError`` on
        unreadable files, :class:`ImageFormatError` on bad content)."""
        with open(path, "rb") as handle:
            return cls.from_image_bytes(handle.read(), config)

    @classmethod
    def from_program(
        cls, program: Program, config: Optional[AnalysisConfig] = None
    ) -> "AnalysisSession":
        """A session over an already-decoded program."""
        return cls(program, config)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def program(self) -> Program:
        return self._program

    @property
    def config(self) -> AnalysisConfig:
        return self._config

    @property
    def has_query_state(self) -> bool:
        """True once a query has warmed this session's memoized demand
        front-end (the service daemon reports such requests as warm)."""
        return self._query_frontend is not None

    @property
    def image_fingerprint(self) -> int:
        """The image-content fingerprint (0 when the session was built
        from a decoded program, which has no canonical byte form)."""
        if self._image_bytes is None:
            return 0
        return image_fingerprint(self._image_bytes)

    # ------------------------------------------------------------------
    # Analyses
    # ------------------------------------------------------------------

    def _resolve_jobs(self, jobs: Optional[int]) -> int:
        if jobs is None and self._config.jobs == 1:
            jobs = _jobs_from_env()
        from repro.interproc.parallel import resolve_jobs

        return resolve_jobs(jobs, self._config)

    def _begin_run(self, kind: str, jobs: int) -> None:
        if current_run_id() is None:
            new_run_id()
        _log.info(
            "%s analysis starting: %d routines, jobs=%d",
            kind, self._program.routine_count, jobs,
        )

    def _fold_regset(self) -> None:
        """Fold RegisterSet constructions since the last fold into the
        registry (regset.py itself keeps only a bare local count)."""
        count = construction_count()
        if count != self._regset_base:
            REGISTRY.inc("regset.constructed", count - self._regset_base)
            self._regset_base = count

    def analyze(
        self, jobs: Optional[int] = None
    ) -> Union[InterproceduralAnalysis, ParallelAnalysis]:
        """Run the full two-phase interprocedural analysis.

        With an effective worker count of 1 this is the serial driver
        (and the result exposes the whole-program PSG); above 1 the
        sharded parallel solver runs, with bit-identical summaries.
        """
        effective = self._resolve_jobs(jobs)
        self._begin_run("parallel" if effective > 1 else "serial", effective)
        try:
            with span("analyze", jobs=effective):
                if effective > 1:
                    self._last = analyze_parallel(
                        self._program, self._config, jobs=effective
                    )
                else:
                    self._last = _analyze_program(self._program, self._config)
        except AnalysisError:
            raise
        except _ANALYSIS_FAILURES as error:
            raise AnalysisError(str(error)) from error
        finally:
            self._fold_regset()
        return self._last

    def analyze_incremental(
        self,
        cache: Optional[SummaryCache] = None,
        jobs: Optional[int] = None,
    ) -> IncrementalAnalysis:
        """Analyze incrementally against ``cache`` (cold when ``None``).

        The returned :attr:`IncrementalAnalysis.cache` is the refreshed
        cache to persist for the next warm run; with ``jobs > 1`` the
        dirty shards are re-solved on a worker pool.
        """
        effective = self._resolve_jobs(jobs)
        self._begin_run("incremental", effective)
        try:
            with span(
                "analyze_incremental", jobs=effective, warm=cache is not None
            ):
                self._last = _analyze_incremental(
                    self._program,
                    cache=cache,
                    config=self._config,
                    image_fingerprint=self.image_fingerprint,
                    jobs=effective,
                )
        except AnalysisError:
            raise
        except _ANALYSIS_FAILURES as error:
            raise AnalysisError(str(error)) from error
        finally:
            self._fold_regset()
        return self._last

    def query(
        self, routine: str, *, cache: Optional[SummaryCache] = None
    ) -> QueryResult:
        """Answer live-at-entry/exit and call-used/defined/killed for
        one routine on demand, solving only its dependency cones.

        The answer is byte-identical to what :meth:`analyze` would
        report for ``routine``, but only the SCC components the answer
        can depend on — transitive callers, plus their callee closure
        — are examined, and only the stale ones among those re-solve.

        ``cache`` warm-starts the query from a ``SUM2``
        :class:`SummaryCache`; when omitted, the session threads its
        own memoized cache between calls, so repeated or overlapping
        queries amortize toward a CFG build plus fingerprinting.  The
        refreshed cache is returned on :attr:`QueryResult.cache` (and
        retained on the session) for persisting.

        Raises :class:`UnknownRoutineError` for a routine the program
        does not contain.
        """
        # Queries solve serially, but resolve the worker config anyway
        # so a malformed REPRO_JOBS fails here as cleanly as it does
        # for analyze() (JobsConfigError -> CLI usage error).
        self._resolve_jobs(None)
        if cache is None:
            cache = self._query_cache
        self._begin_run("query", 1)
        try:
            with span("query", routine=routine, warm=cache is not None):
                result = query_routine(
                    self._program,
                    routine,
                    cache=cache,
                    config=self._config,
                    image_fingerprint=self.image_fingerprint,
                    frontend=self._query_frontend,
                )
        except AnalysisError:
            raise
        except _ANALYSIS_FAILURES as error:
            raise AnalysisError(str(error)) from error
        finally:
            self._fold_regset()
        self._last = result
        self._query_cache = result.cache
        self._query_frontend = result.frontend
        return result

    def optimize(
        self,
        passes: Optional[Sequence[str]] = None,
        verify: bool = False,
        max_steps: int = 5_000_000,
    ):
        """Run the Figure-1 optimization pipeline on the program.

        Returns an :class:`repro.opt.pipeline.OptimizationResult`; the
        session itself is unchanged (build a new session from
        ``result.optimized`` to analyze the optimized program).
        """
        from repro.opt.pipeline import PASS_NAMES, _optimize_program

        self._begin_run("optimize", 1)
        try:
            with span("optimize"):
                return _optimize_program(
                    self._program,
                    passes=PASS_NAMES if passes is None else passes,
                    config=self._config,
                    verify=verify,
                    max_steps=max_steps,
                )
        except AnalysisError:
            raise
        except _ANALYSIS_FAILURES as error:
            raise AnalysisError(str(error)) from error
        finally:
            self._fold_regset()

    # ------------------------------------------------------------------
    # Results of the most recent analysis
    # ------------------------------------------------------------------

    def summaries(self) -> SummarySet:
        """Per-routine summaries of the most recent analysis (running a
        serial :meth:`analyze` first if none has been run).

        After a :meth:`query` this is the memoized cache's view: the
        queried cone is fresh, other routines carry whatever earlier
        runs established (entries a query had to invalidate are
        absent until something re-solves them).
        """
        if self._last is None:
            self.analyze()
        assert self._last is not None
        if isinstance(self._last, QueryResult):
            return self._last.cache.result
        return self._last.result

    def summary(self, routine: str) -> RoutineSummary:
        return self.summaries().summaries[routine]

    def metrics(self) -> Dict[str, object]:
        """JSON-ready metrics of the most recent analysis.

        Always includes ``kind`` (``"serial"``, ``"parallel"``,
        ``"incremental"`` or ``"query"``) and ``routines``; the
        remaining keys depend
        on the kind (stage timings for serial runs, shard/utilization
        records for parallel runs, solved/reused counts — plus a
        ``parallel`` sub-object when applicable — for incremental
        runs).  ``counters`` carries the obs-registry delta since this
        session was constructed — cache hit/miss/stale/write, per-phase
        worklist iterations and queue depths, PSG sizes, regset
        constructions — with worker-process contributions merged in.
        Empty when nothing has been analyzed yet.
        """
        last = self._last
        if last is None:
            return {}
        payload: Dict[str, object] = {
            "kind": last.kind,
            "routines": self._program.routine_count,
            "counters": REGISTRY.delta_since(self._counter_base),
        }
        payload.update(last.stats())
        return payload

    def to_json(self, include_summaries: bool = False) -> Dict[str, object]:
        """The schema-1 JSON payload of the most recent analysis
        (running a serial :meth:`analyze` first if none has been run).

        This is the one external result shape: the CLI ``--json``
        output and every ``repro.service`` daemon response body are
        exactly this payload (see :mod:`repro.interproc.results` for
        the schema).  ``include_summaries=True`` embeds the rendered
        per-routine summaries under a ``summaries`` key.
        """
        if self._last is None:
            self.analyze()
        assert self._last is not None
        return self._last.to_json(
            counters=REGISTRY.delta_since(self._counter_base),
            include_summaries=include_summaries,
        )
