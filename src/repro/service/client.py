"""A stdlib HTTP client for the analysis daemon.

Small on purpose: the daemon speaks plain HTTP + JSON, so anything can
talk to it, but the tests, the benchmark and the CI smoke all want the
same few calls — connect over TCP or a unix socket, post an image,
read back a validated schema-1 payload.

    client = ServiceClient.tcp("127.0.0.1", 8484)
    payload = client.analyze(image_bytes)
    payload = client.query(image_bytes, routine="inc")
"""

from __future__ import annotations

import base64
import http.client
import json
import socket
from dataclasses import dataclass
from typing import Any, Dict, Optional


class ServiceError(Exception):
    """A non-2xx daemon response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class _UnixHTTPConnection(http.client.HTTPConnection):
    """``http.client`` over an ``AF_UNIX`` stream socket."""

    def __init__(self, socket_path: str, timeout: Optional[float] = None):
        super().__init__("localhost", timeout=timeout)
        self._socket_path = socket_path

    def connect(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if self.timeout is not None:
            sock.settimeout(self.timeout)
        sock.connect(self._socket_path)
        self.sock = sock


@dataclass
class Response:
    """One daemon answer: status, parsed JSON, response headers."""

    status: int
    payload: Dict[str, Any]
    headers: Dict[str, str]

    @property
    def warm(self) -> bool:
        return self.headers.get("X-Repro-Warm") == "hit"

    @property
    def run_id(self) -> Optional[str]:
        return self.headers.get("X-Repro-Run-Id")


class ServiceClient:
    """One logical peer; opens one connection per request."""

    def __init__(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
        socket_path: Optional[str] = None,
        tenant: Optional[str] = None,
        timeout: float = 120.0,
    ) -> None:
        if (socket_path is None) == (host is None):
            raise ValueError("supply either host+port or socket_path")
        self.host = host
        self.port = port
        self.socket_path = socket_path
        self.tenant = tenant
        self.timeout = timeout

    @classmethod
    def tcp(
        cls, host: str, port: int, tenant: Optional[str] = None
    ) -> "ServiceClient":
        return cls(host=host, port=port, tenant=tenant)

    @classmethod
    def unix(
        cls, socket_path: str, tenant: Optional[str] = None
    ) -> "ServiceClient":
        return cls(socket_path=socket_path, tenant=tenant)

    # -- transport -----------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self.socket_path is not None:
            return _UnixHTTPConnection(self.socket_path, timeout=self.timeout)
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    def request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        raise_on_error: bool = True,
        headers: Optional[Dict[str, str]] = None,
    ) -> Response:
        connection = self._connection()
        request_headers = {"Content-Type": "application/json"}
        if self.tenant is not None:
            request_headers["X-Repro-Tenant"] = self.tenant
        if headers:
            request_headers.update(headers)
        data = None
        if body is not None:
            data = json.dumps(body).encode("utf-8")
        try:
            connection.request(
                method, path, body=data, headers=request_headers
            )
            raw = connection.getresponse()
            blob = raw.read()
            response = Response(
                status=raw.status,
                payload=json.loads(blob.decode("utf-8")) if blob else {},
                headers=dict(raw.getheaders()),
            )
        finally:
            connection.close()
        if raise_on_error and response.status >= 400:
            message = response.payload.get("error", "unexpected failure")
            raise ServiceError(response.status, str(message))
        return response

    # -- the API -------------------------------------------------------

    def healthz(self) -> Response:
        return self.request("GET", "/healthz", raise_on_error=False)

    def metricsz(self, include_histograms: bool = False) -> Dict[str, Any]:
        path = "/metricsz"
        if include_histograms:
            path += "?include=histograms"
        return self.request("GET", path).payload

    def metricsz_prometheus(self) -> str:
        """The ``/metricsz`` Prometheus text exposition, verbatim."""
        connection = self._connection()
        try:
            connection.request(
                "GET", "/metricsz?format=prometheus",
                headers={"Accept": "text/plain"},
            )
            raw = connection.getresponse()
            blob = raw.read()
            if raw.status >= 400:
                raise ServiceError(raw.status, blob.decode("utf-8", "replace"))
            return blob.decode("utf-8")
        finally:
            connection.close()

    def analyze(
        self,
        image_bytes: bytes,
        edit: Optional[Dict[str, Any]] = None,
        jobs: Optional[int] = None,
        include_summaries: bool = False,
        trace: bool = False,
    ) -> Response:
        body: Dict[str, Any] = {
            "image_b64": base64.b64encode(image_bytes).decode("ascii")
        }
        if edit is not None:
            body["edit"] = edit
        if jobs is not None:
            body["jobs"] = jobs
        if include_summaries:
            body["include_summaries"] = True
        return self.request(
            "POST", "/v1/analyze", body,
            headers={"X-Repro-Trace": "1"} if trace else None,
        )

    def query(
        self,
        image_bytes: bytes,
        routine: str,
        include_summaries: bool = False,
        trace: bool = False,
    ) -> Response:
        body: Dict[str, Any] = {
            "image_b64": base64.b64encode(image_bytes).decode("ascii"),
            "routine": routine,
        }
        if include_summaries:
            body["include_summaries"] = True
        return self.request(
            "POST", "/v1/query", body,
            headers={"X-Repro-Trace": "1"} if trace else None,
        )
