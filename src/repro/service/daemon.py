"""The analysis daemon: ``repro.api`` behind a long-running HTTP API.

Spike's cold analysis of a gcc-shape image is front-end dominated
(decode, CFG build, PSG construction); an optimizer driver that
re-execs per request pays that cost every time.  The daemon keeps
:class:`~repro.api.AnalysisSession` state warm between requests —
retained payloads for unchanged images, SUM2 caches for edits, memoized
query front-ends — behind one versioned result API (the same schema-1
payloads the CLI ``--json`` flag prints; see
:mod:`repro.interproc.results`).

Endpoints::

    GET  /healthz      liveness ("ok", or "draining" + 503 during
                       shutdown) plus uptime, in-flight request count,
                       and retained-session count/bytes
    GET  /metricsz     cumulative obs-registry counters + registry
                       occupancy; ``?include=histograms`` adds the
                       latency distributions; ``?format=prometheus``
                       (or ``Accept: text/plain``) switches to
                       Prometheus text exposition
    POST /v1/analyze   whole-program analysis of a posted image
    POST /v1/query     one-routine demand query (solves only the
                       dependency cones)

Every POST is measured into ``service.request.seconds{endpoint=,warm=}``
(plus queue-wait and solve-stage sub-histograms), logged as one
structured ``repro.service.access`` line stamped with the request's run
id, and — with ``X-Repro-Trace: 1`` — traced: the response payload
gains a ``trace`` key holding the request's Perfetto span JSON.  With
``--trace-dir`` the daemon additionally samples 1-in-N requests' traces
to disk.

``POST`` bodies are either raw image bytes
(``Content-Type: application/octet-stream``, options in the query
string) or JSON (``{"image_b64": ..., ...options}``).  Options:
``jobs`` (worker count), ``include_summaries`` (embed rendered
summaries), ``edit`` (``{"routine": name}`` — analyze the image with
one instruction of ``routine`` perturbed, warm-starting from the base
image's SUM2 cache; the routine defaults to the first editable one),
and for ``/v1/query`` the mandatory ``routine``.

Multi-tenancy: the ``X-Repro-Tenant`` header namespaces all retained
state (see :mod:`repro.service.registry`).  Responses carry
``X-Repro-Run-Id`` (the request's trace/log correlation id),
``X-Repro-Warm`` (``hit`` when served from retained state) and
``X-Repro-Schema``.

Concurrency: a threading HTTP server; requests against the same image
serialize on the entry lock, requests against different images solve
concurrently.  ``SIGTERM``/``SIGINT`` drain gracefully — in-flight
requests complete, new ones get 503.
"""

from __future__ import annotations

import base64
import binascii
import json
import logging
import os
import signal
import socket
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from repro.api import (
    AnalysisConfig,
    AnalysisError,
    AnalysisSession,
    SCHEMA_VERSION,
    UnknownRoutineError,
)
from repro.obs import REGISTRY, clear_run_id, new_run_id, span
from repro.obs.prometheus import render_prometheus
from repro.obs.tracer import pop_local_tracer, push_local_tracer
from repro.program.image import ImageFormatError
from repro.service.registry import (
    DEFAULT_MAX_BYTES,
    SessionEntry,
    SessionRegistry,
    TenantError,
    validate_tenant,
)
from repro.workloads.mutate import first_editable_routine, perturb_routine

_log = logging.getLogger(__name__)

#: One structured line per request (see ``docs/service.md``): run id,
#: verb/path, tenant, status, warm verdict, wall milliseconds, response
#: bytes, and the in-flight depth at completion.  Separate from the
#: module logger so operators can route/flush access lines on their own.
_access_log = logging.getLogger("repro.service.access")

#: Reject request bodies beyond this size before reading them fully.
DEFAULT_MAX_REQUEST_BYTES = 64 * 1024 * 1024


class RequestError(Exception):
    """A client error with an HTTP status code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class ServiceConfig:
    """Daemon configuration (the ``spike-analyze serve`` flags)."""

    host: str = "127.0.0.1"
    port: int = 8484
    #: When set, serve HTTP over this unix domain socket instead of TCP.
    socket_path: Optional[str] = None
    #: Directory for per-tenant SUM2 sidecars (disabled when ``None``).
    cache_dir: Optional[str] = None
    #: Registry byte budget for retained sessions (LRU beyond it).
    max_bytes: int = DEFAULT_MAX_BYTES
    max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES
    #: Default worker count for solves (per-request ``jobs`` overrides).
    jobs: Optional[int] = None
    #: When set, 1-in-``trace_sample`` requests export their Perfetto
    #: span JSON to ``<trace_dir>/<run_id>.json``.
    trace_dir: Optional[str] = None
    trace_sample: int = 10
    #: Process-wide cross-image summary store
    #: (:mod:`repro.interproc.store`): every tenant's solves read
    #: through and publish into it, so successive builds sharing
    #: routines warm each other — while SUM2 sidecars keep carrying the
    #: image-specific phase-2 state for edit requests.
    store_dir: Optional[str] = None


class _UnixHTTPServer(ThreadingHTTPServer):
    """HTTP over an ``AF_UNIX`` stream socket (CI smoke, local IPC)."""

    address_family = socket.AF_UNIX

    def server_bind(self) -> None:
        path = self.server_address
        if isinstance(path, str) and os.path.exists(path):
            os.unlink(path)
        self.socket.bind(path)
        # HTTPServer.server_bind derives these from an AF_INET
        # getsockname; give the handler sane values for a path address.
        self.server_name = "localhost"
        self.server_port = 0

    def get_request(self) -> Tuple[socket.socket, Any]:
        request, _ = self.socket.accept()
        # BaseHTTPRequestHandler formats client_address[0] into log
        # lines; AF_UNIX peers have no address, so fake a pair.
        return request, ("unix", 0)


class AnalysisDaemon:
    """The registry, the HTTP server, and the drain protocol."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        analysis_config = None
        if self.config.jobs is not None or self.config.store_dir is not None:
            store = None
            if self.config.store_dir is not None:
                from repro.interproc.store import SummaryStore

                store = SummaryStore(self.config.store_dir)
            analysis_config = AnalysisConfig(
                jobs=self.config.jobs if self.config.jobs is not None else 1,
                store=store,
            )
        self.registry = SessionRegistry(
            max_bytes=self.config.max_bytes,
            cache_dir=self.config.cache_dir,
            config=analysis_config,
        )
        self._draining = threading.Event()
        self.started = time.time()
        # In-flight request depth (POST endpoints only) and a monotonic
        # request sequence for 1-in-N trace sampling; both are touched
        # from concurrent handler threads.
        self._inflight = 0
        self._request_seq = 0
        self._inflight_lock = threading.Lock()
        if self.config.trace_dir:
            os.makedirs(self.config.trace_dir, exist_ok=True)
        self.server = self._build_server()

    # -- lifecycle -----------------------------------------------------

    def _build_server(self):
        daemon = self

        class Handler(_Handler):
            pass

        Handler.daemon = daemon
        if self.config.socket_path:
            server = _UnixHTTPServer(self.config.socket_path, Handler)
        else:
            server = ThreadingHTTPServer(
                (self.config.host, self.config.port), Handler
            )
        # Drain semantics: server_close() must wait for in-flight
        # handler threads rather than abandon them mid-solve.
        server.daemon_threads = False
        server.block_on_close = True
        return server

    @property
    def address(self) -> str:
        """Where the daemon is reachable (host:port or socket path)."""
        if self.config.socket_path:
            return self.config.socket_path
        host, port = self.server.server_address[:2]
        return f"{host}:{port}"

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    @property
    def inflight(self) -> int:
        with self._inflight_lock:
            return self._inflight

    def _request_started(self) -> int:
        """Count a request in; returns its 1-based sequence number."""
        with self._inflight_lock:
            self._inflight += 1
            self._request_seq += 1
            return self._request_seq

    def _request_finished(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1

    def _trace_sampled(self, sequence: int) -> bool:
        """Does 1-in-N disk sampling want this request's trace?"""
        return (
            self.config.trace_dir is not None
            and self.config.trace_sample > 0
            and sequence % self.config.trace_sample == 0
        )

    def serve_forever(self, install_signal_handlers: bool = False) -> None:
        """Serve until :meth:`drain` (or a signal) stops the loop.

        Signal handlers can only be installed from the main thread;
        tests run the daemon on a worker thread and call :meth:`drain`
        directly.
        """
        if install_signal_handlers:
            for signum in (signal.SIGTERM, signal.SIGINT):
                signal.signal(signum, self._handle_signal)
        _log.info("analysis daemon serving on %s", self.address)
        try:
            self.server.serve_forever(poll_interval=0.1)
        finally:
            self.server.server_close()
            if self.config.socket_path:
                try:
                    os.unlink(self.config.socket_path)
                except OSError:
                    pass
            # in_flight must read 0 here: server_close joined every
            # handler thread.  The CI load-smoke job asserts on this
            # line after SIGTERM.
            _log.info(
                "analysis daemon stopped (in_flight=%d)", self.inflight
            )

    def _handle_signal(self, signum, frame) -> None:
        _log.info("signal %d: draining", signum)
        self.drain()

    def drain(self) -> None:
        """Stop accepting work; let in-flight requests finish.

        Idempotent.  ``serve_forever`` returns once the accept loop
        stops; ``server_close`` then joins the handler threads.
        """
        if self._draining.is_set():
            return
        self._draining.set()
        # shutdown() blocks until serve_forever exits — never call it
        # from a handler thread directly.
        threading.Thread(target=self.server.shutdown, daemon=True).start()

    def health_payload(self) -> Dict[str, object]:
        """The ``/healthz`` body: liveness plus the cheap occupancy
        numbers the load driver and CI smoke assert on."""
        sessions, session_bytes = self.registry.occupancy()
        return {
            "status": "draining" if self.draining else "ok",
            "uptime_seconds": round(time.time() - self.started, 3),
            "inflight": self.inflight,
            "sessions": sessions,
            "session_bytes": session_bytes,
        }

    # -- request handling ----------------------------------------------

    def handle_analyze(
        self, tenant: str, body: Dict[str, Any]
    ) -> Tuple[Dict[str, object], bool]:
        """``POST /v1/analyze`` → (payload, served-warm)."""
        image_bytes = _image_bytes(body)
        jobs = _jobs_option(body)
        entry = self.registry.acquire(tenant, image_bytes)
        edit = body.get("edit")
        with _entry_locked(entry, "analyze"):
            if edit is not None:
                return self._analyze_edit(entry, edit, jobs)
            if entry.payload is not None:
                REGISTRY.inc("service.result.warm")
                return entry.payload, True
            with _staged("analyze", "service.analyze", tenant=tenant):
                if self.config.store_dir is not None:
                    # With a process-wide store, cold solves go through
                    # the incremental engine so they *consult* the
                    # store (a plain analyze only publishes); the
                    # refreshed cache also seeds future edit requests.
                    cold = entry.session.analyze_incremental(jobs=jobs)
                    self.registry.note_cache(entry, cold.cache)
                else:
                    entry.session.analyze(jobs=jobs)
                # Retained with summaries embedded; the handler strips
                # them unless the request asked for them.
                entry.payload = entry.session.to_json(include_summaries=True)
            REGISTRY.inc("service.result.cold")
            return entry.payload, False

    def _analyze_edit(
        self, entry: SessionEntry, edit: Any, jobs: Optional[int]
    ) -> Tuple[Dict[str, object], bool]:
        """Analyze the entry's image with one routine perturbed,
        warm-starting from the base image's SUM2 cache."""
        if not isinstance(edit, dict):
            raise RequestError(400, "edit must be an object")
        warm = entry.cache is not None
        if not warm:
            # One-time: build the base cache a future edit warms from.
            with _staged("edit.seed", "service.edit.seed"):
                cold = entry.session.analyze_incremental(jobs=jobs)
                self.registry.note_cache(entry, cold.cache)
        program = entry.session.program
        routine = edit.get("routine")
        try:
            if routine is None:
                routine = first_editable_routine(program)
            mutated = perturb_routine(program, routine)
        except (KeyError, ValueError) as error:
            raise RequestError(400, f"cannot apply edit: {error}") from error
        with _staged("edit.analyze", "service.edit.analyze", routine=routine):
            session = AnalysisSession.from_program(
                mutated, self.registry.config
            )
            session.analyze_incremental(cache=entry.cache, jobs=jobs)
            payload = session.to_json(include_summaries=True)
        REGISTRY.inc("service.result.warm" if warm else "service.result.cold")
        return payload, warm

    def handle_query(
        self, tenant: str, body: Dict[str, Any]
    ) -> Tuple[Dict[str, object], bool]:
        """``POST /v1/query`` → (payload, served-warm)."""
        image_bytes = _image_bytes(body)
        routine = body.get("routine")
        if not isinstance(routine, str) or not routine:
            raise RequestError(400, "missing routine name")
        entry = self.registry.acquire(tenant, image_bytes)
        with _entry_locked(entry, "query"):
            # The session memoizes its query cache and front-end, so a
            # second query on a retained session skips the cold setup.
            warm = entry.session.has_query_state
            with _staged(
                "query", "service.query", tenant=tenant, routine=routine
            ):
                entry.session.query(routine)
                payload = entry.session.to_json(include_summaries=True)
        REGISTRY.inc("service.result.warm" if warm else "service.result.cold")
        return payload, warm

    def metrics_payload(
        self, include_histograms: bool = False
    ) -> Dict[str, object]:
        payload = {
            "counters": REGISTRY.as_dict(),
            "registry": self.registry.stats(),
            "draining": self.draining,
        }
        # Opt-in (``?include=histograms``) so the default JSON body
        # stays byte-identical for pre-histogram consumers.
        if include_histograms:
            payload["histograms"] = REGISTRY.histograms_dict()
        return payload


# ----------------------------------------------------------------------
# Instrumentation helpers
# ----------------------------------------------------------------------


@contextmanager
def _entry_locked(entry: SessionEntry, endpoint: str):
    """Hold the entry lock, recording how long this request queued
    behind other solves of the same image
    (``service.queue_wait.seconds{endpoint=}``)."""
    wait_start = time.perf_counter()
    entry.lock.acquire()
    REGISTRY.observe_hist(
        "service.queue_wait.seconds",
        time.perf_counter() - wait_start,
        endpoint=endpoint,
    )
    try:
        yield
    finally:
        entry.lock.release()


@contextmanager
def _staged(stage: str, span_name: str, **span_args: Any):
    """A traced solve stage that also feeds
    ``service.stage.seconds{stage=}`` — the sub-histograms that let a
    slow p99 be attributed to seeding vs solving vs querying."""
    start = time.perf_counter()
    with span(span_name, **span_args):
        yield
    REGISTRY.observe_hist(
        "service.stage.seconds", time.perf_counter() - start, stage=stage
    )


# ----------------------------------------------------------------------
# Option parsing
# ----------------------------------------------------------------------


def _image_bytes(body: Dict[str, Any]) -> bytes:
    raw = body.get("image_bytes")
    if isinstance(raw, bytes):
        return raw
    encoded = body.get("image_b64")
    if not isinstance(encoded, str):
        raise RequestError(400, "missing image: supply image_b64")
    try:
        return base64.b64decode(encoded, validate=True)
    except (binascii.Error, ValueError) as error:
        raise RequestError(400, f"invalid image_b64: {error}") from error


def _jobs_option(body: Dict[str, Any]) -> Optional[int]:
    jobs = body.get("jobs")
    if jobs is None:
        return None
    try:
        return int(jobs)
    except (TypeError, ValueError) as error:
        raise RequestError(400, f"invalid jobs value: {jobs!r}") from error


def _bool_option(body: Dict[str, Any], key: str) -> bool:
    value = body.get(key, False)
    if isinstance(value, bool):
        return value
    if isinstance(value, str):
        return value.lower() in ("1", "true", "yes")
    return bool(value)


# ----------------------------------------------------------------------
# The HTTP layer
# ----------------------------------------------------------------------


class _Handler(BaseHTTPRequestHandler):
    daemon: AnalysisDaemon
    protocol_version = "HTTP/1.1"
    #: Advertised in the Server header; independent of the repo version.
    server_version = "spike-analysis-daemon/1"

    # -- plumbing ------------------------------------------------------

    def log_message(self, format: str, *args) -> None:
        _log.debug("%s %s", self.address_string(), format % args)

    def _send_json(
        self,
        status: int,
        payload: Dict[str, object],
        headers: Optional[Dict[str, str]] = None,
    ) -> int:
        blob = json.dumps(payload, indent=2, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(blob)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(blob)
        return len(blob)

    def _send_text(self, status: int, text: str, content_type: str) -> int:
        blob = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        self.wfile.write(blob)
        return len(blob)

    def _read_body(self) -> Dict[str, Any]:
        """The request body as an options dict.

        Raw image posts become ``{"image_bytes": ...}`` with options
        merged from the query string; JSON posts are returned as-is.
        """
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            raise RequestError(411, "invalid Content-Length")
        if length <= 0:
            raise RequestError(411, "a request body is required")
        if length > self.daemon.config.max_request_bytes:
            raise RequestError(
                413,
                f"request body of {length} bytes exceeds the "
                f"{self.daemon.config.max_request_bytes} byte limit",
            )
        data = self.rfile.read(length)
        content_type = (self.headers.get("Content-Type") or "").split(";")[0]
        if content_type == "application/octet-stream":
            body: Dict[str, Any] = {"image_bytes": data}
            # keep_blank_values: "?edit=" means "edit the default
            # routine", and dropping it would silently serve a plain
            # warm repeat instead.
            query = dict(
                parse_qsl(urlsplit(self.path).query, keep_blank_values=True)
            )
            if "routine" in query:
                body["routine"] = query["routine"]
            if "jobs" in query:
                body["jobs"] = query["jobs"]
            if "include_summaries" in query:
                body["include_summaries"] = query["include_summaries"]
            if "edit" in query:
                body["edit"] = {"routine": query["edit"]} \
                    if query["edit"] not in ("", "1", "true") else {}
            return body
        try:
            body = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise RequestError(400, f"invalid JSON body: {error}") from error
        if not isinstance(body, dict):
            raise RequestError(400, "JSON body must be an object")
        return body

    def _tenant(self) -> str:
        return validate_tenant(self.headers.get("X-Repro-Tenant"))

    # -- dispatch ------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        parts = urlsplit(self.path)
        path = parts.path
        if path == "/healthz":
            payload = self.daemon.health_payload()
            self._send_json(503 if self.daemon.draining else 200, payload)
        elif path == "/metricsz":
            query = dict(parse_qsl(parts.query))
            accept = self.headers.get("Accept") or ""
            if (
                query.get("format") == "prometheus"
                or "text/plain" in accept
            ):
                self._send_text(
                    200,
                    render_prometheus(),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            else:
                self._send_json(
                    200,
                    self.daemon.metrics_payload(
                        include_histograms=(
                            query.get("include") == "histograms"
                        )
                    ),
                )
        else:
            self._send_json(404, {"error": f"unknown path {path}"})

    def do_POST(self) -> None:  # noqa: N802 (http.server naming)
        path = urlsplit(self.path).path
        if path not in ("/v1/analyze", "/v1/query"):
            self._send_json(404, {"error": f"unknown path {path}"})
            return
        if self.daemon.draining:
            self._send_json(503, {"error": "daemon is draining"})
            return
        endpoint = path.rsplit("/", 1)[1]
        REGISTRY.inc("service.requests", endpoint=endpoint)
        sequence = self.daemon._request_started()
        run_id = new_run_id()
        start = time.perf_counter()
        want_trace = (self.headers.get("X-Repro-Trace") or "").lower() in (
            "1", "true", "yes",
        )
        sampled = self.daemon._trace_sampled(sequence)
        # A request-local tracer (thread-local override) captures this
        # request's spans — including merged worker spans — without
        # interleaving concurrent requests.
        tracer = push_local_tracer() if (want_trace or sampled) else None
        status = 500
        warm_label = "error"
        tenant = "-"
        headers: Dict[str, str] = {}
        out: Dict[str, object] = {"error": "internal error"}
        try:
            try:
                body = self._read_body()
                tenant = self._tenant()
                with span("service.request", endpoint=endpoint):
                    if endpoint == "analyze":
                        payload, warm = self.daemon.handle_analyze(
                            tenant, body
                        )
                    else:
                        payload, warm = self.daemon.handle_query(
                            tenant, body
                        )
                warm_label = "true" if warm else "false"
                if not _bool_option(body, "include_summaries"):
                    payload = {
                        key: value
                        for key, value in payload.items()
                        if key != "summaries"
                    }
                headers = {
                    "X-Repro-Run-Id": run_id,
                    "X-Repro-Warm": "hit" if warm else "miss",
                    "X-Repro-Schema": str(SCHEMA_VERSION),
                }
                if tracer is not None and want_trace:
                    # Copy before attaching: the retained payload is
                    # shared with every future warm repeat of this
                    # image.
                    trace_doc = tracer.to_chrome_trace()
                    payload = dict(payload)
                    payload["trace"] = trace_doc
                    headers["X-Repro-Trace-Spans"] = str(
                        len(trace_doc["traceEvents"])
                    )
                status, out = 200, payload
            except RequestError as error:
                status, out = error.status, {"error": str(error)}
                REGISTRY.inc("service.errors", status=error.status)
            except (TenantError, ImageFormatError) as error:
                status, out = 400, {"error": str(error)}
                REGISTRY.inc("service.errors", status=400)
            except UnknownRoutineError as error:
                status, out = 404, {"error": str(error)}
                REGISTRY.inc("service.errors", status=404)
            except AnalysisError as error:
                status, out = 500, {"error": str(error)}
                REGISTRY.inc("service.errors", status=500)
            except Exception as error:  # pragma: no cover - last resort
                _log.exception("unhandled error serving %s", self.path)
                status, out = 500, {"error": f"internal error: {error}"}
                REGISTRY.inc("service.errors", status=500)
            # Record *before* the response bytes leave: a client may
            # scrape /metricsz the instant it reads its response, and
            # "histogram count == requests answered" must hold exactly
            # at that point (the CI load-smoke asserts it).
            duration = time.perf_counter() - start
            REGISTRY.observe_hist(
                "service.request.seconds",
                duration,
                endpoint=endpoint,
                warm=warm_label,
            )
            sent = self._send_json(status, out, headers=headers)
            _access_log.info(
                "run=%s method=POST path=%s tenant=%s status=%d warm=%s "
                "dur_ms=%.3f bytes=%d inflight=%d",
                run_id, path, tenant, status, warm_label,
                duration * 1e3, sent, self.daemon.inflight,
            )
        finally:
            if tracer is not None:
                pop_local_tracer()
                if sampled and self.daemon.config.trace_dir:
                    try:
                        tracer.export(
                            os.path.join(
                                self.daemon.config.trace_dir,
                                f"{run_id}.json",
                            )
                        )
                    except OSError as error:
                        _log.warning(
                            "could not write trace sample: %s", error
                        )
            self.daemon._request_finished()
            clear_run_id()


def serve(config: Optional[ServiceConfig] = None) -> None:
    """Build a daemon and serve until SIGTERM/SIGINT (blocking)."""
    AnalysisDaemon(config).serve_forever(install_signal_handlers=True)
