"""``repro.service`` — the analysis-as-a-service daemon.

A long-running HTTP front door over :class:`repro.api.AnalysisSession`:
post an executable image, get back the same versioned schema-1 result
payload the CLI ``--json`` flag prints, with the session (and its
warm-start caches) retained server-side so repeated and incremental
requests skip the cold front end.  See ``docs/service.md`` and
:mod:`repro.service.daemon` for the endpoint reference.
"""

from repro.service.client import Response, ServiceClient, ServiceError
from repro.service.daemon import (
    AnalysisDaemon,
    RequestError,
    ServiceConfig,
    serve,
)
from repro.service.registry import (
    DEFAULT_MAX_BYTES,
    DEFAULT_TENANT,
    SessionEntry,
    SessionRegistry,
    TenantError,
    validate_tenant,
)

__all__ = [
    "AnalysisDaemon",
    "DEFAULT_MAX_BYTES",
    "DEFAULT_TENANT",
    "RequestError",
    "Response",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "SessionEntry",
    "SessionRegistry",
    "TenantError",
    "serve",
    "validate_tenant",
]
