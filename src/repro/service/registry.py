"""The daemon's session registry: warm analysis state per image.

One :class:`~repro.api.AnalysisSession` is retained per
``(tenant, image-fingerprint)`` pair, together with its most recent
schema-1 payload and its SUM2 warm-start cache.  A repeated request for
an unchanged image is answered from the retained payload without
touching the front end or the solver — that is the daemon's whole
reason to exist (cold gcc-shape analysis is front-end dominated; see
``benchmarks/bench_service.py``).

Entries are LRU-ordered and evicted when the registry's byte budget is
exceeded.  An entry's cost is the image size plus the serialized size
of whatever summaries it retains — a deliberate underestimate of true
resident footprint, but one that tracks it monotonically and is cheap
to compute.

Tenants are namespaces: the same image posted under two tenants gets
two independent entries (and two sidecar files), so one tenant's
traffic can neither warm nor evict-probe another's.  When a cache
directory is configured, each entry's SUM2 cache is persisted to
``<cache_dir>/<tenant>/<fingerprint>.sum2`` and reloaded on the next
daemon start, so edit requests warm-start across restarts.
"""

from __future__ import annotations

import logging
import os
import re
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.api import AnalysisConfig, AnalysisSession
from repro.interproc.persist import (
    SummaryCache,
    SummaryFormatError,
    dump_cache,
    image_fingerprint,
    load_cache,
)
from repro.obs import REGISTRY

_log = logging.getLogger(__name__)

#: Tenant names are path components of sidecar files; restrict them to
#: a conservative token so a crafted header cannot traverse directories.
TENANT_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

DEFAULT_TENANT = "public"

#: Default registry budget: enough for a handful of Table-2 images.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


class TenantError(ValueError):
    """A tenant header that fails :data:`TENANT_PATTERN` validation."""


def validate_tenant(tenant: Optional[str]) -> str:
    """The effective tenant namespace for a request header value."""
    if tenant is None or tenant == "":
        return DEFAULT_TENANT
    if not TENANT_PATTERN.match(tenant):
        raise TenantError(f"invalid tenant name: {tenant!r}")
    return tenant


@dataclass
class SessionEntry:
    """One retained analysis: session, last payload, warm caches."""

    tenant: str
    fingerprint: int
    session: AnalysisSession
    image_nbytes: int
    #: Serializes solves on this entry: one request analyzes a given
    #: image at a time; requests for *different* images run unhindered.
    lock: threading.Lock = field(default_factory=threading.Lock)
    #: The schema-1 payload of the last full analyze (no edit), served
    #: verbatim to warm repeats.
    payload: Optional[Dict[str, object]] = None
    #: SUM2 warm-start state for edit requests.
    cache: Optional[SummaryCache] = None
    cache_nbytes: int = 0
    hits: int = 0

    @property
    def nbytes(self) -> int:
        return self.image_nbytes + self.cache_nbytes

    @property
    def key(self) -> Tuple[str, int]:
        return (self.tenant, self.fingerprint)


class SessionRegistry:
    """LRU map of (tenant, fingerprint) → :class:`SessionEntry`."""

    def __init__(
        self,
        max_bytes: int = DEFAULT_MAX_BYTES,
        cache_dir: Optional[str] = None,
        config: Optional[AnalysisConfig] = None,
    ) -> None:
        self.max_bytes = max_bytes
        self.cache_dir = cache_dir
        self.config = config
        self._entries: "OrderedDict[Tuple[str, int], SessionEntry]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()

    # -- lookup --------------------------------------------------------

    def acquire(self, tenant: str, image_bytes: bytes) -> SessionEntry:
        """Get or create the entry for an image, refreshing LRU order.

        The hit path must stay cheap — it is the daemon's warm-repeat
        fast path — so only the content fingerprint is computed before
        the lookup; the image is decoded (and validated) on a miss.
        Malformed images raise out of
        :meth:`AnalysisSession.from_image_bytes` and nothing is
        registered.
        """
        key = (tenant, image_fingerprint(image_bytes))
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                entry.hits += 1
                REGISTRY.inc("service.session.hit")
                return entry
        # Decode outside the lock: a slow miss must not block hits on
        # other images.  A racing duplicate miss is harmless — last
        # writer wins and the loser's session is garbage collected.
        session = AnalysisSession.from_image_bytes(image_bytes, self.config)
        entry = SessionEntry(
            tenant=tenant,
            fingerprint=session.image_fingerprint,
            session=session,
            image_nbytes=len(image_bytes),
        )
        entry.cache = self._load_sidecar(entry)
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                self._entries.move_to_end(key)
                existing.hits += 1
                REGISTRY.inc("service.session.hit")
                return existing
            self._entries[key] = entry
            REGISTRY.inc("service.session.miss")
            self._evict_to_budget_locked()
        return entry

    def note_cache(self, entry: SessionEntry, cache: SummaryCache) -> None:
        """Record an entry's refreshed SUM2 cache (and persist it)."""
        blob = dump_cache(cache)
        with self._lock:
            entry.cache = cache
            entry.cache_nbytes = len(blob)
            self._evict_to_budget_locked()
        self._write_sidecar(entry, blob)

    # -- eviction ------------------------------------------------------

    def total_bytes(self) -> int:
        with self._lock:
            return sum(e.nbytes for e in self._entries.values())

    def _evict_to_budget_locked(self) -> None:
        total = sum(e.nbytes for e in self._entries.values())
        REGISTRY.observe_max("service.registry.max_bytes", total)
        while total > self.max_bytes and len(self._entries) > 1:
            key, evicted = self._entries.popitem(last=False)
            total -= evicted.nbytes
            REGISTRY.inc("service.session.evicted")
            _log.info(
                "evicted session %s/%016x (%d bytes, %d hits)",
                evicted.tenant, evicted.fingerprint,
                evicted.nbytes, evicted.hits,
            )

    # -- stats ---------------------------------------------------------

    def occupancy(self) -> Tuple[int, int]:
        """``(session_count, retained_bytes)`` — the cheap pair
        ``/healthz`` reports on every probe (no per-entry dicts)."""
        with self._lock:
            return (
                len(self._entries),
                sum(e.nbytes for e in self._entries.values()),
            )

    def stats(self) -> Dict[str, object]:
        with self._lock:
            entries: List[Dict[str, object]] = [
                {
                    "tenant": entry.tenant,
                    "fingerprint": format(entry.fingerprint, "016x"),
                    "bytes": entry.nbytes,
                    "hits": entry.hits,
                    "warm": entry.payload is not None,
                }
                for entry in self._entries.values()
            ]
            return {
                "sessions": len(entries),
                "bytes": sum(e.nbytes for e in self._entries.values()),
                "max_bytes": self.max_bytes,
                "entries": entries,
            }

    # -- sidecar persistence -------------------------------------------

    def _sidecar_path(self, entry: SessionEntry) -> Optional[str]:
        if self.cache_dir is None:
            return None
        return os.path.join(
            self.cache_dir, entry.tenant, f"{entry.fingerprint:016x}.sum2"
        )

    def _load_sidecar(self, entry: SessionEntry) -> Optional[SummaryCache]:
        path = self._sidecar_path(entry)
        if path is None or not os.path.exists(path):
            return None
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
            cache = load_cache(blob)
        except (OSError, SummaryFormatError) as error:
            _log.warning("ignoring unreadable sidecar %s: %s", path, error)
            return None
        entry.cache_nbytes = len(blob)
        REGISTRY.inc("service.sidecar.load")
        return cache

    def _write_sidecar(self, entry: SessionEntry, blob: bytes) -> None:
        path = self._sidecar_path(entry)
        if path is None:
            return
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            tmp = f"{path}.tmp.{os.getpid()}"
            with open(tmp, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except OSError as error:
            _log.warning("could not persist sidecar %s: %s", path, error)
            return
        REGISTRY.inc("service.sidecar.write")
