"""Reachability utilities for carving flow-summary-edge subgraphs.

A flow-summary edge ``(N_X, N_Y)`` represents every control-flow path
from location X to location Y that does not pass *through* another PSG
boundary (a call instruction, or — when branch nodes are enabled — a
multiway branch).  Because basic blocks end exactly at those
boundaries, a path may *enter* a boundary block but never continue out
of it: the boundary block's outgoing arcs are cut.

The subgraph of the CFG represented by the edge (Figure 5 of the paper)
is therefore::

    forward_reachable(starts(X))  ∩  backward_reachable(target(Y))

computed over the cut graph.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set

from repro.cfg.cfg import BasicBlock


def forward_reachable(
    blocks: Sequence[BasicBlock],
    starts: Iterable[int],
    blocked: Set[int],
) -> Set[int]:
    """Blocks reachable from ``starts`` without leaving a blocked block.

    A block in ``blocked`` may be *reached* (it can be the endpoint of a
    path) but its outgoing arcs are never traversed.
    """
    reached: Set[int] = set()
    stack: List[int] = []
    for start in starts:
        if start not in reached:
            reached.add(start)
            stack.append(start)
    while stack:
        index = stack.pop()
        if index in blocked:
            continue
        for successor in blocks[index].successors:
            if successor not in reached:
                reached.add(successor)
                stack.append(successor)
    return reached


def backward_reachable(
    blocks: Sequence[BasicBlock],
    target: int,
    blocked: Set[int],
) -> Set[int]:
    """Blocks from which ``target`` is reachable in the cut graph.

    An arc ``u -> v`` is traversable only when ``u`` is not blocked, so
    a blocked block can end a path at ``target`` only by *being*
    ``target``.
    """
    reached: Set[int] = {target}
    stack: List[int] = [target]
    while stack:
        index = stack.pop()
        for predecessor in blocks[index].predecessors:
            if predecessor in blocked or predecessor in reached:
                continue
            reached.add(predecessor)
            stack.append(predecessor)
    return reached
