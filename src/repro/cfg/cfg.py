"""Per-routine control-flow graph data structures.

Following the paper, a basic block is ended by a branch **or by a call
instruction**; the instruction after a call starts a new block (the
call's *return point*).  Each block therefore has one of the terminator
kinds below, and the arcs out of a ``CALL`` block lead to its return
point, while the arcs out of a ``MULTIWAY`` block lead to the extracted
jump-table targets.

Exits are typed (:class:`ExitKind`): ``RETURN`` exits return to callers
and participate in phase-2 liveness; ``HALT`` exits terminate the
program (nothing is live after them); ``UNKNOWN_JUMP`` exits leave the
routine through an indirect jump whose targets could not be recovered,
so *all* registers must be assumed live (§3.5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.isa.instructions import Instruction
from repro.program.model import Routine


class CfgError(ValueError):
    """Raised when a routine's control flow cannot be modeled."""


class TerminatorKind(enum.Enum):
    """Why a basic block ends."""

    FALLTHROUGH = "fallthrough"      # next instruction is a leader
    COND_BRANCH = "cond_branch"
    UNCOND_BRANCH = "uncond_branch"
    MULTIWAY = "multiway"            # indirect jump with a recovered table
    UNKNOWN_JUMP = "unknown_jump"    # indirect jump, targets unknown
    CALL = "call"                    # BSR/JSR; successor is the return point
    RETURN = "return"                # RET
    HALT = "halt"                    # CALL_PAL HALT


class ExitKind(enum.Enum):
    """How control leaves the routine at an exit block."""

    RETURN = "return"
    HALT = "halt"
    UNKNOWN_JUMP = "unknown_jump"


@dataclass(frozen=True)
class CallSite:
    """A call instruction ending a basic block.

    ``targets`` lists every routine the call can reach:

    * one name — a direct call or a resolved indirect call;
    * several names — an indirect call covered by a linker-provided
      target-set hint (§3.5's suggested improvement: e.g. the
      implementations behind a virtual dispatch);
    * empty — an unknown target, analyzed under the calling-standard
      assumptions of §3.5.
    """

    block: int
    instruction_index: int
    targets: Tuple[str, ...]
    indirect: bool

    @property
    def callee(self) -> Optional[str]:
        """The unique target, when there is exactly one."""
        return self.targets[0] if len(self.targets) == 1 else None

    @property
    def is_unknown(self) -> bool:
        return not self.targets


@dataclass
class BasicBlock:
    """A basic block of a routine's CFG.

    ``start``/``stop`` index into the routine's instruction list;
    ``instructions`` is the corresponding slice.  ``successors`` and
    ``predecessors`` hold block indices within the same CFG.
    """

    index: int
    start: int
    stop: int
    instructions: List[Instruction]
    terminator: TerminatorKind
    successors: List[int] = field(default_factory=list)
    predecessors: List[int] = field(default_factory=list)

    def __len__(self) -> int:
        return self.stop - self.start

    @property
    def terminator_index(self) -> int:
        """Routine-relative index of the block's last instruction."""
        return self.stop - 1

    @property
    def is_exit(self) -> bool:
        return self.terminator in (
            TerminatorKind.RETURN,
            TerminatorKind.HALT,
            TerminatorKind.UNKNOWN_JUMP,
        )

    @property
    def ends_with_call(self) -> bool:
        return self.terminator == TerminatorKind.CALL

    @property
    def is_multiway(self) -> bool:
        return self.terminator == TerminatorKind.MULTIWAY


@dataclass
class ControlFlowGraph:
    """The CFG of one routine.

    Blocks are stored in instruction order; block 0 is the routine
    entry (routines have a single entry).  ``call_sites`` lists the
    blocks ended by calls; ``exits`` lists the exit blocks with their
    kinds.
    """

    routine: Routine
    blocks: List[BasicBlock]
    call_sites: List[CallSite]
    exits: List[Tuple[int, ExitKind]]

    def __post_init__(self) -> None:
        self._call_site_by_block: Dict[int, CallSite] = {
            site.block: site for site in self.call_sites
        }
        self._exit_kind_by_block: Dict[int, ExitKind] = dict(self.exits)

    @property
    def entry_index(self) -> int:
        """Index of the entry block (always 0)."""
        return 0

    @property
    def entry_block(self) -> BasicBlock:
        return self.blocks[0]

    @property
    def block_count(self) -> int:
        return len(self.blocks)

    @property
    def arc_count(self) -> int:
        """Number of intraprocedural arcs."""
        return sum(len(block.successors) for block in self.blocks)

    def block_of_instruction(self, instruction_index: int) -> BasicBlock:
        """The block containing routine instruction ``instruction_index``."""
        low, high = 0, len(self.blocks) - 1
        while low <= high:
            mid = (low + high) // 2
            block = self.blocks[mid]
            if instruction_index < block.start:
                high = mid - 1
            elif instruction_index >= block.stop:
                low = mid + 1
            else:
                return block
        raise CfgError(
            f"{self.routine.name!r}: instruction index {instruction_index} "
            f"is outside every block"
        )

    def call_site_of(self, block_index: int) -> Optional[CallSite]:
        """The call site ending block ``block_index``, if any."""
        return self._call_site_by_block.get(block_index)

    def exit_kind_of(self, block_index: int) -> Optional[ExitKind]:
        """The exit kind of block ``block_index``, if it is an exit."""
        return self._exit_kind_by_block.get(block_index)

    def return_exits(self) -> List[int]:
        """Indices of blocks that exit via RET."""
        return [index for index, kind in self.exits if kind == ExitKind.RETURN]

    def successors_of(self, block_index: int) -> Sequence[int]:
        return self.blocks[block_index].successors

    def predecessors_of(self, block_index: int) -> Sequence[int]:
        return self.blocks[block_index].predecessors

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks)

    # ------------------------------------------------------------------
    # Consistency checking (used by tests and the property suite)
    # ------------------------------------------------------------------

    def check(self) -> None:
        """Verify structural invariants; raise :class:`CfgError`."""
        expected_start = 0
        for index, block in enumerate(self.blocks):
            if block.index != index:
                raise CfgError(f"block {index} has mismatched index {block.index}")
            if block.start != expected_start:
                raise CfgError(f"block {index} does not start where block "
                               f"{index - 1} stopped")
            if block.stop <= block.start:
                raise CfgError(f"block {index} is empty")
            expected_start = block.stop
            for successor in block.successors:
                if not 0 <= successor < len(self.blocks):
                    raise CfgError(f"block {index} has bad successor {successor}")
                if index not in self.blocks[successor].predecessors:
                    raise CfgError(
                        f"arc {index}->{successor} missing reverse predecessor"
                    )
            if block.is_exit and block.successors:
                raise CfgError(f"exit block {index} has successors")
        if expected_start != len(self.routine.instructions):
            raise CfgError("blocks do not cover the routine")
        for block_index, _kind in self.exits:
            if not self.blocks[block_index].is_exit:
                raise CfgError(f"exit list names non-exit block {block_index}")
