"""Control-flow graphs over decoded routines.

* :mod:`repro.cfg.cfg` — the per-routine CFG data structure: basic
  blocks (ended by branches *and* by call instructions, as the paper
  assumes), arcs, call sites and typed exits;
* :mod:`repro.cfg.build` — CFG construction from a routine: leader
  analysis, jump-table-driven multiway branches, and resolution of
  indirect-call targets by backward constant tracking;
* :mod:`repro.cfg.callgraph` — the interprocedural call graph plus the
  escape analysis that decides which routines may be called from
  unknown call sites;
* :mod:`repro.cfg.subgraph` — reachability utilities used to carve the
  per-flow-summary-edge CFG subgraphs of §3.1.
"""

from repro.cfg.cfg import (
    BasicBlock,
    CallSite,
    CfgError,
    ControlFlowGraph,
    ExitKind,
    TerminatorKind,
)
from repro.cfg.build import build_cfg, build_all_cfgs, resolve_register_constant
from repro.cfg.callgraph import CallGraph, build_call_graph
from repro.cfg.subgraph import backward_reachable, forward_reachable

__all__ = [
    "BasicBlock",
    "CallGraph",
    "CallSite",
    "CfgError",
    "ControlFlowGraph",
    "ExitKind",
    "TerminatorKind",
    "backward_reachable",
    "build_all_cfgs",
    "build_call_graph",
    "build_cfg",
    "forward_reachable",
    "resolve_register_constant",
]
