"""The interprocedural call graph.

Built on top of the per-routine CFGs, the call graph records, for every
routine, who calls it and from which call sites; which call sites have
unknown targets (and therefore use the §3.5 calling-standard
assumptions); and which routines are *externally callable* — exported
from the image, address-taken (their entry address escapes into memory
or past a block boundary, so an unresolved indirect call might reach
them), or the program entry itself.  Externally callable routines get
conservative live-at-exit seeds during phase 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.isa.instructions import ControlKind, Opcode
from repro.isa.registers import ZERO_REGISTER
from repro.program.model import Program
from repro.cfg.cfg import CallSite, ControlFlowGraph
from repro.cfg.build import build_all_cfgs


@dataclass
class CallGraph:
    """Call relationships among the routines of one program."""

    program: Program
    cfgs: Dict[str, ControlFlowGraph]
    #: callee name -> [(caller name, call site), ...] for resolved sites.
    callers: Dict[str, List[Tuple[str, CallSite]]]
    #: call sites whose target could not be resolved.
    unknown_sites: List[Tuple[str, CallSite]]
    #: routines whose entry address escapes.
    address_taken: Set[str]
    #: routines that may be entered from outside the analysis' view.
    externally_callable: Set[str]

    def callees_of(self, caller: str) -> List[str]:
        """Every possible target of every call site in ``caller``.

        Multi-target (hinted) sites contribute each of their targets;
        unknown sites contribute nothing.
        """
        names: List[str] = []
        for site in self.cfgs[caller].call_sites:
            names.extend(site.targets)
        return names

    def call_sites_of(self, caller: str) -> Sequence[CallSite]:
        return self.cfgs[caller].call_sites

    def callers_of(self, callee: str) -> List[Tuple[str, CallSite]]:
        return self.callers.get(callee, [])

    @property
    def routine_names(self) -> List[str]:
        return self.program.routine_names()

    # ------------------------------------------------------------------
    # Orderings
    # ------------------------------------------------------------------

    def strongly_connected_components(self) -> List[List[str]]:
        """Tarjan SCCs of the call graph, in reverse topological order.

        Each returned component lists routines that (transitively) call
        each other; components appear callees-first, so processing them
        in order lets phase 1 converge with few worklist revisits even
        in the presence of recursion.
        """
        names = self.routine_names
        successors: Dict[str, List[str]] = {
            name: self.callees_of(name) for name in names
        }
        index_of: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        components: List[List[str]] = []
        counter = [0]

        for root in names:
            if root in index_of:
                continue
            # Iterative Tarjan to survive deep call chains.
            work: List[Tuple[str, int]] = [(root, 0)]
            while work:
                node, child_index = work.pop()
                if child_index == 0:
                    index_of[node] = lowlink[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                recurse = False
                children = successors[node]
                while child_index < len(children):
                    child = children[child_index]
                    child_index += 1
                    if child not in index_of:
                        work.append((node, child_index))
                        work.append((child, 0))
                        recurse = True
                        break
                    if child in on_stack:
                        lowlink[node] = min(lowlink[node], index_of[child])
                if recurse:
                    continue
                if lowlink[node] == index_of[node]:
                    component: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    components.append(component)
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
        return components

    def reverse_topological_order(self) -> List[str]:
        """Routines ordered callees-before-callers (SCCs flattened)."""
        order: List[str] = []
        for component in self.strongly_connected_components():
            order.extend(component)
        return order

    def condensation(self) -> "Condensation":
        """The SCC condensation DAG (the incremental engine's
        dependency map; see :mod:`repro.interproc.incremental`)."""
        components = self.strongly_connected_components()
        component_of: Dict[str, int] = {}
        for index, component in enumerate(components):
            for name in component:
                component_of[name] = index
        callee_components: List[Set[int]] = [set() for _ in components]
        caller_components: List[Set[int]] = [set() for _ in components]
        for index, component in enumerate(components):
            for name in component:
                for callee in self.callees_of(name):
                    target = component_of[callee]
                    if target != index:
                        callee_components[index].add(target)
                        caller_components[target].add(index)
        return Condensation(
            components=components,
            component_of=component_of,
            callee_components=callee_components,
            caller_components=caller_components,
        )


@dataclass
class Condensation:
    """The call graph collapsed to its SCC DAG.

    ``components`` lists SCCs in reverse topological (callee-first)
    order, so iterating forward visits callees before callers — the
    phase-1 processing order — and iterating backward visits callers
    before callees — the phase-2 order.  Editing a routine dirties its
    whole component plus, transitively, its caller components (whose
    phase-1 summaries consume it) and its callee components (whose
    phase-2 liveness consumes it).
    """

    #: SCCs, callee-first; each is a list of routine names.
    components: List[List[str]]
    #: routine name -> index into :attr:`components`.
    component_of: Dict[str, int]
    #: component index -> indices of components it calls into.
    callee_components: List[Set[int]]
    #: component index -> indices of components that call into it.
    caller_components: List[Set[int]]

    def component_index(self, routine: str) -> int:
        return self.component_of[routine]

    def members(self, index: int) -> List[str]:
        return self.components[index]

    def _closure(self, roots: Set[int], step: List[Set[int]]) -> Set[int]:
        seen = set(roots)
        stack = list(roots)
        while stack:
            for neighbor in step[stack.pop()]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        return seen

    def transitive_caller_components(self, roots: Set[int]) -> Set[int]:
        """``roots`` plus every component that transitively calls into
        them (the phase-1 invalidation cone)."""
        return self._closure(roots, self.caller_components)

    def transitive_callee_components(self, roots: Set[int]) -> Set[int]:
        """``roots`` plus every component they transitively call into
        (the phase-2 invalidation cone)."""
        return self._closure(roots, self.callee_components)

    def routines_of(self, indices: Set[int]) -> Set[str]:
        names: Set[str] = set()
        for index in indices:
            names.update(self.components[index])
        return names

    def partition_shards(
        self, costs: Dict[str, int], max_shards: int
    ) -> "ShardPlan":
        """Partition the condensation into at most ``max_shards`` shards.

        Each shard is a *contiguous interval* of components in the
        callee-first order.  Because every call-graph edge goes from a
        later component (caller) to an earlier one (callee), the
        quotient graph over intervals is automatically acyclic, so the
        shard DAG inherits the scheduling property the parallel solver
        needs: solving shards callee-first (phase 1) or caller-first
        (phase 2) always finds every cross-shard input already
        published.

        ``costs[name]`` is the work estimate for one routine (the
        parallel engine uses CFG block counts — solve time is roughly
        linear in PSG size, which tracks block count).  The greedy cut
        closes a shard once it holds ~1/``max_shards`` of the total
        cost, which balances shards even when component sizes are
        skewed; a component is never split, so one giant SCC bounds the
        achievable balance.
        """
        if max_shards < 1:
            raise ValueError("max_shards must be >= 1")
        component_costs = [
            max(1, sum(costs.get(name, 1) for name in component))
            for component in self.components
        ]
        total = sum(component_costs)
        target = max(1, -(-total // max_shards))  # ceil division
        shards: List[Shard] = []
        shard_of_component: List[int] = [0] * len(self.components)
        start = 0
        accumulated = 0
        for index, cost in enumerate(component_costs):
            accumulated += cost
            last = index == len(self.components) - 1
            if accumulated >= target or last:
                shard_index = len(shards)
                component_range = list(range(start, index + 1))
                members: List[str] = []
                for component_index in component_range:
                    members.extend(self.components[component_index])
                    shard_of_component[component_index] = shard_index
                shards.append(
                    Shard(
                        index=shard_index,
                        components=component_range,
                        routines=members,
                        cost=accumulated,
                    )
                )
                start = index + 1
                accumulated = 0
        callee_shards: List[Set[int]] = [set() for _ in shards]
        caller_shards: List[Set[int]] = [set() for _ in shards]
        for component_index, callees in enumerate(self.callee_components):
            src = shard_of_component[component_index]
            for callee_component in callees:
                dst = shard_of_component[callee_component]
                if dst != src:
                    callee_shards[src].add(dst)
                    caller_shards[dst].add(src)
        return ShardPlan(
            shards=shards,
            shard_of_component=shard_of_component,
            shard_of_routine={
                name: shard.index
                for shard in shards
                for name in shard.routines
            },
            callee_shards=callee_shards,
            caller_shards=caller_shards,
        )


@dataclass
class Shard:
    """One unit of parallel work: a run of condensation components."""

    index: int
    #: Indices into :attr:`Condensation.components`, callee-first.
    components: List[int]
    #: Every routine in those components, in component order.
    routines: List[str]
    #: Estimated work (sum of the member routines' cost heuristic).
    cost: int


@dataclass
class ShardPlan:
    """A partition of the condensation DAG into schedulable shards.

    Shards are callee-first: every cross-shard call goes from a
    higher-index shard (caller side) to a lower-index one (callee
    side), so the shard graph is acyclic by construction.  Phase 1
    runs a shard once all of :attr:`callee_shards` have published
    entry triples; phase 2 once all of :attr:`caller_shards` have
    published return-point liveness.
    """

    shards: List[Shard]
    #: condensation component index -> shard index.
    shard_of_component: List[int]
    #: routine name -> shard index.
    shard_of_routine: Dict[str, int]
    #: shard index -> shards it calls into (phase-1 prerequisites).
    callee_shards: List[Set[int]]
    #: shard index -> shards that call into it (phase-2 prerequisites).
    caller_shards: List[Set[int]]

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def largest_cost(self) -> int:
        return max((shard.cost for shard in self.shards), default=0)


def build_call_graph(
    program: Program, cfgs: Optional[Dict[str, ControlFlowGraph]] = None
) -> CallGraph:
    """Construct the call graph (building CFGs if not supplied)."""
    if cfgs is None:
        cfgs = build_all_cfgs(program)
    callers: Dict[str, List[Tuple[str, CallSite]]] = {}
    unknown_sites: List[Tuple[str, CallSite]] = []
    for name, cfg in cfgs.items():
        for site in cfg.call_sites:
            if site.is_unknown:
                unknown_sites.append((name, site))
                continue
            for target in site.targets:
                if target not in cfgs:
                    raise KeyError(
                        f"{name!r} calls unknown routine {target!r}"
                    )
                callers.setdefault(target, []).append((name, site))
    address_taken = find_address_taken(program)
    externally_callable = (
        {routine.name for routine in program.exported_routines()}
        | address_taken
        | {program.entry}
    )
    return CallGraph(
        program=program,
        cfgs=cfgs,
        callers=callers,
        unknown_sites=unknown_sites,
        address_taken=address_taken,
        externally_callable=externally_callable,
    )


def find_address_taken(program: Program) -> Set[str]:
    """Routines whose entry address escapes.

    Runs a forward constant pass over every basic-block-shaped region
    (straight-line runs between terminators suffice: constants are
    killed at joins by construction here, which is conservative in the
    escape direction).  A routine-entry constant escapes when it is
    stored to memory, used by a non-address instruction, or still held
    in a register when the straight-line run ends — unless its only use
    is the indirect call it feeds (a resolved ``jsr`` does not take the
    address).
    """
    entries = {routine.address: routine.name for routine in program}
    escaped: Set[str] = set()
    for routine in program:
        constants: Dict[int, int] = {}
        for instruction in routine.instructions:
            opcode = instruction.opcode
            control = opcode.control
            uses = instruction.uses()
            defs = instruction.defs()
            if opcode is Opcode.LDA or opcode is Opcode.LDAH:
                shift = 16 if opcode is Opcode.LDAH else 0
                base = instruction.rb
                if base == ZERO_REGISTER:
                    value: Optional[int] = instruction.displacement << shift
                elif base in constants:
                    value = constants[base] + (instruction.displacement << shift)
                else:
                    value = None
                _kill(constants, defs)
                if value is not None:
                    constants[instruction.ra] = value
                continue
            if (
                opcode is Opcode.BIS
                and instruction.literal is None
                and ZERO_REGISTER in (instruction.ra, instruction.rb)
            ):
                source = (
                    instruction.rb
                    if instruction.ra == ZERO_REGISTER
                    else instruction.ra
                )
                value = constants.get(source)
                _kill(constants, defs)
                if value is not None:
                    constants[instruction.rc] = value
                continue
            if control in (ControlKind.CALL_DIRECT, ControlKind.CALL_INDIRECT):
                # The call target register is consumed, not escaped; but a
                # call clobbers temporaries, so drop everything (sound:
                # dropping can only *under*-track, and untracked registers
                # were already counted as escapes below at their creation?
                # No: escape happens at *use* or *run end*; a constant that
                # survives a call still sits in `constants`, so clear and
                # treat survivors as escaping).
                for register, value in constants.items():
                    if register != instruction.rb and value in entries:
                        escaped.add(entries[value])
                constants.clear()
                continue
            # Any other use of a register holding a routine entry escapes it.
            for register in uses:
                value = constants.get(register)
                if value is not None and value in entries:
                    escaped.add(entries[value])
            _kill(constants, defs)
            if control != ControlKind.FALLTHROUGH:
                # Block boundary: surviving entry constants could flow to a
                # join where we stop tracking them.
                for value in constants.values():
                    if value in entries:
                        escaped.add(entries[value])
                constants.clear()
    return escaped


def _kill(constants: Dict[int, int], defs) -> None:
    for register in defs:
        constants.pop(register, None)
