"""CFG construction from decoded routines.

This is the paper's "CFG Build" stage.  For each routine:

1. classify every instruction's control behaviour;
2. recover branch targets (PC-relative) and multiway-branch targets
   (by extracting the jump table stored with the program, §3.5);
3. find block leaders and carve the routine into basic blocks — blocks
   end at branches *and at calls*;
4. wire successor/predecessor arcs;
5. resolve indirect-call targets where possible by tracking the
   address materialization (``ldah``/``lda`` chains) backward through
   the block, mirroring how Spike leans on linker-visible constants.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.isa.encoding import INSTRUCTION_SIZE
from repro.isa.instructions import ControlKind, Instruction, Opcode
from repro.isa.registers import ZERO_REGISTER
from repro.program.model import Program, Routine
from repro.cfg.cfg import (
    BasicBlock,
    CallSite,
    CfgError,
    ControlFlowGraph,
    ExitKind,
    TerminatorKind,
)


def build_all_cfgs(program: Program) -> Dict[str, ControlFlowGraph]:
    """Build the CFG for every routine of ``program``."""
    return {routine.name: build_cfg(program, routine) for routine in program}


def build_cfg(program: Program, routine: Routine) -> ControlFlowGraph:
    """Build the CFG for one routine."""
    instructions = routine.instructions
    count = len(instructions)

    # ------------------------------------------------------------------
    # 1-2: classify terminators and recover their targets
    # ------------------------------------------------------------------
    term_kind: Dict[int, TerminatorKind] = {}
    term_targets: Dict[int, List[int]] = {}
    for index, instruction in enumerate(instructions):
        control = instruction.opcode.control
        if control == ControlKind.FALLTHROUGH:
            continue
        if control == ControlKind.COND_BRANCH:
            term_kind[index] = TerminatorKind.COND_BRANCH
            term_targets[index] = [_branch_target(routine, index, instruction)]
        elif control == ControlKind.UNCOND_BRANCH:
            term_kind[index] = TerminatorKind.UNCOND_BRANCH
            term_targets[index] = [_branch_target(routine, index, instruction)]
        elif control == ControlKind.INDIRECT_JUMP:
            address = routine.address_of(index)
            targets = program.jump_targets.get(address)
            if targets is None:
                term_kind[index] = TerminatorKind.UNKNOWN_JUMP
            else:
                term_kind[index] = TerminatorKind.MULTIWAY
                term_targets[index] = [
                    _target_index(routine, index, target) for target in targets
                ]
        elif control in (ControlKind.CALL_DIRECT, ControlKind.CALL_INDIRECT):
            term_kind[index] = TerminatorKind.CALL
            if index + 1 >= count:
                raise CfgError(
                    f"{routine.name!r}: call at the last instruction has no "
                    f"return point"
                )
        elif control == ControlKind.RETURN:
            term_kind[index] = TerminatorKind.RETURN
        elif control == ControlKind.HALT:
            term_kind[index] = TerminatorKind.HALT
        else:  # pragma: no cover - exhaustive
            raise AssertionError(control)

    last = instructions[-1].opcode.control
    if last in (ControlKind.FALLTHROUGH, ControlKind.COND_BRANCH):
        raise CfgError(
            f"{routine.name!r}: control falls off the end of the routine"
        )

    # ------------------------------------------------------------------
    # 3: leaders and blocks
    # ------------------------------------------------------------------
    leaders: Set[int] = {0}
    for index in term_kind:
        if index + 1 < count:
            leaders.add(index + 1)
        for target in term_targets.get(index, ()):
            leaders.add(target)
    ordered_leaders = sorted(leaders)
    blocks: List[BasicBlock] = []
    leader_to_block: Dict[int, int] = {}
    for block_index, start in enumerate(ordered_leaders):
        stop = (
            ordered_leaders[block_index + 1]
            if block_index + 1 < len(ordered_leaders)
            else count
        )
        terminator = term_kind.get(stop - 1, TerminatorKind.FALLTHROUGH)
        blocks.append(
            BasicBlock(
                index=block_index,
                start=start,
                stop=stop,
                instructions=instructions[start:stop],
                terminator=terminator,
            )
        )
        leader_to_block[start] = block_index

    # ------------------------------------------------------------------
    # 4: arcs
    # ------------------------------------------------------------------
    for block in blocks:
        successors: List[int] = []
        last_index = block.terminator_index
        kind = block.terminator
        if kind == TerminatorKind.FALLTHROUGH:
            successors.append(leader_to_block[block.stop])
        elif kind == TerminatorKind.COND_BRANCH:
            successors.append(leader_to_block[term_targets[last_index][0]])
            fall = leader_to_block[block.stop]
            if fall not in successors:
                successors.append(fall)
        elif kind == TerminatorKind.UNCOND_BRANCH:
            successors.append(leader_to_block[term_targets[last_index][0]])
        elif kind == TerminatorKind.MULTIWAY:
            seen: Set[int] = set()
            for target in term_targets[last_index]:
                successor = leader_to_block[target]
                if successor not in seen:
                    seen.add(successor)
                    successors.append(successor)
        elif kind == TerminatorKind.CALL:
            successors.append(leader_to_block[block.stop])
        # RETURN / HALT / UNKNOWN_JUMP: no intraprocedural successors.
        block.successors = successors
    for block in blocks:
        for successor in block.successors:
            blocks[successor].predecessors.append(block.index)

    # ------------------------------------------------------------------
    # 5: call sites and exits
    # ------------------------------------------------------------------
    call_sites: List[CallSite] = []
    exits: List[tuple] = []
    for block in blocks:
        last_index = block.terminator_index
        instruction = instructions[last_index]
        if block.terminator == TerminatorKind.CALL:
            call_sites.append(
                _classify_call(program, routine, block, last_index, instruction)
            )
        elif block.terminator == TerminatorKind.RETURN:
            exits.append((block.index, ExitKind.RETURN))
        elif block.terminator == TerminatorKind.HALT:
            exits.append((block.index, ExitKind.HALT))
        elif block.terminator == TerminatorKind.UNKNOWN_JUMP:
            exits.append((block.index, ExitKind.UNKNOWN_JUMP))

    cfg = ControlFlowGraph(
        routine=routine, blocks=blocks, call_sites=call_sites, exits=exits
    )
    cfg.check()
    return cfg


def _branch_target(routine: Routine, index: int, instruction: Instruction) -> int:
    """Instruction index targeted by a PC-relative branch."""
    target = index + 1 + instruction.displacement
    if not 0 <= target < len(routine.instructions):
        raise CfgError(
            f"{routine.name!r}: branch at {routine.address_of(index):#x} "
            f"targets instruction {target}, outside the routine"
        )
    return target


def _target_index(routine: Routine, jump_index: int, address: int) -> int:
    """Instruction index of a jump-table target address."""
    if not routine.contains(address):
        raise CfgError(
            f"{routine.name!r}: jump table at "
            f"{routine.address_of(jump_index):#x} targets {address:#x}, "
            f"outside the routine"
        )
    return routine.index_of(address)


def _classify_call(
    program: Program,
    routine: Routine,
    block: BasicBlock,
    instruction_index: int,
    instruction: Instruction,
) -> CallSite:
    if instruction.opcode.control == ControlKind.CALL_DIRECT:
        target = (
            routine.address_of(instruction_index)
            + INSTRUCTION_SIZE * (1 + instruction.displacement)
        )
        callee = program.routine_at(target)
        if callee is None:
            raise CfgError(
                f"{routine.name!r}: bsr at "
                f"{routine.address_of(instruction_index):#x} targets "
                f"{target:#x}, not a routine entry"
            )
        return CallSite(
            block=block.index,
            instruction_index=instruction_index,
            targets=(callee.name,),
            indirect=False,
        )
    # Indirect call: a linker target-set hint wins (§3.5's suggested
    # improvement); otherwise try to resolve the target register to a
    # constant by backward tracking.
    call_address = routine.address_of(instruction_index)
    hinted = program.call_target_hints.get(call_address)
    if hinted:
        names = []
        for target in hinted:
            hinted_routine = program.routine_at(target)
            if hinted_routine is None:
                raise CfgError(
                    f"{routine.name!r}: call-target hint at "
                    f"{call_address:#x} names {target:#x}, not a routine entry"
                )
            names.append(hinted_routine.name)
        return CallSite(
            block=block.index,
            instruction_index=instruction_index,
            targets=tuple(names),
            indirect=True,
        )
    local_index = instruction_index - block.start
    address = resolve_register_constant(
        block.instructions, local_index, instruction.rb
    )
    targets: tuple = ()
    if address is not None:
        callee = program.routine_at(address)
        if callee is not None:
            targets = (callee.name,)
    return CallSite(
        block=block.index,
        instruction_index=instruction_index,
        targets=targets,
        indirect=True,
    )


def resolve_register_constant(
    instructions: Sequence[Instruction], upto: int, register: int
) -> Optional[int]:
    """Resolve the value of ``register`` just before ``instructions[upto]``.

    Walks backward through the straight-line prefix, following
    ``lda``/``ldah`` address-materialization chains and register moves
    (``bis zero, rs, rd``).  Returns the constant value or ``None`` when
    the value is not a visible constant.
    """
    target = register
    addend = 0
    for index in range(upto - 1, -1, -1):
        instruction = instructions[index]
        if target not in instruction.defs():
            continue
        opcode = instruction.opcode
        if opcode is Opcode.LDA:
            addend += instruction.displacement
            if instruction.rb == ZERO_REGISTER:
                return addend
            target = instruction.rb
        elif opcode is Opcode.LDAH:
            addend += instruction.displacement << 16
            if instruction.rb == ZERO_REGISTER:
                return addend
            target = instruction.rb
        elif (
            opcode is Opcode.BIS
            and instruction.literal is None
            and instruction.ra == ZERO_REGISTER
        ):
            target = instruction.rb
        elif (
            opcode is Opcode.BIS
            and instruction.literal is None
            and instruction.rb == ZERO_REGISTER
        ):
            target = instruction.ra
        else:
            return None
    return None
