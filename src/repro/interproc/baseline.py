"""Whole-program-CFG interprocedural analysis (the [Srivastava93] baseline).

Section 1 motivates the PSG by contrast with performing interprocedural
dataflow "using a program's entire control-flow graph": connect every
routine's CFG with call and return arcs and iterate directly over basic
blocks.  This module implements that baseline with the *same* two-phase
valid-paths semantics as the PSG analysis:

* per-block triples (MAY-USE, MAY-DEF, MUST-DEF) in phase 1, where a
  call-ending block's OUT is composed from the callee's (filtered)
  entry sets and the return point's IN — i.e. call/return arcs are
  summary arcs, not plain arcs, so no invalid call/return pairings are
  introduced;
* per-block liveness in phase 2, where each RETURN exit's OUT is the
  union of the IN sets at every possible return point.

Because both engines implement the same specification, their summaries
must agree exactly; the test suite uses this as the main correctness
oracle (`SummarySet.equal_summaries`).  The benchmarks use the
baseline for the time/memory comparison that justifies the PSG.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.isa.calling_convention import CallingConvention
from repro.program.model import Program
from repro.cfg.build import build_all_cfgs
from repro.cfg.callgraph import build_call_graph
from repro.cfg.cfg import ControlFlowGraph, ExitKind, TerminatorKind
from repro.dataflow.local import compute_local_sets
from repro.dataflow.regset import TRACKED_MASK, mask_of
from repro.dataflow.solver import SubgraphWorklist
from repro.psg.build import PsgConfig, unknown_call_label
from repro.interproc.analysis import AnalysisConfig
from repro.interproc.phase2 import conservative_exit_live_mask
from repro.interproc.savedregs import saved_restored_registers
from repro.interproc.summaries import (
    SummarySet,
    CallSiteSummary,
    RoutineSummary,
)
from repro.reporting.memory import cfg_analysis_memory


@dataclass
class BaselineAnalysis:
    """Result of the whole-program-CFG analysis."""

    program: Program
    result: SummarySet
    elapsed_seconds: float
    memory_bytes: int
    basic_block_count: int
    cfg_arc_count: int


class _Flat:
    """The program's CFGs flattened into one block-indexed graph."""

    def __init__(
        self,
        program: Program,
        cfgs: Dict[str, ControlFlowGraph],
        convention: CallingConvention,
    ) -> None:
        self.program = program
        self.cfgs = cfgs
        self.convention = convention
        self.offset: Dict[str, int] = {}
        count = 0
        for routine in program:
            self.offset[routine.name] = count
            count += cfgs[routine.name].block_count
        self.count = count
        self.ubd = [0] * count
        self.defs = [0] * count
        self.succ: List[List[int]] = [[] for _ in range(count)]
        self.exit_kind: List[Optional[ExitKind]] = [None] * count
        #: global id of a call block -> (possible callees, return point);
        #: an empty callee tuple means the §3.5 unknown-call assumptions.
        self.call_info: Dict[int, Tuple[Tuple[str, ...], int]] = {}
        self.entry_of: Dict[str, int] = {}
        self.routine_of: List[str] = [""] * count
        for routine in program:
            name = routine.name
            cfg = cfgs[name]
            base = self.offset[name]
            self.entry_of[name] = base + cfg.entry_index
            locals_ = compute_local_sets(cfg)
            for block in cfg.blocks:
                gid = base + block.index
                self.routine_of[gid] = name
                self.ubd[gid] = locals_[block.index].ubd_mask
                self.defs[gid] = locals_[block.index].def_mask
                self.succ[gid] = [base + s for s in block.successors]
                self.exit_kind[gid] = cfg.exit_kind_of(block.index)
                if block.terminator == TerminatorKind.CALL:
                    site = cfg.call_site_of(block.index)
                    assert site is not None
                    return_point = base + block.successors[0]
                    self.call_info[gid] = (site.targets, return_point)


def analyze_program_baseline(
    program: Program, config: Optional[AnalysisConfig] = None
) -> BaselineAnalysis:
    """Run the full-CFG two-phase analysis on ``program``."""
    config = config or AnalysisConfig()
    convention = config.convention
    start = time.perf_counter()

    cfgs = build_all_cfgs(program)
    call_graph = build_call_graph(program, cfgs)
    flat = _Flat(program, cfgs, convention)
    saved_restored = {
        name: saved_restored_registers(cfg, convention)
        for name, cfg in cfgs.items()
    }
    preserved = mask_of({convention.stack_pointer, convention.global_pointer})
    strip_defs = {
        name: saved_restored[name] | preserved for name in saved_restored
    }
    unknown = unknown_call_label(convention)

    count = flat.count
    may_def = [0] * count
    # Interior MUST-DEF starts at ⊤ (greatest fixed point of the ∩-meet
    # problem); see the note in repro.dataflow.equations.
    must_def = [TRACKED_MASK] * count
    may_use = [0] * count

    # Dependents: block reads its successors' IN; a call block also reads
    # its callee's entry IN.
    dependents: List[List[int]] = [[] for _ in range(count)]
    for gid in range(count):
        for successor in flat.succ[gid]:
            dependents[successor].append(gid)
    for gid, (callees, _retpt) in flat.call_info.items():
        for callee in callees:
            dependents[flat.entry_of[callee]].append(gid)

    # ------------------------------------------------------------------
    # Phase 1a: MAY-DEF / MUST-DEF
    # ------------------------------------------------------------------
    def callee_def_labels(gid: int) -> Tuple[int, int]:
        callees, _retpt = flat.call_info[gid]
        if not callees:
            return unknown.may_def, unknown.must_def
        label_md = 0
        label_xd = -1
        for callee in callees:
            entry = flat.entry_of[callee]
            strip = strip_defs[callee]
            label_md |= may_def[entry] & ~strip
            label_xd &= must_def[entry] & ~strip
        return label_md, label_xd

    def defs_out(gid: int) -> Tuple[int, int]:
        kind = flat.exit_kind[gid]
        if kind == ExitKind.RETURN:
            return 0, 0
        if kind == ExitKind.HALT:
            return 0, TRACKED_MASK
        if kind == ExitKind.UNKNOWN_JUMP:
            return TRACKED_MASK, 0
        if gid in flat.call_info:
            label_md, label_xd = callee_def_labels(gid)
            _callees, retpt = flat.call_info[gid]
            return may_def[retpt] | label_md, must_def[retpt] | label_xd
        md_acc = 0
        xd_acc = -1
        for successor in flat.succ[gid]:
            md_acc |= may_def[successor]
            xd_acc &= must_def[successor]
        return md_acc, (0 if xd_acc == -1 else xd_acc)

    def defs_transfer(gid: int) -> bool:
        md_out, xd_out = defs_out(gid)
        md_in = md_out | flat.defs[gid]
        xd_in = xd_out | flat.defs[gid]
        changed = md_in != may_def[gid] or xd_in != must_def[gid]
        may_def[gid] = md_in
        must_def[gid] = xd_in
        return changed

    _iterate(count, dependents, defs_transfer)

    # ------------------------------------------------------------------
    # Phase 1b: MAY-USE (MUST-DEF now final)
    # ------------------------------------------------------------------
    def uses_out_phase1(gid: int) -> int:
        kind = flat.exit_kind[gid]
        if kind == ExitKind.RETURN or kind == ExitKind.HALT:
            return 0
        if kind == ExitKind.UNKNOWN_JUMP:
            return TRACKED_MASK
        if gid in flat.call_info:
            callees, retpt = flat.call_info[gid]
            if not callees:
                label_mu, label_xd = unknown.may_use, unknown.must_def
            else:
                label_mu = 0
                label_xd = -1
                for callee in callees:
                    entry = flat.entry_of[callee]
                    label_mu |= may_use[entry] & ~saved_restored[callee]
                    label_xd &= must_def[entry] & ~strip_defs[callee]
            return label_mu | (may_use[retpt] & ~label_xd)
        mu_acc = 0
        for successor in flat.succ[gid]:
            mu_acc |= may_use[successor]
        return mu_acc

    def uses_transfer_phase1(gid: int) -> bool:
        mu_in = flat.ubd[gid] | (uses_out_phase1(gid) & ~flat.defs[gid])
        changed = mu_in != may_use[gid]
        may_use[gid] = mu_in
        return changed

    _iterate(count, dependents, uses_transfer_phase1)

    # Freeze the phase-1 callee labels for phase 2 and the summaries.
    entry_labels: Dict[str, Tuple[int, int, int]] = {}
    for name in program.routine_names():
        entry = flat.entry_of[name]
        entry_labels[name] = (
            may_use[entry] & ~saved_restored[name],
            may_def[entry] & ~strip_defs[name],
            must_def[entry] & ~strip_defs[name],
        )

    # ------------------------------------------------------------------
    # Phase 2: liveness over valid paths
    # ------------------------------------------------------------------
    live = [0] * count
    conservative = conservative_exit_live_mask(convention)
    externally_callable = call_graph.externally_callable

    # Which return points can each routine's RETURN exits return to?
    return_points_of: Dict[str, List[int]] = {
        name: [] for name in program.routine_names()
    }
    for gid, (callees, retpt) in flat.call_info.items():
        for callee in callees:
            return_points_of[callee].append(retpt)
    dependents2: List[List[int]] = [list(deps) for deps in dependents]
    for name, points in return_points_of.items():
        base = flat.offset[name]
        cfg = cfgs[name]
        exit_gids = [base + b for b in cfg.return_exits()]
        for retpt in points:
            dependents2[retpt].extend(exit_gids)

    def live_out(gid: int) -> int:
        kind = flat.exit_kind[gid]
        if kind == ExitKind.HALT:
            return 0
        if kind == ExitKind.UNKNOWN_JUMP:
            return TRACKED_MASK
        if kind == ExitKind.RETURN:
            name = flat.routine_of[gid]
            mask = conservative if name in externally_callable else 0
            for retpt in return_points_of[name]:
                mask |= live[retpt]
            return mask
        if gid in flat.call_info:
            callees, retpt = flat.call_info[gid]
            if not callees:
                label_mu, label_xd = unknown.may_use, unknown.must_def
            else:
                label_mu = 0
                label_xd = -1
                for callee in callees:
                    callee_mu, _md, callee_xd = entry_labels[callee]
                    label_mu |= callee_mu
                    label_xd &= callee_xd
            return label_mu | (live[retpt] & ~label_xd)
        mask = 0
        for successor in flat.succ[gid]:
            mask |= live[successor]
        return mask

    def live_transfer(gid: int) -> bool:
        mu_in = flat.ubd[gid] | (live_out(gid) & ~flat.defs[gid])
        changed = mu_in != live[gid]
        live[gid] = mu_in
        return changed

    _iterate(count, dependents2, live_transfer)

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    summaries: Dict[str, RoutineSummary] = {}
    for routine in program:
        name = routine.name
        cfg = cfgs[name]
        base = flat.offset[name]
        label_mu, label_md, label_xd = entry_labels[name]
        exit_live_masks: Dict[int, int] = {}
        exit_kinds: Dict[int, ExitKind] = {}
        for block_index, kind in cfg.exits:
            exit_live_masks[block_index] = live_out(base + block_index)
            exit_kinds[block_index] = kind
        call_sites: List[CallSiteSummary] = []
        for site in cfg.call_sites:
            gid = base + site.block
            callees, retpt = flat.call_info[gid]
            if not callees:
                used, defined, killed = (
                    unknown.may_use,
                    unknown.must_def,
                    unknown.may_def,
                )
            else:
                used = 0
                killed = 0
                defined = -1
                for callee in callees:
                    callee_mu, callee_md, callee_xd = entry_labels[callee]
                    used |= callee_mu
                    killed |= callee_md
                    defined &= callee_xd
                defined &= TRACKED_MASK
            call_sites.append(
                CallSiteSummary(
                    site=site,
                    used_mask=used,
                    defined_mask=defined,
                    killed_mask=killed,
                    live_before_mask=live_out(gid),
                    live_after_mask=live[retpt],
                )
            )
        summaries[name] = RoutineSummary(
            name=name,
            call_used_mask=label_mu,
            call_defined_mask=label_xd,
            call_killed_mask=label_md,
            live_at_entry_mask=live[flat.entry_of[name]],
            exit_live_masks=exit_live_masks,
            exit_kinds=exit_kinds,
            call_sites=call_sites,
            saved_restored_mask=saved_restored[name],
        )

    elapsed = time.perf_counter() - start
    call_count = sum(len(cfg.call_sites) for cfg in cfgs.values())
    memory = cfg_analysis_memory(cfgs, 2 * call_count, config.memory_model)
    return BaselineAnalysis(
        program=program,
        result=SummarySet(summaries=summaries),
        elapsed_seconds=elapsed,
        memory_bytes=memory,
        basic_block_count=flat.count,
        cfg_arc_count=sum(cfg.arc_count for cfg in cfgs.values()) + 2 * call_count,
    )


def _iterate(count: int, dependents: List[List[int]], transfer) -> None:
    """One chaotic-iteration pass over the flat CFG, riding the shared
    priority-worklist engine (reverse block order as the rank key, the
    same seeding the deque version used)."""
    worklist = SubgraphWorklist(
        count, dependents, bytearray(count), range(count - 1, -1, -1)
    )
    worklist.run(transfer)
