"""The flat solver core: two-phase solves over the CSR arena.

:mod:`repro.psg.arena` lowers a built PSG into parallel primitive
arrays; this module runs phase 1 and phase 2 directly over those
arrays.  The loops here compute *bit-for-bit* the same fixed points as
the object engines in :mod:`repro.interproc.phase1` /
:mod:`repro.interproc.phase2` — same transfer functions, same boundary
conditions, same §3.4 stripping — but the hot path iterates the
arena's unpacked per-node views (tuples of pre-boxed ints) and indexes
dense state lists: no edge objects, no ``SummaryTriple`` attribute
reads, no per-node closures.  Scheduling realizes the same rank-keyed
priority worklist as :class:`repro.dataflow.solver.SubgraphWorklist`
as a *sweep + pocket* pair: the seeds are pushed in ascending rank
order, so the seed queue is consumed by a plain index scan (O(1) pops,
no heap sift), with a small heap ("pocket") holding only the
dynamically re-enqueued nodes.  The next node is the smaller of the
sweep head and the pocket minimum — exactly the global-heap minimum,
since the two partition the queued set — so the visit sequence is
*identical* to the object engine's and every counter (iterations,
pushes, skips, revisits, max depth) matches it bit for bit.

Why the results are identical across cores and orders: every solve is
chaotic iteration of a monotone system over a finite lattice from an
extremal starting point (⊥ for the union problems, ⊤ for MUST-DEF), so
the fixed point reached is the unique least (resp. greatest) fixed
point regardless of visit order — the visit *order* only changes how
many visits it takes.  The phase-2 return-to-exit copies preserve this:
they only ever union new bits into exit values, so they are part of the
same monotone system.  The test suite pins the equivalence with a
Hypothesis property test and three-way summary byte-equality.

Core selection (``--solver-core`` / ``REPRO_SOLVER_CORE``):

* ``flat``   — the arena fast path in this module;
* ``object`` — the object-graph engines with priority scheduling (the
  default);
* ``fifo``   — the object engines with the pre-priority FIFO deque,
  kept as a bisect and iteration-count baseline.
"""

from __future__ import annotations

import os
from heapq import heappop, heappush
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.cfg.cfg import ExitKind
from repro.dataflow.equations import SummaryTriple
from repro.dataflow.regset import TRACKED_MASK
from repro.interproc.errors import AnalysisError
from repro.obs.metrics import REGISTRY
from repro.psg.arena import get_arena
from repro.psg.graph import ProgramSummaryGraph

__all__ = [
    "SOLVER_CORES",
    "SOLVER_CORE_ENV_VAR",
    "resolve_solver_core",
    "run_phase1_flat",
    "run_phase2_flat",
    "label_call_return_edges",
    "solve_masks_csr",
]

#: Recognized solver cores (see module docstring).
SOLVER_CORES = ("flat", "object", "fifo")

#: Environment variable consulted for the default core (mirrors
#: ``REPRO_JOBS``): explicit argument > ``AnalysisConfig.solver_core`` >
#: environment > ``"object"``.
SOLVER_CORE_ENV_VAR = "REPRO_SOLVER_CORE"


def resolve_solver_core(core: Optional[str] = None) -> str:
    """The effective solver core; raises :class:`AnalysisError` on an
    unrecognized name (so a typo in ``REPRO_SOLVER_CORE`` fails loudly
    instead of silently analyzing with the default)."""
    if core is None:
        core = os.environ.get(SOLVER_CORE_ENV_VAR) or None
    if core is None:
        return "object"
    if core not in SOLVER_CORES:
        raise AnalysisError(
            f"unknown solver core {core!r}; expected one of "
            f"{', '.join(SOLVER_CORES)}"
        )
    return core


def label_call_return_edges(
    psg: ProgramSummaryGraph,
    entry_of: Dict[str, int],
    may_use: Sequence[int],
    may_def: Sequence[int],
    must_def: Sequence[int],
) -> None:
    """Write the converged phase-1 labels onto resolved call-return
    edges, interning equal triples so the many call sites of a popular
    routine share one label object (phase 2 and the summary assembly
    re-read these; "retained for the second dataflow phase").
    """
    interned: Dict[Tuple[int, int, int], SummaryTriple] = {}
    for edge in psg.call_return_edges:
        if edge.is_unknown:
            continue
        label_mu = 0
        label_md = 0
        label_xd = -1
        for callee in edge.callees:
            entry = entry_of[callee]
            label_mu |= may_use[entry]
            label_md |= may_def[entry]
            label_xd &= must_def[entry]
        key = (label_mu, label_md, label_xd & TRACKED_MASK)
        label = interned.get(key)
        if label is None:
            label = SummaryTriple(
                may_use=key[0], may_def=key[1], must_def=key[2]
            )
            interned[key] = label
        edge.label = label


def _seed_priority(
    node_count: int, seed_order: Sequence[int], frozen: bytearray
) -> Tuple[List[int], List[int], List[int], bytearray]:
    """Rank table, rank->node table, seeded heap and in-queue bitmap.

    Ranks follow ``seed_order`` (nodes it omits sort last), so the seed
    heap — ranks in ascending order — is a valid min-heap as built.
    Frozen boundary nodes are marked permanently in-queue: the enqueue
    fast path then needs only the bitmap test to suppress them.
    """
    by_rank = list(seed_order)
    rank_of = [0] * node_count
    for rank, node in enumerate(by_rank):
        rank_of[node] = rank
    if len(by_rank) == node_count:
        # The usual case — the seed order is a full permutation (the
        # drivers seed every node) — so every node is initially queued
        # and the rank table is already complete.
        queued = bytearray(b"\x01") * node_count
    else:
        listed = bytearray(node_count)
        for node in seed_order:
            listed[node] = 1
        for node in range(node_count):
            if not listed[node]:
                rank_of[node] = len(by_rank)
                by_rank.append(node)
        queued = bytearray(frozen)
        for node in seed_order:
            queued[node] = 1
    heap = [rank_of[node] for node in seed_order if not frozen[node]]
    return by_rank, rank_of, heap, queued


def run_phase1_flat(
    psg: ProgramSummaryGraph,
    saved_restored: Dict[str, int],
    preserved_mask: int,
    seed_order: Sequence[int],
    fixed_entries: Optional[Dict[int, SummaryTriple]] = None,
):
    """Phase 1 over the arena; same contract as
    :func:`repro.interproc.phase1.run_phase1`."""
    # Imported lazily: phase1 dispatches into this module, so a
    # top-level import either way would be a cycle.
    from repro.interproc.phase1 import Phase1Result, record_solve

    arena = get_arena(psg)
    node_count = arena.node_count
    defs_view = arena.defs_view
    defs_static = arena.defs_static
    uses_view = arena.uses_view
    uses_static = arena.uses_static
    cr_dst = arena.cr_dst_view
    cr_single = arena.cr_single
    cr_callees = arena.cr_callees
    arena_cr_mu = arena.cr_mu
    arena_cr_md = arena.cr_md
    arena_cr_xd = arena.cr_xd
    dep_view = arena.dep1_view

    may_def = [0] * node_count
    must_def = [TRACKED_MASK] * node_count
    may_use = [0] * node_count
    frozen = bytearray(node_count)
    for node, kind, _routine in arena.exits:
        frozen[node] = 1
        if kind is ExitKind.RETURN:
            must_def[node] = 0
        elif kind is ExitKind.UNKNOWN_JUMP:
            may_use[node] = TRACKED_MASK
            may_def[node] = TRACKED_MASK
            must_def[node] = 0
        # HALT keeps (0, 0, TRACKED_MASK): the initial values.
    if fixed_entries:
        for node_id, triple in fixed_entries.items():
            may_use[node_id] = triple.may_use
            may_def[node_id] = triple.may_def
            must_def[node_id] = triple.must_def
            frozen[node_id] = 1

    # §3.4 stripping as dense arrays: zero everywhere but entry nodes,
    # and `mask &= ~0` is the identity, so "strip where nonzero" equals
    # the object path's "strip at entries".
    strip_use = [0] * node_count
    strip_def = [0] * node_count
    entry_of: Dict[str, int] = {}
    for name, routine_psg in psg.routines.items():
        entry = routine_psg.entry_node
        entry_of[name] = entry
        strip = saved_restored.get(name, 0)
        strip_use[entry] = strip
        strip_def[entry] = strip | preserved_mask

    counts = [0] * node_count if REGISTRY.per_routine else None
    skipped = 0
    revisits = 0

    # ------------------------------------------------------------------
    # Pass A: MAY-DEF and MUST-DEF
    # ------------------------------------------------------------------
    by_rank, rank_of, sweep, queued = _seed_priority(
        node_count, seed_order, frozen
    )
    # Every push is popped exactly once (the queue drains), so the pop
    # count needs no per-visit increment: iterations == pushes.  The
    # queue is the sweep index over the pre-sorted seeds plus the
    # pocket heap of dynamic pushes (module docstring); depth is
    # gauged after each push burst — sizes only peak after pushes, so
    # the push-side maximum equals the object engine's pop-side one.
    n_sweep = len(sweep)
    si = 0
    pocket: List[int] = []
    pushed = n_sweep
    max_depth = n_sweep
    while True:
        if pocket:
            if si < n_sweep and sweep[si] <= pocket[0]:
                rank = sweep[si]
                si += 1
            else:
                rank = heappop(pocket)
        elif si < n_sweep:
            rank = sweep[si]
            si += 1
        else:
            break
        node = by_rank[rank]
        queued[node] = 0
        if counts is not None:
            counts[node] += 1
        # ⋁(label ∨ MAY-DEF[dst]) = (⋁ label) ∨ ⋁ MAY-DEF[dst]: the
        # label half is the precomputed per-node static mask.  Rows of
        # zero or one edge are the bulk of the graph (call/exit nodes
        # have no flow out-edges; straight-line nodes have one), so
        # both shapes skip the tuple-loop machinery.
        row = defs_view[node]
        if not row:
            md_acc = defs_static[node]
            xd_acc = -1  # "top" sentinel: intersection identity
        elif len(row) == 1:
            dst, label_xd = row[0]
            md_acc = defs_static[node] | may_def[dst]
            xd_acc = must_def[dst] | label_xd
        else:
            md_acc = defs_static[node]
            xd_acc = -1
            for dst, label_xd in row:
                md_acc |= may_def[dst]
                xd_acc &= must_def[dst] | label_xd
        cr = cr_dst[node]
        if cr >= 0:
            entry = cr_single[node]
            if entry >= 0:  # monomorphic call: skip the tuple loop
                md_acc |= may_def[cr] | may_def[entry]
                xd_acc &= must_def[cr] | must_def[entry]
            else:
                callees = cr_callees[node]
                if callees:
                    label_md = 0
                    label_xd = -1
                    for entry in callees:
                        label_md |= may_def[entry]
                        label_xd &= must_def[entry]
                else:  # unknown call: fixed §3.5 label
                    label_md = arena_cr_md[node]
                    label_xd = arena_cr_xd[node]
                md_acc |= may_def[cr] | label_md
                xd_acc &= must_def[cr] | label_xd
        if xd_acc == -1:
            xd_acc = 0
        strip = strip_def[node]
        if strip:
            md_acc &= ~strip
            xd_acc &= ~strip
        if md_acc != may_def[node] or xd_acc != must_def[node]:
            may_def[node] = md_acc
            must_def[node] = xd_acc
            deps = dep_view[node]
            if len(deps) == 1:  # single dependent: the common case
                dependent = deps[0]
                if queued[dependent]:
                    skipped += 1
                else:
                    queued[dependent] = 1
                    pushed += 1
                    heappush(pocket, rank_of[dependent])
            else:
                for dependent in deps:
                    if queued[dependent]:
                        skipped += 1
                    else:
                        queued[dependent] = 1
                        pushed += 1
                        heappush(pocket, rank_of[dependent])
            depth = n_sweep - si + len(pocket)
            if depth > max_depth:
                max_depth = depth
    iterations = pushed
    # revisits = visits minus distinct nodes visited.  Every non-frozen
    # node is seeded and every dynamic push re-targets a seed (dependent
    # rows only name interior nodes), so the distinct count is exactly
    # the seed count — no per-visit bookkeeping needed.
    revisits += iterations - n_sweep

    # ------------------------------------------------------------------
    # Pass B: MAY-USE, with MUST-DEF now final
    # ------------------------------------------------------------------
    # Final MUST-DEF means the call-site kill labels are fixed: hoist
    # them out of the loop (the MAY-USE half stays dynamic).
    cr_label_mu0 = [0] * node_count
    cr_label_notxd = [0] * node_count
    for node in arena.cr_nodes:
        callees = cr_callees[node]
        if callees:
            label_xd = -1
            for entry in callees:
                label_xd &= must_def[entry]
            cr_label_notxd[node] = ~label_xd
        else:
            cr_label_mu0[node] = arena_cr_mu[node]
            cr_label_notxd[node] = ~arena_cr_xd[node]

    sweep = [rank_of[node] for node in seed_order if not frozen[node]]
    if len(seed_order) == node_count:  # full re-seed: all in-queue
        queued = bytearray(b"\x01") * node_count
    else:
        for node in seed_order:
            queued[node] = 1
    n_sweep = len(sweep)
    si = 0
    pocket = []
    pushed = n_sweep
    if n_sweep > max_depth:
        max_depth = n_sweep
    while True:
        if pocket:
            if si < n_sweep and sweep[si] <= pocket[0]:
                rank = sweep[si]
                si += 1
            else:
                rank = heappop(pocket)
        elif si < n_sweep:
            rank = sweep[si]
            si += 1
        else:
            break
        node = by_rank[rank]
        queued[node] = 0
        if counts is not None:
            counts[node] += 1
        row = uses_view[node]
        if not row:
            mu_acc = uses_static[node]
        elif len(row) == 1:
            dst, not_xd = row[0]
            mu_acc = uses_static[node] | (may_use[dst] & not_xd)
        else:
            mu_acc = uses_static[node]
            for dst, not_xd in row:
                mu_acc |= may_use[dst] & not_xd
        cr = cr_dst[node]
        if cr >= 0:
            entry = cr_single[node]
            if entry >= 0:  # monomorphic call: skip the tuple loop
                label_mu = may_use[entry]
            else:
                callees = cr_callees[node]
                if callees:
                    label_mu = 0
                    for entry in callees:
                        label_mu |= may_use[entry]
                else:
                    label_mu = cr_label_mu0[node]
            mu_acc |= label_mu | (may_use[cr] & cr_label_notxd[node])
        strip = strip_use[node]
        if strip:
            mu_acc &= ~strip
        if mu_acc != may_use[node]:
            may_use[node] = mu_acc
            deps = dep_view[node]
            if len(deps) == 1:  # single dependent: the common case
                dependent = deps[0]
                if queued[dependent]:
                    skipped += 1
                else:
                    queued[dependent] = 1
                    pushed += 1
                    heappush(pocket, rank_of[dependent])
            else:
                for dependent in deps:
                    if queued[dependent]:
                        skipped += 1
                    else:
                        queued[dependent] = 1
                        pushed += 1
                        heappush(pocket, rank_of[dependent])
            depth = n_sweep - si + len(pocket)
            if depth > max_depth:
                max_depth = depth
    iterations += pushed
    revisits += pushed - n_sweep
    pushes = iterations

    record_solve(
        psg, "phase1", iterations, max_depth, counts,
        pushes=pushes, skipped=skipped, revisits=revisits,
    )
    label_call_return_edges(psg, entry_of, may_use, may_def, must_def)
    return Phase1Result(
        may_use=may_use,
        may_def=may_def,
        must_def=must_def,
        iterations=iterations,
    )


def run_phase2_flat(
    psg: ProgramSummaryGraph,
    externally_callable: Set[str],
    conservative: int,
    seed_order: Sequence[int],
    extra_exit_live: Optional[Dict[int, int]] = None,
):
    """Phase 2 over the arena; same contract as
    :func:`repro.interproc.phase2.run_phase2`, except the conservative
    external-RETURN mask arrives precomputed (the caller owns the
    calling convention)."""
    from repro.interproc.phase1 import record_solve
    from repro.interproc.phase2 import Phase2Result

    arena = get_arena(psg)
    node_count = arena.node_count
    uses_view = arena.uses_view
    uses_static = arena.uses_static
    cr_dst = arena.cr_dst_view
    dep_view = arena.dep2_view
    ret_view = arena.ret_view

    may_use = [0] * node_count
    frozen = bytearray(node_count)
    for node, kind, routine in arena.exits:
        frozen[node] = 1
        if kind is ExitKind.UNKNOWN_JUMP:
            may_use[node] = TRACKED_MASK
        elif kind is ExitKind.RETURN and routine in externally_callable:
            may_use[node] = conservative
        # HALT and internal RETURN exits start at ∅.
    if extra_exit_live:
        for node_id, mask in extra_exit_live.items():
            may_use[node_id] |= mask

    # The phase-1 labels, unzipped per call node for the hot loop (they
    # are per-solve state: warm runs relabel the same PSG's edges), the
    # kill mask pre-complemented.
    cr_label_mu = [0] * node_count
    cr_label_notxd = [0] * node_count
    for edge in psg.call_return_edges:
        label = edge.label
        cr_label_mu[edge.src] = label.may_use
        cr_label_notxd[edge.src] = ~label.must_def

    counts = [0] * node_count if REGISTRY.per_routine else None
    by_rank, rank_of, sweep, queued = _seed_priority(
        node_count, seed_order, frozen
    )
    # iterations == pushes: every push is popped exactly once.  Sweep +
    # pocket scheduling as in phase 1 (module docstring).
    n_sweep = len(sweep)
    si = 0
    pocket: List[int] = []
    pushes = n_sweep
    skipped = 0
    max_depth = n_sweep
    while True:
        if pocket:
            if si < n_sweep and sweep[si] <= pocket[0]:
                rank = sweep[si]
                si += 1
            else:
                rank = heappop(pocket)
        elif si < n_sweep:
            rank = sweep[si]
            si += 1
        else:
            break
        node = by_rank[rank]
        queued[node] = 0
        if counts is not None:
            counts[node] += 1
        row = uses_view[node]
        if not row:
            mu_acc = uses_static[node]
        elif len(row) == 1:
            dst, not_xd = row[0]
            mu_acc = uses_static[node] | (may_use[dst] & not_xd)
        else:
            mu_acc = uses_static[node]
            for dst, not_xd in row:
                mu_acc |= may_use[dst] & not_xd
        cr = cr_dst[node]
        if cr >= 0:
            mu_acc |= cr_label_mu[node] | (
                may_use[cr] & cr_label_notxd[node]
            )
        if mu_acc != may_use[node]:
            may_use[node] = mu_acc
            # Return node -> callee exit copies (Fig. 11 dashed arcs):
            # exits are frozen, so their dependents are scheduled by
            # hand when a copy lands new bits.
            for exit_node in ret_view[node]:
                merged = may_use[exit_node] | mu_acc
                if merged != may_use[exit_node]:
                    may_use[exit_node] = merged
                    for dependent in dep_view[exit_node]:
                        if queued[dependent]:
                            skipped += 1
                        else:
                            queued[dependent] = 1
                            pushes += 1
                            heappush(pocket, rank_of[dependent])
            deps = dep_view[node]
            if len(deps) == 1:  # single dependent: the common case
                dependent = deps[0]
                if queued[dependent]:
                    skipped += 1
                else:
                    queued[dependent] = 1
                    pushes += 1
                    heappush(pocket, rank_of[dependent])
            else:
                for dependent in deps:
                    if queued[dependent]:
                        skipped += 1
                    else:
                        queued[dependent] = 1
                        pushes += 1
                        heappush(pocket, rank_of[dependent])
            depth = n_sweep - si + len(pocket)
            if depth > max_depth:
                max_depth = depth
    iterations = pushes
    # distinct visited == seed count (see run_phase1_flat).
    revisits = iterations - n_sweep

    record_solve(
        psg, "phase2", iterations, max_depth, counts,
        pushes=pushes, skipped=skipped, revisits=revisits,
    )
    return Phase2Result(may_use=may_use, iterations=iterations)


def solve_masks_csr(
    node_count: int,
    edges: Sequence[Tuple[int, int]],
    gen: Sequence[int],
    kill: Sequence[int],
    boundary: int = 0,
    order: Optional[Sequence[int]] = None,
) -> List[int]:
    """Flat-core reference solve of a generic backward union problem:

    .. code-block:: none

        IN[n] = gen[n] | ((⋁ IN[s] for s in succ(n)) & ~kill[n])

    with ``boundary`` as the OUT of successor-less nodes.  Same CSR
    layout and priority scheduling as the phase engines, over an
    arbitrary digraph — the property tests use it to pin the flat core
    against :class:`~repro.dataflow.solver.WorklistSolver` and a FIFO
    reference on random graphs.
    """
    from array import array

    succ_lists: List[List[int]] = [[] for _ in range(node_count)]
    dep_lists: List[List[int]] = [[] for _ in range(node_count)]
    for src, dst in edges:
        succ_lists[src].append(dst)
        dep_lists[dst].append(src)

    def csr(lists: List[List[int]]) -> Tuple[array, array]:
        off = array("q", [0])
        total = 0
        for row in lists:
            total += len(row)
            off.append(total)
        idx = array("i")
        for row in lists:
            idx.extend(row)
        return off, idx

    succ_off, succ = csr(succ_lists)
    dep_off, dep = csr(dep_lists)
    states = [0] * node_count
    seed = list(order) if order is not None else list(range(node_count))
    frozen = bytearray(node_count)
    by_rank, rank_of, heap, queued = _seed_priority(node_count, seed, frozen)
    while heap:
        node = by_rank[heappop(heap)]
        queued[node] = 0
        start = succ_off[node]
        stop = succ_off[node + 1]
        if start == stop:
            out = boundary
        else:
            out = 0
            for k in range(start, stop):
                out |= states[succ[k]]
        new = gen[node] | (out & ~kill[node])
        if new != states[node]:
            states[node] = new
            for k in range(dep_off[node], dep_off[node + 1]):
                dependent = dep[k]
                if not queued[dependent]:
                    queued[dependent] = 1
                    heappush(heap, rank_of[dependent])
    return states
