"""Sharded parallel two-phase interprocedural solve.

The serial driver (:mod:`repro.interproc.analysis`) runs phase 1 and
phase 2 strictly sequentially over the whole PSG, leaving every core
but one idle on Table 2/3-scale images.  This module parallelizes both
phases without changing a single computed bit:

* the call graph's SCC **condensation** is partitioned into **shards**
  (:meth:`repro.cfg.callgraph.Condensation.partition_shards`) — runs of
  components, cost-balanced by CFG block counts, whose quotient graph
  is acyclic by construction;
* **phase 1** schedules shards *callee-first*: a shard becomes ready
  when every shard it calls into has published its members' entry
  triples, which the scheduler then pins on the shard's partial-PSG
  boundary (``run_phase1(..., fixed_entries=...)`` — the same
  pinned-entry machinery the incremental engine uses);
* **phase 2** schedules shards *caller-first*: a shard becomes ready
  when every shard calling into it has published return-point
  liveness, injected as exit seeds
  (``run_phase2(..., extra_exit_live=...)``);
* each shard is solved in a worker process from a ``multiprocessing``
  pool; workers hold the CFGs (inherited or pickled once at pool
  start) and lazily build per-shard local sets and partial PSGs.

**Determinism.**  The merge is trivially deterministic — each routine's
summary is produced by exactly one shard, and the result dict is
assembled in program order — and each shard's solution is *exact*, not
just sound: phase-1 entry triples depend only on the shard's own code
and its callees' (already exact) triples, and phase-2 liveness only on
the shard's code, the (fixed) phase-1 labels and its callers' (already
exact) return-point liveness.  By induction over the acyclic shard
DAG, the parallel result is bit-identical to the serial solver's at
any worker count and any shard count; the test suite asserts this.

**Warm runs.**  :func:`analyze_incremental_parallel` composes with the
fingerprint cache: only shards intersecting the conservative
invalidation cone (transitive callers of dirty routines for phase 1;
the transitive callees of that cone, plus orphaned / visibility-flipped
routines, for phase 2) are re-solved — in parallel — while clean
shards keep their cached summaries and serve them as pinned boundaries.

A worker-process death (OOM kill, segfault, ``os._exit``) surfaces as
a clean :class:`~repro.interproc.errors.AnalysisError` rather than a
hang: the pool's broken-pool signal aborts the wave.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.cfg.build import build_all_cfgs, build_cfg
from repro.cfg.callgraph import (
    CallGraph,
    Condensation,
    ShardPlan,
    build_call_graph,
)
from repro.cfg.cfg import CallSite, ControlFlowGraph, ExitKind
from repro.dataflow.equations import SummaryTriple
from repro.dataflow.local import LocalSets, compute_local_sets
from repro.dataflow.regset import TRACKED_MASK, mask_of
from repro.interproc.analysis import (
    AnalysisConfig,
    frontend_chunks,
    node_seed_order,
)
from repro.program.model import Program
from repro.interproc.errors import AnalysisError
from repro.interproc.phase1 import run_phase1
from repro.interproc.phase2 import run_phase2
from repro.interproc.savedregs import saved_restored_registers
from repro.interproc.summaries import (
    SummarySet,
    CallSiteSummary,
    RoutineSummary,
)
from repro.dataflow.regset import construction_count
from repro.obs import tracer as obs_tracer
from repro.obs.metrics import REGISTRY, MetricsPayload
from repro.obs.runid import current_run_id
from repro.obs.tracer import SpanRecord, span
from repro.psg.build import PartialPsg, build_partial_psg
from repro.reporting.metrics import ParallelMetrics, ShardMetrics

_log = logging.getLogger(__name__)

#: Spans + counter deltas recorded in a worker process during one task;
#: ``None`` when the task ran inline in the parent (which records into
#: the process-wide tracer/registry directly).
ObsPayload = Optional[Tuple[List[SpanRecord], MetricsPayload]]

#: Shards per worker the partitioner aims for.  Oversubscribing keeps
#: the pool busy when shard costs are uneven and lets the phase-2 wave
#: start draining while stragglers of unrelated subtrees finish.
SHARDS_PER_WORKER = 4

#: Front-end chunks per worker.  Finer-grained than shards: front-end
#: tasks have no dependencies, so extra chunks cost only one message
#: each and smooth out routine-size imbalance.
FRONTEND_CHUNKS_PER_WORKER = 4

#: Test-only fault injection: when set, every shard task calls it with
#: ``(phase, shard_index)`` on entry.  A test that points it at
#: ``os._exit`` simulates a worker crash; forked workers inherit it.
_FAULT_HOOK: Optional[Callable[[str, int], None]] = None


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

class _ProcessState:
    """Observability bookkeeping shared by every worker-state flavor."""

    def __init__(self, parent_pid: int) -> None:
        self.parent_pid = parent_pid
        #: Regset constructions already accounted for; each obs drain
        #: folds the delta into the worker's registry.
        self.regset_base = construction_count()

    @property
    def in_subprocess(self) -> bool:
        return os.getpid() != self.parent_pid

    def reset_obs(self, trace_enabled: bool, run_id: Optional[str]) -> None:
        """Install fresh per-process observability state in a fork.

        The inherited tracer buffer and registry belong to the parent
        and must not be double-counted.  The parent run id is adopted
        so worker log lines and spans correlate.  No-op when "worker"
        code runs inline in the parent process.
        """
        if not self.in_subprocess:
            return
        REGISTRY.reset()
        self.regset_base = construction_count()
        # A fork from a daemon request thread inherits that thread's
        # request-local tracer; its buffer belongs to the parent.
        obs_tracer.clear_local_tracer()
        if trace_enabled:
            obs_tracer.enable(run_id=run_id)
        else:
            obs_tracer.disable()


class _WorkerState(_ProcessState):
    """Per-process solve state: program structures plus lazy per-shard
    caches.  ``local_sets``/``saved`` may arrive prepopulated (the cold
    path's parallel front end already built every routine's artifacts;
    forked workers inherit them for free), in which case the shard
    tasks recompute nothing."""

    def __init__(
        self,
        cfgs: Dict[str, ControlFlowGraph],
        config: AnalysisConfig,
        shard_routines: List[List[str]],
        parent_pid: int,
        local_sets: Optional[Dict[str, List[LocalSets]]] = None,
        saved: Optional[Dict[str, int]] = None,
    ) -> None:
        super().__init__(parent_pid)
        self.cfgs = cfgs
        self.config = config
        self.shard_routines = shard_routines
        self.preserved = mask_of(
            {config.convention.stack_pointer, config.convention.global_pointer}
        )
        self.local_sets: Dict[str, List[LocalSets]] = (
            dict(local_sets) if local_sets else {}
        )
        self.saved: Dict[str, int] = dict(saved) if saved else {}
        self.partials: Dict[int, PartialPsg] = {}
        self.orders: Dict[int, List[int]] = {}


_STATE: Optional[_WorkerState] = None


def _init_worker(
    cfgs: Dict[str, ControlFlowGraph],
    config: AnalysisConfig,
    shard_routines: List[List[str]],
    parent_pid: int,
    trace_enabled: bool,
    run_id: Optional[str],
    local_sets: Optional[Dict[str, List[LocalSets]]] = None,
    saved: Optional[Dict[str, int]] = None,
) -> None:
    global _STATE
    _STATE = _WorkerState(
        cfgs, config, shard_routines, parent_pid,
        local_sets=local_sets, saved=saved,
    )
    _STATE.reset_obs(trace_enabled, run_id)


class _FrontendState(_ProcessState):
    """Per-process front-end state: just the program and config."""

    def __init__(
        self, program: Program, config: AnalysisConfig, parent_pid: int
    ) -> None:
        super().__init__(parent_pid)
        self.program = program
        self.config = config


_FE_STATE: Optional[_FrontendState] = None


def _init_frontend(
    program: Program,
    config: AnalysisConfig,
    parent_pid: int,
    trace_enabled: bool,
    run_id: Optional[str],
) -> None:
    global _FE_STATE
    _FE_STATE = _FrontendState(program, config, parent_pid)
    _FE_STATE.reset_obs(trace_enabled, run_id)


#: One routine's shippable front-end artifacts: (local sets, §3.4 mask).
FrontendArtifacts = Dict[str, Tuple[List[LocalSets], int]]


def _build_frontend_chunk(
    names: List[str],
) -> Tuple[
    Dict[str, ControlFlowGraph],
    FrontendArtifacts,
    Dict[str, float],
    ObsPayload,
]:
    """Build one chunk's CFGs, local sets and saved/restored masks.

    Runs in a front-end pool worker (the program arrived via fork at
    pool start); returns everything the parent needs to assemble the
    whole-program front end, with per-stage seconds for attribution.
    """
    state = _FE_STATE
    assert state is not None, "front-end worker used before initialization"
    program = state.program
    config = state.config
    seconds: Dict[str, float] = {}
    with span("frontend.chunk", routines=len(names)):
        start = time.perf_counter()
        cfgs = {
            name: build_cfg(program, program.routine(name)) for name in names
        }
        seconds["cfg_build"] = time.perf_counter() - start
        start = time.perf_counter()
        artifacts: FrontendArtifacts = {}
        for name, cfg in cfgs.items():
            saved = (
                saved_restored_registers(cfg, config.convention)
                if config.callee_saved_filtering
                else 0
            )
            artifacts[name] = (compute_local_sets(cfg), saved)
        seconds["initialization"] = time.perf_counter() - start
    REGISTRY.inc("frontend.routines", len(names))
    REGISTRY.inc("frontend.chunks")
    return cfgs, artifacts, seconds, _drain_obs(state)


def _drain_obs(state: _ProcessState) -> ObsPayload:
    """The observability payload shipped back with each task result.

    In a subprocess: the spans and counters recorded since the last
    drain (the parent merges them on receipt).  Inline (``jobs <= 1``):
    ``None`` — the task already recorded into the parent's own
    tracer/registry.
    """
    if not state.in_subprocess:
        return None
    regsets = construction_count()
    if regsets != state.regset_base:
        REGISTRY.inc("regset.constructed", regsets - state.regset_base)
        state.regset_base = regsets
    tracer = obs_tracer.get_tracer()
    spans = tracer.drain() if tracer.enabled else []
    return (spans, REGISTRY.collect(clear=True))


def _absorb_obs(payload: ObsPayload) -> None:
    """Parent side: merge a worker task's spans and counters."""
    if payload is None:
        return
    spans, counters = payload
    if spans:
        obs_tracer.get_tracer().merge(spans)
    REGISTRY.merge(counters)


def _shard_partial(
    state: _WorkerState,
    shard_index: int,
    seconds: Dict[str, float],
    fresh: Optional[FrontendArtifacts] = None,
) -> PartialPsg:
    """The shard's partial PSG (built once per worker), with the
    initialization work (local sets, §3.4 masks) charged separately.

    Artifacts already present on the worker (shipped via pool initargs
    on cold runs, applied from a task payload, or computed by an
    earlier task in this process) are reused; only the remainder is
    computed, and recorded into ``fresh`` when given so the parent can
    forward it to whichever worker solves this shard's next phase.
    """
    partial = state.partials.get(shard_index)
    if partial is not None:
        return partial
    members = state.shard_routines[shard_index]
    start = time.perf_counter()
    for name in members:
        if name not in state.local_sets:
            cfg = state.cfgs[name]
            state.local_sets[name] = compute_local_sets(cfg)
            state.saved[name] = (
                saved_restored_registers(cfg, state.config.convention)
                if state.config.callee_saved_filtering
                else 0
            )
            if fresh is not None:
                fresh[name] = (state.local_sets[name], state.saved[name])
    seconds["initialization"] = (
        seconds.get("initialization", 0.0) + time.perf_counter() - start
    )
    start = time.perf_counter()
    partial = build_partial_psg(
        state.cfgs, state.local_sets, members, state.config.psg
    )
    seconds["psg_build"] = (
        seconds.get("psg_build", 0.0) + time.perf_counter() - start
    )
    state.partials[shard_index] = partial
    state.orders[shard_index] = node_seed_order(partial.psg, partial.members)
    return partial


def _solve_shard_phase1(
    shard_index: int, pinned: Dict[str, Tuple[int, int, int]]
) -> Tuple[
    int,
    Dict[str, Tuple[int, int, int]],
    FrontendArtifacts,
    Dict[str, float],
    int,
    ObsPayload,
]:
    """Solve one shard's phase 1 against pinned callee triples.

    ``pinned`` maps every callee outside the shard to its converged
    ``(may_use, may_def, must_def)`` triple; returns the same encoding
    for the shard's members (plain int tuples keep the pickled
    messages small), the front-end artifacts this task had to compute
    itself (empty on cold runs, where initargs prepopulate them — the
    parent forwards them into the shard's phase-2 payload so a sibling
    worker does not recompute the cone), plus the worker's
    observability payload.
    """
    if _FAULT_HOOK is not None:
        _FAULT_HOOK("phase1", shard_index)
    state = _STATE
    assert state is not None, "worker used before initialization"
    seconds: Dict[str, float] = {}
    fresh: FrontendArtifacts = {}
    with span("phase1.shard", shard=shard_index):
        partial = _shard_partial(state, shard_index, seconds, fresh)
        fixed = {
            node_id: SummaryTriple(*pinned[callee])
            for callee, node_id in partial.external_entries.items()
        }
        start = time.perf_counter()
        solution = run_phase1(
            partial.psg,
            state.saved,
            state.preserved,
            state.orders[shard_index],
            fixed_entries=fixed,
            core=state.config.solver_core,
        )
        seconds["phase1"] = time.perf_counter() - start
        triples = {}
        for name in partial.members:
            triple = solution.entry_triple(partial.psg, name)
            triples[name] = (triple.may_use, triple.may_def, triple.must_def)
    return (
        shard_index, triples, fresh, seconds, solution.iterations,
        _drain_obs(state),
    )


def _solve_shard_phase2(
    shard_index: int,
    triples: Dict[str, Tuple[int, int, int]],
    exit_seeds: Dict[str, int],
    externally_callable: Set[str],
    artifacts: Optional[FrontendArtifacts] = None,
) -> Tuple[int, Dict[str, RoutineSummary], Dict[str, float], int, ObsPayload]:
    """Solve one shard's phase 2 and assemble its routine summaries.

    ``triples`` covers the shard's members *and* every callee they can
    reach (needed to label the call-return edges); ``exit_seeds`` maps
    member routines to the liveness their out-of-shard callers inject
    at their RETURN exits; ``artifacts`` carries front-end artifacts a
    sibling worker computed during phase 1, so this worker only
    recomputes what nobody has yet.
    """
    if _FAULT_HOOK is not None:
        _FAULT_HOOK("phase2", shard_index)
    state = _STATE
    assert state is not None, "worker used before initialization"
    if artifacts:
        for name, (local, saved) in artifacts.items():
            if name not in state.local_sets:
                state.local_sets[name] = local
                state.saved[name] = saved
    seconds: Dict[str, float] = {}
    shard_span = span("phase2.shard", shard=shard_index)
    shard_span.__enter__()
    partial = _shard_partial(state, shard_index, seconds)
    psg = partial.psg

    # Label resolved call-return edges from the converged triples (the
    # job run_phase1 does at the end of a whole-program solve).
    for edge in psg.call_return_edges:
        if edge.is_unknown:
            continue
        label_mu = 0
        label_md = 0
        label_xd = -1
        for callee in edge.callees:
            may_use, may_def, must_def = triples[callee]
            label_mu |= may_use
            label_md |= may_def
            label_xd &= must_def
        edge.label = SummaryTriple(
            may_use=label_mu,
            may_def=label_md,
            must_def=label_xd & TRACKED_MASK,
        )

    seeds: Dict[int, int] = {}
    for name, seed in exit_seeds.items():
        if not seed:
            continue
        for node_id in psg.routines[name].return_exit_nodes():
            seeds[node_id] = seed

    start = time.perf_counter()
    solution = run_phase2(
        psg,
        externally_callable,
        state.config.convention,
        state.orders[shard_index],
        extra_exit_live=seeds,
        core=state.config.solver_core,
    )
    seconds["phase2"] = time.perf_counter() - start

    start = time.perf_counter()
    may_use = solution.may_use
    cr_by_src = {edge.src: edge for edge in psg.call_return_edges}
    summaries: Dict[str, RoutineSummary] = {}
    for name in partial.members:
        routine_psg = psg.routines[name]
        exit_live: Dict[int, int] = {}
        exit_kinds: Dict[int, ExitKind] = {}
        for node_id, kind in routine_psg.exit_nodes:
            block = psg.nodes[node_id].block
            exit_live[block] = may_use[node_id]
            exit_kinds[block] = kind
        call_sites: List[CallSiteSummary] = []
        for call_node, return_node, site in routine_psg.call_pairs:
            label = cr_by_src[call_node].label
            call_sites.append(
                CallSiteSummary(
                    site=site,
                    used_mask=label.may_use,
                    defined_mask=label.must_def,
                    killed_mask=label.may_def,
                    live_before_mask=may_use[call_node],
                    live_after_mask=may_use[return_node],
                )
            )
        entry_mu, entry_md, entry_xd = triples[name]
        summaries[name] = RoutineSummary(
            name=name,
            call_used_mask=entry_mu,
            call_defined_mask=entry_xd,
            call_killed_mask=entry_md,
            live_at_entry_mask=may_use[routine_psg.entry_node],
            exit_live_masks=exit_live,
            exit_kinds=exit_kinds,
            call_sites=call_sites,
            saved_restored_mask=state.saved.get(name, 0),
        )
    seconds["assemble"] = time.perf_counter() - start
    shard_span.__exit__(None, None, None)
    return shard_index, summaries, seconds, solution.iterations, _drain_obs(state)


# ----------------------------------------------------------------------
# Parent side: the wave scheduler
# ----------------------------------------------------------------------

class _ShardScheduler:
    """Runs shard tasks over a pool, respecting readiness dependencies.

    ``jobs == 1`` runs every task inline in the parent (no pool, no
    pickling) through the very same worker functions, so the serial
    and parallel code paths cannot drift apart.
    """

    def __init__(
        self,
        jobs: int,
        cfgs: Dict[str, ControlFlowGraph],
        config: AnalysisConfig,
        shard_routines: List[List[str]],
        local_sets: Optional[Dict[str, List[LocalSets]]] = None,
        saved: Optional[Dict[str, int]] = None,
    ) -> None:
        self.jobs = jobs
        self._pool: Optional[ProcessPoolExecutor] = None
        # Same initializer arguments either way: inline "workers" see
        # their own pid as the parent and leave the parent's obs state
        # alone; forked workers reset theirs (see _init_worker).  When
        # the parent already holds every routine's front-end artifacts
        # (cold runs), they ride along and shard tasks recompute
        # nothing; forked workers inherit them without pickling.
        initargs = (
            cfgs,
            config,
            shard_routines,
            os.getpid(),
            obs_tracer.is_enabled(),
            current_run_id(),
            local_sets,
            saved,
        )
        if jobs <= 1:
            _init_worker(*initargs)
        else:
            _log.debug(
                "starting worker pool: %d workers, %d shards",
                jobs, len(shard_routines),
            )
            self._pool = ProcessPoolExecutor(
                max_workers=jobs,
                initializer=_init_worker,
                initargs=initargs,
            )

    def close(self) -> None:
        if self._pool is not None:
            # wait=True: every submitted task has already completed or
            # the pool is broken (workers dead), so this returns
            # promptly — and it lets the executor tear down its
            # management thread cleanly instead of at interpreter exit.
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def run_wave(
        self,
        phase: str,
        shard_ids: Sequence[int],
        prerequisites: Dict[int, Set[int]],
        make_task: Callable[[int], Tuple[Callable, tuple]],
        on_result: Callable[[tuple], None],
    ) -> None:
        """Run every shard task once, oldest-ready-first.

        ``prerequisites[s]`` must only name shards inside this wave;
        ``make_task`` is called lazily — after a shard's prerequisites
        completed — so task arguments can embed published results.
        ``on_result`` runs in the parent, in completion order; nothing
        downstream may depend on that order (results are keyed by
        shard, and the final merge is order-independent).
        """
        pending = {s: set(prerequisites.get(s, ())) for s in shard_ids}
        dependents: Dict[int, List[int]] = {}
        for shard, requirements in pending.items():
            unknown = requirements - pending.keys()
            if unknown:
                raise AnalysisError(
                    f"{phase} wave: shard {shard} depends on shards "
                    f"{sorted(unknown)} outside the wave"
                )
            for requirement in requirements:
                dependents.setdefault(requirement, []).append(shard)
        ready = sorted(s for s in shard_ids if not pending[s])
        if self._pool is None:
            self._run_inline(phase, pending, dependents, ready, make_task, on_result)
        else:
            self._run_pooled(phase, pending, dependents, ready, make_task, on_result)
        unfinished = [s for s, reqs in pending.items() if reqs]
        if unfinished:  # cyclic shard graph would be a partitioner bug
            raise AnalysisError(
                f"{phase} wave deadlocked; shards never ready: "
                f"{sorted(unfinished)[:8]}"
            )

    def _finish(self, shard, pending, dependents, ready) -> None:
        del pending[shard]
        for dependent in dependents.get(shard, ()):  # may already be done
            requirements = pending.get(dependent)
            if requirements is not None:
                requirements.discard(shard)
                if not requirements:
                    ready.append(dependent)

    def _run_inline(
        self, phase, pending, dependents, ready, make_task, on_result
    ) -> None:
        while ready:
            shard = ready.pop(0)
            function, args = make_task(shard)
            try:
                result = function(*args)
            except Exception as error:
                raise AnalysisError(
                    f"{phase} solve of shard {shard} failed: {error}"
                ) from error
            on_result(result)
            self._finish(shard, pending, dependents, ready)

    def _run_pooled(
        self, phase, pending, dependents, ready, make_task, on_result
    ) -> None:
        assert self._pool is not None
        in_flight: Dict[Future, int] = {}
        try:
            while ready or in_flight:
                while ready:
                    shard = ready.pop(0)
                    function, args = make_task(shard)
                    in_flight[self._pool.submit(function, *args)] = shard
                done, _ = wait(in_flight, return_when=FIRST_COMPLETED)
                for future in done:
                    shard = in_flight.pop(future)
                    result = future.result()
                    on_result(result)
                    self._finish(shard, pending, dependents, ready)
        except AnalysisError:
            raise
        except Exception as error:
            # BrokenProcessPool (a worker died), a pickling failure, or
            # an exception raised inside the shard solve.
            failed = sorted(in_flight.values())
            raise AnalysisError(
                f"{phase} solve failed"
                + (f" (shards in flight: {failed[:8]})" if failed else "")
                + f": {error!r}"
            ) from error


# ----------------------------------------------------------------------
# The shard engine (shared by cold and warm entry points)
# ----------------------------------------------------------------------

def _triple_tuple(summary: RoutineSummary) -> Tuple[int, int, int]:
    """A cached summary's phase-1 triple, in solver orientation."""
    return (
        summary.call_used_mask,
        summary.call_killed_mask,
        summary.call_defined_mask,
    )


@dataclass
class _ShardEngine:
    """One sharded solve: waves, published facts, metrics."""

    call_graph: CallGraph
    plan: ShardPlan
    scheduler: _ShardScheduler
    metrics: ParallelMetrics
    #: Cached facts for routines whose shard is not re-solved.
    cached_summaries: Dict[str, RoutineSummary] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.triples: Dict[str, Tuple[int, int, int]] = {
            name: _triple_tuple(summary)
            for name, summary in self.cached_summaries.items()
        }
        self.fresh: Dict[str, RoutineSummary] = {}
        #: Front-end artifacts phase-1 workers computed themselves,
        #: forwarded into the same shard's phase-2 payload so a
        #: different worker drawing that shard skips the recompute.
        self.artifacts: FrontendArtifacts = {}
        self.shard_metrics: Dict[int, ShardMetrics] = {}
        self.phase1_iterations = 0
        self.phase2_iterations = 0

    def _shard_record(self, index: int) -> ShardMetrics:
        record = self.shard_metrics.get(index)
        if record is None:
            shard = self.plan.shards[index]
            record = ShardMetrics(
                shard=index, routines=len(shard.routines), cost=shard.cost
            )
            self.shard_metrics[index] = record
            self.metrics.shards.append(record)
        return record

    # -- phase 1 -------------------------------------------------------

    def run_phase1_wave(self, shard_ids: Set[int]) -> None:
        """Solve ``shard_ids`` callee-first, publishing entry triples."""

        def make_task(shard: int):
            pinned: Dict[str, Tuple[int, int, int]] = {}
            for name in self.plan.shards[shard].routines:
                for callee in self.call_graph.callees_of(name):
                    if self.plan.shard_of_routine[callee] != shard:
                        pinned[callee] = self.triples[callee]
            return _solve_shard_phase1, (shard, pinned)

        def on_result(result) -> None:
            shard, triples, artifacts, seconds, iterations, obs_payload = result
            _absorb_obs(obs_payload)
            REGISTRY.inc("shards.solved", phase="phase1")
            self.triples.update(triples)
            self.artifacts.update(artifacts)
            record = self._shard_record(shard)
            for name, value in seconds.items():
                record.merge_stage(name, value)
            record.phase1_iterations += iterations
            self.phase1_iterations += iterations

        prerequisites = {
            shard: self.plan.callee_shards[shard] & shard_ids
            for shard in shard_ids
        }
        with self.metrics.stage("phase1"):
            self.scheduler.run_wave(
                "phase1", sorted(shard_ids), prerequisites, make_task, on_result
            )

    # -- phase 2 -------------------------------------------------------

    def _live_after(self, caller: str, site: CallSite) -> int:
        """Current live-after mask at ``site`` (fresh if the caller's
        shard was re-solved this run, else cached)."""
        summary = self.fresh.get(caller) or self.cached_summaries.get(caller)
        if summary is None:
            return 0
        for known in summary.call_sites:
            if (
                known.site.block == site.block
                and known.site.instruction_index == site.instruction_index
            ):
                return known.live_after_mask
        return 0

    def run_phase2_wave(self, shard_ids: Set[int]) -> None:
        """Solve ``shard_ids`` caller-first, injecting boundary seeds."""
        externally_callable = set(self.call_graph.externally_callable)

        def make_task(shard: int):
            members = self.plan.shards[shard].routines
            triples: Dict[str, Tuple[int, int, int]] = {}
            exit_seeds: Dict[str, int] = {}
            artifacts: FrontendArtifacts = {}
            for name in members:
                triples[name] = self.triples[name]
                for callee in self.call_graph.callees_of(name):
                    triples[callee] = self.triples[callee]
                seed = 0
                for caller, site in self.call_graph.callers_of(name):
                    if self.plan.shard_of_routine[caller] == shard:
                        continue  # in-shard flow happens inside the solve
                    seed |= self._live_after(caller, site)
                if seed:
                    exit_seeds[name] = seed
                known = self.artifacts.get(name)
                if known is not None:
                    artifacts[name] = known
            return _solve_shard_phase2, (
                shard, triples, exit_seeds, externally_callable, artifacts,
            )

        def on_result(result) -> None:
            shard, summaries, seconds, iterations, obs_payload = result
            _absorb_obs(obs_payload)
            REGISTRY.inc("shards.solved", phase="phase2")
            self.fresh.update(summaries)
            record = self._shard_record(shard)
            for name, value in seconds.items():
                record.merge_stage(name, value)
            record.phase2_iterations += iterations
            self.phase2_iterations += iterations

        prerequisites = {
            shard: self.plan.caller_shards[shard] & shard_ids
            for shard in shard_ids
        }
        with self.metrics.stage("phase2"):
            self.scheduler.run_wave(
                "phase2", sorted(shard_ids), prerequisites, make_task, on_result
            )


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------

@dataclass
class ParallelAnalysis:
    """Everything produced by one sharded parallel run.

    The whole-program PSG and raw per-node phase solutions are *not*
    materialized (each worker discards its partial PSG); ``result``
    carries the same per-routine summaries as the serial driver,
    bit-identical to :func:`repro.interproc.analysis.analyze_program`.
    """

    program: Program
    config: AnalysisConfig
    cfgs: Dict[str, ControlFlowGraph]
    call_graph: CallGraph
    condensation: Condensation
    plan: ShardPlan
    result: SummarySet
    metrics: ParallelMetrics

    #: Explicit marker for CLI/report code (counterpart of
    #: ``InterproceduralAnalysis.is_parallel``); prefer this over
    #: duck-typing on the absence of a ``psg`` attribute.
    is_parallel: bool = True

    #: Result-protocol kind tag (see :mod:`repro.interproc.results`).
    kind = "parallel"

    def summary(self, routine: str) -> RoutineSummary:
        return self.result.summaries[routine]

    def stats(self) -> Dict[str, object]:
        """Kind-specific stats: shard plan and pool utilization."""
        return self.metrics.as_dict()

    def to_json(self, counters=None, include_summaries: bool = False):
        """The versioned (schema 1) result payload; see
        :mod:`repro.interproc.results`."""
        from repro.interproc.results import build_payload

        return build_payload(self, counters, include_summaries)

    def describe(self) -> str:
        """The human-readable stats block (the CLI text output)."""
        return self.metrics.render()


def resolve_jobs(jobs: Optional[int], config: Optional[AnalysisConfig]) -> int:
    """The effective worker count: explicit ``jobs`` beats the config
    field; 0 or negative means "one per available CPU"."""
    value = jobs if jobs is not None else getattr(config, "jobs", 1)
    if value is None or value == 1:
        return 1
    if value <= 0:
        return multiprocessing.cpu_count()
    return value


def shard_cost_heuristic(cfgs: Dict[str, ControlFlowGraph]) -> Dict[str, int]:
    """Per-routine work estimate: CFG block count (PSG size, and hence
    solve time, tracks it closely)."""
    return {name: max(1, cfg.block_count) for name, cfg in cfgs.items()}


def _parallel_frontend(
    program: Program,
    config: AnalysisConfig,
    jobs: int,
    metrics: ParallelMetrics,
) -> Tuple[
    Dict[str, ControlFlowGraph],
    Dict[str, List[LocalSets]],
    Dict[str, int],
]:
    """Fan per-routine CFG / local-set / saved-mask construction across
    a transient worker pool.

    The front-end pool exists only for this wave: it is created before
    any CFG does (workers inherit just the program via fork) and torn
    down before the solve pool starts, so the solve pool's fork snapshot
    already contains every artifact — shard workers inherit the full
    front end without a single pickled payload.  Results are
    reassembled in program order, so downstream iteration (call graph,
    partitioning, summary merge) is identical to the serial driver's.
    """
    chunks = frontend_chunks(program, jobs * FRONTEND_CHUNKS_PER_WORKER)
    collected_cfgs: Dict[str, ControlFlowGraph] = {}
    collected: FrontendArtifacts = {}
    initargs = (
        program,
        config,
        os.getpid(),
        obs_tracer.is_enabled(),
        current_run_id(),
    )
    _log.debug(
        "parallel front end: %d routines in %d chunks, jobs=%d",
        program.routine_count, len(chunks), jobs,
    )
    pool = ProcessPoolExecutor(
        max_workers=jobs, initializer=_init_frontend, initargs=initargs
    )
    try:
        futures = [
            pool.submit(_build_frontend_chunk, chunk) for chunk in chunks
        ]
        for future in futures:
            try:
                cfgs, artifacts, seconds, obs_payload = future.result()
            except Exception as error:
                raise AnalysisError(
                    f"parallel front-end build failed: {error!r}"
                ) from error
            _absorb_obs(obs_payload)
            collected_cfgs.update(cfgs)
            collected.update(artifacts)
            for name, value in seconds.items():
                metrics.frontend_seconds[name] = (
                    metrics.frontend_seconds.get(name, 0.0) + value
                )
    finally:
        pool.shutdown(wait=True, cancel_futures=True)
    cfgs = {routine.name: collected_cfgs[routine.name] for routine in program}
    local_sets = {
        routine.name: collected[routine.name][0] for routine in program
    }
    saved = {routine.name: collected[routine.name][1] for routine in program}
    return cfgs, local_sets, saved


def analyze_parallel(
    program,
    config: Optional[AnalysisConfig] = None,
    jobs: Optional[int] = None,
    shards: Optional[int] = None,
) -> ParallelAnalysis:
    """Run the full two-phase analysis sharded across ``jobs`` workers.

    ``shards`` overrides the shard-count target (default:
    ``jobs * SHARDS_PER_WORKER``); results are bit-identical to the
    serial solver for every choice of either knob.
    """
    config = config or AnalysisConfig()
    jobs = resolve_jobs(jobs, config)
    metrics = ParallelMetrics(jobs=jobs, routines_total=program.routine_count)

    local_sets: Optional[Dict[str, List[LocalSets]]] = None
    saved: Optional[Dict[str, int]] = None
    if jobs > 1:
        # Cold front end in parallel: CFGs, local sets and §3.4 masks
        # fan out per routine; only the call graph (cheap, and needing
        # every CFG) stays parent-side.
        with metrics.stage("frontend"):
            cfgs, local_sets, saved = _parallel_frontend(
                program, config, jobs, metrics
            )
        with metrics.stage("cfg_build"):
            call_graph = build_call_graph(program, cfgs)
    else:
        with metrics.stage("cfg_build"):
            cfgs = build_all_cfgs(program)
            call_graph = build_call_graph(program, cfgs)
        REGISTRY.inc("frontend.routines", len(cfgs))
    with metrics.stage("partition"):
        condensation = call_graph.condensation()
        target = shards if shards is not None else jobs * SHARDS_PER_WORKER
        plan = condensation.partition_shards(
            shard_cost_heuristic(cfgs), max_shards=max(1, target)
        )
    metrics.shard_count = plan.shard_count
    _log.info(
        "parallel solve: %d routines in %d shards, jobs=%d",
        program.routine_count, plan.shard_count, jobs,
    )

    shard_routines = [shard.routines for shard in plan.shards]
    scheduler = _ShardScheduler(
        jobs, cfgs, config, shard_routines,
        local_sets=local_sets, saved=saved,
    )
    try:
        engine = _ShardEngine(
            call_graph=call_graph,
            plan=plan,
            scheduler=scheduler,
            metrics=metrics,
        )
        all_shards = set(range(plan.shard_count))
        engine.run_phase1_wave(all_shards)
        engine.run_phase2_wave(all_shards)
    finally:
        scheduler.close()

    result = SummarySet(
        summaries={name: engine.fresh[name] for name in cfgs}
    )
    _publish_parallel(program, config, cfgs, call_graph, condensation, result)
    return ParallelAnalysis(
        program=program,
        config=config,
        cfgs=cfgs,
        call_graph=call_graph,
        condensation=condensation,
        plan=plan,
        result=result,
        metrics=metrics,
    )


def _publish_parallel(
    program, config, cfgs, call_graph, condensation, result
) -> None:
    """Publish a merged parallel result to the cross-image summary
    store, when one is configured.

    Publish-only, from the parent after the merge: shard workers never
    consult the store, so parallel results stay trivially byte-identical
    with the store on, off, or poisoned at any worker count.
    """
    from repro.interproc.store import publish_result, resolve_store

    store = resolve_store(config)
    if store is None:
        return
    from repro.interproc.incremental import routine_fingerprint

    fingerprints = {
        name: routine_fingerprint(program.routine(name), cfgs[name])
        for name in cfgs
    }
    publish_result(
        store, condensation, call_graph, fingerprints, config, result
    )


def _fold_parallel_seconds(metrics, parallel_metrics: ParallelMetrics) -> None:
    """Fold a parallel run's timings into an ``IncrementalMetrics``:
    parent wall clock for the scheduled stages (phase1/phase2 cover a
    whole wave, pool latency included) plus summed worker-side time for
    the stages only workers see (initialization, psg_build, assemble —
    busy time, so with several workers it can exceed the wave's wall
    time)."""
    for name, value in parallel_metrics.wall_seconds.items():
        if name != "partition":  # not an IncrementalMetrics stage
            metrics.seconds[name] = metrics.seconds.get(name, 0.0) + value
    for record in parallel_metrics.shards:
        for name, value in record.seconds.items():
            if name not in ("phase1", "phase2"):
                metrics.seconds[name] = metrics.seconds.get(name, 0.0) + value


def analyze_incremental_parallel(
    program,
    cache,
    config: Optional[AnalysisConfig] = None,
    image_fingerprint: int = 0,
    jobs: Optional[int] = None,
    shards: Optional[int] = None,
):
    """A warm incremental run that re-solves only *dirty shards*, in
    parallel.

    The invalidation cone is the conservative closure the serial warm
    engine starts from (transitive callers of dirty routines for
    phase 1; transitive callees of that cone plus orphaned and
    visibility-flipped routines for phase 2) — without the serial
    engine's per-component change cutoff, which is inherently
    sequential.  Re-solving a clean routine reproduces its cached
    facts exactly, so the result is still bit-identical to a serial
    warm run (and to a cold run) at any worker count.

    Returns :class:`repro.interproc.incremental.IncrementalAnalysis`
    with :attr:`~IncrementalAnalysis.parallel` metrics attached.
    """
    # Imported here: incremental.py lazily imports this module.
    from repro.interproc.incremental import (
        IncrementalAnalysis,
        SummaryCache,
        orphaned_callees,
        record_fingerprint_verdicts,
        routine_fingerprint,
    )
    from repro.reporting.metrics import IncrementalMetrics

    config = config or AnalysisConfig()
    jobs = resolve_jobs(jobs, config)

    if cache is None:
        # Cold run: the sharded cold solve, plus a fresh cache to seed
        # future warm runs.
        analysis = analyze_parallel(program, config, jobs=jobs, shards=shards)
        REGISTRY.inc("cache.miss", len(analysis.cfgs))
        metrics = IncrementalMetrics(routines_total=program.routine_count)
        metrics.cold = True
        metrics.dirty_routines = sorted(analysis.cfgs)
        metrics.phase1_solved = metrics.phase2_solved = len(analysis.cfgs)
        metrics.phase1_sccs_solved = metrics.phase2_sccs_solved = len(
            analysis.condensation.components
        )
        with metrics.stage("fingerprint"):
            fingerprints = {
                name: routine_fingerprint(
                    program.routine(name), analysis.cfgs[name]
                )
                for name in analysis.cfgs
            }
        new_cache = SummaryCache(
            image_fingerprint=image_fingerprint,
            result=analysis.result,
            routine_fingerprints=fingerprints,
            externally_callable=set(analysis.call_graph.externally_callable),
        )
        _fold_parallel_seconds(metrics, analysis.metrics)
        for record in analysis.metrics.shards:
            metrics.phase1_iterations += record.phase1_iterations
            metrics.phase2_iterations += record.phase2_iterations
        return IncrementalAnalysis(
            program=program,
            config=config,
            cfgs=analysis.cfgs,
            call_graph=analysis.call_graph,
            result=analysis.result,
            cache=new_cache,
            metrics=metrics,
            condensation=analysis.condensation,
            parallel=analysis.metrics,
        )
    metrics = IncrementalMetrics(routines_total=program.routine_count)
    parallel_metrics = ParallelMetrics(
        jobs=jobs, routines_total=program.routine_count
    )

    with parallel_metrics.stage("cfg_build"):
        cfgs = build_all_cfgs(program)
        call_graph = build_call_graph(program, cfgs)
    REGISTRY.inc("frontend.routines", len(cfgs))

    with parallel_metrics.stage("fingerprint"):
        fingerprints = {
            name: routine_fingerprint(program.routine(name), cfgs[name])
            for name in cfgs
        }
        dirty = record_fingerprint_verdicts(fingerprints, cache)
        # The shard engine pins boundaries with full cached summaries;
        # phase-1-only triple entries (demand-engine memos) satisfy the
        # fingerprint check but carry no liveness, so re-solve them
        # here rather than teach every shard about partial entries.
        dirty |= {name for name in cfgs if name not in cache.result.summaries}
    metrics.dirty_routines = sorted(dirty)
    _log.info(
        "warm parallel run: %d routines, %d dirty, jobs=%d",
        len(cfgs), len(dirty), jobs,
    )

    cached = cache.result.summaries
    with parallel_metrics.stage("partition"):
        condensation = call_graph.condensation()
        target = shards if shards is not None else jobs * SHARDS_PER_WORKER
        plan = condensation.partition_shards(
            shard_cost_heuristic(cfgs), max_shards=max(1, target)
        )

        # Phase-1 cone: dirty/new components and their transitive
        # callers (their summaries consume the changed triples).
        dirty_components = {
            condensation.component_of[name] for name in dirty
        }
        phase1_components = condensation.transitive_caller_components(
            dirty_components
        )
        # Phase-2 cone: everything phase 1 may relabel, plus routines
        # whose boundary conditions moved (orphaned callees, external-
        # visibility flips), and all their transitive callees (their
        # exit liveness consumes caller return points).
        orphaned = orphaned_callees(cached, cfgs, call_graph, dirty)
        flipped = {
            name
            for name in cfgs
            if (name in cache.externally_callable)
            != (name in call_graph.externally_callable)
        }
        phase2_roots = set(phase1_components)
        for name in orphaned | flipped:
            if name in condensation.component_of:
                phase2_roots.add(condensation.component_of[name])
        phase2_components = condensation.transitive_callee_components(
            phase2_roots
        )

        phase1_shards = {
            plan.shard_of_component[index] for index in phase1_components
        }
        phase2_shards = {
            plan.shard_of_component[index] for index in phase2_components
        }
        # A shard re-solved in phase 2 needs its members' triples; any
        # member whose triple is not cached (new routine) must have
        # been phase-1-solved — guaranteed because new routines are
        # dirty, hence in the phase-1 cone.
    parallel_metrics.shard_count = plan.shard_count
    parallel_metrics.shards_reused = plan.shard_count - len(
        phase1_shards | phase2_shards
    )
    if parallel_metrics.shards_reused:
        REGISTRY.inc("shards.reused", parallel_metrics.shards_reused)

    cached_boundary = {
        name: summary for name, summary in cached.items() if name in cfgs
    }
    shard_routines = [shard.routines for shard in plan.shards]
    # A fully clean warm run solves nothing — never pay for a pool.
    pool_jobs = jobs if (phase1_shards or phase2_shards) else 1
    scheduler = _ShardScheduler(pool_jobs, cfgs, config, shard_routines)
    try:
        engine = _ShardEngine(
            call_graph=call_graph,
            plan=plan,
            scheduler=scheduler,
            metrics=parallel_metrics,
            cached_summaries=cached_boundary,
        )
        engine.run_phase1_wave(phase1_shards)
        engine.run_phase2_wave(phase2_shards)
    finally:
        scheduler.close()

    summaries = {
        name: engine.fresh.get(name) or cached[name] for name in cfgs
    }
    result = SummarySet(summaries=summaries)
    _publish_parallel(program, config, cfgs, call_graph, condensation, result)

    solved1 = {
        name for shard in phase1_shards
        for name in plan.shards[shard].routines
    }
    solved2 = {
        name for shard in phase2_shards
        for name in plan.shards[shard].routines
    }
    metrics.phase1_solved = len(solved1)
    metrics.phase1_reused = len(cfgs) - len(solved1)
    metrics.phase2_solved = len(solved2)
    metrics.phase2_reused = len(cfgs) - len(solved2)
    metrics.phase1_sccs_solved = sum(
        len(plan.shards[shard].components) for shard in phase1_shards
    )
    metrics.phase2_sccs_solved = sum(
        len(plan.shards[shard].components) for shard in phase2_shards
    )
    metrics.phase1_iterations = engine.phase1_iterations
    metrics.phase2_iterations = engine.phase2_iterations
    _fold_parallel_seconds(metrics, parallel_metrics)

    new_cache = SummaryCache(
        image_fingerprint=image_fingerprint,
        result=result,
        routine_fingerprints=fingerprints,
        externally_callable=set(call_graph.externally_callable),
    )
    return IncrementalAnalysis(
        program=program,
        config=config,
        cfgs=cfgs,
        call_graph=call_graph,
        result=result,
        cache=new_cache,
        metrics=metrics,
        condensation=condensation,
        parallel=parallel_metrics,
    )
