"""One result shape for every analysis outcome (result schema v1).

Four kinds of object can come out of an analysis run — the serial
:class:`~repro.interproc.analysis.InterproceduralAnalysis`, the sharded
:class:`~repro.interproc.parallel.ParallelAnalysis`, the warm-start
:class:`~repro.interproc.incremental.IncrementalAnalysis` and the
demand-driven :class:`~repro.interproc.demand.QueryResult`.  They used
to render themselves three different ways (the CLI ``--json`` path
rebuilt its payload dict inline, branching on ``is_parallel``); every
consumer that wanted machine-readable output had to know which type it
was holding.

This module is the one place the external shape is defined.  Each
result type implements the :class:`repro.api.AnalysisResult` protocol —
a ``kind`` string, a ``result`` :class:`SummarySet`, a kind-specific
``stats()`` dict and a ``to_json()`` that delegates to
:func:`build_payload` here — so the CLI ``--json`` output and the
``repro.service`` daemon's ``/v1/analyze`` / ``/v1/query`` responses
are *the same object by construction* and can never drift.

Schema version 1 (``"schema": 1``), common keys::

    schema            1 (bump on any incompatible change)
    kind              "serial" | "parallel" | "incremental" | "query"
    routines          routine count of the analyzed program
    instructions      instruction count of the analyzed program
    summaries_crc64   16-hex CRC64 of the canonical SUM1 serialization
                      of the result's summaries — two runs agree on
                      their dataflow facts iff these match
    counters          obs-registry delta for the run (may be empty)

plus the kind-specific ``stats()`` keys, flattened (``stage_seconds``
for serial runs, ``jobs``/``shard_count``/... for parallel runs,
``mode``/``phase2_solved``/... for incremental runs,
``routine``/``summary``/cone sizes for queries), plus an optional
``summaries`` mapping (``include_summaries=True``) with one
:meth:`RoutineSummary.to_json` rendering per routine.

Wall-clock stats and counters are inherently run-specific; everything
else is deterministic for a given image, which is what lets the daemon
tests assert byte-identity between a served response and an in-process
:meth:`AnalysisSession.analyze` on the same image.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from repro.interproc.persist import crc64, dump_summaries
from repro.interproc.summaries import SummarySet

#: Version stamp carried in every payload; bump on incompatible change.
SCHEMA_VERSION = 1

#: Keys every schema-1 payload carries regardless of kind.
COMMON_KEYS = (
    "schema",
    "kind",
    "routines",
    "instructions",
    "summaries_crc64",
    "counters",
)

#: Kind-specific keys clients may rely on (a subset of ``stats()``).
KIND_KEYS = {
    "serial": ("stage_seconds", "memory_bytes", "psg_nodes", "psg_edges"),
    "parallel": ("jobs", "shard_count", "routines_total", "shards"),
    "incremental": ("mode", "phase1_solved", "phase2_solved", "dirty_routines"),
    "query": ("routine", "summary", "mode", "phase2_solved"),
}


def summaries_digest(result: SummarySet) -> str:
    """Deterministic 16-hex digest of a result's dataflow facts.

    The CRC64 of the canonical (sorted, fingerprint-free) SUM1
    serialization: two analyses produced identical summaries iff their
    digests match, which is how daemon clients verify a served answer
    against a local solve without shipping the whole sidecar.
    """
    return format(crc64(dump_summaries(result)), "016x")


def build_payload(
    analysis: Any,
    counters: Optional[Mapping[str, float]] = None,
    include_summaries: bool = False,
) -> Dict[str, object]:
    """The schema-1 JSON payload for any analysis result object.

    ``analysis`` is anything implementing the result protocol (``kind``,
    ``program``, ``result``, ``stats()``).  ``counters`` is the caller's
    obs-registry delta (the session supplies it; a bare result renders
    with an empty mapping).
    """
    payload: Dict[str, object] = {
        "schema": SCHEMA_VERSION,
        "kind": analysis.kind,
        "routines": analysis.program.routine_count,
        "instructions": analysis.program.instruction_count,
        "summaries_crc64": summaries_digest(analysis.result),
        "counters": dict(counters) if counters else {},
    }
    payload.update(analysis.stats())
    if include_summaries:
        payload["summaries"] = {
            name: summary.to_json()
            for name, summary in sorted(analysis.result.summaries.items())
        }
    return payload


def validate_payload(payload: Mapping[str, object]) -> None:
    """Assert ``payload`` is a well-formed schema-1 result payload.

    Raises ``ValueError`` listing every problem found.  Used by the
    contract tests and the CI daemon smoke so that clients can code
    against the documented shape.
    """
    problems = []
    schema = payload.get("schema")
    if schema != SCHEMA_VERSION:
        problems.append(f"schema must be {SCHEMA_VERSION}, got {schema!r}")
    kind = payload.get("kind")
    if kind not in KIND_KEYS:
        problems.append(f"unknown kind {kind!r}")
    for key in COMMON_KEYS:
        if key not in payload:
            problems.append(f"missing common key {key!r}")
    digest = payload.get("summaries_crc64")
    if not (isinstance(digest, str) and len(digest) == 16):
        problems.append(f"summaries_crc64 must be 16 hex chars, got {digest!r}")
    for key in ("routines", "instructions"):
        if key in payload and not isinstance(payload[key], int):
            problems.append(f"{key} must be an integer")
    if not isinstance(payload.get("counters"), Mapping):
        problems.append("counters must be a mapping")
    if kind in KIND_KEYS:
        for key in KIND_KEYS[kind]:
            if key not in payload:
                problems.append(f"missing {kind} key {key!r}")
    summaries = payload.get("summaries")
    if summaries is not None:
        if not isinstance(summaries, Mapping):
            problems.append("summaries must be a mapping when present")
        else:
            for name, rendered in summaries.items():
                if not isinstance(rendered, Mapping) or "call_used" not in rendered:
                    problems.append(f"summaries[{name!r}] is not a rendered summary")
                    break
    if problems:
        raise ValueError(
            "invalid result payload: " + "; ".join(problems)
        )
