"""Persist routine summaries to a sidecar file.

A production post-link optimizer does not reanalyze the world on every
invocation: it writes the interprocedural summaries next to the binary
and reloads them while the binary is unchanged.  This module provides
two sidecar formats:

* **SUM1** — a compact, versioned binary serialization of an
  :class:`~repro.interproc.summaries.SummarySet`, keyed by a
  fingerprint of the executable image so a stale sidecar is rejected
  wholesale;
* **SUM2** — the incremental-analysis cache
  (:class:`SummaryCache`): the same per-routine summary records, each
  additionally carrying a 64-bit *routine* content fingerprint (code
  bytes + call-site target list, see
  :func:`repro.interproc.incremental.routine_fingerprint`) and an
  externally-callable flag, so a warm run can invalidate at routine
  granularity instead of all-or-nothing.

SUM1 layout (little-endian)::

    magic "SUM1" | u64 image_fingerprint | u32 routine_count
    per routine:
      u16 name_len | name utf-8
      <summary body>

SUM2 layout (little-endian)::

    magic "SUM2" | u64 image_fingerprint | u32 routine_count
    per routine:
      u16 name_len | name utf-8
      u64 routine_fingerprint
      u8 flags            (bit 0: externally callable)
      <summary body>
    u32 triple_count | per triple:
      u16 name_len | name utf-8
      u64 routine_fingerprint
      u64 may_use | u64 may_def | u64 must_def

The trailing *triple* section carries phase-1-only entries written by
the demand-driven query engine (:mod:`repro.interproc.demand`): a
routine whose call-used/defined/killed triple was validated by a query
but whose phase-2 liveness never was.  The section is mandatory (an
empty cache writes ``triple_count == 0``); pre-triple-section caches
fail to parse and the readers treat that as a cold start.

Shared summary body::

    u64 call_used | u64 call_defined | u64 call_killed
    u64 live_at_entry | u64 saved_restored
    u32 exit_count   | per exit:  u32 block | u8 kind | u64 live
    u32 site_count   | per site:
      u32 block | u32 instruction_index | u8 indirect
      u16 target_count | per target: u16 len | utf-8
      u64 used | u64 defined | u64 killed | u64 live_before | u64 live_after

Every malformed prefix — truncation at any byte offset, a bad magic,
an invalid UTF-8 name, an unknown exit-kind code, a mask wider than
the register file, or trailing bytes — raises
:class:`SummaryFormatError`; callers never see ``struct.error`` or
``IndexError``.

Invalidation rules for SUM2 are implemented by
:mod:`repro.interproc.incremental`: a routine whose fingerprint
changed dirties its call-graph SCC, phase-1 results of its transitive
*callers*, and phase-2 results of its transitive *callees* (see that
module's docstring for the direction argument).
"""

from __future__ import annotations

import logging
import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.cfg.cfg import CallSite, ExitKind
from repro.dataflow.equations import SummaryTriple
from repro.dataflow.regset import FULL_MASK
from repro.obs.metrics import REGISTRY
from repro.obs.tracer import span
from repro.interproc.summaries import (
    SummarySet,
    CallSiteSummary,
    RoutineSummary,
)

MAGIC = b"SUM1"
MAGIC2 = b"SUM2"

_U8 = struct.Struct("<B")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")

_EXIT_KIND_CODES = {
    ExitKind.RETURN: 0,
    ExitKind.HALT: 1,
    ExitKind.UNKNOWN_JUMP: 2,
}
_EXIT_KIND_BY_CODE = {code: kind for kind, code in _EXIT_KIND_CODES.items()}

_FLAG_EXTERNALLY_CALLABLE = 1

_log = logging.getLogger(__name__)


class SummaryFormatError(ValueError):
    """Raised for malformed or stale summary sidecars."""


def crc64(data: bytes) -> int:
    """A 64-bit content hash built from two independent CRC32 passes.

    The low word is the plain CRC32; the high word is the CRC32 of the
    byte-reversed input, which is not derivable from the first (CRC is
    linear, but byte reversal is not a GF(2) automorphism of the
    message space), so collisions require defeating both passes.
    """
    return zlib.crc32(data) | (zlib.crc32(data[::-1]) << 32)


def image_fingerprint(image_bytes: bytes) -> int:
    """A cheap 64-bit content fingerprint of the executable image.

    Historically this was ``crc32 | (len << 32)``, which discards the
    CRC's collision resistance across images of equal length (any two
    same-length images collide iff their CRC32s collide, and the
    length word adds nothing).  It is now a full 64-bit hash; see
    :func:`crc64`.
    """
    return crc64(image_bytes)


class _Writer:
    def __init__(self) -> None:
        self.parts: List[bytes] = []

    def u8(self, value: int) -> None:
        self.parts.append(_U8.pack(value))

    def u16(self, value: int) -> None:
        self.parts.append(_U16.pack(value))

    def u32(self, value: int) -> None:
        self.parts.append(_U32.pack(value))

    def u64(self, value: int) -> None:
        self.parts.append(_U64.pack(value))

    def text(self, value: str) -> None:
        encoded = value.encode("utf-8")
        self.u16(len(encoded))
        self.parts.append(encoded)

    def blob(self) -> bytes:
        return b"".join(self.parts)


class _Reader:
    def __init__(self, blob: bytes) -> None:
        self.blob = blob
        self.offset = 0

    def _unpack(self, spec: struct.Struct) -> int:
        if self.offset + spec.size > len(self.blob):
            raise SummaryFormatError("truncated summary file")
        (value,) = spec.unpack_from(self.blob, self.offset)
        self.offset += spec.size
        return value

    def u8(self) -> int:
        return self._unpack(_U8)

    def u16(self) -> int:
        return self._unpack(_U16)

    def u32(self) -> int:
        return self._unpack(_U32)

    def u64(self) -> int:
        return self._unpack(_U64)

    def mask(self) -> int:
        value = self.u64()
        if value & ~FULL_MASK:
            raise SummaryFormatError(
                f"register mask {value:#x} exceeds the register file"
            )
        return value

    def text(self) -> str:
        length = self.u16()
        if self.offset + length > len(self.blob):
            raise SummaryFormatError("truncated summary string")
        raw = self.blob[self.offset : self.offset + length]
        try:
            value = raw.decode("utf-8")
        except UnicodeDecodeError as error:
            raise SummaryFormatError(f"invalid UTF-8 in summary: {error}") from None
        self.offset += length
        return value

    def expect_end(self) -> None:
        if self.offset != len(self.blob):
            raise SummaryFormatError("trailing bytes after summaries")


# ----------------------------------------------------------------------
# Shared summary-body codec
# ----------------------------------------------------------------------


def _write_summary_body(writer: _Writer, summary: RoutineSummary) -> None:
    writer.u64(summary.call_used_mask)
    writer.u64(summary.call_defined_mask)
    writer.u64(summary.call_killed_mask)
    writer.u64(summary.live_at_entry_mask)
    writer.u64(summary.saved_restored_mask)
    exits = sorted(summary.exit_live_masks)
    writer.u32(len(exits))
    for block in exits:
        writer.u32(block)
        writer.u8(_EXIT_KIND_CODES[summary.exit_kinds[block]])
        writer.u64(summary.exit_live_masks[block])
    writer.u32(len(summary.call_sites))
    for site in summary.call_sites:
        writer.u32(site.site.block)
        writer.u32(site.site.instruction_index)
        writer.u8(1 if site.site.indirect else 0)
        writer.u16(len(site.site.targets))
        for target in site.site.targets:
            writer.text(target)
        writer.u64(site.used_mask)
        writer.u64(site.defined_mask)
        writer.u64(site.killed_mask)
        writer.u64(site.live_before_mask)
        writer.u64(site.live_after_mask)


def _read_summary_body(reader: _Reader, name: str) -> RoutineSummary:
    call_used = reader.mask()
    call_defined = reader.mask()
    call_killed = reader.mask()
    live_at_entry = reader.mask()
    saved_restored = reader.mask()
    exit_live: Dict[int, int] = {}
    exit_kinds: Dict[int, ExitKind] = {}
    for _ in range(reader.u32()):
        block = reader.u32()
        code = reader.u8()
        if code not in _EXIT_KIND_BY_CODE:
            raise SummaryFormatError(f"unknown exit kind code {code}")
        exit_kinds[block] = _EXIT_KIND_BY_CODE[code]
        exit_live[block] = reader.mask()
    sites: List[CallSiteSummary] = []
    for _ in range(reader.u32()):
        block = reader.u32()
        instruction_index = reader.u32()
        indirect = bool(reader.u8())
        targets = tuple(reader.text() for _ in range(reader.u16()))
        sites.append(
            CallSiteSummary(
                site=CallSite(
                    block=block,
                    instruction_index=instruction_index,
                    targets=targets,
                    indirect=indirect,
                ),
                used_mask=reader.mask(),
                defined_mask=reader.mask(),
                killed_mask=reader.mask(),
                live_before_mask=reader.mask(),
                live_after_mask=reader.mask(),
            )
        )
    return RoutineSummary(
        name=name,
        call_used_mask=call_used,
        call_defined_mask=call_defined,
        call_killed_mask=call_killed,
        live_at_entry_mask=live_at_entry,
        exit_live_masks=exit_live,
        exit_kinds=exit_kinds,
        call_sites=sites,
        saved_restored_mask=saved_restored,
    )


def _check_header(blob: bytes, magic: bytes) -> None:
    if len(blob) < len(magic):
        raise SummaryFormatError(
            f"truncated summary file: {len(blob)} bytes is shorter than "
            f"the {len(magic)}-byte magic"
        )
    if blob[: len(magic)] != magic:
        raise SummaryFormatError(f"bad magic {blob[:len(magic)]!r}")


def _check_fingerprint(fingerprint: int, expected: int) -> None:
    if expected and fingerprint != expected:
        raise SummaryFormatError(
            f"stale summaries: fingerprint {fingerprint:#x} does not match "
            f"image {expected:#x}"
        )


# ----------------------------------------------------------------------
# SUM1: plain SummarySet sidecar
# ----------------------------------------------------------------------


def dump_summaries(result: SummarySet, fingerprint: int = 0) -> bytes:
    """Serialize ``result`` (optionally bound to an image fingerprint)."""
    with span("sidecar.dump", routines=len(result.summaries)):
        writer = _Writer()
        writer.parts.append(MAGIC)
        writer.u64(fingerprint)
        names = sorted(result.summaries)
        writer.u32(len(names))
        for name in names:
            writer.text(name)
            _write_summary_body(writer, result.summaries[name])
        blob = writer.blob()
    REGISTRY.inc("sidecar.write")
    REGISTRY.inc("sidecar.write_bytes", len(blob))
    _log.debug("dumped SUM1 sidecar: %d routines, %d bytes", len(names), len(blob))
    return blob


def load_summaries(
    blob: bytes, expected_fingerprint: int = 0
) -> SummarySet:
    """Parse a summary sidecar; rejects stale fingerprints.

    Pass ``expected_fingerprint=0`` to skip the staleness check (e.g.
    for summaries not bound to a specific image).
    """
    with span("sidecar.load", bytes=len(blob)):
        _check_header(blob, MAGIC)
        reader = _Reader(blob)
        reader.offset = len(MAGIC)
        _check_fingerprint(reader.u64(), expected_fingerprint)
        summaries: Dict[str, RoutineSummary] = {}
        for _ in range(reader.u32()):
            name = reader.text()
            summaries[name] = _read_summary_body(reader, name)
        reader.expect_end()
    REGISTRY.inc("sidecar.load")
    REGISTRY.inc("sidecar.load_bytes", len(blob))
    _log.debug("loaded SUM1 sidecar: %d routines, %d bytes", len(summaries), len(blob))
    return SummarySet(summaries=summaries)


# ----------------------------------------------------------------------
# SUM2: the incremental-analysis cache
# ----------------------------------------------------------------------


@dataclass
class SummaryCache:
    """A warm-start cache: summaries plus the fingerprints that scope
    their validity.

    ``routine_fingerprints[name]`` is the content fingerprint of the
    routine whose summary is cached (code bytes + call-site target
    lists); ``externally_callable`` records which routines received
    the conservative phase-2 exit seeding, so a change in export /
    address-taken status invalidates them even when their code did not
    change.

    ``phase1_triples`` holds phase-1-only entries: routines whose
    call-used/defined/killed triple is known-valid (scoped by the same
    fingerprint map) but whose phase-2 liveness is not cached.  The
    demand engine writes these for the callee cone of a query so the
    next query skips phase 1 there; full runs consume them through
    :class:`repro.interproc.incremental._WarmEngine` like any other
    cached triple.
    """

    image_fingerprint: int
    result: SummarySet
    routine_fingerprints: Dict[str, int] = field(default_factory=dict)
    externally_callable: Set[str] = field(default_factory=set)
    phase1_triples: Dict[str, SummaryTriple] = field(default_factory=dict)

    def __post_init__(self) -> None:
        missing = (
            set(self.result.summaries) | set(self.phase1_triples)
        ) - set(self.routine_fingerprints)
        if missing:
            raise ValueError(
                f"cached routines without fingerprints: {sorted(missing)}"
            )


def dump_cache(cache: SummaryCache) -> bytes:
    """Serialize a :class:`SummaryCache` in the SUM2 format."""
    with span("cache.dump", routines=len(cache.result.summaries)):
        writer = _Writer()
        writer.parts.append(MAGIC2)
        writer.u64(cache.image_fingerprint)
        names = sorted(cache.result.summaries)
        writer.u32(len(names))
        for name in names:
            writer.text(name)
            writer.u64(cache.routine_fingerprints[name])
            flags = (
                _FLAG_EXTERNALLY_CALLABLE
                if name in cache.externally_callable
                else 0
            )
            writer.u8(flags)
            _write_summary_body(writer, cache.result.summaries[name])
        triple_names = sorted(cache.phase1_triples)
        writer.u32(len(triple_names))
        for name in triple_names:
            writer.text(name)
            writer.u64(cache.routine_fingerprints[name])
            triple = cache.phase1_triples[name]
            writer.u64(triple.may_use)
            writer.u64(triple.may_def)
            writer.u64(triple.must_def)
        blob = writer.blob()
    REGISTRY.inc("cache.write")
    REGISTRY.inc("cache.write_bytes", len(blob))
    _log.debug("dumped SUM2 cache: %d routines, %d bytes", len(names), len(blob))
    return blob


def load_cache(blob: bytes, expected_fingerprint: int = 0) -> SummaryCache:
    """Parse a SUM2 cache sidecar; rejects stale image fingerprints.

    As with :func:`load_summaries`, ``expected_fingerprint=0`` skips
    the whole-image staleness check — the incremental engine does its
    own per-routine invalidation, so a stale image is *not* an error
    for it, just a cache with some dirty entries.
    """
    with span("cache.load", bytes=len(blob)):
        _check_header(blob, MAGIC2)
        reader = _Reader(blob)
        reader.offset = len(MAGIC2)
        fingerprint = reader.u64()
        _check_fingerprint(fingerprint, expected_fingerprint)
        summaries: Dict[str, RoutineSummary] = {}
        routine_fingerprints: Dict[str, int] = {}
        externally_callable: Set[str] = set()
        for _ in range(reader.u32()):
            name = reader.text()
            routine_fingerprints[name] = reader.u64()
            flags = reader.u8()
            if flags & ~_FLAG_EXTERNALLY_CALLABLE:
                raise SummaryFormatError(f"unknown routine flags {flags:#x}")
            if flags & _FLAG_EXTERNALLY_CALLABLE:
                externally_callable.add(name)
            summaries[name] = _read_summary_body(reader, name)
        phase1_triples: Dict[str, SummaryTriple] = {}
        for _ in range(reader.u32()):
            name = reader.text()
            routine_fingerprints[name] = reader.u64()
            phase1_triples[name] = SummaryTriple(
                may_use=reader.mask(),
                may_def=reader.mask(),
                must_def=reader.mask(),
            )
        reader.expect_end()
    REGISTRY.inc("cache.load")
    REGISTRY.inc("cache.load_bytes", len(blob))
    _log.debug("loaded SUM2 cache: %d routines, %d bytes", len(summaries), len(blob))
    return SummaryCache(
        image_fingerprint=fingerprint,
        result=SummarySet(summaries=summaries),
        routine_fingerprints=routine_fingerprints,
        externally_callable=externally_callable,
        phase1_triples=phase1_triples,
    )
