"""Persist routine summaries to a sidecar file.

A production post-link optimizer does not reanalyze the world on every
invocation: it writes the interprocedural summaries next to the binary
and reloads them while the binary is unchanged.  This module provides
that sidecar ("SUM" format): a compact, versioned binary serialization
of an :class:`~repro.interproc.summaries.AnalysisResult`, keyed by a
fingerprint of the executable image so a stale sidecar is rejected.

Layout (little-endian)::

    magic "SUM1" | u64 image_fingerprint | u32 routine_count
    per routine:
      u16 name_len | name utf-8
      u64 call_used | u64 call_defined | u64 call_killed
      u64 live_at_entry | u64 saved_restored
      u32 exit_count   | per exit:  u32 block | u8 kind | u64 live
      u32 site_count   | per site:
        u32 block | u32 instruction_index | u8 indirect
        u16 target_count | per target: u16 len | utf-8
        u64 used | u64 defined | u64 killed | u64 live_before | u64 live_after
"""

from __future__ import annotations

import struct
import zlib
from typing import Dict, List

from repro.cfg.cfg import CallSite, ExitKind
from repro.interproc.summaries import (
    AnalysisResult,
    CallSiteSummary,
    RoutineSummary,
)

MAGIC = b"SUM1"

_U8 = struct.Struct("<B")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")

_EXIT_KIND_CODES = {
    ExitKind.RETURN: 0,
    ExitKind.HALT: 1,
    ExitKind.UNKNOWN_JUMP: 2,
}
_EXIT_KIND_BY_CODE = {code: kind for kind, code in _EXIT_KIND_CODES.items()}


class SummaryFormatError(ValueError):
    """Raised for malformed or stale summary sidecars."""


def image_fingerprint(image_bytes: bytes) -> int:
    """A cheap content fingerprint of the executable image."""
    return zlib.crc32(image_bytes) | (len(image_bytes) << 32)


class _Writer:
    def __init__(self) -> None:
        self.parts: List[bytes] = []

    def u8(self, value: int) -> None:
        self.parts.append(_U8.pack(value))

    def u16(self, value: int) -> None:
        self.parts.append(_U16.pack(value))

    def u32(self, value: int) -> None:
        self.parts.append(_U32.pack(value))

    def u64(self, value: int) -> None:
        self.parts.append(_U64.pack(value))

    def text(self, value: str) -> None:
        encoded = value.encode("utf-8")
        self.u16(len(encoded))
        self.parts.append(encoded)

    def blob(self) -> bytes:
        return b"".join(self.parts)


class _Reader:
    def __init__(self, blob: bytes) -> None:
        self.blob = blob
        self.offset = 0

    def _unpack(self, spec: struct.Struct) -> int:
        if self.offset + spec.size > len(self.blob):
            raise SummaryFormatError("truncated summary file")
        (value,) = spec.unpack_from(self.blob, self.offset)
        self.offset += spec.size
        return value

    def u8(self) -> int:
        return self._unpack(_U8)

    def u16(self) -> int:
        return self._unpack(_U16)

    def u32(self) -> int:
        return self._unpack(_U32)

    def u64(self) -> int:
        return self._unpack(_U64)

    def text(self) -> str:
        length = self.u16()
        if self.offset + length > len(self.blob):
            raise SummaryFormatError("truncated summary string")
        value = self.blob[self.offset : self.offset + length].decode("utf-8")
        self.offset += length
        return value


def dump_summaries(result: AnalysisResult, fingerprint: int = 0) -> bytes:
    """Serialize ``result`` (optionally bound to an image fingerprint)."""
    writer = _Writer()
    writer.parts.append(MAGIC)
    writer.u64(fingerprint)
    names = sorted(result.summaries)
    writer.u32(len(names))
    for name in names:
        summary = result.summaries[name]
        writer.text(name)
        writer.u64(summary.call_used_mask)
        writer.u64(summary.call_defined_mask)
        writer.u64(summary.call_killed_mask)
        writer.u64(summary.live_at_entry_mask)
        writer.u64(summary.saved_restored_mask)
        exits = sorted(summary.exit_live_masks)
        writer.u32(len(exits))
        for block in exits:
            writer.u32(block)
            writer.u8(_EXIT_KIND_CODES[summary.exit_kinds[block]])
            writer.u64(summary.exit_live_masks[block])
        writer.u32(len(summary.call_sites))
        for site in summary.call_sites:
            writer.u32(site.site.block)
            writer.u32(site.site.instruction_index)
            writer.u8(1 if site.site.indirect else 0)
            writer.u16(len(site.site.targets))
            for target in site.site.targets:
                writer.text(target)
            writer.u64(site.used_mask)
            writer.u64(site.defined_mask)
            writer.u64(site.killed_mask)
            writer.u64(site.live_before_mask)
            writer.u64(site.live_after_mask)
    return writer.blob()


def load_summaries(
    blob: bytes, expected_fingerprint: int = 0
) -> AnalysisResult:
    """Parse a summary sidecar; rejects stale fingerprints.

    Pass ``expected_fingerprint=0`` to skip the staleness check (e.g.
    for summaries not bound to a specific image).
    """
    if blob[:4] != MAGIC:
        raise SummaryFormatError(f"bad magic {blob[:4]!r}")
    reader = _Reader(blob)
    reader.offset = 4
    fingerprint = reader.u64()
    if expected_fingerprint and fingerprint != expected_fingerprint:
        raise SummaryFormatError(
            f"stale summaries: fingerprint {fingerprint:#x} does not match "
            f"image {expected_fingerprint:#x}"
        )
    count = reader.u32()
    summaries: Dict[str, RoutineSummary] = {}
    for _ in range(count):
        name = reader.text()
        call_used = reader.u64()
        call_defined = reader.u64()
        call_killed = reader.u64()
        live_at_entry = reader.u64()
        saved_restored = reader.u64()
        exit_live: Dict[int, int] = {}
        exit_kinds: Dict[int, ExitKind] = {}
        for _ in range(reader.u32()):
            block = reader.u32()
            code = reader.u8()
            if code not in _EXIT_KIND_BY_CODE:
                raise SummaryFormatError(f"unknown exit kind code {code}")
            exit_kinds[block] = _EXIT_KIND_BY_CODE[code]
            exit_live[block] = reader.u64()
        sites: List[CallSiteSummary] = []
        for _ in range(reader.u32()):
            block = reader.u32()
            instruction_index = reader.u32()
            indirect = bool(reader.u8())
            targets = tuple(reader.text() for _ in range(reader.u16()))
            sites.append(
                CallSiteSummary(
                    site=CallSite(
                        block=block,
                        instruction_index=instruction_index,
                        targets=targets,
                        indirect=indirect,
                    ),
                    used_mask=reader.u64(),
                    defined_mask=reader.u64(),
                    killed_mask=reader.u64(),
                    live_before_mask=reader.u64(),
                    live_after_mask=reader.u64(),
                )
            )
        summaries[name] = RoutineSummary(
            name=name,
            call_used_mask=call_used,
            call_defined_mask=call_defined,
            call_killed_mask=call_killed,
            live_at_entry_mask=live_at_entry,
            exit_live_masks=exit_live,
            exit_kinds=exit_kinds,
            call_sites=sites,
            saved_restored_mask=saved_restored,
        )
    if reader.offset != len(blob):
        raise SummaryFormatError("trailing bytes after summaries")
    return AnalysisResult(summaries=summaries)
