"""Analysis-level failure type.

The solvers raise precise internal errors (``PsgBuildError``,
``SolverDivergence``, pickling failures, worker-process deaths).  The
session facade and the parallel scheduler normalize anything that
prevents an analysis from completing into :class:`AnalysisError`, so
callers — the CLI in particular — have one exception to map to one
exit code, and a crashed worker process surfaces as a clean raise
instead of a hung pool.
"""

from __future__ import annotations


class AnalysisError(RuntimeError):
    """An interprocedural analysis run could not be completed."""


class JobsConfigError(AnalysisError):
    """The worker-count configuration is unusable.

    Raised when the ``REPRO_JOBS`` environment variable is not an
    integer.  A subclass of :class:`AnalysisError` for API
    compatibility, but the CLI maps it to the *usage* exit code (2):
    the run never started, so "analysis failed" (4) would mislead.
    """


class UnknownRoutineError(AnalysisError):
    """A demand query named a routine the program does not contain.

    Also a usage error at the CLI (exit 2): the image parsed and the
    analysis machinery is fine — the caller asked about a routine that
    does not exist.
    """
