"""Analysis-level failure type.

The solvers raise precise internal errors (``PsgBuildError``,
``SolverDivergence``, pickling failures, worker-process deaths).  The
session facade and the parallel scheduler normalize anything that
prevents an analysis from completing into :class:`AnalysisError`, so
callers — the CLI in particular — have one exception to map to one
exit code, and a crashed worker process surfaces as a clean raise
instead of a hung pool.
"""

from __future__ import annotations


class AnalysisError(RuntimeError):
    """An interprocedural analysis run could not be completed."""
