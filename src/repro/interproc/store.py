"""Cross-image content-addressed summary store (separate compilation
at fleet scale).

The per-image SUM2 sidecar (``persist.py``) is keyed by
``image_fingerprint`` — it can warm *this* image's next solve, but it
cannot express "this library routine is byte-identical across N linked
builds".  This module re-keys summaries by **deep routine
fingerprint**: the routine's own CRC64 content fingerprint
(:func:`repro.interproc.incremental.routine_fingerprint`) combined
Merkle-style, bottom-up over the SCC condensation, with the deep
fingerprints of its callees.  Two images that link the same mathlib
against different apps produce identical deep fingerprints for every
mathlib routine, so the second image's solve is a directory read.

Two record grades live side by side in one store directory:

* ``.sum1r`` — the phase-1 :class:`SummaryTriple` of one routine,
  keyed directly by its deep fingerprint.  A grade-1 hit lets a solve
  skip the phase-1 fixpoint for that routine's SCC.
* ``.sum2r`` — the full :class:`RoutineSummary`, keyed by the phase-2
  *boundary digest* of the routine's SCC: deep fingerprints of the
  members, their externally-callable bits, and their exit seeds (the
  liveness flowing back in from out-of-component callers).  A grade-2
  hit skips the partial-PSG build, both fixpoints, and assembly — the
  bulk of a routine's cold cost.

Both keys bind a *context digest* of every configuration knob that can
change analysis results (calling conventions, callee-saved filtering,
the PSG branch-node ablations).  Knobs documented bit-identical across
settings — labeling strategy, per-edge labeling, solver core — are
deliberately excluded so a flat-core solve can warm an object-core one.

Layout: ``<store>/<hh>/<deepfp>.sum1r`` with 256-way fan-out on the
key's top byte.  Records use the ``persist.py`` framing idiom (magic +
version + CRC-checked body) and are written atomically via
tmp+``os.replace``; concurrent readers and writers need no locking
beyond rename atomicity.  A corrupt, truncated, or torn record is a
*miss*, never an error — results must stay byte-identical with the
store on, off, or poisoned.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.cfg.callgraph import CallGraph, Condensation
from repro.dataflow.equations import SummaryTriple
from repro.interproc.persist import (
    SummaryFormatError,
    _check_header,
    _Reader,
    _read_summary_body,
    _write_summary_body,
    _Writer,
    crc64,
)
from repro.interproc.summaries import RoutineSummary, SummarySet
from repro.isa.calling_convention import CallingConvention
from repro.obs.metrics import REGISTRY

#: Environment variable naming a store directory every facade-driven
#: analysis consults (equivalent of ``--store-dir``).
STORE_ENV_VAR = "REPRO_SUMMARY_STORE"

#: Bumped when the record format or the key derivation changes; part of
#: the context digest, so old records simply stop matching.
STORE_VERSION = 1

MAGIC_TRIPLE = b"SST1"
MAGIC_SUMMARY = b"SST2"

SUFFIX_TRIPLE = ".sum1r"
SUFFIX_SUMMARY = ".sum2r"

#: Orphaned temp files older than this (seconds) are swept by ``gc``:
#: a writer that died mid-record never publishes its rename.
_STALE_TMP_SECONDS = 300.0

_tmp_counter = itertools.count()


# ----------------------------------------------------------------------
# Key derivation
# ----------------------------------------------------------------------


def _convention_parts(writer: _Writer, convention: CallingConvention) -> None:
    writer.text(convention.name)
    for registers in (
        convention.argument_registers,
        convention.return_registers,
        convention.callee_saved,
        convention.temporaries,
    ):
        indices = sorted(register.index for register in registers)
        writer.u16(len(indices))
        for index in indices:
            writer.u16(index)
    writer.u16(convention.stack_pointer.index)
    writer.u16(convention.return_address.index)
    writer.u16(convention.global_pointer.index)


def config_digest(config) -> int:
    """CRC64 over every :class:`AnalysisConfig` knob that can change
    analysis *results*.

    Bound: both conventions (analysis and PSG-build), callee-saved
    filtering, and the PSG branch-node ablations (Table 4 — they move
    real dataflow facts).  Excluded: labeling strategy, per-edge
    labeling, solver core, and jobs — all documented bit-identical.
    """
    writer = _Writer()
    writer.u8(STORE_VERSION)
    _convention_parts(writer, config.convention)
    _convention_parts(writer, config.psg.convention)
    writer.u8(1 if config.callee_saved_filtering else 0)
    writer.u8(1 if config.psg.branch_nodes else 0)
    writer.u16(config.psg.multiway_threshold)
    return crc64(writer.blob())


def deep_fingerprints(
    fingerprints: Dict[str, int],
    condensation: Condensation,
    call_graph: CallGraph,
    context: int,
) -> Dict[str, int]:
    """Deep (Merkle) fingerprint of every routine, bottom-up over SCCs.

    A routine's phase-1 triple depends on its own code and the triples
    of its transitive callees, so its key must too.  Per component (in
    callee-first order) an SCC digest covers the sorted ``(name, own
    fingerprint)`` pairs of the members plus the sorted ``(name, deep
    fingerprint)`` pairs of the external callees; each member's deep
    fingerprint then binds its own name and fingerprint to the SCC
    digest.  Binding *pairs* — not bare fingerprint multisets — means
    two callees swapping bodies changes every caller's key.

    Callees outside the condensation (unresolved targets) contribute
    nothing, matching the solver's calling-standard assumption for
    them.
    """
    deep: Dict[str, int] = {}
    for members in condensation.components:
        member_set = set(members)
        writer = _Writer()
        writer.u64(context)
        for name in sorted(members):
            writer.text(name)
            writer.u64(fingerprints[name])
        externals: Set[str] = set()
        for name in members:
            externals.update(
                callee
                for callee in call_graph.callees_of(name)
                if callee not in member_set
            )
        for callee in sorted(externals):
            if callee in deep:
                writer.text(callee)
                writer.u64(deep[callee])
        scc_digest = crc64(writer.blob())
        for name in members:
            leaf = _Writer()
            leaf.text(name)
            leaf.u64(fingerprints[name])
            leaf.u64(scc_digest)
            deep[name] = crc64(leaf.blob())
    return deep


def phase2_component_key(
    members: Iterable[str],
    deep: Dict[str, int],
    externally_callable: Set[str],
    seeds: Dict[str, int],
    context: int,
) -> int:
    """The phase-2 boundary digest of one SCC.

    Phase 2 of a component is a function of exactly: the members' code
    (their own fingerprints, folded into ``deep``), their callees'
    triples (the deep closure), which members are externally callable
    (convention seeding), and the liveness seeded at their return exits
    by out-of-component callers.  Fixpoint uniqueness makes the node
    numbering of the partial PSG irrelevant, so this digest is the
    complete input signature of the component's full summaries.
    """
    writer = _Writer()
    writer.u64(context)
    for name in sorted(members):
        writer.text(name)
        writer.u64(deep[name])
        writer.u8(1 if name in externally_callable else 0)
        writer.u64(seeds.get(name, 0))
    return crc64(writer.blob())


def routine_record_key(component_key: int, name: str) -> int:
    """The per-routine grade-2 record key under one component digest."""
    writer = _Writer()
    writer.text(name)
    writer.u64(component_key)
    return crc64(writer.blob())


# ----------------------------------------------------------------------
# Record codecs
# ----------------------------------------------------------------------


def _frame(magic: bytes, body: bytes) -> bytes:
    writer = _Writer()
    writer.u8(STORE_VERSION)
    writer.u64(crc64(body))
    return magic + writer.blob() + body


def _open_frame(blob: bytes, magic: bytes) -> _Reader:
    _check_header(blob, magic)
    reader = _Reader(blob[len(magic):])
    version = reader.u8()
    if version != STORE_VERSION:
        raise SummaryFormatError(f"unsupported store record v{version}")
    checksum = reader.u64()
    body = blob[len(magic) + 9:]
    if crc64(body) != checksum:
        raise SummaryFormatError("store record checksum mismatch")
    return _Reader(body)


def _check_identity(reader: _Reader, key: int, name: str) -> None:
    stored_key = reader.u64()
    if stored_key != key:
        raise SummaryFormatError(
            f"store record key {stored_key:#x} != expected {key:#x}"
        )
    stored_name = reader.text()
    if stored_name != name:
        raise SummaryFormatError(
            f"store record names {stored_name!r}, expected {name!r}"
        )


def dump_triple_record(key: int, name: str, triple: SummaryTriple) -> bytes:
    writer = _Writer()
    writer.u64(key)
    writer.text(name)
    writer.u64(triple.may_use)
    writer.u64(triple.may_def)
    writer.u64(triple.must_def)
    return _frame(MAGIC_TRIPLE, writer.blob())


def load_triple_record(blob: bytes, key: int, name: str) -> SummaryTriple:
    reader = _open_frame(blob, MAGIC_TRIPLE)
    _check_identity(reader, key, name)
    triple = SummaryTriple(
        may_use=reader.mask(), may_def=reader.mask(), must_def=reader.mask()
    )
    reader.expect_end()
    return triple


def dump_summary_record(key: int, name: str, summary: RoutineSummary) -> bytes:
    writer = _Writer()
    writer.u64(key)
    writer.text(name)
    _write_summary_body(writer, summary)
    return _frame(MAGIC_SUMMARY, writer.blob())


def load_summary_record(blob: bytes, key: int, name: str) -> RoutineSummary:
    reader = _open_frame(blob, MAGIC_SUMMARY)
    _check_identity(reader, key, name)
    summary = _read_summary_body(reader, name)
    reader.expect_end()
    return summary


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------


@dataclass
class SummaryStore:
    """A shared, content-addressed directory of summary records.

    A plain picklable dataclass: :class:`AnalysisConfig` instances are
    shipped to parallel workers via pickle, so the store carries no
    open handles — every operation opens, reads or renames, and
    closes.
    """

    root: str
    #: Soft byte budget enforced by :meth:`gc` (never by writes).
    max_bytes: Optional[int] = None

    def _path(self, key: int, suffix: str) -> str:
        return os.path.join(
            self.root, f"{key >> 56:02x}", f"{key:016x}{suffix}"
        )

    # -- reads ---------------------------------------------------------

    def _load(self, path: str, parse) -> Optional[object]:
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError:
            REGISTRY.inc("store.miss")
            return None
        try:
            record = parse(blob)
        except SummaryFormatError:
            # Corrupt / truncated / foreign record: a miss, never an
            # error — the solver recomputes as if the record were
            # absent.
            REGISTRY.inc("store.miss")
            return None
        REGISTRY.inc("store.hit")
        try:
            # Touch atime so the GC sweep evicts least-recently-used
            # records first even on relatime mounts.
            os.utime(path)
        except OSError:
            pass
        return record

    def load_triple(self, key: int, name: str) -> Optional[SummaryTriple]:
        return self._load(
            self._path(key, SUFFIX_TRIPLE),
            lambda blob: load_triple_record(blob, key, name),
        )

    def load_summary(self, key: int, name: str) -> Optional[RoutineSummary]:
        return self._load(
            self._path(key, SUFFIX_SUMMARY),
            lambda blob: load_summary_record(blob, key, name),
        )

    # -- writes --------------------------------------------------------

    def _store(self, path: str, blob: bytes) -> None:
        if os.path.exists(path):
            # Content-addressed: an existing record is byte-identical
            # by construction, so the first writer wins for free.
            return
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            tmp = f"{path}.tmp.{os.getpid()}.{next(_tmp_counter)}"
            with open(tmp, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except OSError:
            # A store that cannot be written is a cache that cannot
            # help; it must never fail the solve.
            return
        REGISTRY.inc("store.write")
        REGISTRY.inc("store.bytes", len(blob))

    def store_triple(self, key: int, name: str, triple: SummaryTriple) -> None:
        self._store(
            self._path(key, SUFFIX_TRIPLE), dump_triple_record(key, name, triple)
        )

    def store_summary(
        self, key: int, name: str, summary: RoutineSummary
    ) -> None:
        self._store(
            self._path(key, SUFFIX_SUMMARY),
            dump_summary_record(key, name, summary),
        )

    # -- maintenance ---------------------------------------------------

    def _walk(self) -> List[Tuple[str, os.stat_result]]:
        entries: List[Tuple[str, os.stat_result]] = []
        try:
            shards = os.listdir(self.root)
        except OSError:
            return entries
        for shard in shards:
            shard_dir = os.path.join(self.root, shard)
            try:
                names = os.listdir(shard_dir)
            except OSError:
                continue
            for name in names:
                path = os.path.join(shard_dir, name)
                try:
                    entries.append((path, os.stat(path)))
                except OSError:
                    continue
        return entries

    def gc(self, now: Optional[float] = None) -> Dict[str, int]:
        """Evict least-recently-used records down to ``max_bytes``.

        Also sweeps temp files orphaned by writers that died mid-record
        (older than :data:`_STALE_TMP_SECONDS`).  Concurrency-safe: a
        record evicted under a concurrent reader was already fully read
        or turns into that reader's miss.
        """
        import time

        now = time.time() if now is None else now
        removed = 0
        removed_bytes = 0
        records: List[Tuple[float, int, str]] = []
        total = 0
        for path, stat in self._walk():
            if ".tmp." in os.path.basename(path):
                if now - stat.st_mtime > _STALE_TMP_SECONDS:
                    try:
                        os.remove(path)
                        removed += 1
                    except OSError:
                        pass
                continue
            records.append((stat.st_atime, stat.st_size, path))
            total += stat.st_size
        if self.max_bytes is not None:
            records.sort()
            for _, size, path in records:
                if total <= self.max_bytes:
                    break
                try:
                    os.remove(path)
                except OSError:
                    continue
                total -= size
                removed += 1
                removed_bytes += size
                REGISTRY.inc("store.evict")
        return {
            "removed": removed,
            "removed_bytes": removed_bytes,
            "remaining_bytes": total,
        }

    def stats(self) -> Dict[str, object]:
        triples = summaries = other = 0
        total = 0
        for path, stat in self._walk():
            name = os.path.basename(path)
            if ".tmp." in name:
                other += 1
                continue
            total += stat.st_size
            if name.endswith(SUFFIX_TRIPLE):
                triples += 1
            elif name.endswith(SUFFIX_SUMMARY):
                summaries += 1
            else:
                other += 1
        return {
            "root": self.root,
            "triples": triples,
            "summaries": summaries,
            "other": other,
            "bytes": total,
            "max_bytes": self.max_bytes,
        }


def resolve_store(config) -> Optional[SummaryStore]:
    """The effective store for one analysis: explicit config first,
    then the :data:`STORE_ENV_VAR` environment default.

    ``config.store == "off"`` is the explicit opt-out that beats the
    environment (the byte-identity harnesses rely on it).
    """
    store = getattr(config, "store", None)
    if store == "off":
        return None
    if store is not None:
        return store
    root = os.environ.get(STORE_ENV_VAR)
    if root:
        return SummaryStore(root)
    return None


# ----------------------------------------------------------------------
# Publishing a finished result
# ----------------------------------------------------------------------


def _triple_of(summary: RoutineSummary) -> SummaryTriple:
    # Mirrors incremental._triple_of (kept local: incremental imports
    # this module, not the other way around).
    return SummaryTriple(
        may_use=summary.call_used_mask,
        may_def=summary.call_killed_mask,
        must_def=summary.call_defined_mask,
    )


def _exit_seeds(
    members: List[str],
    call_graph: CallGraph,
    result: SummarySet,
) -> Dict[str, int]:
    """Per-member exit seeds recovered from final caller summaries.

    Phase 2 runs callers-first, so the live-after mask at every
    out-of-component call site in the *final* result equals the seed
    the solver fed the component — the same quantity
    ``_WarmEngine._exit_seed`` computes mid-solve.
    """
    member_set = set(members)
    seeds: Dict[str, int] = {}
    for name in members:
        mask = 0
        for caller, site in call_graph.callers_of(name):
            if caller in member_set:
                continue
            caller_summary = result.summaries.get(caller)
            if caller_summary is None:
                continue
            for site_summary in caller_summary.call_sites:
                if (
                    site_summary.site.block == site.block
                    and site_summary.site.instruction_index
                    == site.instruction_index
                ):
                    mask |= site_summary.live_after_mask
                    break
        seeds[name] = mask
    return seeds


def publish_result(
    store: SummaryStore,
    condensation: Condensation,
    call_graph: CallGraph,
    fingerprints: Dict[str, int],
    config,
    result: SummarySet,
) -> None:
    """Publish every routine of a finished whole-program result.

    Grade-1 triples go out under deep fingerprints; grade-2 full
    summaries under their component boundary digests.  Existing
    records are skipped (content-addressed), so republishing a warm
    result is nearly free.
    """
    context = config_digest(config)
    deep = deep_fingerprints(fingerprints, condensation, call_graph, context)
    externally_callable = call_graph.externally_callable
    for members in condensation.components:
        missing = [name for name in members if name not in result.summaries]
        if missing:
            continue
        seeds = _exit_seeds(members, call_graph, result)
        component_key = phase2_component_key(
            members, deep, externally_callable, seeds, context
        )
        for name in members:
            summary = result.summaries[name]
            store.store_triple(deep[name], name, _triple_of(summary))
            store.store_summary(
                routine_record_key(component_key, name), name, summary
            )
