"""Incremental interprocedural re-analysis.

A whole-program run (:func:`repro.interproc.analysis.analyze_program`)
re-solves every routine even when one instruction changed.  Spike's
workflow — optimize, measure, edit a hot routine, re-optimize — makes
that wasteful: the phase-1 triples of an untouched routine depend only
on its own code and its callees' triples, and its phase-2 liveness
only on its callers' return-point liveness and its callees' triples.
This module exploits that structure:

* every routine gets a **content fingerprint** (a 64-bit CRC over its
  encoded instruction words, its call-site target lists, and its
  exported flag — exactly the inputs its CFG and local sets are a
  function of);
* the SCC **condensation** of the call graph is the dependency map:
  editing a routine dirties its component; phase-1 dirt propagates to
  transitive *callers*, phase-2 dirt to transitive *callees*;
* a **change cutoff** stops propagation early: after re-solving a
  component, its new answers are compared against the cache, and only
  components whose consumed answers actually changed are re-solved in
  turn;
* dirty components are re-solved on a **partial PSG**
  (:func:`repro.psg.build.build_partial_psg`): callees outside the
  component appear as dummy entry nodes pinned at their cached triples
  (``run_phase1(..., fixed_entries=...)``), and callers outside it
  contribute their cached return-point liveness as exit seeds
  (``run_phase2(..., extra_exit_live=...)``).

The cache itself is a :class:`repro.interproc.persist.SummaryCache`
(the versioned ``SUM2`` sidecar): the previous run's summaries plus
the fingerprints that scope their validity.  A warm run with zero
dirty routines performs *no* phase-1 or phase-2 solving at all — it
builds CFGs, fingerprints them, and returns the cached result.
"""

from __future__ import annotations

import logging
import struct
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.isa.encoding import encode_stream
from repro.program.model import Program, Routine
from repro.cfg.build import build_all_cfgs
from repro.cfg.callgraph import CallGraph, Condensation, build_call_graph
from repro.cfg.cfg import CallSite, ControlFlowGraph, ExitKind
from repro.dataflow.equations import SummaryTriple
from repro.dataflow.local import LocalSets, compute_local_sets
from repro.dataflow.regset import TRACKED_MASK, mask_of
from repro.interproc.analysis import (
    AnalysisConfig,
    _analyze_program,
    node_seed_order,
)
from repro.interproc.persist import SummaryCache, crc64
from repro.interproc.phase1 import run_phase1
from repro.interproc.phase2 import run_phase2
from repro.interproc.savedregs import saved_restored_registers
from repro.interproc.store import (
    SummaryStore,
    config_digest,
    deep_fingerprints,
    phase2_component_key,
    resolve_store,
    routine_record_key,
)
from repro.interproc.summaries import (
    SummarySet,
    CallSiteSummary,
    RoutineSummary,
)
from repro.obs.metrics import REGISTRY
from repro.obs.tracer import span
from repro.psg.build import PartialPsg, build_partial_psg
from repro.reporting.metrics import IncrementalMetrics, ParallelMetrics

_log = logging.getLogger(__name__)


def record_fingerprint_verdicts(
    fingerprints: Dict[str, int], cache: SummaryCache
) -> Set[str]:
    """Classify every routine's fingerprint against ``cache`` and push
    the per-run cache.hit / cache.stale / cache.miss counters.

    Returns the dirty set (stale + missing).  Shared by the serial warm
    engine and the parallel warm path so both report identically.
    """
    hits = stale = missing = 0
    dirty: Set[str] = set()
    for name, fingerprint in fingerprints.items():
        cached = cache.routine_fingerprints.get(name)
        if cached is None:
            missing += 1
            dirty.add(name)
        elif cached != fingerprint:
            stale += 1
            dirty.add(name)
        else:
            hits += 1
    REGISTRY.inc("cache.hit", hits)
    REGISTRY.inc("cache.stale", stale)
    REGISTRY.inc("cache.miss", missing)
    return dirty


def routine_fingerprint(routine: Routine, cfg: ControlFlowGraph) -> int:
    """The 64-bit content fingerprint that scopes a cached summary.

    Covers everything the routine's own analysis inputs are a function
    of: the encoded instruction words, the resolved target list of each
    call site (targets come from image hint tables, so they can change
    while the code bytes do not), and the exported flag (it feeds the
    §3.4/§3.5 externally-callable treatment).
    """
    parts: List[bytes] = [encode_stream(routine.instructions)]
    parts.append(b"\x01" if routine.exported else b"\x00")
    for site in cfg.call_sites:
        parts.append(
            struct.pack(
                "<IIB", site.block, site.instruction_index, int(site.indirect)
            )
        )
        for target in site.targets:
            parts.append(target.encode("utf-8") + b"\x00")
    return crc64(b"".join(parts))


@dataclass
class IncrementalAnalysis:
    """The product of one incremental run.

    ``result`` is the full, program-wide analysis result (recomputed
    routines fresh, clean routines straight from the cache); ``cache``
    is the refreshed :class:`SummaryCache` to persist for the next
    run; ``metrics`` says how much work was actually done.
    """

    program: Program
    config: AnalysisConfig
    cfgs: Dict[str, ControlFlowGraph]
    call_graph: CallGraph
    result: SummarySet
    cache: SummaryCache
    metrics: IncrementalMetrics
    condensation: Optional[Condensation] = None
    #: Shard/pool metrics when the run was solved in parallel
    #: (``jobs > 1``); ``None`` for serial runs.
    parallel: Optional[ParallelMetrics] = None

    #: Result-protocol kind tag (see :mod:`repro.interproc.results`).
    kind = "incremental"

    @property
    def is_parallel(self) -> bool:
        """True when the run was solved on the sharded worker pool."""
        return self.parallel is not None

    def summary(self, routine: str) -> RoutineSummary:
        return self.result.summaries[routine]

    def stats(self) -> Dict[str, object]:
        """Kind-specific stats: incremental work accounting (plus the
        shard/pool record when the dirty cone solved in parallel)."""
        payload: Dict[str, object] = dict(self.metrics.as_dict())
        if self.parallel is not None:
            payload["parallel"] = self.parallel.as_dict()
        return payload

    def to_json(self, counters=None, include_summaries: bool = False):
        """The versioned (schema 1) result payload; see
        :mod:`repro.interproc.results`."""
        from repro.interproc.results import build_payload

        return build_payload(self, counters, include_summaries)


def _analyze_incremental(
    program: Program,
    cache: Optional[SummaryCache] = None,
    config: Optional[AnalysisConfig] = None,
    image_fingerprint: int = 0,
    jobs: Optional[int] = None,
) -> IncrementalAnalysis:
    """Analyze ``program``, reusing ``cache`` where fingerprints allow.

    With ``cache=None`` this is a *cold* run: the full pipeline
    executes once and the returned :attr:`IncrementalAnalysis.cache`
    seeds future warm runs.  ``image_fingerprint`` is stored in the
    refreshed cache (it scopes the ``SUM1`` sidecar; the incremental
    engine itself invalidates per routine, not per image).

    ``jobs`` (or ``config.jobs``) above 1 delegates to the sharded
    parallel engine — dirty shards are re-solved on a worker pool,
    clean shards keep their cached summaries — with bit-identical
    results at any worker count.
    """
    config = config or AnalysisConfig()

    from repro.interproc.parallel import resolve_jobs

    effective_jobs = resolve_jobs(jobs, config)
    if effective_jobs > 1:
        from repro.interproc.parallel import analyze_incremental_parallel

        return analyze_incremental_parallel(
            program,
            cache,
            config,
            image_fingerprint=image_fingerprint,
            jobs=effective_jobs,
        )

    metrics = IncrementalMetrics(routines_total=program.routine_count)

    if cache is None:
        if resolve_store(config) is not None:
            # A configured store can warm even a cold image (another
            # build already published its shared routines), so route
            # the cold solve through the warm engine with an empty
            # cache: every component consults the store before
            # solving, and misses behave exactly like a cold solve.
            metrics.cold = True
            empty = SummaryCache(
                image_fingerprint=0, result=SummarySet(summaries={})
            )
            return _warm_run(program, empty, config, image_fingerprint, metrics)
        return _cold_run(program, config, image_fingerprint, metrics)

    return _warm_run(program, cache, config, image_fingerprint, metrics)


def _warm_run(
    program: Program,
    cache: SummaryCache,
    config: AnalysisConfig,
    image_fingerprint: int,
    metrics: IncrementalMetrics,
) -> IncrementalAnalysis:

    with metrics.stage("cfg_build"):
        cfgs = build_all_cfgs(program)
        call_graph = build_call_graph(program, cfgs)
        condensation = call_graph.condensation()

    with metrics.stage("fingerprint"):
        fingerprints = {
            name: routine_fingerprint(program.routine(name), cfgs[name])
            for name in cfgs
        }
        dirty = record_fingerprint_verdicts(fingerprints, cache)
    metrics.dirty_routines = sorted(dirty)
    _log.info(
        "warm incremental run: %d routines, %d dirty",
        len(cfgs), len(dirty),
    )

    engine = _WarmEngine(
        program=program,
        config=config,
        cfgs=cfgs,
        call_graph=call_graph,
        condensation=condensation,
        cache=cache,
        dirty=dirty,
        metrics=metrics,
        store=resolve_store(config),
        fingerprints=fingerprints,
    )
    result = engine.run()

    new_cache = SummaryCache(
        image_fingerprint=image_fingerprint,
        result=result,
        routine_fingerprints=fingerprints,
        externally_callable=set(call_graph.externally_callable),
    )
    return IncrementalAnalysis(
        program=program,
        config=config,
        cfgs=cfgs,
        call_graph=call_graph,
        result=result,
        cache=new_cache,
        metrics=metrics,
        condensation=condensation,
    )


def _cold_run(
    program: Program,
    config: AnalysisConfig,
    image_fingerprint: int,
    metrics: IncrementalMetrics,
) -> IncrementalAnalysis:
    full = _analyze_program(program, config)
    # No cache to consult: every routine is a miss by definition.
    REGISTRY.inc("cache.miss", len(full.cfgs))
    _log.info("cold incremental run: %d routines solved", len(full.cfgs))
    metrics.cold = True
    metrics.dirty_routines = sorted(full.cfgs)
    count = len(full.cfgs)
    metrics.phase1_solved = metrics.phase2_solved = count
    metrics.phase1_iterations = full.phase1.iterations
    metrics.phase2_iterations = full.phase2.iterations
    sccs = len(full.call_graph.strongly_connected_components())
    metrics.phase1_sccs_solved = metrics.phase2_sccs_solved = sccs
    for name, value in full.timings.as_dict().items():
        if name != "total":
            metrics.seconds[name] = value
    with metrics.stage("fingerprint"):
        fingerprints = {
            name: routine_fingerprint(program.routine(name), full.cfgs[name])
            for name in full.cfgs
        }
    new_cache = SummaryCache(
        image_fingerprint=image_fingerprint,
        result=full.result,
        routine_fingerprints=fingerprints,
        externally_callable=set(full.call_graph.externally_callable),
    )
    return IncrementalAnalysis(
        program=program,
        config=config,
        cfgs=full.cfgs,
        call_graph=full.call_graph,
        result=full.result,
        cache=new_cache,
        metrics=metrics,
        condensation=None,
    )


def _triple_of(summary: RoutineSummary) -> SummaryTriple:
    """A cached summary's phase-1 triple, in solver orientation."""
    return SummaryTriple(
        may_use=summary.call_used_mask,
        may_def=summary.call_killed_mask,
        must_def=summary.call_defined_mask,
    )


def orphaned_callees(
    cached: Dict[str, RoutineSummary],
    cfgs: Dict[str, ControlFlowGraph],
    call_graph: CallGraph,
    dirty: Set[str],
) -> Set[str]:
    """Former callees that lost a caller and must be re-solved.

    A routine whose cached call sites name a target it no longer calls
    — deleted outright, or surviving but with the site dropped or
    retargeted by the edit — leaves that former callee with the removed
    site's live-after baked into its cached exit liveness.  The new
    call graph has no edge left to carry the retraction, so diff the
    cached target lists against it and re-solve the losers.  Clean
    survivors can be skipped: the fingerprint covers target lists, so
    theirs cannot have moved.  (Shared by the serial warm engine and
    the parallel dirty-shard selection.)
    """
    orphaned: Set[str] = set()
    for name, summary in cached.items():
        if name in cfgs and name not in dirty:
            continue
        cached_targets: Set[str] = set()
        for site in summary.call_sites:
            cached_targets.update(site.site.targets)
        current = set(call_graph.callees_of(name)) if name in cfgs else set()
        orphaned.update(cached_targets - current)
    return orphaned


class _WarmEngine:
    """One warm incremental solve, phase by phase, SCC by SCC."""

    def __init__(
        self,
        program: Program,
        config: AnalysisConfig,
        cfgs: Dict[str, ControlFlowGraph],
        call_graph: CallGraph,
        condensation: Condensation,
        cache: SummaryCache,
        dirty: Set[str],
        metrics: IncrementalMetrics,
        phase1_scope: Optional[Set[int]] = None,
        phase2_scope: Optional[Set[int]] = None,
        store: Optional[SummaryStore] = None,
        fingerprints: Optional[Dict[str, int]] = None,
    ) -> None:
        self.program = program
        self.config = config
        self.cfgs = cfgs
        self.call_graph = call_graph
        self.condensation = condensation
        self.cache = cache
        self.cached = cache.result.summaries
        # Phase-1 triples available for reuse: derivable from every
        # cached summary, plus the phase-1-only entries the demand
        # engine memoizes (triples validated by a query whose phase-2
        # liveness never was).
        self.cached_triples: Dict[str, SummaryTriple] = {
            name: _triple_of(summary)
            for name, summary in self.cached.items()
        }
        self.cached_triples.update(cache.phase1_triples)
        self.dirty = dirty
        self.metrics = metrics
        # Component scopes for demand-driven queries
        # (:mod:`repro.interproc.demand`).  ``None`` means "every
        # component" (the full warm run).  A scoped run only touches
        # components inside the scope; skipped components contribute
        # neither triples nor reuse counts.  Sound as long as
        # ``phase1_scope`` is callee-closed and ``phase2_scope`` is
        # caller-closed with its callee closure inside ``phase1_scope``
        # — then every input a scoped solve consumes (external callee
        # triples, caller exit seeds) comes from an in-scope component
        # or the cache, exactly as in a full run.
        self.phase1_scope = phase1_scope
        self.phase2_scope = phase2_scope
        self.preserved = mask_of(
            {config.convention.stack_pointer, config.convention.global_pointer}
        )
        # Lazily built per-routine inputs — only dirty cones pay for them.
        self._local_sets: Dict[str, List[LocalSets]] = {}
        self._saved: Dict[str, int] = {}
        self._partials: Dict[int, PartialPsg] = {}
        # Phase-1 state: current triples, and the change-cutoff set.
        self.triples: Dict[str, SummaryTriple] = {}
        self.changed1: Set[str] = set()
        # Phase-2 state: components solved, members whose liveness
        # outputs changed, and freshly assembled summaries.
        self.solved2: Set[int] = set()
        self.changed2: Set[str] = set()
        self.fresh: Dict[str, RoutineSummary] = {}
        self.orphaned = orphaned_callees(self.cached, cfgs, call_graph, dirty)
        # Cross-image store state: deep fingerprints are derived lazily
        # — only runs that actually consult or publish pay for them.
        self.store = store if fingerprints is not None else None
        self.fingerprints = fingerprints
        self._deep_fps: Optional[Dict[str, int]] = None
        self._context = 0

    # ------------------------------------------------------------------
    # Cross-image summary store (repro.interproc.store)
    # ------------------------------------------------------------------

    def _deep(self) -> Dict[str, int]:
        if self._deep_fps is None:
            with self.metrics.stage("fingerprint"):
                self._context = config_digest(self.config)
                self._deep_fps = deep_fingerprints(
                    self.fingerprints,
                    self.condensation,
                    self.call_graph,
                    self._context,
                )
        return self._deep_fps

    def _store_phase1(self, members: Sequence[str]) -> bool:
        """Adopt a whole component's phase-1 triples from the store.

        All-or-nothing: a partial hit is treated as a miss so the SCC
        solves (and republishes) as one unit.  Adopted triples run
        through the same change cutoff as solved ones — byte-identical
        downstream behavior is what makes the store safe.
        """
        if self.store is None:
            return False
        deep = self._deep()
        loaded: Dict[str, SummaryTriple] = {}
        with span("store.lookup", grade=1, routines=len(members)):
            for name in members:
                triple = self.store.load_triple(deep[name], name)
                if triple is None:
                    return False
                loaded[name] = triple
        for name, triple in loaded.items():
            self.triples[name] = triple
            self.metrics.phase1_store_hits += 1
            if triple != self.cached_triples.get(name):
                self.changed1.add(name)
        return True

    def _component_key(
        self, members: Sequence[str], member_seeds: Dict[str, int]
    ) -> Optional[int]:
        """The phase-2 boundary digest of a component (``None`` with no
        store configured)."""
        if self.store is None:
            return None
        return phase2_component_key(
            members,
            self._deep(),
            self.call_graph.externally_callable,
            member_seeds,
            self._context,
        )

    def _store_phase2(
        self, members: Sequence[str], component_key: int
    ) -> bool:
        """Adopt a whole component's full summaries from the store
        (skipping the partial-PSG build, both fixpoints and assembly)."""
        loaded: Dict[str, RoutineSummary] = {}
        with span("store.lookup", grade=2, routines=len(members)):
            for name in members:
                summary = self.store.load_summary(
                    routine_record_key(component_key, name), name
                )
                if summary is None:
                    return False
                loaded[name] = summary
        for name, summary in loaded.items():
            self.fresh[name] = summary
            self.metrics.phase2_store_hits += 1
            if name not in self.cached or not _same_liveness(
                summary, self.cached[name]
            ):
                self.changed2.add(name)
        return True

    # ------------------------------------------------------------------
    # Lazy inputs
    # ------------------------------------------------------------------

    def _prepare_members(self, members: Sequence[str]) -> None:
        with self.metrics.stage("initialization"):
            for name in members:
                if name in self._local_sets:
                    continue
                cfg = self.cfgs[name]
                self._local_sets[name] = compute_local_sets(cfg)
                self._saved[name] = (
                    saved_restored_registers(cfg, self.config.convention)
                    if self.config.callee_saved_filtering
                    else 0
                )

    def _partial(self, index: int) -> PartialPsg:
        partial = self._partials.get(index)
        if partial is None:
            members = self.condensation.members(index)
            self._prepare_members(members)
            with self.metrics.stage("psg_build"):
                partial = build_partial_psg(
                    self.cfgs, self._local_sets, members, self.config.psg
                )
            self._partials[index] = partial
        return partial

    @staticmethod
    def _node_order(partial: PartialPsg) -> List[int]:
        return node_seed_order(partial.psg, partial.members)

    # ------------------------------------------------------------------
    # Phase 1 — callee-first, pinned external entries, change cutoff
    # ------------------------------------------------------------------

    def _phase1_needed(self, members: Sequence[str], member_set: Set[str]) -> bool:
        for name in members:
            if name in self.dirty or name not in self.cached_triples:
                return True
            for callee in self.call_graph.callees_of(name):
                if callee not in member_set and callee in self.changed1:
                    return True
        return False

    def _run_phase1(self) -> None:
        for index, members in enumerate(self.condensation.components):
            if self.phase1_scope is not None and index not in self.phase1_scope:
                continue
            member_set = set(members)
            if not self._phase1_needed(members, member_set):
                for name in members:
                    self.triples[name] = self.cached_triples[name]
                    self.metrics.phase1_reused += 1
                continue
            if self._store_phase1(members):
                continue
            partial = self._partial(index)
            fixed = {
                node_id: self.triples[callee]
                for callee, node_id in partial.external_entries.items()
            }
            with self.metrics.stage("phase1"):
                with span(
                    "phase1.scc", component=index, routines=len(members)
                ):
                    solution = run_phase1(
                        partial.psg,
                        self._saved,
                        self.preserved,
                        self._node_order(partial),
                        fixed_entries=fixed,
                        core=self.config.solver_core,
                    )
            self.metrics.phase1_sccs_solved += 1
            self.metrics.phase1_iterations += solution.iterations
            for name in members:
                triple = solution.entry_triple(partial.psg, name)
                self.triples[name] = triple
                self.metrics.phase1_solved += 1
                if triple != self.cached_triples.get(name):
                    self.changed1.add(name)
            if self.store is not None:
                deep = self._deep()
                for name in members:
                    self.store.store_triple(
                        deep[name], name, self.triples[name]
                    )

    # ------------------------------------------------------------------
    # Phase 2 — caller-first, seeded exits, change cutoff
    # ------------------------------------------------------------------

    def _live_after(self, caller: str, site: CallSite) -> int:
        """Current live-after mask of the call ``site`` in ``caller``
        (fresh if re-solved this run, else cached)."""
        summary = self.fresh.get(caller) or self.cached.get(caller)
        if summary is None:
            return 0
        for cached_site in summary.call_sites:
            if (
                cached_site.site.block == site.block
                and cached_site.site.instruction_index
                == site.instruction_index
            ):
                return cached_site.live_after_mask
        return 0

    def _exit_seed(self, name: str, member_set: Set[str]) -> int:
        mask = 0
        for caller, site in self.call_graph.callers_of(name):
            if caller in member_set:
                continue  # in-component flow happens inside the solve
            mask |= self._live_after(caller, site)
        return mask

    def _phase2_needed(self, members: Sequence[str], member_set: Set[str]) -> bool:
        was_external = self.cache.externally_callable
        is_external = self.call_graph.externally_callable
        for name in members:
            if name in self.dirty or name not in self.cached:
                return True
            if name in self.orphaned:
                return True
            if (name in was_external) != (name in is_external):
                return True
            for callee in self.call_graph.callees_of(name):
                if callee in self.changed1:
                    return True
            for caller, _site in self.call_graph.callers_of(name):
                if caller not in member_set and caller in self.changed2:
                    return True
        return False

    def _label_edges(self, partial: PartialPsg) -> None:
        """Write the phase-1 triples onto the resolved call-return
        edges (what ``run_phase1`` does at the end of a solve; needed
        again here because a component can be phase-2-dirty without
        having been phase-1-re-solved)."""
        for edge in partial.psg.call_return_edges:
            if edge.is_unknown:
                continue
            label_mu = 0
            label_md = 0
            label_xd = -1
            for callee in edge.callees:
                triple = self.triples[callee]
                label_mu |= triple.may_use
                label_md |= triple.may_def
                label_xd &= triple.must_def
            edge.label = SummaryTriple(
                may_use=label_mu,
                may_def=label_md,
                must_def=label_xd & TRACKED_MASK,
            )

    def _run_phase2(self) -> None:
        for index in range(len(self.condensation.components) - 1, -1, -1):
            if self.phase2_scope is not None and index not in self.phase2_scope:
                continue
            members = self.condensation.members(index)
            member_set = set(members)
            if not self._phase2_needed(members, member_set):
                self.metrics.phase2_reused += len(members)
                continue
            # The exit seeds are computable before any partial PSG
            # exists (callers solved first, so their live-after masks
            # are final) — which is what lets a store hit skip the
            # partial build entirely.
            member_seeds = {
                name: self._exit_seed(name, member_set) for name in members
            }
            component_key = self._component_key(members, member_seeds)
            if component_key is not None and self._store_phase2(
                members, component_key
            ):
                continue
            partial = self._partial(index)
            self._label_edges(partial)
            seeds: Dict[int, int] = {}
            for name in members:
                seed = member_seeds[name]
                if not seed:
                    continue
                for node_id in partial.psg.routines[name].return_exit_nodes():
                    seeds[node_id] = seed
            with self.metrics.stage("phase2"):
                with span(
                    "phase2.scc", component=index, routines=len(members)
                ):
                    solution = run_phase2(
                        partial.psg,
                        self.call_graph.externally_callable,
                        self.config.convention,
                        self._node_order(partial),
                        extra_exit_live=seeds,
                        core=self.config.solver_core,
                    )
            self.solved2.add(index)
            self.metrics.phase2_sccs_solved += 1
            self.metrics.phase2_iterations += solution.iterations
            with self.metrics.stage("assemble"):
                for name in members:
                    summary = self._assemble(partial, solution.may_use, name)
                    self.fresh[name] = summary
                    self.metrics.phase2_solved += 1
                    if (
                        name not in self.cached
                        or not _same_liveness(summary, self.cached[name])
                    ):
                        self.changed2.add(name)
            if component_key is not None:
                for name in members:
                    self.store.store_summary(
                        routine_record_key(component_key, name),
                        name,
                        self.fresh[name],
                    )

    def _assemble(
        self, partial: PartialPsg, may_use: List[int], name: str
    ) -> RoutineSummary:
        psg = partial.psg
        routine_psg = psg.routines[name]
        cr_by_src = {edge.src: edge for edge in psg.call_return_edges}

        exit_live: Dict[int, int] = {}
        exit_kinds: Dict[int, ExitKind] = {}
        for node_id, kind in routine_psg.exit_nodes:
            block = psg.nodes[node_id].block
            exit_live[block] = may_use[node_id]
            exit_kinds[block] = kind

        call_sites: List[CallSiteSummary] = []
        for call_node, return_node, site in routine_psg.call_pairs:
            label = cr_by_src[call_node].label
            call_sites.append(
                CallSiteSummary(
                    site=site,
                    used_mask=label.may_use,
                    defined_mask=label.must_def,
                    killed_mask=label.may_def,
                    live_before_mask=may_use[call_node],
                    live_after_mask=may_use[return_node],
                )
            )

        triple = self.triples[name]
        return RoutineSummary(
            name=name,
            call_used_mask=triple.may_use,
            call_defined_mask=triple.must_def,
            call_killed_mask=triple.may_def,
            live_at_entry_mask=may_use[routine_psg.entry_node],
            exit_live_masks=exit_live,
            exit_kinds=exit_kinds,
            call_sites=call_sites,
            saved_restored_mask=self._saved.get(name, 0),
        )

    # ------------------------------------------------------------------

    def solve(self) -> None:
        """Run both phases over the configured component scopes without
        assembling a program-wide result.

        The demand engine (:mod:`repro.interproc.demand`) uses this
        with scopes set: afterwards ``self.fresh`` holds the re-solved
        summaries and ``self.changed1`` / ``self.changed2`` /
        ``self.orphaned`` say what the memoized cache may keep.
        """
        self._run_phase1()
        self._run_phase2()

    def run(self) -> SummarySet:
        self.solve()
        _log.debug(
            "warm engine: phase1 solved %d / reused %d, "
            "phase2 solved %d / reused %d",
            self.metrics.phase1_solved, self.metrics.phase1_reused,
            self.metrics.phase2_solved, self.metrics.phase2_reused,
        )
        summaries = {
            name: self.fresh.get(name) or self.cached[name]
            for name in self.cfgs
        }
        return SummarySet(summaries=summaries)


def _same_liveness(fresh: RoutineSummary, cached: RoutineSummary) -> bool:
    """True when the phase-2 outputs (the facts callees consume through
    exit seeds) are unchanged — the phase-2 change cutoff."""
    if (
        fresh.live_at_entry_mask != cached.live_at_entry_mask
        or dict(fresh.exit_live_masks) != dict(cached.exit_live_masks)
    ):
        return False
    if len(fresh.call_sites) != len(cached.call_sites):
        return False
    for site_a, site_b in zip(fresh.call_sites, cached.call_sites):
        if (
            site_a.site.block != site_b.site.block
            # A retargeted site redirects its live-after contribution
            # even when the masks happen to coincide.
            or site_a.site.targets != site_b.site.targets
            or site_a.live_before_mask != site_b.live_before_mask
            or site_a.live_after_mask != site_b.live_after_mask
        ):
            return False
    return True
