"""Phase 2: live-at-entry and live-at-exit (§3.3, Figure 10).

MAY-USE information flows backward through the flow-summary edges and
the (phase-1-labeled) call-return edges, and *across* routines from
each return node to the exit nodes of every routine that could return
to it.  When the dataflow converges:

* ``MAY-USE[entry node]`` = the registers live at the routine's entry;
* ``MAY-USE[exit node]``  = the registers live at that exit;
* ``MAY-USE[call node]``  = the registers live immediately before the
  call (useful to the optimizer for Figure 1(c)/(d));
* ``MAY-USE[return node]`` = the registers live at the call's return
  point.

Because the call-return edges carry the callee's MAY-USE / MUST-DEF
summaries rather than letting liveness flow *through* the callee's
body, the solution only accounts for valid (call/return matched) paths
— the meet-over-all-valid-paths property discussed in §5.

Boundary conditions:

* HALT exits: nothing is live after the program stops;
* UNKNOWN_JUMP exits: every register is assumed live (§3.5);
* RETURN exits of *externally callable* routines (exported,
  address-taken, or the program entry) are seeded with the
  calling-standard worst case: the return-value registers, the
  callee-saved registers, and ``sp``/``gp``/``ra``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from repro.isa.calling_convention import CallingConvention
from repro.dataflow.regset import TRACKED_MASK, mask_of
from repro.dataflow.solver import SubgraphWorklist
from repro.cfg.cfg import ExitKind
from repro.interproc.phase1 import record_solve
from repro.obs.metrics import REGISTRY
from repro.psg.graph import ProgramSummaryGraph
from repro.psg.nodes import NodeKind


@dataclass
class Phase2Result:
    """Converged per-node MAY-USE (liveness) masks."""

    may_use: List[int]
    #: Worklist iterations spent converging (incremental work metric).
    iterations: int = 0


def conservative_exit_live_mask(convention: CallingConvention) -> int:
    """Registers assumed live when returning to an unknown caller."""
    return mask_of(
        convention.return_registers
        | convention.callee_saved
        | {
            convention.stack_pointer,
            convention.global_pointer,
            convention.return_address,
        }
    )


def run_phase2(
    psg: ProgramSummaryGraph,
    externally_callable: Set[str],
    convention: CallingConvention,
    seed_order: Sequence[int],
    extra_exit_live: Optional[Dict[int, int]] = None,
    core: Optional[str] = None,
) -> Phase2Result:
    """Run phase 2 over a PSG whose call-return edges are labeled.

    ``extra_exit_live`` adds initial liveness at specific exit nodes
    (node id -> mask), merged on top of the standard boundary
    conditions.  The incremental engine uses it to inject the cached
    live-after masks of *callers outside the partial PSG*: their
    return-point liveness must still reach the exits of the routines
    being re-solved, even though the callers themselves are not.

    ``core`` selects the solver data layout/scheduling (``flat`` /
    ``object`` / ``fifo``); every core converges to bit-identical
    results (see :mod:`repro.interproc.flatcore`).
    """
    # Imported lazily to break the phase2 <-> flatcore cycle.
    from repro.interproc import flatcore

    core = flatcore.resolve_solver_core(core)
    if core == "flat":
        return flatcore.run_phase2_flat(
            psg,
            externally_callable,
            conservative_exit_live_mask(convention),
            seed_order,
            extra_exit_live=extra_exit_live,
        )
    worklist_order = "fifo" if core == "fifo" else "priority"
    node_count = len(psg.nodes)
    nodes = psg.nodes
    may_use = [0] * node_count
    is_exit = [False] * node_count

    conservative = conservative_exit_live_mask(convention)
    for node in nodes:
        if node.kind != NodeKind.EXIT:
            continue
        is_exit[node.id] = True
        if node.exit_kind == ExitKind.UNKNOWN_JUMP:
            may_use[node.id] = TRACKED_MASK
        elif node.exit_kind == ExitKind.RETURN and node.routine in externally_callable:
            may_use[node.id] = conservative
        # HALT and internal RETURN exits start at ∅.
    if extra_exit_live:
        for node_id, mask in extra_exit_live.items():
            may_use[node_id] |= mask

    # return node id -> RETURN-kind exit node ids of every possible
    # callee (a hinted site's liveness flows to each candidate's exits).
    return_to_exits: Dict[int, List[int]] = {}
    for edge in psg.call_return_edges:
        exits: List[int] = []
        for callee in edge.callees:
            exits.extend(psg.routines[callee].return_exit_nodes())
        if exits:
            return_to_exits[edge.dst] = exits

    dependents: List[List[int]] = [[] for _ in range(node_count)]
    for edge in psg.flow_edges:
        dependents[edge.dst].append(edge.src)
    for edge in psg.call_return_edges:
        dependents[edge.dst].append(edge.src)

    flow_edges = psg.flow_edges
    cr_edges = psg.call_return_edges

    worklist = SubgraphWorklist(
        node_count, dependents, is_exit, seed_order, order=worklist_order
    )

    def transfer(node_id: int) -> bool:
        mu_acc = 0
        for edge_index in psg.flow_out[node_id]:
            edge = flow_edges[edge_index]
            label = edge.label
            mu_acc |= label.may_use | (may_use[edge.dst] & ~label.must_def)
        cr_index = psg.cr_out[node_id]
        if cr_index is not None:
            edge = cr_edges[cr_index]
            label = edge.label
            mu_acc |= label.may_use | (may_use[edge.dst] & ~label.must_def)
        if mu_acc == may_use[node_id]:
            return False
        may_use[node_id] = mu_acc
        # Return node -> callee exit copies (the dashed arcs of Fig. 11).
        # Exit nodes are frozen, so their dependents are enqueued by
        # hand when a copy lands new bits on them.
        for exit_node in return_to_exits.get(node_id, ()):
            merged = may_use[exit_node] | mu_acc
            if merged != may_use[exit_node]:
                may_use[exit_node] = merged
                for dependent in dependents[exit_node]:
                    worklist.enqueue(dependent)
        return True

    visit_counts = [0] * node_count if REGISTRY.per_routine else None
    iterations = worklist.run(transfer, visit_counts)
    record_solve(
        psg, "phase2", iterations, worklist.max_depth, visit_counts,
        pushes=worklist.pushes, skipped=worklist.skipped,
        revisits=worklist.revisits,
    )
    return Phase2Result(may_use=may_use, iterations=iterations)
