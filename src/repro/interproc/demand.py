"""Demand-driven per-routine queries.

A whole-program solve (or even a warm incremental run) answers every
routine's question at once; an interactive or serving deployment asks
about *one* routine and wants the answer in milliseconds.  This module
answers ``query(routine)`` by solving only the slice of the program the
answer can depend on:

* the **phase-2 cone** ``P2`` — the SCC-condensation components of the
  routine's transitive *callers*.  A routine's liveness consumes its
  callers' return-point liveness, so the cone is caller-closed and the
  topmost components have no external callers at all (their exits are
  seeded purely by the §3.4 externally-callable convention);
* the **phase-1 cone** ``P1`` — the transitive *callee* closure of
  ``P2``.  Phase 2 of any ``P2`` component reads the phase-1 triples
  of its callees, and a triple depends only on the routine's own code
  and its callees' triples, so ``P1`` is callee-closed and every
  pinned frontier entry a partial solve needs is available in-cone.

The query then runs the ordinary warm engine
(:class:`repro.interproc.incremental._WarmEngine`) *restricted to
those component scopes*: each in-cone component re-solves exactly when
the full warm run would have re-solved it, on the same partial PSG
with the same pinned entries and exit seeds — so the answer for the
queried routine is byte-identical to an exhaustive solve.  On a clean
warm cache nothing re-solves at all and the query costs one CFG build
plus fingerprinting.

**Memoization.**  The refreshed :class:`SummaryCache` a query returns
must stay honest for routines the query never looked at.  Entries come
in two grades — a full summary (phase 1 + phase 2 facts) and a
phase-1-only triple (:attr:`SummaryCache.phase1_triples`) — and the
rules are:

* routines in ``P2`` were phase-2 *validated* (re-solved, or proven
  clean with unchanged dependencies) — store their full summary and
  current fingerprint;
* routines in ``P1 \\ P2`` were phase-1 validated only — store their
  fresh triple under the current fingerprint (this is what lets the
  next query skip the callee cone), and keep their old full summary
  only when nothing this query discovered could have staled it;
* routines outside both cones that were dirty keep their old entry
  verbatim — the mismatched fingerprint keeps them dirty;
* clean out-of-cone entries keep whatever grade survives the
  **staleness sweep**: a summary is dropped when the routine is
  orphaned, has a direct callee whose triple changed (its call-site
  labels and liveness consumed it) or a direct caller whose liveness
  outputs changed (its exit seed moved); a triple is dropped when a
  direct callee's triple changed.  Deleted routines drop entirely.

A dropped entry (or grade) is a cache miss — the next run that needs
the routine re-solves it and propagation resumes from there.  Every
invalidation chain that leaves the solved cones bottoms out in a
still-detectable source — a kept mismatched fingerprint, a dropped
entry, or an externally-callable flip visible against the kept old
membership — so repeated and overlapping queries amortize toward zero
without ever poisoning the sidecar.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.cfg.build import build_all_cfgs
from repro.cfg.callgraph import CallGraph, Condensation, build_call_graph
from repro.dataflow.equations import SummaryTriple
from repro.interproc.analysis import AnalysisConfig
from repro.interproc.errors import UnknownRoutineError
from repro.interproc.incremental import (
    _WarmEngine,
    _triple_of,
    record_fingerprint_verdicts,
    routine_fingerprint,
)
from repro.interproc.persist import SummaryCache
from repro.interproc.store import resolve_store
from repro.interproc.summaries import SummarySet, RoutineSummary
from repro.obs.metrics import REGISTRY
from repro.reporting.metrics import QueryMetrics

_log = logging.getLogger(__name__)


@dataclass
class QueryFrontend:
    """The program's immutable front-end products — CFGs, call graph,
    SCC condensation — shared across queries of the same program.

    Building these dominates warm-query latency (the cone solve itself
    amortizes to nothing), so :class:`repro.api.AnalysisSession`
    caches the frontend of its (immutable) program and threads it into
    every query.
    """

    cfgs: Dict[str, object]
    call_graph: CallGraph
    condensation: Condensation


def build_query_frontend(program) -> QueryFrontend:
    cfgs = build_all_cfgs(program)
    call_graph = build_call_graph(program, cfgs)
    return QueryFrontend(
        cfgs=cfgs,
        call_graph=call_graph,
        condensation=call_graph.condensation(),
    )


@dataclass
class QueryResult:
    """The product of one demand-driven query.

    ``summary`` is the queried routine's answer (byte-identical to what
    an exhaustive solve would produce); ``cache`` is the memoized
    refresh to persist — feeding it to the next query (or incremental
    run) is what makes repeated queries amortize.  ``frontend`` is the
    program's reusable front-end (handed back so a session can thread
    it into the next query).
    """

    routine: str
    summary: RoutineSummary
    cache: SummaryCache
    metrics: QueryMetrics
    condensation: Optional[Condensation] = None
    frontend: Optional[QueryFrontend] = None
    #: The queried program (carried for the result protocol's
    #: ``routines``/``instructions`` payload fields).
    program: Optional[object] = None

    #: Queries always solve serially (the cones are usually far
    #: smaller than a shard); kept for result-type uniformity.
    is_parallel: bool = False

    #: Result-protocol kind tag (see :mod:`repro.interproc.results`).
    kind = "query"

    @property
    def result(self) -> SummarySet:
        """The deterministic answer as a one-routine summary set.

        Deliberately *not* the memoized cache's whole view: the cache
        carries whatever partial state earlier runs left, while the
        queried routine's summary is exactly what an exhaustive solve
        would report — the byte-identity contract of the demand engine.
        """
        return SummarySet(summaries={self.routine: self.summary})

    def stats(self) -> Dict[str, object]:
        """Kind-specific stats: cone sizes, work accounting and the
        queried routine's rendered summary."""
        payload: Dict[str, object] = dict(self.metrics.as_dict())
        payload["summary"] = self.summary.to_json()
        return payload

    def to_json(self, counters=None, include_summaries: bool = False):
        """The versioned (schema 1) result payload; see
        :mod:`repro.interproc.results`."""
        from repro.interproc.results import build_payload

        return build_payload(self, counters, include_summaries)


def query_routine(
    program,
    routine: str,
    cache: Optional[SummaryCache] = None,
    config: Optional[AnalysisConfig] = None,
    image_fingerprint: int = 0,
    frontend: Optional[QueryFrontend] = None,
) -> QueryResult:
    """Answer live-at-entry/exit and call-used/defined/killed for one
    routine, solving only its dependency cones.

    ``cache=None`` is a cold query: the cones still restrict the work,
    and the returned cache warms every later query.  ``frontend``
    reuses an earlier query's CFG/call-graph build for the *same*
    program (the dominant warm-query cost).  Raises
    :class:`UnknownRoutineError` when ``routine`` is not in the
    program.
    """
    config = config or AnalysisConfig()
    metrics = QueryMetrics(
        routine=routine, routines_total=program.routine_count
    )
    REGISTRY.inc("query.requests")

    if frontend is None:
        with metrics.stage("cfg_build"):
            frontend = build_query_frontend(program)
    cfgs = frontend.cfgs
    call_graph = frontend.call_graph
    condensation = frontend.condensation
    if routine not in cfgs:
        raise UnknownRoutineError(
            f"no routine named {routine!r} in the program "
            f"({len(cfgs)} routines)"
        )

    if cache is None:
        metrics.cold = True
        cache = SummaryCache(
            image_fingerprint=image_fingerprint,
            result=SummarySet(summaries={}),
        )
    with metrics.stage("fingerprint"):
        fingerprints = {
            name: routine_fingerprint(program.routine(name), cfgs[name])
            for name in cfgs
        }
        dirty = record_fingerprint_verdicts(fingerprints, cache)
    metrics.dirty_routines = sorted(dirty)

    root = condensation.component_index(routine)
    phase2_cone = condensation.transitive_caller_components({root})
    phase1_cone = condensation.transitive_callee_components(phase2_cone)
    metrics.phase1_cone_components = len(phase1_cone)
    metrics.phase2_cone_components = len(phase2_cone)
    metrics.phase1_cone_routines = len(condensation.routines_of(phase1_cone))
    metrics.phase2_cone_routines = len(condensation.routines_of(phase2_cone))
    REGISTRY.inc(
        "query.cone_routines", metrics.phase1_cone_routines, phase="phase1"
    )
    REGISTRY.inc(
        "query.cone_routines", metrics.phase2_cone_routines, phase="phase2"
    )
    _log.info(
        "query %s: cones phase1=%d/phase2=%d routines, %d dirty",
        routine,
        metrics.phase1_cone_routines,
        metrics.phase2_cone_routines,
        len(dirty),
    )

    engine = _WarmEngine(
        program=program,
        config=config,
        cfgs=cfgs,
        call_graph=call_graph,
        condensation=condensation,
        cache=cache,
        dirty=dirty,
        metrics=metrics,
        phase1_scope=phase1_cone,
        phase2_scope=phase2_cone,
        store=resolve_store(config),
        fingerprints=fingerprints,
    )
    engine.solve()
    REGISTRY.inc("query.solved", metrics.phase2_solved)
    REGISTRY.inc("query.reused", metrics.phase2_reused)

    summary = engine.fresh.get(routine) or cache.result.summaries[routine]
    new_cache = _memoized_cache(
        engine=engine,
        validated1=condensation.routines_of(phase1_cone),
        validated2=condensation.routines_of(phase2_cone),
        cfgs=cfgs,
        call_graph=call_graph,
        cache=cache,
        dirty=dirty,
        fingerprints=fingerprints,
        image_fingerprint=image_fingerprint,
        metrics=metrics,
    )
    return QueryResult(
        routine=routine,
        summary=summary,
        cache=new_cache,
        metrics=metrics,
        condensation=condensation,
        frontend=frontend,
        program=program,
    )


def _memoized_cache(
    engine: _WarmEngine,
    validated1: Set[str],
    validated2: Set[str],
    cfgs: Dict[str, object],
    call_graph: CallGraph,
    cache: SummaryCache,
    dirty: Set[str],
    fingerprints: Dict[str, int],
    image_fingerprint: int,
    metrics: QueryMetrics,
) -> SummaryCache:
    """The refreshed cache a query persists (module docstring rules)."""
    old_summaries = cache.result.summaries
    is_external = call_graph.externally_callable

    # Facts this query discovered to have changed.  A kept entry whose
    # fingerprint would pass the next run's check must not depend on
    # any of them: summaries consume direct callees' triples (call-site
    # labels) and direct callers' liveness (exit seeds); triples
    # consume direct callees' triples.
    summary_stale: Set[str] = set(engine.orphaned) | engine.changed1
    triple_stale: Set[str] = set()
    for name in engine.changed1:
        for caller, _site in call_graph.callers_of(name):
            summary_stale.add(caller)
            triple_stale.add(caller)
    for name in engine.changed2:
        summary_stale.update(call_graph.callees_of(name))

    summaries: Dict[str, RoutineSummary] = {}
    phase1_triples: Dict[str, SummaryTriple] = {}
    keyed_fingerprints: Dict[str, int] = {}
    externally_callable: Set[str] = set()
    dropped = 0

    for name in validated2:
        # Full summary validated against the new program.
        summaries[name] = engine.fresh.get(name) or old_summaries[name]
        keyed_fingerprints[name] = fingerprints[name]
        if name in is_external:
            externally_callable.add(name)

    for name in validated1 - validated2:
        # Phase 1 validated: the fresh triple is always storable.  The
        # old full summary survives only when it is provably untouched.
        keyed_fingerprints[name] = fingerprints[name]
        phase1_triples[name] = engine.triples[name]
        old = old_summaries.get(name)
        if old is None:
            continue
        if name in dirty or name in summary_stale:
            dropped += 1
            continue
        summaries[name] = old
        if name in cache.externally_callable:
            externally_callable.add(name)

    for name in cache.routine_fingerprints:
        if name in validated1:
            continue
        if name not in cfgs:  # deleted routine: entry dropped outright
            if name in old_summaries or name in cache.phase1_triples:
                dropped += 1
            continue
        if name in dirty:
            # Keep everything under the old, mismatched fingerprint:
            # the routine stays dirty and nothing consumes a dirty
            # entry before re-solving it.
            keyed_fingerprints[name] = cache.routine_fingerprints[name]
            if name in old_summaries:
                summaries[name] = old_summaries[name]
            if name in cache.phase1_triples:
                phase1_triples[name] = cache.phase1_triples[name]
            if name in cache.externally_callable:
                externally_callable.add(name)
            continue
        # Clean, out of both cones: keep each grade unless the sweep
        # staled it.  (Old externally-callable membership is kept with
        # a kept summary so a visibility flip stays detectable.)
        keep_summary = name in old_summaries and name not in summary_stale
        old_triple = cache.phase1_triples.get(name)
        if old_triple is None and name in old_summaries:
            old_triple = _triple_of(old_summaries[name])
        keep_triple = old_triple is not None and name not in triple_stale
        if name in old_summaries and not keep_summary:
            dropped += 1
        if not keep_summary and not keep_triple:
            continue
        keyed_fingerprints[name] = cache.routine_fingerprints[name]
        if keep_summary:
            summaries[name] = old_summaries[name]
            if name in cache.externally_callable:
                externally_callable.add(name)
        elif keep_triple:
            phase1_triples[name] = old_triple

    metrics.memo_dropped = dropped
    REGISTRY.inc("query.memo_dropped", dropped)
    return SummaryCache(
        image_fingerprint=image_fingerprint,
        result=SummarySet(summaries=summaries),
        routine_fingerprints=keyed_fingerprints,
        externally_callable=externally_callable,
        phase1_triples=phase1_triples,
    )
