"""The top-level interprocedural dataflow driver.

Runs the five-stage pipeline the paper times in §4:

1. **CFG Build** — decode (when starting from an image), build the
   per-routine CFGs and the call graph;
2. **Initialization** — generate each block's DEF and UBD sets and
   detect saved/restored callee-saved registers;
3. **PSG Build** — construct the Program Summary Graph and label its
   flow-summary edges (Figure 6);
4. **Phase 1** — call-used / call-defined / call-killed (Figure 8);
5. **Phase 2** — live-at-entry / live-at-exit (Figure 10).

The result bundles the per-routine summaries with the structures and
measurements every experiment in the paper reports: PSG/CFG sizes,
per-stage times, and model-based memory usage.
"""

from __future__ import annotations

import logging
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.isa.calling_convention import CallingConvention, NT_ALPHA
from repro.program.image import ExecutableImage
from repro.program.model import Program
from repro.program.disasm import disassemble_image
from repro.cfg.build import build_all_cfgs
from repro.cfg.callgraph import CallGraph, build_call_graph
from repro.cfg.cfg import ControlFlowGraph
from repro.dataflow.local import LocalSets, compute_local_sets
from repro.dataflow.regset import mask_of
from repro.psg.arena import get_arena
from repro.psg.build import PsgConfig, build_psg
from repro.psg.graph import ProgramSummaryGraph
from repro.interproc import flatcore
from repro.interproc.phase1 import Phase1Result, run_phase1
from repro.interproc.phase2 import Phase2Result, run_phase2
from repro.interproc.savedregs import saved_restored_registers
from repro.interproc.summaries import (
    SummarySet,
    CallSiteSummary,
    RoutineSummary,
)
from repro.obs.metrics import REGISTRY
from repro.reporting.memory import MemoryModel, psg_analysis_memory
from repro.reporting.metrics import StageTimer, StageTimings

_log = logging.getLogger(__name__)


def frontend_chunks(program: Program, chunk_count: int) -> List[List[str]]:
    """Cost-balanced routine chunks for the parallel front end.

    Per-routine CFG construction, local-set generation and §3.4
    saved/restored detection are all independent, so the front end is
    embarrassingly parallel; the only scheduling concern is balance.
    Routines are dealt greedily (largest first, onto the lightest
    chunk) by instruction count — the one size signal available before
    any CFG exists.  Chunk *contents* affect only which worker builds
    what, never the assembled result, which the parent reorders into
    program order.
    """
    chunk_count = max(1, chunk_count)
    sized = sorted(
        ((len(routine), routine.name) for routine in program), reverse=True
    )
    chunks: List[List[str]] = [[] for _ in range(chunk_count)]
    loads = [0] * chunk_count
    for size, name in sized:
        lightest = loads.index(min(loads))
        chunks[lightest].append(name)
        loads[lightest] += size
    return [chunk for chunk in chunks if chunk]


@dataclass(frozen=True)
class AnalysisConfig:
    """Options for one analysis run."""

    psg: PsgConfig = field(default_factory=PsgConfig)
    convention: CallingConvention = field(default_factory=lambda: NT_ALPHA)
    memory_model: MemoryModel = field(default_factory=MemoryModel)
    #: §3.4 callee-saved filtering.  Disabling it (ablation only) makes
    #: every save/restore pair leak into the callers' call-used /
    #: call-killed sets; results remain sound but much less useful.
    callee_saved_filtering: bool = True
    #: Worker processes for the sharded parallel solver.  1 = solve in
    #: this process; 0 or negative = one worker per available CPU.
    #: Results are bit-identical at every setting (see
    #: :mod:`repro.interproc.parallel`).
    jobs: int = 1
    #: Solver core for the two-phase engines: ``"flat"`` (CSR arena
    #: fast path), ``"object"`` (object-graph engines with priority
    #: scheduling), or ``"fifo"`` (object engines with the legacy FIFO
    #: deque — a bisect/measurement baseline).  ``None`` defers to the
    #: ``REPRO_SOLVER_CORE`` environment variable, then ``"object"``.
    #: Results are bit-identical for every choice (see
    #: :mod:`repro.interproc.flatcore`).
    solver_core: Optional[str] = None
    #: Cross-image summary store (:mod:`repro.interproc.store`):
    #: ``None`` defers to the ``REPRO_SUMMARY_STORE`` environment
    #: variable, a :class:`~repro.interproc.store.SummaryStore` uses
    #: that store, and the string ``"off"`` disables the store even
    #: when the environment names one.  Results are byte-identical in
    #: every case.
    store: Optional[object] = None


@dataclass
class InterproceduralAnalysis:
    """Everything produced by one analysis run.

    ``result`` holds the per-routine summaries; the remaining fields
    expose the intermediate structures (CFGs, call graph, PSG, raw
    phase solutions) and the §4 measurements (timings, memory).
    """

    program: Program
    config: AnalysisConfig
    cfgs: Dict[str, ControlFlowGraph]
    call_graph: CallGraph
    local_sets: Dict[str, List[LocalSets]]
    saved_restored: Dict[str, int]
    psg: ProgramSummaryGraph
    phase1: Phase1Result
    phase2: Phase2Result
    result: SummarySet
    timings: StageTimings
    memory_bytes: int

    # -- convenience -----------------------------------------------------

    #: Explicit marker for CLI/report code: this result came from the
    #: serial whole-program solver (its counterpart on
    #: ``ParallelAnalysis`` is True).  Prefer this over duck-typing on
    #: attributes like ``psg``.
    is_parallel: bool = False

    #: Result-protocol kind tag (see :mod:`repro.interproc.results`).
    kind = "serial"

    def summary(self, routine: str) -> RoutineSummary:
        return self.result.summaries[routine]

    def stats(self) -> Dict[str, object]:
        """Kind-specific stats: stage timings and structure sizes."""
        return {
            "stage_seconds": self.timings.as_dict(),
            "memory_bytes": self.memory_bytes,
            "psg_nodes": self.psg.node_count,
            "psg_edges": self.psg.edge_count,
        }

    def to_json(self, counters=None, include_summaries: bool = False):
        """The versioned (schema 1) result payload; see
        :mod:`repro.interproc.results`."""
        from repro.interproc.results import build_payload

        return build_payload(self, counters, include_summaries)

    def describe(self) -> str:
        """The human-readable stats block (the CLI text output)."""
        lines = [
            f"basic blocks:  {self.basic_block_count}",
            f"cfg arcs:      {self.cfg_arc_count}",
            f"psg nodes:     {self.psg.node_count}",
            f"psg edges:     {self.psg.edge_count}",
            f"memory model:  {self.memory_bytes / 1e6:.2f} MB",
            f"total time:    {self.timings.total:.3f} s",
        ]
        for stage, fraction in self.timings.fractions().items():
            lines.append(
                f"  {stage:<16}{getattr(self.timings, stage):.3f} s  "
                f"({fraction:5.1%})"
            )
        return "\n".join(lines)

    @property
    def basic_block_count(self) -> int:
        return sum(cfg.block_count for cfg in self.cfgs.values())

    @property
    def cfg_arc_count(self) -> int:
        """Intraprocedural arcs plus one call and one return arc per
        resolved call site (the Table-5 "CFG Arcs" definition)."""
        intra = sum(cfg.arc_count for cfg in self.cfgs.values())
        calls = sum(len(cfg.call_sites) for cfg in self.cfgs.values())
        return intra + 2 * calls


def _analyze_program(
    program: Program, config: Optional[AnalysisConfig] = None
) -> InterproceduralAnalysis:
    """Run the full pipeline on an already-decoded program."""
    config = config or AnalysisConfig()
    timer = StageTimer()

    with timer.stage("cfg_build"):
        cfgs = build_all_cfgs(program)
        call_graph = build_call_graph(program, cfgs)
    REGISTRY.inc("frontend.routines", len(cfgs))

    with timer.stage("initialization"):
        local_sets = {
            name: compute_local_sets(cfg) for name, cfg in cfgs.items()
        }
        if config.callee_saved_filtering:
            saved_restored = {
                name: saved_restored_registers(cfg, config.convention)
                for name, cfg in cfgs.items()
            }
        else:
            saved_restored = {name: 0 for name in cfgs}

    with timer.stage("psg_build"):
        psg = build_psg(program, cfgs, local_sets, config.psg)
        if flatcore.resolve_solver_core(config.solver_core) == "flat":
            # Lowering is graph construction: charge the one-time CSR
            # arena build to the PSG stage so the phase timings report
            # solve time (the arena is cached on the PSG afterwards).
            get_arena(psg)

    preserved = mask_of(
        {config.convention.stack_pointer, config.convention.global_pointer}
    )
    callee_first = call_graph.reverse_topological_order()
    phase1_order = node_seed_order(psg, callee_first)
    with timer.stage("phase1"):
        phase1 = run_phase1(
            psg, saved_restored, preserved, phase1_order,
            core=config.solver_core,
        )

    caller_first = list(reversed(callee_first))
    phase2_order = node_seed_order(psg, caller_first)
    with timer.stage("phase2"):
        phase2 = run_phase2(
            psg,
            call_graph.externally_callable,
            config.convention,
            phase2_order,
            core=config.solver_core,
        )

    result = _assemble_summaries(program, cfgs, saved_restored, psg, phase1, phase2)
    _publish_to_store(program, config, cfgs, call_graph, result)
    memory = psg_analysis_memory(psg, cfgs, config.memory_model)
    return InterproceduralAnalysis(
        program=program,
        config=config,
        cfgs=cfgs,
        call_graph=call_graph,
        local_sets=local_sets,
        saved_restored=saved_restored,
        psg=psg,
        phase1=phase1,
        phase2=phase2,
        result=result,
        timings=timer.timings,
        memory_bytes=memory,
    )


def _publish_to_store(
    program: Program,
    config: AnalysisConfig,
    cfgs: Dict[str, ControlFlowGraph],
    call_graph: CallGraph,
    result: SummarySet,
) -> None:
    """Publish a finished whole-program result to the cross-image
    summary store, when one is configured.

    The plain serial pipeline only *publishes* — it never consults the
    store, so its own behavior (and every exact-work assertion built on
    it) is untouched.  Store-accelerated solves go through the
    incremental engine (:mod:`repro.interproc.incremental`).
    """
    from repro.interproc.store import publish_result, resolve_store

    store = resolve_store(config)
    if store is None:
        return
    from repro.interproc.incremental import routine_fingerprint

    fingerprints = {
        name: routine_fingerprint(program.routine(name), cfgs[name])
        for name in cfgs
    }
    publish_result(
        store,
        call_graph.condensation(),
        call_graph,
        fingerprints,
        config,
        result,
    )


def _analyze_image(
    image: ExecutableImage, config: Optional[AnalysisConfig] = None
) -> InterproceduralAnalysis:
    """Decode an executable image and analyze it.

    Decoding time is charged to the CFG Build stage, as in the paper
    (Spike's CFG construction starts from machine code).
    """
    timer = StageTimer()
    with timer.stage("cfg_build"):
        program = disassemble_image(image)
    analysis = _analyze_program(program, config)
    analysis.timings.cfg_build += timer.timings.cfg_build
    return analysis


def node_seed_order(
    psg: ProgramSummaryGraph, routine_order: Sequence[str]
) -> List[int]:
    """Seed order: routines in ``routine_order``, and within each
    routine the nodes in reverse creation order (targets tend to be
    created after the entry, so reversing processes them first, which
    suits backward propagation).

    Shared by the whole-program driver, the incremental engine (over a
    partial PSG's members) and the parallel shard workers — identical
    seeding is part of keeping every execution mode deterministic.
    """
    order: List[int] = []
    for name in routine_order:
        routine_psg = psg.routines[name]
        ids = [routine_psg.entry_node]
        ids.extend(node for node, _kind in routine_psg.exit_nodes)
        for call_node, return_node, _site in routine_psg.call_pairs:
            ids.append(call_node)
            ids.append(return_node)
        ids.extend(routine_psg.branch_nodes)
        order.extend(reversed(ids))
    return order


def _assemble_summaries(
    program: Program,
    cfgs: Dict[str, ControlFlowGraph],
    saved_restored: Dict[str, int],
    psg: ProgramSummaryGraph,
    phase1: Phase1Result,
    phase2: Phase2Result,
) -> SummarySet:
    summaries: Dict[str, RoutineSummary] = {}
    cr_by_src = {edge.src: edge for edge in psg.call_return_edges}
    for routine in program:
        name = routine.name
        routine_psg = psg.routines[name]
        entry_node = routine_psg.entry_node

        exit_live: Dict[int, int] = {}
        exit_kinds: Dict[int, object] = {}
        for node_id, kind in routine_psg.exit_nodes:
            block = psg.nodes[node_id].block
            exit_live[block] = phase2.may_use[node_id]
            exit_kinds[block] = kind

        call_sites: List[CallSiteSummary] = []
        for call_node, return_node, site in routine_psg.call_pairs:
            label = cr_by_src[call_node].label
            call_sites.append(
                CallSiteSummary(
                    site=site,
                    used_mask=label.may_use,
                    defined_mask=label.must_def,
                    killed_mask=label.may_def,
                    live_before_mask=phase2.may_use[call_node],
                    live_after_mask=phase2.may_use[return_node],
                )
            )

        summaries[name] = RoutineSummary(
            name=name,
            call_used_mask=phase1.may_use[entry_node],
            call_defined_mask=phase1.must_def[entry_node],
            call_killed_mask=phase1.may_def[entry_node],
            live_at_entry_mask=phase2.may_use[entry_node],
            exit_live_masks=exit_live,
            exit_kinds=exit_kinds,  # type: ignore[arg-type]
            call_sites=call_sites,
            saved_restored_mask=saved_restored.get(name, 0),
        )
    return SummarySet(summaries=summaries)
