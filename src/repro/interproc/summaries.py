"""Routine summaries: the product of the interprocedural analysis (§2).

A :class:`RoutineSummary` is exactly the information Spike needs to
optimize one routine in isolation:

* ``live_at_entry`` / ``live_at_exit`` — registers live at each
  entrance / exit;
* ``call_used`` / ``call_defined`` / ``call_killed`` — the
  call-summary sets callers substitute for calls to this routine;
* per call site, the summary of the *callee* (the call-summary
  instruction of §2) and the registers live immediately before and
  after the call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.dataflow.liveness import SiteEffect
from repro.dataflow.regset import RegisterSet
from repro.cfg.cfg import CallSite, ExitKind


@dataclass(frozen=True)
class CallSiteSummary:
    """Everything the optimizer knows about one call site."""

    site: CallSite
    #: Registers the call-summary instruction uses (callee's call-used).
    used_mask: int
    #: Registers the call-summary instruction defines (call-defined).
    defined_mask: int
    #: Registers the call-summary instruction kills (call-killed).
    killed_mask: int
    #: Registers live immediately before the call instruction.
    live_before_mask: int
    #: Registers live at the call's return point.
    live_after_mask: int

    @property
    def used(self) -> RegisterSet:
        return RegisterSet.from_mask(self.used_mask)

    @property
    def defined(self) -> RegisterSet:
        return RegisterSet.from_mask(self.defined_mask)

    @property
    def killed(self) -> RegisterSet:
        return RegisterSet.from_mask(self.killed_mask)

    @property
    def live_before(self) -> RegisterSet:
        return RegisterSet.from_mask(self.live_before_mask)

    @property
    def live_after(self) -> RegisterSet:
        return RegisterSet.from_mask(self.live_after_mask)

    def site_effect(self) -> SiteEffect:
        """Gen/kill masks for client-side liveness (§2).

        Only *definite* definitions kill liveness, so the kill set is
        call-defined, not call-killed.
        """
        return SiteEffect(gen=self.used_mask, kill=self.defined_mask)

    def survives_call(self, register_index: int) -> bool:
        """True when the callee provably preserves ``register_index``
        (the Figure 1(c)/(d) test: not call-killed)."""
        return not (self.killed_mask >> register_index) & 1


@dataclass(frozen=True)
class RoutineSummary:
    """The complete external-register-usage summary of one routine."""

    name: str
    call_used_mask: int
    call_defined_mask: int
    call_killed_mask: int
    live_at_entry_mask: int
    #: exit block index -> live-at-exit mask (every exit kind).
    exit_live_masks: Mapping[int, int]
    #: exit block index -> exit kind.
    exit_kinds: Mapping[int, ExitKind]
    call_sites: List[CallSiteSummary] = field(default_factory=list)
    #: Callee-saved registers this routine saves and restores (§3.4).
    saved_restored_mask: int = 0

    @property
    def call_used(self) -> RegisterSet:
        return RegisterSet.from_mask(self.call_used_mask)

    @property
    def call_defined(self) -> RegisterSet:
        return RegisterSet.from_mask(self.call_defined_mask)

    @property
    def call_killed(self) -> RegisterSet:
        return RegisterSet.from_mask(self.call_killed_mask)

    @property
    def live_at_entry(self) -> RegisterSet:
        return RegisterSet.from_mask(self.live_at_entry_mask)

    @property
    def saved_restored(self) -> RegisterSet:
        return RegisterSet.from_mask(self.saved_restored_mask)

    def live_at_exit(self, exit_block: int) -> RegisterSet:
        """Registers live at the exit in block ``exit_block``."""
        return RegisterSet.from_mask(self.exit_live_masks[exit_block])

    @property
    def live_at_any_exit_mask(self) -> int:
        """Union of the live-at-exit masks over RETURN exits."""
        mask = 0
        for block, kind in self.exit_kinds.items():
            if kind == ExitKind.RETURN:
                mask |= self.exit_live_masks[block]
        return mask

    def site_summary(self, block_index: int) -> CallSiteSummary:
        """The call-site summary for the call ending ``block_index``."""
        for summary in self.call_sites:
            if summary.site.block == block_index:
                return summary
        raise KeyError(f"no call site in block {block_index} of {self.name!r}")

    def site_effects(self) -> Dict[int, SiteEffect]:
        """Block index -> :class:`SiteEffect` for every call site."""
        return {s.site.block: s.site_effect() for s in self.call_sites}

    def return_exit_live(self) -> Dict[int, int]:
        """Block index -> live mask for RETURN exits (liveness input)."""
        return {
            block: self.exit_live_masks[block]
            for block, kind in self.exit_kinds.items()
            if kind == ExitKind.RETURN
        }

    def to_json(self) -> Dict[str, object]:
        """The schema-1 JSON rendering of one routine's summary.

        Register sets are sorted name lists and exit blocks are string
        keys, so the payload round-trips through JSON unchanged; this
        is the shape both the CLI ``query --json`` output and the
        daemon's ``summaries`` sections carry.
        """
        return {
            "routine": self.name,
            "call_used": sorted(self.call_used.names()),
            "call_defined": sorted(self.call_defined.names()),
            "call_killed": sorted(self.call_killed.names()),
            "live_at_entry": sorted(self.live_at_entry.names()),
            "live_at_exit": {
                str(block): sorted(RegisterSet.from_mask(mask).names())
                for block, mask in sorted(self.exit_live_masks.items())
            },
        }


@dataclass
class SummarySet:
    """Whole-program analysis output: one summary per routine."""

    summaries: Dict[str, RoutineSummary]

    def __getitem__(self, name: str) -> RoutineSummary:
        return self.summaries[name]

    def __contains__(self, name: str) -> bool:
        return name in self.summaries

    def __iter__(self):
        return iter(self.summaries.values())

    def routine(self, name: str) -> RoutineSummary:
        return self.summaries[name]

    def equal_summaries(self, other: "SummarySet") -> bool:
        """True when both results carry identical dataflow facts.

        Used to cross-validate the PSG analysis against the full-CFG
        baseline.
        """
        if set(self.summaries) != set(other.summaries):
            return False
        for name, mine in self.summaries.items():
            theirs = other.summaries[name]
            if (
                mine.call_used_mask != theirs.call_used_mask
                or mine.call_defined_mask != theirs.call_defined_mask
                or mine.call_killed_mask != theirs.call_killed_mask
                or mine.live_at_entry_mask != theirs.live_at_entry_mask
                or dict(mine.exit_live_masks) != dict(theirs.exit_live_masks)
            ):
                return False
            site_pairs = zip(mine.call_sites, theirs.call_sites)
            for site_a, site_b in site_pairs:
                if (
                    site_a.used_mask != site_b.used_mask
                    or site_a.defined_mask != site_b.defined_mask
                    or site_a.killed_mask != site_b.killed_mask
                    or site_a.live_before_mask != site_b.live_before_mask
                    or site_a.live_after_mask != site_b.live_after_mask
                ):
                    return False
        return True

    def diff(self, other: "SummarySet") -> List[str]:
        """Human-readable description of summary differences."""
        problems: List[str] = []
        for name in sorted(set(self.summaries) | set(other.summaries)):
            mine = self.summaries.get(name)
            theirs = other.summaries.get(name)
            if mine is None or theirs is None:
                problems.append(f"{name}: missing on one side")
                continue
            for label, a, b in (
                ("call_used", mine.call_used_mask, theirs.call_used_mask),
                ("call_defined", mine.call_defined_mask, theirs.call_defined_mask),
                ("call_killed", mine.call_killed_mask, theirs.call_killed_mask),
                ("live_at_entry", mine.live_at_entry_mask, theirs.live_at_entry_mask),
            ):
                if a != b:
                    problems.append(
                        f"{name}.{label}: "
                        f"{RegisterSet.from_mask(a)!r} != "
                        f"{RegisterSet.from_mask(b)!r}"
                    )
            if dict(mine.exit_live_masks) != dict(theirs.exit_live_masks):
                problems.append(f"{name}.live_at_exit differs")
            for site_a, site_b in zip(mine.call_sites, theirs.call_sites):
                for label in (
                    "used_mask",
                    "defined_mask",
                    "killed_mask",
                    "live_before_mask",
                    "live_after_mask",
                ):
                    a = getattr(site_a, label)
                    b = getattr(site_b, label)
                    if a != b:
                        problems.append(
                            f"{name} call@block{site_a.site.block}.{label}: "
                            f"{RegisterSet.from_mask(a)!r} != "
                            f"{RegisterSet.from_mask(b)!r}"
                        )
        return problems
