"""Callee-saved save/restore detection (§3.4).

The NT calling standard's callee-saved registers must be saved before
use and restored before exit.  "As seen by the caller, a callee-saved
register is not used, killed, or defined by the called routine" — so
phase 1 strips every callee-saved register the routine *saves and
restores* from the routine's entry-node sets.

Detection follows standard prologue/epilogue discipline:

* a **save** is a store of a callee-saved register to a stack slot
  (``stq rs, k(sp)`` / ``stt fs, k(sp)``) in the entry block, before
  any other definition of that register;
* a **restore** is a load of the same register from the same slot in an
  exit block, with no later definition of the register before the
  return.

Every RETURN exit must restore the register for it to count; HALT exits
need not (control never returns through them) and UNKNOWN_JUMP exits
disqualify the routine's candidates entirely (we cannot see whether the
register is restored wherever control ends up).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.isa.calling_convention import CallingConvention
from repro.isa.instructions import Instruction, Opcode
from repro.isa.registers import STACK_POINTER
from repro.cfg.cfg import ControlFlowGraph, ExitKind


@dataclass(frozen=True)
class SaveRestoreSites:
    """Where one callee-saved register is saved and restored.

    Instruction indices are routine-relative.  ``restore_indices`` has
    one entry per RETURN exit block, in ``cfg.exits`` order.
    """

    register: int
    slot: int
    save_index: int
    restore_indices: Tuple[int, ...]


def find_save_restore_sites(
    cfg: ControlFlowGraph, convention: CallingConvention
) -> Dict[int, SaveRestoreSites]:
    """Detect saved-and-restored callee-saved registers with locations.

    Returns register index -> :class:`SaveRestoreSites` for every
    callee-saved register the routine provably saves in its prologue and
    restores on every RETURN exit.
    """
    callee_saved_mask = 0
    for register in convention.callee_saved:
        callee_saved_mask |= 1 << register.index

    slots = _prologue_saves(cfg, callee_saved_mask)
    if not slots:
        return {}
    if any(kind == ExitKind.UNKNOWN_JUMP for _b, kind in cfg.exits):
        return {}

    result: Dict[int, SaveRestoreSites] = {}
    for register, (slot, save_index) in slots.items():
        restores: List[int] = []
        for exit_block, kind in cfg.exits:
            if kind != ExitKind.RETURN:
                continue
            restore = _epilogue_restore_index(cfg, exit_block, register, slot)
            if restore is None:
                restores = []
                break
            restores.append(restore)
        if restores:
            result[register] = SaveRestoreSites(
                register=register,
                slot=slot,
                save_index=save_index,
                restore_indices=tuple(restores),
            )
    return result


def saved_restored_registers(
    cfg: ControlFlowGraph, convention: CallingConvention
) -> int:
    """Mask of callee-saved registers saved and restored by the routine."""
    mask = 0
    for register in find_save_restore_sites(cfg, convention):
        mask |= 1 << register
    return mask


def _prologue_saves(
    cfg: ControlFlowGraph, callee_saved_mask: int
) -> Dict[int, Tuple[int, int]]:
    """register index -> (stack offset, instruction index) for saves."""
    slots: Dict[int, Tuple[int, int]] = {}
    defined = 0
    entry = cfg.entry_block
    for offset_in_block, instruction in enumerate(entry.instructions):
        offset = _store_to_stack(instruction)
        if offset is not None:
            register = instruction.ra
            bit = 1 << register
            if bit & callee_saved_mask and not (bit & defined):
                slots.setdefault(
                    register, (offset, entry.start + offset_in_block)
                )
        for register in instruction.defs():
            defined |= 1 << register
    return slots


def _epilogue_restore_index(
    cfg: ControlFlowGraph, exit_block: int, register: int, slot: int
) -> Optional[int]:
    """Routine index of the restoring load, when the exit block's last
    write to ``register`` reloads it from ``slot``."""
    block = cfg.blocks[exit_block]
    last_def: Optional[Instruction] = None
    last_index = -1
    for offset_in_block, instruction in enumerate(block.instructions):
        if register in instruction.defs():
            last_def = instruction
            last_index = block.start + offset_in_block
    if last_def is None:
        return None
    offset = _load_from_stack(last_def)
    if offset == slot and last_def.ra == register:
        return last_index
    return None


def _store_to_stack(instruction: Instruction) -> Optional[int]:
    if (
        instruction.opcode in (Opcode.STQ, Opcode.STT)
        and instruction.rb == STACK_POINTER
    ):
        return instruction.displacement
    return None


def _load_from_stack(instruction: Instruction) -> Optional[int]:
    if (
        instruction.opcode in (Opcode.LDQ, Opcode.LDT)
        and instruction.rb == STACK_POINTER
    ):
        return instruction.displacement
    return None
