"""Interprocedural dataflow (§2, §3.2-§3.5).

The two-phase analysis over the Program Summary Graph:

* :mod:`repro.interproc.phase1` — call-used / call-defined /
  call-killed per routine (Figure 8), with callee-saved filtering
  (§3.4) and calling-standard assumptions at unknown call sites (§3.5);
* :mod:`repro.interproc.phase2` — live-at-entry / live-at-exit per
  routine (Figure 10), the precise meet-over-all-valid-paths solution;
* :mod:`repro.interproc.savedregs` — detection of the callee-saved
  registers a routine saves and restores;
* :mod:`repro.interproc.summaries` — the per-routine summary record the
  optimizer consumes;
* :mod:`repro.interproc.analysis` — the top-level driver, with the
  stage timing and memory accounting the paper's §4 reports;
* :mod:`repro.interproc.incremental` — fingerprint-scoped incremental
  re-analysis over the call-graph SCC condensation, warm-started from
  a persisted :class:`~repro.interproc.persist.SummaryCache`;
* :mod:`repro.interproc.parallel` — the sharded parallel solver: the
  condensation partitioned into cost-balanced shards, solved on a
  worker pool callee-first (phase 1) then caller-first (phase 2), with
  results bit-identical to the serial driver at any worker count;
* :mod:`repro.interproc.baseline` — the whole-program-CFG analysis
  [Srivastava93] used as the comparison baseline and as a correctness
  oracle for the PSG path.
"""

from repro.interproc.summaries import (
    SummarySet,
    CallSiteSummary,
    RoutineSummary,
)
from repro.interproc.analysis import (
    AnalysisConfig,
    InterproceduralAnalysis,
    StageTimings,
)
from repro.interproc.savedregs import (
    SaveRestoreSites,
    find_save_restore_sites,
    saved_restored_registers,
)
from repro.interproc.baseline import analyze_program_baseline
from repro.interproc.errors import AnalysisError
from repro.interproc.incremental import IncrementalAnalysis, routine_fingerprint
from repro.interproc.parallel import (
    ParallelAnalysis,
    analyze_incremental_parallel,
    analyze_parallel,
)
from repro.interproc.persist import (
    SummaryCache,
    SummaryFormatError,
    dump_cache,
    dump_summaries,
    image_fingerprint,
    load_cache,
    load_summaries,
)

__all__ = [
    "AnalysisConfig",
    "AnalysisError",
    "SummarySet",
    "CallSiteSummary",
    "IncrementalAnalysis",
    "InterproceduralAnalysis",
    "ParallelAnalysis",
    "RoutineSummary",
    "SaveRestoreSites",
    "StageTimings",
    "SummaryCache",
    "SummaryFormatError",
    "analyze_incremental_parallel",
    "analyze_parallel",
    "analyze_program_baseline",
    "dump_cache",
    "dump_summaries",
    "find_save_restore_sites",
    "image_fingerprint",
    "load_cache",
    "load_summaries",
    "routine_fingerprint",
    "saved_restored_registers",
]
