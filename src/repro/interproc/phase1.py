"""Phase 1: call-used, call-defined and call-killed (§3.2, Figure 8).

Information flows backward through each routine's flow-summary edges
and — at call nodes — through the call-return edge, whose label is the
callee's entry-node sets (copied there whenever they change).  When the
dataflow converges, a routine's entry node holds:

* ``MAY-USE``  -> the registers *call-used* by the routine,
* ``MUST-DEF`` -> the registers *call-defined*,
* ``MAY-DEF``  -> the registers *call-killed*.

Figure 8 writes the MUST-DEF update as a per-edge assignment; with
several out-edges the correct meet is the intersection over out-edges
(the paper's own Figure 6 intersects MUST-DEF over successors), which
is what this implementation computes.

The fixed point is computed in two monotone passes:

1. **defs pass** — MAY-DEF and MUST-DEF, which depend only on each
   other;
2. **uses pass** — MAY-USE, with the (now final) MUST-DEF values as
   kill sets.

The combined result equals the simultaneous least fixed point of the
Figure-8 system, but each pass is monotone from ⊥ so termination and
precision are immediate.

Exit-node boundary values encode §3.5's conservatism:

* RETURN exits contribute nothing (phase 1 excludes post-return uses);
* HALT exits never rejoin the caller, so they contribute
  ``MUST-DEF = ⊤`` (vacuously, every register is defined on a path that
  never returns) and nothing else;
* UNKNOWN_JUMP exits may run arbitrary code, so they contribute
  ``MAY-USE = MAY-DEF = ⊤`` and ``MUST-DEF = ∅``.

Callee-saved filtering (§3.4) is applied every time an entry node's
sets are recomputed; the stack and global pointers are additionally
stripped from MAY-DEF / MUST-DEF because conforming callees restore
them (they are *not* stripped from MAY-USE — a callee genuinely reads
the incoming ``sp``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.dataflow.equations import SummaryTriple
from repro.dataflow.solver import SubgraphWorklist
from repro.dataflow.regset import TRACKED_MASK
from repro.cfg.cfg import ExitKind
from repro.obs.metrics import REGISTRY
from repro.psg.graph import ProgramSummaryGraph
from repro.psg.nodes import NodeKind


def record_solve(
    psg: ProgramSummaryGraph,
    phase: str,
    iterations: int,
    max_depth: int,
    counts: Optional[List[int]],
    pushes: int = 0,
    skipped: int = 0,
    revisits: int = 0,
) -> None:
    """Push one solve's convergence numbers into the obs registry.

    Shared by both phase engines and the flat core.  ``counts``
    (per-node visit counts) is attributed to routines only when
    per-routine collection is on — the mapping walk is O(nodes) and
    only ``spike-analyze report`` consumes it.  ``pushes`` / ``skipped``
    / ``revisits`` gauge the worklist scheduling (see
    ``docs/observability.md``).
    """
    REGISTRY.inc("solver.iterations", iterations, phase=phase)
    REGISTRY.observe_max("solver.max_queue_depth", max_depth, phase=phase)
    REGISTRY.inc("solver.pushes", pushes)
    REGISTRY.inc("solver.skipped_inqueue", skipped)
    REGISTRY.inc("solver.revisits", revisits, phase=phase)
    if counts is None:
        return
    per_routine: Dict[str, int] = {}
    for node, visits in zip(psg.nodes, counts):
        if visits:
            per_routine[node.routine] = per_routine.get(node.routine, 0) + visits
    for routine, visits in per_routine.items():
        REGISTRY.inc(
            "solver.routine_iterations", visits, phase=phase, routine=routine
        )


@dataclass
class Phase1Result:
    """Converged per-node phase-1 sets (indexed by PSG node id)."""

    may_use: List[int]
    may_def: List[int]
    must_def: List[int]
    #: Worklist iterations spent converging (both passes combined); the
    #: incremental engine's work metric.
    iterations: int = 0

    def entry_triple(self, psg: ProgramSummaryGraph, routine: str) -> SummaryTriple:
        """The (call-used, call-killed, call-defined) triple of a routine."""
        node = psg.routines[routine].entry_node
        return SummaryTriple(
            may_use=self.may_use[node],
            may_def=self.may_def[node],
            must_def=self.must_def[node],
        )


def _dependents(psg: ProgramSummaryGraph) -> List[List[int]]:
    """dependents[m] = nodes whose transfer reads node m's state."""
    result: List[List[int]] = [[] for _ in range(len(psg.nodes))]
    for edge in psg.flow_edges:
        result[edge.dst].append(edge.src)
    for edge in psg.call_return_edges:
        result[edge.dst].append(edge.src)
        for callee in edge.callees:
            entry = psg.routines[callee].entry_node
            result[entry].append(edge.src)
    return result


def _exit_fixed_values(kind: ExitKind) -> SummaryTriple:
    if kind == ExitKind.RETURN:
        return SummaryTriple(0, 0, 0)
    if kind == ExitKind.HALT:
        return SummaryTriple(0, 0, TRACKED_MASK)
    return SummaryTriple(TRACKED_MASK, TRACKED_MASK, 0)  # UNKNOWN_JUMP


def run_phase1(
    psg: ProgramSummaryGraph,
    saved_restored: Dict[str, int],
    preserved_mask: int,
    seed_order: Sequence[int],
    fixed_entries: Optional[Dict[int, SummaryTriple]] = None,
    core: Optional[str] = None,
) -> Phase1Result:
    """Run phase 1 over ``psg``.

    ``saved_restored[name]`` is the §3.4 filter mask per routine;
    ``preserved_mask`` covers the stack/global pointers; ``seed_order``
    is the worklist priority order (callee-first routine order
    converges fastest).  On return, every resolved call-return edge's
    ``label`` holds the callee's final filtered entry sets.

    ``fixed_entries`` pins boundary values: node id -> the already-
    converged (MAY-USE, MAY-DEF, MUST-DEF) triple of a routine solved
    in an earlier run.  Pinned nodes behave like exit nodes — their
    values are never recomputed — which is how the incremental engine
    stitches cached callee summaries into a partial PSG.

    ``core`` selects the solver data layout/scheduling (``flat`` /
    ``object`` / ``fifo``, default via ``REPRO_SOLVER_CORE``); every
    core converges to bit-identical results (see
    :mod:`repro.interproc.flatcore`).
    """
    # Imported lazily to break the phase1 <-> flatcore cycle (flatcore
    # reuses Phase1Result and record_solve).
    from repro.interproc import flatcore

    core = flatcore.resolve_solver_core(core)
    if core == "flat":
        return flatcore.run_phase1_flat(
            psg, saved_restored, preserved_mask, seed_order,
            fixed_entries=fixed_entries,
        )
    worklist_order = "fifo" if core == "fifo" else "priority"
    node_count = len(psg.nodes)
    nodes = psg.nodes
    may_def = [0] * node_count
    # MUST-DEF is a ∩-meet problem: interior nodes start at ⊤ and shrink
    # (greatest fixed point), the standard must-analysis initialization;
    # see the note in repro.dataflow.equations.
    must_def = [TRACKED_MASK] * node_count
    may_use = [0] * node_count
    is_exit = [False] * node_count
    for node in nodes:
        if node.kind == NodeKind.EXIT:
            assert node.exit_kind is not None
            fixed = _exit_fixed_values(node.exit_kind)
            may_use[node.id] = fixed.may_use
            may_def[node.id] = fixed.may_def
            must_def[node.id] = fixed.must_def
            is_exit[node.id] = True
    if fixed_entries:
        for node_id, triple in fixed_entries.items():
            may_use[node_id] = triple.may_use
            may_def[node_id] = triple.may_def
            must_def[node_id] = triple.must_def
            is_exit[node_id] = True

    entry_strip: Dict[int, int] = {}
    entry_strip_defs: Dict[int, int] = {}
    for name, routine_psg in psg.routines.items():
        strip = saved_restored.get(name, 0)
        entry_strip[routine_psg.entry_node] = strip
        entry_strip_defs[routine_psg.entry_node] = strip | preserved_mask
    entry_of = {
        name: routine_psg.entry_node
        for name, routine_psg in psg.routines.items()
    }

    dependents = _dependents(psg)
    flow_edges = psg.flow_edges
    cr_edges = psg.call_return_edges

    # ------------------------------------------------------------------
    # Pass A: MAY-DEF and MUST-DEF
    # ------------------------------------------------------------------
    def defs_transfer(node_id: int) -> bool:
        md_acc = 0
        xd_acc = -1  # "top" sentinel: intersection identity
        for edge_index in psg.flow_out[node_id]:
            edge = flow_edges[edge_index]
            label = edge.label
            md_acc |= may_def[edge.dst] | label.may_def
            xd_acc &= must_def[edge.dst] | label.must_def
        cr_index = psg.cr_out[node_id]
        if cr_index is not None:
            edge = cr_edges[cr_index]
            if edge.is_unknown:
                label_md = edge.label.may_def
                label_xd = edge.label.must_def
            else:
                # Multi-target sites (§3.5 hints) combine their callees:
                # MAY by union, MUST by intersection.
                label_md = 0
                label_xd = -1
                for callee in edge.callees:
                    entry = entry_of[callee]
                    label_md |= may_def[entry]
                    label_xd &= must_def[entry]
            md_acc |= may_def[edge.dst] | label_md
            xd_acc &= must_def[edge.dst] | label_xd
        if xd_acc == -1:
            xd_acc = 0
        strip = entry_strip_defs.get(node_id)
        if strip is not None:
            md_acc &= ~strip
            xd_acc &= ~strip
        changed = md_acc != may_def[node_id] or xd_acc != must_def[node_id]
        may_def[node_id] = md_acc
        must_def[node_id] = xd_acc
        return changed

    visit_counts = [0] * node_count if REGISTRY.per_routine else None
    defs_worklist = SubgraphWorklist(
        node_count, dependents, is_exit, seed_order, order=worklist_order
    )
    iterations = defs_worklist.run(defs_transfer, visit_counts)

    # ------------------------------------------------------------------
    # Pass B: MAY-USE, with MUST-DEF now final
    # ------------------------------------------------------------------
    def uses_transfer(node_id: int) -> bool:
        mu_acc = 0
        for edge_index in psg.flow_out[node_id]:
            edge = flow_edges[edge_index]
            label = edge.label
            mu_acc |= label.may_use | (may_use[edge.dst] & ~label.must_def)
        cr_index = psg.cr_out[node_id]
        if cr_index is not None:
            edge = cr_edges[cr_index]
            if edge.is_unknown:
                label_mu = edge.label.may_use
                label_xd = edge.label.must_def
            else:
                label_mu = 0
                label_xd = -1
                for callee in edge.callees:
                    entry = entry_of[callee]
                    label_mu |= may_use[entry]
                    label_xd &= must_def[entry]
            mu_acc |= label_mu | (may_use[edge.dst] & ~label_xd)
        strip = entry_strip.get(node_id)
        if strip is not None:
            mu_acc &= ~strip
        changed = mu_acc != may_use[node_id]
        may_use[node_id] = mu_acc
        return changed

    uses_worklist = SubgraphWorklist(
        node_count, dependents, is_exit, seed_order, order=worklist_order
    )
    iterations += uses_worklist.run(uses_transfer, visit_counts)
    record_solve(
        psg,
        "phase1",
        iterations,
        max(defs_worklist.max_depth, uses_worklist.max_depth),
        visit_counts,
        pushes=defs_worklist.pushes + uses_worklist.pushes,
        skipped=defs_worklist.skipped + uses_worklist.skipped,
        revisits=defs_worklist.revisits + uses_worklist.revisits,
    )

    # Persist the final labels on the resolved call-return edges; phase 2
    # re-reads them ("retained for the second dataflow phase").
    flatcore.label_call_return_edges(
        psg, entry_of, may_use, may_def, must_def
    )

    return Phase1Result(
        may_use=may_use,
        may_def=may_def,
        must_def=must_def,
        iterations=iterations,
    )
