"""Spill removal around calls (Figure 1c).

The compiler assigned a value to a caller-saved register ``Rt`` and,
because it had to assume every call kills every caller-saved register,
spilled ``Rt`` to the stack around the call:

.. code-block:: none

    stq  Rt, k(sp)
    bsr  ra, callee        [ killed by call = ... , Rt not in it ]
    ldq  Rt, k(sp)

When the summary shows the callee does not kill ``Rt``, the spill pair
is deleted and the value simply stays in the register.

Safety conditions checked per candidate pair:

* the store is in the call's block with no intervening definition of
  ``Rt`` or ``sp`` and no other access to the slot before the call;
* the load is in the call's return-point block, which has the call
  block as its *only* predecessor, again with no intervening
  definition of ``Rt``/``sp`` or slot access;
* ``Rt`` is not call-killed at the site;
* no other instruction in the routine touches the slot (the slot's
  only job is this spill).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.isa.instructions import Instruction, Opcode
from repro.isa.registers import STACK_POINTER
from repro.cfg.cfg import ControlFlowGraph
from repro.interproc.summaries import RoutineSummary


def remove_call_spills(
    cfg: ControlFlowGraph,
    summary: RoutineSummary,
) -> Dict[int, Optional[Instruction]]:
    """Deletable spill pairs of one routine, as rewrite edits."""
    edits: Dict[int, Optional[Instruction]] = {}
    slot_access_counts = _slot_access_counts(cfg)
    for site_summary in summary.call_sites:
        site = site_summary.site
        call_block = cfg.blocks[site.block]
        if len(call_block.successors) != 1:
            continue
        return_block = cfg.blocks[call_block.successors[0]]
        if return_block.predecessors != [call_block.index]:
            continue
        for store_offset, register, slot in _candidate_stores(call_block):
            store_index = call_block.start + store_offset
            if store_index in edits:
                continue
            if not site_summary.survives_call(register):
                continue
            # The call instruction itself writes its link register.
            if register in call_block.instructions[-1].defs():
                continue
            if not _clear_between_store_and_call(
                call_block, store_offset, register, slot
            ):
                continue
            load_offset = _matching_load(return_block, register, slot)
            if load_offset is None:
                continue
            load_index = return_block.start + load_offset
            if load_index in edits:
                continue
            if slot_access_counts.get(slot, 0) != 2:
                continue
            edits[store_index] = None
            edits[load_index] = None
    return edits


def _slot_access_counts(cfg: ControlFlowGraph) -> Dict[int, int]:
    """How many instructions access each sp-relative slot."""
    counts: Dict[int, int] = {}
    for block in cfg.blocks:
        for instruction in block.instructions:
            if (
                instruction.opcode
                in (Opcode.STQ, Opcode.LDQ, Opcode.STT, Opcode.LDT)
                and instruction.rb == STACK_POINTER
            ):
                counts[instruction.displacement] = (
                    counts.get(instruction.displacement, 0) + 1
                )
    return counts


def _candidate_stores(call_block) -> List[Tuple[int, int, int]]:
    """(offset, register, slot) for stack stores in the call block."""
    stores: List[Tuple[int, int, int]] = []
    for offset, instruction in enumerate(call_block.instructions[:-1]):
        if (
            instruction.opcode in (Opcode.STQ, Opcode.STT)
            and instruction.rb == STACK_POINTER
        ):
            stores.append((offset, instruction.ra, instruction.displacement))
    return stores


def _clear_between_store_and_call(
    call_block, store_offset: int, register: int, slot: int
) -> bool:
    """No redefinition of the register/sp and no slot access between the
    store and the call instruction (exclusive of both)."""
    for instruction in call_block.instructions[store_offset + 1 : -1]:
        if register in instruction.defs() or STACK_POINTER in instruction.defs():
            return False
        if _accesses_slot(instruction, slot):
            return False
    return True


def _matching_load(return_block, register: int, slot: int) -> Optional[int]:
    """Offset of the reload in the return block, if the prefix is clean."""
    for offset, instruction in enumerate(return_block.instructions):
        if (
            instruction.opcode in (Opcode.LDQ, Opcode.LDT)
            and instruction.rb == STACK_POINTER
            and instruction.displacement == slot
            and instruction.ra == register
        ):
            return offset
        if register in instruction.defs() or STACK_POINTER in instruction.defs():
            return None
        if _accesses_slot(instruction, slot):
            return None
    return None


def _accesses_slot(instruction: Instruction, slot: int) -> bool:
    return (
        instruction.opcode in (Opcode.STQ, Opcode.LDQ, Opcode.STT, Opcode.LDT)
        and instruction.rb == STACK_POINTER
        and instruction.displacement == slot
    )
