"""The optimization pipeline: analyze, transform, re-analyze, verify.

Composes the Figure-1 passes in a sound order:

1. **realloc** — callee-saved → caller-saved renaming (changes what
   routines clobber, so it runs first, bottom-up over the call graph);
2. **spill** — spill removal around calls (consumes "not killed"
   facts, so the program is re-analyzed after realloc);
3. **dce** — interprocedural dead-code elimination (cleans up whatever
   the other passes expose);
4. **deadstore** — frame-store elimination (removes saves whose
   restores the earlier passes deleted).

The program is re-analyzed before every pass, every edit batch goes
through the binary rewriter (displacement/jump-table fix-ups included),
and :func:`optimize_program` optionally executes the original and the
optimized programs to verify observable behaviour is unchanged and to
measure the dynamic-instruction improvement (the §1 "5%-10%" claim).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.program.model import Program
from repro.program.rewrite import Edits, apply_edits
from repro.interproc.analysis import (
    AnalysisConfig,
    InterproceduralAnalysis,
    _analyze_program,
)
from repro.opt.dce import eliminate_dead_code
from repro.opt.deadstore import eliminate_dead_stores
from repro.opt.realloc import reallocate_callee_saved
from repro.opt.spill import remove_call_spills
from repro.sim.interpreter import ExecutionResult, run_program

PASS_NAMES = ("realloc", "spill", "dce", "deadstore")


@dataclass
class OptimizationReport:
    """What one pass did."""

    name: str
    routines_changed: int
    instructions_deleted: int
    instructions_rewritten: int

    @property
    def total_edits(self) -> int:
        return self.instructions_deleted + self.instructions_rewritten


@dataclass
class OptimizationResult:
    """Original and optimized programs plus per-pass accounting."""

    original: Program
    optimized: Program
    reports: List[OptimizationReport] = field(default_factory=list)
    baseline_run: Optional[ExecutionResult] = None
    optimized_run: Optional[ExecutionResult] = None

    @property
    def instructions_removed(self) -> int:
        return self.original.instruction_count - self.optimized.instruction_count

    @property
    def dynamic_improvement(self) -> float:
        """Fractional reduction in executed instructions (0.07 = 7%)."""
        if self.baseline_run is None or self.optimized_run is None:
            raise ValueError("optimize_program(..., verify=True) required")
        before = self.baseline_run.steps
        after = self.optimized_run.steps
        if before == 0:
            return 0.0
        return (before - after) / before

    def behaviour_preserved(self) -> bool:
        """True when both runs produced the same observable behaviour."""
        if self.baseline_run is None or self.optimized_run is None:
            raise ValueError("optimize_program(..., verify=True) required")
        return self.baseline_run.observable == self.optimized_run.observable


def _edit_counts(edits: Edits) -> Tuple[int, int, int]:
    routines = 0
    deleted = 0
    rewritten = 0
    for routine_edits in edits.values():
        if not routine_edits:
            continue
        routines += 1
        for replacement in routine_edits.values():
            if replacement is None:
                deleted += 1
            else:
                rewritten += 1
    return routines, deleted, rewritten


def _run_realloc(analysis: InterproceduralAnalysis) -> Edits:
    return reallocate_callee_saved(
        analysis.call_graph, analysis.result, analysis.config.convention
    )


def _run_spill(analysis: InterproceduralAnalysis) -> Edits:
    edits: Edits = {}
    for name, cfg in analysis.cfgs.items():
        routine_edits = remove_call_spills(cfg, analysis.summary(name))
        if routine_edits:
            edits[name] = routine_edits
    return edits


def _run_dce(analysis: InterproceduralAnalysis) -> Edits:
    edits: Edits = {}
    for name, cfg in analysis.cfgs.items():
        routine_edits = eliminate_dead_code(cfg, analysis.summary(name))
        if routine_edits:
            edits[name] = routine_edits
    return edits


def _run_deadstore(analysis: InterproceduralAnalysis) -> Edits:
    edits: Edits = {}
    for name, cfg in analysis.cfgs.items():
        routine_edits = eliminate_dead_stores(cfg, analysis.summary(name))
        if routine_edits:
            edits[name] = routine_edits
    return edits


_PASSES: Dict[str, Callable[[InterproceduralAnalysis], Edits]] = {
    "realloc": _run_realloc,
    "spill": _run_spill,
    "dce": _run_dce,
    "deadstore": _run_deadstore,
}


def _optimize_program(
    program: Program,
    passes: Sequence[str] = PASS_NAMES,
    config: Optional[AnalysisConfig] = None,
    verify: bool = False,
    max_steps: int = 5_000_000,
) -> OptimizationResult:
    """Run the pipeline; optionally verify behaviour by execution."""
    for name in passes:
        if name not in _PASSES:
            raise ValueError(f"unknown pass {name!r}; known: {sorted(_PASSES)}")

    current = program
    reports: List[OptimizationReport] = []
    for name in passes:
        analysis = _analyze_program(current, config)
        edits = _PASSES[name](analysis)
        routines, deleted, rewritten = _edit_counts(edits)
        reports.append(
            OptimizationReport(
                name=name,
                routines_changed=routines,
                instructions_deleted=deleted,
                instructions_rewritten=rewritten,
            )
        )
        if edits:
            current = apply_edits(current, edits)

    result = OptimizationResult(
        original=program, optimized=current, reports=reports
    )
    if verify:
        result.baseline_run = run_program(program, max_steps=max_steps)
        result.optimized_run = run_program(current, max_steps=max_steps)
        if not result.behaviour_preserved():
            raise AssertionError(
                "optimization changed observable behaviour: "
                f"{result.baseline_run.observable} != "
                f"{result.optimized_run.observable}"
            )
    return result


