"""Interprocedural dead-code elimination (Figure 1a/1b).

With the routine's calls replaced by call-summary instructions and its
exits annotated with live-at-exit sets (§2), conventional liveness
tells us, after every instruction, exactly which registers the rest of
the *program* might still read.  An instruction whose only effect is to
define registers none of which are live afterwards is dead — even when
the would-be consumer is in a separately compiled module, which is the
case a traditional compiler cannot see.

Deletions expose more deletions (a dead instruction's operands may die
with it), so the pass iterates per routine until no instruction is
removable.

Instructions eligible for deletion: register-writing, fall-through
instructions without side effects — operate format, ``lda``/``ldah``
and loads.  Stores, OUTPUT and all control transfers are kept.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.isa.instructions import ControlKind, Format, Instruction, Opcode
from repro.dataflow.liveness import SiteEffect, effective_gen_kill
from repro.dataflow.regset import TRACKED_MASK
from repro.cfg.cfg import ControlFlowGraph, ExitKind, TerminatorKind
from repro.interproc.summaries import RoutineSummary

_DELETABLE_FORMATS = (
    Format.OPERATE,
    Format.OPERATE_FP,
)


def _is_deletable(instruction: Instruction) -> bool:
    opcode = instruction.opcode
    if opcode.control != ControlKind.FALLTHROUGH:
        return False
    if opcode is Opcode.OUTPUT:
        return False
    if opcode.format in _DELETABLE_FORMATS:
        return True
    # Loads and address computations write a register and touch nothing
    # else the program can observe.
    return opcode in (Opcode.LDA, Opcode.LDAH, Opcode.LDQ, Opcode.LDT)


def eliminate_dead_code(
    cfg: ControlFlowGraph,
    summary: RoutineSummary,
) -> Dict[int, Optional[Instruction]]:
    """Dead instructions of one routine, as rewrite edits.

    Returns ``{instruction index: None}`` for every deletable
    instruction that defines no live register; iterates to a fixed
    point internally.
    """
    blocks = cfg.blocks
    site_effects: Dict[int, SiteEffect] = summary.site_effects()
    exit_live = summary.return_exit_live()
    deleted: set = set()

    while True:
        live_in = _solve_block_liveness(cfg, site_effects, exit_live, deleted)
        newly_dead: List[int] = []
        for block in blocks:
            # Walk the block backward from its live-out.
            if block.successors:
                mask = 0
                for successor in block.successors:
                    mask |= live_in[successor]
            else:
                mask = _exit_mask(cfg, block.index, exit_live)
            for offset in range(len(block.instructions) - 1, -1, -1):
                index = block.start + offset
                if index in deleted:
                    continue
                instruction = block.instructions[offset]
                is_call = (
                    block.terminator == TerminatorKind.CALL
                    and offset == len(block.instructions) - 1
                )
                gen, kill = effective_gen_kill(
                    instruction,
                    site_effects.get(block.index) if is_call else None,
                )
                if _is_deletable(instruction) and kill and not (kill & mask):
                    newly_dead.append(index)
                    continue  # a dead instruction contributes nothing
                mask = gen | (mask & ~kill)
        if not newly_dead:
            break
        deleted.update(newly_dead)

    return {index: None for index in sorted(deleted)}


def _exit_mask(
    cfg: ControlFlowGraph, block_index: int, exit_live: Dict[int, int]
) -> int:
    kind = cfg.exit_kind_of(block_index)
    if kind == ExitKind.RETURN:
        return exit_live.get(block_index, 0)
    if kind == ExitKind.UNKNOWN_JUMP:
        return TRACKED_MASK
    return 0


def _solve_block_liveness(
    cfg: ControlFlowGraph,
    site_effects: Dict[int, SiteEffect],
    exit_live: Dict[int, int],
    deleted: set,
) -> List[int]:
    """Block-level live-in masks, with ``deleted`` instructions skipped."""
    blocks = cfg.blocks
    gen = [0] * len(blocks)
    kill = [0] * len(blocks)
    for block in blocks:
        block_gen = 0
        block_kill = 0
        for offset, instruction in enumerate(block.instructions):
            index = block.start + offset
            if index in deleted:
                continue
            is_call = (
                block.terminator == TerminatorKind.CALL
                and offset == len(block.instructions) - 1
            )
            instruction_gen, instruction_kill = effective_gen_kill(
                instruction,
                site_effects.get(block.index) if is_call else None,
            )
            block_gen |= instruction_gen & ~block_kill
            block_kill |= instruction_kill
        gen[block.index] = block_gen
        kill[block.index] = block_kill

    live_in = [0] * len(blocks)
    changed = True
    while changed:
        changed = False
        for block in reversed(blocks):
            if block.successors:
                out_mask = 0
                for successor in block.successors:
                    out_mask |= live_in[successor]
            else:
                out_mask = _exit_mask(cfg, block.index, exit_live)
            new_in = gen[block.index] | (out_mask & ~kill[block.index])
            if new_in != live_in[block.index]:
                live_in[block.index] = new_in
                changed = True
    return live_in
