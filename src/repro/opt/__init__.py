"""Summary-driven optimizations (Figure 1 of the paper).

The paper motivates the interprocedural summaries with four
optimizations that a traditional compiler cannot perform because the
calling and called procedures live in separately compiled modules:

* **dead-code elimination across returns** (Fig. 1a) and **across
  calls** (Fig. 1b) — :mod:`repro.opt.dce`;
* **spill removal around calls** (Fig. 1c): a caller-saved register
  the summary proves un-killed need not be spilled —
  :mod:`repro.opt.spill`;
* **callee-saved → caller-saved reallocation** (Fig. 1d): a value held
  in a callee-saved register across calls that do not kill some
  caller-saved register moves there, deleting the save/restore —
  :mod:`repro.opt.realloc`.

:mod:`repro.opt.pipeline` composes the passes with re-analysis between
them and validates results behaviourally.
"""

from repro.opt.dce import eliminate_dead_code
from repro.opt.deadstore import eliminate_dead_stores
from repro.opt.spill import remove_call_spills
from repro.opt.realloc import reallocate_callee_saved
from repro.opt.pipeline import OptimizationReport, OptimizationResult

__all__ = [
    "OptimizationReport",
    "OptimizationResult",
    "eliminate_dead_code",
    "eliminate_dead_stores",
    "reallocate_callee_saved",
    "remove_call_spills",
]
