"""Callee-saved → caller-saved reallocation (Figure 1d).

The compiler put a value that lives across calls into a callee-saved
register ``Rs``, paying a save and a restore in the prologue/epilogue:

.. code-block:: none

    save Rs
    ...
    def Rs
    call   [ killed by call = ∅ ]
    use Rs
    ...
    restore Rs

If the summaries show some caller-saved register ``Rt`` is not killed
by any call the routine makes, the value can live in ``Rt`` instead and
the save/restore disappears.  Large applications spend up to 16% of
their time in call overhead [Cohn96], so this is where the paper's
5-10% improvements mostly come from.

Renaming one routine changes what *it* clobbers, which can invalidate
the facts a caller's own rename depends on.  The pass therefore
processes routines callees-first (reverse topological order over the
call graph) and tracks, per routine, the caller-saved registers newly
clobbered by renames — transitively through the call graph.  Checking
a call site uses ``call-killed ∪ transitive-new-clobbers(callee)``, and
routines inside one strongly connected component additionally avoid
every rename target claimed by the component (two mutually recursive
routines must not claim the same scratch register).

Per-candidate safety conditions:

* ``Rs`` is provably saved/restored (prologue/epilogue discipline) and
  its stack slot is touched by nothing but the save and the restores;
* with the save/restore gone, the routine never reads the *incoming*
  value of ``Rs`` (every interior use is covered by an interior
  definition);
* ``Rt`` occurs nowhere in the routine, is not (effectively) killed by
  any call the routine makes, and is not live at any routine exit.
"""

from __future__ import annotations

from dataclasses import replace as dataclass_replace
from typing import Dict, List, Optional, Set, Tuple

from repro.isa.calling_convention import CallingConvention
from repro.isa.instructions import Instruction
from repro.isa.registers import NUM_INTEGER_REGISTERS
from repro.cfg.callgraph import CallGraph
from repro.cfg.cfg import ControlFlowGraph, ExitKind
from repro.interproc.savedregs import SaveRestoreSites, find_save_restore_sites
from repro.interproc.summaries import SummarySet, RoutineSummary
from repro.program.rewrite import Edits


def reallocate_callee_saved(
    call_graph: CallGraph,
    analysis: SummarySet,
    convention: CallingConvention,
) -> Edits:
    """Whole-program reallocation; returns rewrite edits per routine."""
    cfgs = call_graph.cfgs
    components = call_graph.strongly_connected_components()

    #: caller-saved registers each routine newly clobbers (transitive).
    extra_killed: Dict[str, int] = {name: 0 for name in cfgs}
    edits: Edits = {}

    for component in components:
        members = set(component)
        claimed = 0  # rename targets claimed within this component
        # Clobbers flowing in from callees outside the component.
        inherited = 0
        for name in component:
            for callee in call_graph.callees_of(name):
                if callee not in members:
                    inherited |= extra_killed[callee]
        for name in component:
            routine_edits, new_clobbers = _reallocate_routine(
                name,
                cfgs[name],
                analysis.summaries[name],
                call_graph,
                convention,
                extra_killed,
                members,
                claimed | inherited,
            )
            claimed |= new_clobbers
            extra_killed[name] |= new_clobbers
            if routine_edits:
                edits[name] = routine_edits
        # Finalize: every member transitively exposes the whole
        # component's new clobbers plus everything inherited.
        for name in component:
            extra_killed[name] |= claimed | inherited
    return edits


def _reallocate_routine(
    name: str,
    cfg: ControlFlowGraph,
    summary: RoutineSummary,
    call_graph: CallGraph,
    convention: CallingConvention,
    extra_killed: Dict[str, int],
    component: Set[str],
    blocked_targets: int,
) -> Tuple[Dict[int, Optional[Instruction]], int]:
    """Rename what we can in one routine.

    Returns (edits, mask of caller-saved registers newly clobbered).
    """
    sites = find_save_restore_sites(cfg, convention)
    if not sites:
        return {}, 0

    # A routine that calls into its own SCC (including itself) must not
    # rename: the renamed value would be live across a call to code that
    # — after the very same rename — clobbers the new register.  The
    # callee-saved discipline was precisely what protected it.
    for site_summary in summary.call_sites:
        if any(target in component for target in site_summary.site.targets):
            return {}, 0

    # Effective kill mask over every call the routine makes.
    killed_by_calls = 0
    for site_summary in summary.call_sites:
        killed_by_calls |= site_summary.killed_mask
        for target in site_summary.site.targets:
            killed_by_calls |= extra_killed[target]

    occurs = _occurring_registers(cfg)
    exit_live = 0
    for block, kind in summary.exit_kinds.items():
        if kind == ExitKind.UNKNOWN_JUMP:
            exit_live = ~0
            break
        exit_live |= summary.exit_live_masks[block]

    slot_accesses = _slot_access_indices(cfg)
    candidates = sorted(convention.temporaries, key=lambda r: r.index)

    edits: Dict[int, Optional[Instruction]] = {}
    new_clobbers = 0
    for register, site_info in sorted(sites.items()):
        protected = {site_info.save_index, *site_info.restore_indices}
        if any(index in edits for index in protected):
            continue
        if not _slot_private(slot_accesses, site_info, protected):
            continue
        if _reads_incoming_value(cfg, register, protected):
            continue
        target = _pick_target(
            register,
            candidates,
            occurs,
            killed_by_calls | new_clobbers | blocked_targets,
            exit_live,
        )
        if target is None:
            continue
        _apply_rename(cfg, register, target, protected, edits)
        occurs |= 1 << target
        new_clobbers |= 1 << target
    return edits, new_clobbers


def _pick_target(
    saved_register: int,
    candidates,
    occurs: int,
    killed: int,
    exit_live: int,
) -> Optional[int]:
    saved_is_integer = saved_register < NUM_INTEGER_REGISTERS
    for candidate in candidates:
        index = candidate.index
        if (index < NUM_INTEGER_REGISTERS) != saved_is_integer:
            continue
        bit = 1 << index
        if occurs & bit or killed & bit or exit_live & bit:
            continue
        return index
    return None


def _occurring_registers(cfg: ControlFlowGraph) -> int:
    mask = 0
    for block in cfg.blocks:
        for instruction in block.instructions:
            for register in instruction.uses():
                mask |= 1 << register
            for register in instruction.defs():
                mask |= 1 << register
    return mask


def _slot_access_indices(cfg: ControlFlowGraph) -> Dict[int, List[int]]:
    """sp-relative slot -> routine indices of instructions touching it."""
    from repro.isa.instructions import Opcode
    from repro.isa.registers import STACK_POINTER

    accesses: Dict[int, List[int]] = {}
    for block in cfg.blocks:
        for offset, instruction in enumerate(block.instructions):
            if (
                instruction.opcode
                in (Opcode.STQ, Opcode.LDQ, Opcode.STT, Opcode.LDT)
                and instruction.rb == STACK_POINTER
            ):
                accesses.setdefault(instruction.displacement, []).append(
                    block.start + offset
                )
    return accesses


def _slot_private(
    slot_accesses: Dict[int, List[int]],
    site_info: SaveRestoreSites,
    protected: Set[int],
) -> bool:
    """The save slot is accessed only by the save and the restores."""
    return set(slot_accesses.get(site_info.slot, [])) == protected


def _reads_incoming_value(
    cfg: ControlFlowGraph, register: int, skipped: Set[int]
) -> bool:
    """Would the routine (sans save/restore) read the caller's value?

    Single-register liveness: ``register`` live at entry means some
    path reads it before any interior definition.
    """
    blocks = cfg.blocks
    gen = [False] * len(blocks)
    kill = [False] * len(blocks)
    for block in blocks:
        block_kill = False
        block_gen = False
        for offset, instruction in enumerate(block.instructions):
            if block.start + offset in skipped:
                continue
            if not block_kill and register in instruction.uses():
                block_gen = True
            if register in instruction.defs():
                block_kill = True
        gen[block.index] = block_gen
        kill[block.index] = block_kill

    live_in = [False] * len(blocks)
    changed = True
    while changed:
        changed = False
        for block in reversed(blocks):
            out = any(live_in[s] for s in block.successors)
            new_in = gen[block.index] or (out and not kill[block.index])
            if new_in != live_in[block.index]:
                live_in[block.index] = new_in
                changed = True
    return live_in[cfg.entry_index]


def _apply_rename(
    cfg: ControlFlowGraph,
    old: int,
    new: int,
    deleted: Set[int],
    edits: Dict[int, Optional[Instruction]],
) -> None:
    for index in deleted:
        edits[index] = None
    for block in cfg.blocks:
        for offset, original in enumerate(block.instructions):
            index = block.start + offset
            if index in deleted:
                continue
            # Later renames must compose with earlier ones (an
            # instruction may mention two saved registers), and skip
            # instructions an earlier rename already deleted.
            instruction = edits.get(index, original)
            if instruction is None:
                continue
            fields = {}
            if instruction.ra == old:
                fields["ra"] = new
            if instruction.rb == old:
                fields["rb"] = new
            if instruction.rc == old:
                fields["rc"] = new
            if fields:
                edits[index] = dataclass_replace(instruction, **fields)
