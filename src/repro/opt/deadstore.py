"""Dead stack-store elimination.

A follow-on cleanup pass the Figure-1 transformations expose: after
reallocation deletes a restore, or DCE deletes the load half of a
spill, the matching *store* is left writing a stack slot nobody will
ever read.  This pass removes stores to the routine's own frame slots
that cannot reach any load of the same slot.

Soundness rests on the frame-privacy discipline the rest of the
optimizer already assumes (and the generator and examples obey):

* a routine's ``sp``-relative slots are accessed only through ``sp``
  with a constant displacement and only by the routine itself (callees
  build their own frames below ``sp``; callers' frames sit above);
* ``sp`` is only adjusted by the prologue/epilogue ``lda`` pair.

We verify the second point per routine (bail out entirely on any other
``sp`` definition or any non-``sp`` memory access whose base register
could alias the frame — conservatively, any load/store not based on
``sp``, since our IR has no alias information) and then run a
slot-level backward liveness over the CFG: a store is dead when its
slot is not live immediately after it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.isa.instructions import Instruction, Opcode
from repro.isa.registers import STACK_POINTER
from repro.cfg.cfg import ControlFlowGraph, ExitKind
from repro.interproc.summaries import RoutineSummary

_LOADS = (Opcode.LDQ, Opcode.LDT)
_STORES = (Opcode.STQ, Opcode.STT)


def eliminate_dead_stores(
    cfg: ControlFlowGraph,
    summary: RoutineSummary,
) -> Dict[int, Optional[Instruction]]:
    """Dead frame stores of one routine, as rewrite edits.

    Returns ``{instruction index: None}``.  Conservatively returns no
    edits when the routine's memory behaviour defeats the frame-privacy
    argument (non-``sp`` memory accesses, unusual ``sp`` writes, or
    unknown-jump exits).
    """
    slots = _frame_slots(cfg)
    if slots is None or not slots:
        return {}

    slot_list = sorted(slots)
    slot_bit = {slot: 1 << i for i, slot in enumerate(slot_list)}

    # Per-block gen (slot loaded before overwritten) / kill (slot
    # definitely overwritten) for backward slot liveness.
    blocks = cfg.blocks
    gen = [0] * len(blocks)
    kill = [0] * len(blocks)
    for block in blocks:
        block_gen = 0
        block_kill = 0
        for instruction in block.instructions:
            slot = _sp_slot(instruction)
            if slot is None:
                continue
            bit = slot_bit[slot]
            if instruction.opcode in _LOADS:
                if not (block_kill & bit):
                    block_gen |= bit
            else:
                block_kill |= bit
        gen[block.index] = block_gen
        kill[block.index] = block_kill

    live_in = [0] * len(blocks)
    changed = True
    while changed:
        changed = False
        for block in reversed(blocks):
            out_mask = 0
            for successor in block.successors:
                out_mask |= live_in[successor]
            # At RETURN/HALT exits the frame dies; slots are dead.
            new_in = gen[block.index] | (out_mask & ~kill[block.index])
            if new_in != live_in[block.index]:
                live_in[block.index] = new_in
                changed = True

    edits: Dict[int, Optional[Instruction]] = {}
    for block in blocks:
        out_mask = 0
        for successor in block.successors:
            out_mask |= live_in[successor]
        live = out_mask
        for offset in range(len(block.instructions) - 1, -1, -1):
            instruction = block.instructions[offset]
            slot = _sp_slot(instruction)
            if slot is None:
                continue
            bit = slot_bit[slot]
            if instruction.opcode in _LOADS:
                live |= bit
            else:
                if not (live & bit):
                    edits[block.start + offset] = None
                live &= ~bit
    return edits


def _frame_slots(cfg: ControlFlowGraph) -> Optional[Set[int]]:
    """The sp-relative slots the routine touches, or None to bail out.

    A slot is identified by its ``sp``-relative displacement, which is
    only meaningful while ``sp`` is constant.  We therefore require the
    standard discipline and bail out otherwise:

    * ``sp`` is written only by ``lda sp, -F(sp)`` as the *first*
      instruction of the entry block and ``lda sp, +F(sp)`` in exit
      blocks with no slot access after it — so every slot access sees
      the same ``sp``;
    * every load/store is ``sp``-based (no alias into the frame);
    * no unknown-jump exits (unknown code could inspect the frame).
    """
    if any(kind == ExitKind.UNKNOWN_JUMP for _b, kind in cfg.exits):
        return None
    exit_blocks = {block for block, _kind in cfg.exits}
    slots: Set[int] = set()
    for block in cfg.blocks:
        seen_sp_restore = False
        for offset, instruction in enumerate(block.instructions):
            opcode = instruction.opcode
            if opcode in _LOADS or opcode in _STORES:
                if instruction.rb != STACK_POINTER:
                    return None  # possible alias into the frame
                if seen_sp_restore:
                    return None  # slot access under a different sp
                slots.add(instruction.displacement)
            if STACK_POINTER in instruction.defs():
                is_adjust = (
                    opcode is Opcode.LDA
                    and instruction.ra == STACK_POINTER
                    and instruction.rb == STACK_POINTER
                )
                if not is_adjust:
                    return None  # sp computed some other way
                is_prologue = block.index == cfg.entry_index and offset == 0
                is_epilogue = block.index in exit_blocks
                if is_prologue:
                    continue
                if is_epilogue:
                    seen_sp_restore = True
                    continue
                return None  # mid-routine sp adjustment
    return slots


def _sp_slot(instruction: Instruction) -> Optional[int]:
    if (
        instruction.opcode in _LOADS + _STORES
        and instruction.rb == STACK_POINTER
    ):
        return instruction.displacement
    return None
